// sfq — command-line front end for the streamfreq library.
//
// Subcommands:
//   generate   synthesize a workload and write a binary trace
//   topk       run the Count-Sketch top-k algorithm over a trace
//   suite      run the full algorithm suite over a trace and score it
//   maxchange  find the largest frequency changes between two traces
//   sketch     build a Count-Sketch from a trace and save it (checksummed);
//              --threads N ingests the trace through the parallel sharded
//              pipeline (src/concurrent/), identical output by linearity
//   inspect    print the parameters of a saved sketch file
//   estimate   point-query a saved sketch file
//   verify     seeded differential fuzzing of every algorithm's guarantees
//              against the exact oracle (src/verify/); failing programs are
//              shrunk and printed as replayable --program lines
//   chaos      replay seeded fuzz programs under randomized failpoint
//              schedules (src/verify/chaos.h): every iteration must end in
//              a clean error Status or a sketch passing its guarantee
//              checker over the effective stream (docs/ROBUSTNESS.md);
//              --server runs the campaign against an in-process sketch
//              server instead (the server.* failpoint sites);
//              --server-restart forks real durable `sfq serve` processes,
//              kills them at durability failpoints and with real SIGKILLs,
//              and asserts crash recovery (WAL replay + snapshots) keeps
//              the conservation ledger and the exact sketch;
//              --tree drives the distributed merge tree (src/dist/) under
//              the dist.* failpoint sites: severed/torn uplinks, dropped
//              deliveries, lost acks, permanent node loss — every
//              iteration must end clean or with a root sketch bit-equal
//              to the covered-prefix reference (docs/DISTRIBUTED.md)
//   aggregate  fork a merge-tree fleet of ingest workers and relays that
//              ship Count-Sketch deltas over unix sockets up to a root in
//              this process, then answer global top-k (docs/DISTRIBUTED.md)
//   serve      run the long-lived multi-tenant sketch server on a local
//              socket (src/server/; protocol in docs/SERVER.md);
//              --data-dir makes tenants durable: every accepted batch is
//              journaled (WAL) before it is applied, epoch snapshots bound
//              replay, and startup recovers all tenants before serving
//   client     one request against a running server (ping, create, ingest,
//              topk, estimate, mark, maxchange, seal, export, recoveryinfo,
//              statsz, shutdown); --retries N arms transport-level retry
//              with deterministic backoff
//
// Examples:
//   sfq generate --kind zipf --z 1.1 --m 100000 --n 1000000 --out q.trace
//   sfq topk --trace q.trace --k 10 --width 4096
//   sfq maxchange --before day1.trace --after day2.trace --k 20
//   sfq sketch --trace q.trace --out q.skf && sfq inspect --sketch q.skf
#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <span>
#include <string>

#include "concurrent/parallel_ingestor.h"
#include "core/count_sketch.h"
#include "dist/aggregate.h"
#include "core/max_change.h"
#include "core/sketch_io.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/suite.h"
#include "core/phi_heavy_hitters.h"
#include "core/typed.h"
#include "stream/exact_counter.h"
#include "stream/flow_traffic.h"
#include "stream/text_io.h"
#include "stream/trace.h"
#include "stream/zipf.h"
#include "eval/report.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/wal.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "verify/chaos.h"
#include "verify/fuzz.h"
#include "verify/program.h"
#include "verify/violation.h"

namespace streamfreq {
namespace {

int Fail(const Status& status) {
  std::cerr << "sfq: " << status.ToString() << "\n";
  return 1;
}

void PrintUsage() {
  std::cout <<
      "usage: sfq <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --kind zipf|uniform|flows --n N [--m M] [--z Z]\n"
      "            [--alpha A] [--seed S] --out FILE\n"
      "  topk      --trace FILE [--k K] [--depth T] [--width B]\n"
      "            [--tracked L] [--seed S]\n"
      "  suite     --trace FILE [--k K] [--budget BYTES]\n"
      "  maxchange --before FILE --after FILE [--k K] [--depth T]\n"
      "            [--width B] [--tracked L]\n"
      "  sketch    --trace FILE --out FILE [--depth T] [--width B] [--seed S]\n"
      "            [--threads N] [--batch ITEMS]   (parallel ingestion)\n"
      "            [--failpoints SPEC] [--push-timeout-ms MS]\n"
      "            [--overflow block|shed|sample] [--json FILE]\n"
      "            (degraded modes; see docs/ROBUSTNESS.md)\n"
      "  inspect   --sketch FILE\n"
      "  estimate  --sketch FILE --item ID\n"
      "  words     --text FILE [--k K] [--depth T] [--width B]\n"
      "            [--min-length L]\n"
      "  hh        --trace FILE [--phi F]   (phi-heavy-hitters report)\n"
      "  verify    [--seed S] [--iters N] [--algo NAME] [--width-scale W]\n"
      "            [--shrink BOOL] [--json FILE] [--program \"LINE\"]\n"
      "            (differential guarantee fuzzing; see docs/VERIFICATION.md)\n"
      "  chaos     [--seed S] [--iters N] [--failpoints SPEC] [--io BOOL]\n"
      "            [--server BOOL] [--server-restart BOOL] [--tree BOOL]\n"
      "            [--json FILE]\n"
      "            (fault-injection campaign; see docs/ROBUSTNESS.md and,\n"
      "             for --tree, docs/DISTRIBUTED.md)\n"
      "  aggregate [--workers N] [--fanout F] [--items N] [--m M] [--z Z]\n"
      "            [--seed S] [--delta-every N] [--tracked L] [--k K]\n"
      "            [--depth T] [--width B] [--json FILE]\n"
      "            (forked merge-tree fleet; see docs/DISTRIBUTED.md)\n"
      "  serve     --socket PATH [--data-dir DIR]\n"
      "            [--fsync always|never|batch]\n"
      "            [--snapshot-every ITEMS] [--failpoints SPEC] [--seed S]\n"
      "            (multi-tenant sketch server; see docs/SERVER.md)\n"
      "  client    --socket PATH --op OP [--tenant T] [--trace FILE]\n"
      "            [--k K] [--item ID] [--depth T] [--width B] [--seed S]\n"
      "            [--threads N] [--overflow block|shed|sample]\n"
      "            [--push-timeout-ms MS] [--tracked L] [--out FILE]\n"
      "            [--retries N] [--backoff-ms MS]\n"
      "            (OP: ping create drop ingest seal topk estimate mark\n"
      "             maxchange export recoveryinfo statsz shutdown)\n";
}

Result<CountSketchParams> SketchParamsFromFlags(const Flags& flags) {
  CountSketchParams p;
  STREAMFREQ_ASSIGN_OR_RETURN(const int64_t depth, flags.GetInt("depth", 5));
  STREAMFREQ_ASSIGN_OR_RETURN(const int64_t width, flags.GetInt("width", 4096));
  STREAMFREQ_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt("seed", 1));
  if (depth <= 0 || width <= 0) {
    return Status::InvalidArgument("--depth and --width must be positive");
  }
  p.depth = static_cast<size_t>(depth);
  p.width = static_cast<size_t>(width);
  p.seed = static_cast<uint64_t>(seed);
  return p;
}

Result<Stream> LoadTrace(const Flags& flags, const std::string& flag_name) {
  const std::string path = flags.GetString(flag_name, "");
  if (path.empty()) {
    return Status::InvalidArgument("--" + flag_name + " is required");
  }
  return ReadTrace(path);
}

int CmdGenerate(const Flags& flags) {
  const std::string kind = flags.GetString("kind", "zipf");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto n = flags.GetInt("n", 1000000);
  auto m = flags.GetInt("m", 100000);
  auto z = flags.GetDouble("z", 1.0);
  auto alpha = flags.GetDouble("alpha", 1.2);
  auto seed = flags.GetInt("seed", 1);
  for (const Status& s :
       {n.status(), m.status(), z.status(), alpha.status(), seed.status()}) {
    if (!s.ok()) return Fail(s);
  }

  Stream stream;
  if (kind == "zipf") {
    auto gen = ZipfGenerator::Make(static_cast<uint64_t>(*m), *z,
                                   static_cast<uint64_t>(*seed));
    if (!gen.ok()) return Fail(gen.status());
    stream = gen->Take(static_cast<size_t>(*n));
    std::cout << "generated " << gen->Describe() << ", n=" << *n << "\n";
  } else if (kind == "uniform") {
    auto gen = UniformGenerator::Make(static_cast<uint64_t>(*m),
                                      static_cast<uint64_t>(*seed));
    if (!gen.ok()) return Fail(gen.status());
    stream = gen->Take(static_cast<size_t>(*n));
    std::cout << "generated " << gen->Describe() << ", n=" << *n << "\n";
  } else if (kind == "flows") {
    FlowTrafficSpec spec;
    spec.pareto_alpha = *alpha;
    spec.seed = static_cast<uint64_t>(*seed);
    auto gen = FlowTrafficGenerator::Make(spec);
    if (!gen.ok()) return Fail(gen.status());
    stream = gen->Take(static_cast<size_t>(*n));
    std::cout << "generated " << gen->Describe() << ", n=" << *n << "\n";
  } else {
    return Fail(Status::InvalidArgument("unknown --kind: " + kind));
  }

  const Status s = WriteTrace(out, stream);
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << out << " (" << stream.size() << " items)\n";
  return 0;
}

int CmdTopK(const Flags& flags) {
  auto stream = LoadTrace(flags, "trace");
  if (!stream.ok()) return Fail(stream.status());
  auto params = SketchParamsFromFlags(flags);
  if (!params.ok()) return Fail(params.status());
  auto k = flags.GetInt("k", 10);
  if (!k.ok()) return Fail(k.status());
  auto tracked = flags.GetInt("tracked", 2 * *k);
  if (!tracked.ok()) return Fail(tracked.status());

  auto algo = CountSketchTopK::Make(*params, static_cast<size_t>(*tracked));
  if (!algo.ok()) return Fail(algo.status());
  algo->AddAll(*stream);

  ExactCounter oracle;
  oracle.AddAll(*stream);
  const auto truth = oracle.TopK(static_cast<size_t>(*k));
  const auto candidates = algo->Candidates(static_cast<size_t>(*k));
  const PrecisionRecall pr = ComputePrecisionRecall(candidates, truth);

  TablePrinter table({"rank", "item", "estimate", "true count"});
  int rank = 0;
  for (const ItemCount& ic : candidates) {
    table.AddRowValues(++rank, ic.item, ic.count, oracle.CountOf(ic.item));
  }
  table.Print(std::cout);
  std::cout << "recall@" << *k << "=" << pr.recall << " precision@" << *k
            << "=" << pr.precision << " space="
            << algo->SpaceBytes() / 1024 << "KiB\n";
  return 0;
}

int CmdSuite(const Flags& flags) {
  auto stream = LoadTrace(flags, "trace");
  if (!stream.ok()) return Fail(stream.status());
  auto k = flags.GetInt("k", 10);
  auto budget = flags.GetInt("budget", 64 * 1024);
  auto seed = flags.GetInt("seed", 1);
  for (const Status& s : {k.status(), budget.status(), seed.status()}) {
    if (!s.ok()) return Fail(s);
  }

  Workload workload;
  workload.stream = *std::move(stream);
  workload.oracle.AddAll(workload.stream);
  workload.description = flags.GetString("trace", "");

  SuiteSpec spec;
  spec.space_budget_bytes = static_cast<size_t>(*budget);
  spec.k = static_cast<size_t>(*k);
  spec.seed = static_cast<uint64_t>(*seed);
  spec.expected_stream_length = workload.stream.size();
  auto suite = MakeDefaultSuite(spec);
  if (!suite.ok()) return Fail(suite.status());

  TablePrinter table(
      {"algorithm", "recall", "precision", "ARE", "space KiB", "Mitems/s"});
  for (const auto& algo : *suite) {
    const RunResult r = RunAndScore(*algo, workload, spec.k);
    table.AddRowValues(r.algorithm, r.topk_quality.recall,
                       r.topk_quality.precision, r.are_topk,
                       static_cast<double>(r.space_bytes) / 1024.0,
                       r.items_per_second / 1e6);
  }
  table.Print(std::cout);
  return 0;
}

int CmdMaxChange(const Flags& flags) {
  auto before = LoadTrace(flags, "before");
  if (!before.ok()) return Fail(before.status());
  auto after = LoadTrace(flags, "after");
  if (!after.ok()) return Fail(after.status());
  auto params = SketchParamsFromFlags(flags);
  if (!params.ok()) return Fail(params.status());
  auto k = flags.GetInt("k", 10);
  if (!k.ok()) return Fail(k.status());
  auto tracked = flags.GetInt("tracked", 10 * *k);
  if (!tracked.ok()) return Fail(tracked.status());

  auto changes =
      MaxChangeDetector::Run(*params, static_cast<size_t>(*tracked), *before,
                             *after, static_cast<size_t>(*k));
  if (!changes.ok()) return Fail(changes.status());
  TablePrinter table({"item", "before", "after", "delta"});
  for (const ChangeResult& c : *changes) {
    table.AddRowValues(c.item, c.count_s1, c.count_s2, c.Delta());
  }
  table.Print(std::cout);
  return 0;
}

Result<OverflowPolicy> ParseOverflowPolicy(const std::string& name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "shed") return OverflowPolicy::kShed;
  if (name == "sample") return OverflowPolicy::kSample;
  return Status::InvalidArgument("--overflow must be block, shed, or sample");
}

int CmdSketch(const Flags& flags) {
  auto stream = LoadTrace(flags, "trace");
  if (!stream.ok()) return Fail(stream.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto params = SketchParamsFromFlags(flags);
  if (!params.ok()) return Fail(params.status());
  auto threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  auto batch = flags.GetInt("batch", 8192);
  if (!batch.ok()) return Fail(batch.status());
  auto push_timeout = flags.GetInt("push-timeout-ms", 0);
  if (!push_timeout.ok()) return Fail(push_timeout.status());
  if (*threads <= 0 || *batch <= 0 || *push_timeout < 0) {
    return Fail(Status::InvalidArgument(
        "--threads and --batch must be positive, --push-timeout-ms >= 0"));
  }
  auto overflow = ParseOverflowPolicy(flags.GetString("overflow", "block"));
  if (!overflow.ok()) return Fail(overflow.status());

  // Fault injection (for chaos drills and docs/ROBUSTNESS.md examples);
  // requires a build with STREAMFREQ_FAILPOINTS=ON to have any effect.
  ScopedFailpoints failpoints(flags.GetString("failpoints", ""),
                              params->seed);
  if (!failpoints.status().ok()) return Fail(failpoints.status());

  Result<CountSketch> sketch = Status::Internal("unset");
  IngestStats stats;
  if (*threads > 1) {
    // Parallel sharded ingestion: per-thread sketches from the same params
    // and seed, folded at the end — identical counters by linearity.
    IngestOptions opts;
    opts.threads = static_cast<size_t>(*threads);
    opts.batch_items = static_cast<size_t>(*batch);
    opts.push_timeout_ms = static_cast<uint64_t>(*push_timeout);
    opts.overflow_policy = *overflow;
    auto ingestor = ParallelIngestor<CountSketch>::Make(
        MakeSharedParamsFactory<CountSketch>(*params), opts);
    if (!ingestor.ok()) return Fail(ingestor.status());
    const Status ingest_status =
        (*ingestor)->Ingest(std::span<const ItemId>(*stream));
    sketch = (*ingestor)->Finish();
    stats = (*ingestor)->Stats();
    if (!ingest_status.ok()) return Fail(ingest_status);
  } else {
    sketch = CountSketch::Make(*params);
    if (sketch.ok()) {
      sketch->BatchAdd(std::span<const ItemId>(*stream));
      stats.items_ingested = stream->size();
    }
  }
  if (!sketch.ok()) return Fail(sketch.status());
  const Status s = WriteSketchFile(out, *sketch);
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << out << " (t=" << sketch->depth()
            << ", b=" << sketch->width() << ", "
            << sketch->SpaceBytes() / 1024 << " KiB of counters, ingested with "
            << *threads << " thread" << (*threads == 1 ? "" : "s") << ")\n";
  // Degraded-mode accounting: anyone consuming this sketch downstream
  // widens its accuracy bounds by exactly the dropped mass reported here.
  if (stats.DroppedItems() > 0 || stats.worker_respawns > 0 ||
      stats.deadline_misses > 0 || stats.publish_failures > 0) {
    std::cout << "DEGRADED ingest: dropped=" << stats.DroppedItems()
              << " (shed=" << stats.shed_items
              << ", sampled_away=" << stats.sampled_items_dropped
              << ", abandoned=" << stats.abandoned_items
              << "), deadline_misses=" << stats.deadline_misses
              << ", worker_respawns=" << stats.worker_respawns << "\n";
  }

  std::vector<JsonField> fields;
  fields.push_back(JsonField::Integer("depth",
                                      static_cast<int64_t>(sketch->depth())));
  fields.push_back(JsonField::Integer("width",
                                      static_cast<int64_t>(sketch->width())));
  fields.push_back(JsonField::Integer("threads", *threads));
  fields.push_back(JsonField::Integer(
      "items_offered", static_cast<int64_t>(stream->size())));
  fields.push_back(JsonField::Integer(
      "items_ingested", static_cast<int64_t>(stats.items_ingested)));
  fields.push_back(JsonField::Integer(
      "dropped_items", static_cast<int64_t>(stats.DroppedItems())));
  fields.push_back(JsonField::Integer(
      "shed_items", static_cast<int64_t>(stats.shed_items)));
  fields.push_back(JsonField::Integer(
      "sampled_items_dropped",
      static_cast<int64_t>(stats.sampled_items_dropped)));
  fields.push_back(JsonField::Integer(
      "abandoned_items", static_cast<int64_t>(stats.abandoned_items)));
  fields.push_back(JsonField::Integer(
      "deadline_misses", static_cast<int64_t>(stats.deadline_misses)));
  fields.push_back(JsonField::Integer(
      "worker_respawns", static_cast<int64_t>(stats.worker_respawns)));
  fields.push_back(JsonField::Integer(
      "publish_failures", static_cast<int64_t>(stats.publish_failures)));
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    const Status js = WriteJsonReport(json_path, "sketch", fields);
    if (!js.ok()) return Fail(js);
    std::cout << "(json: " << json_path << ")\n";
  }
  EmitJsonReport("sketch", fields, std::cout);
  return 0;
}

int CmdInspect(const Flags& flags) {
  const std::string path = flags.GetString("sketch", "");
  if (path.empty()) return Fail(Status::InvalidArgument("--sketch is required"));
  auto sketch = ReadSketchFile(path);
  if (!sketch.ok()) return Fail(sketch.status());
  std::cout << "depth (t):  " << sketch->depth() << "\n"
            << "width (b):  " << sketch->width() << "\n"
            << "seed:       " << sketch->seed() << "\n"
            << "family:     " << static_cast<int>(sketch->params().family)
            << "\n"
            << "estimator:  " << static_cast<int>(sketch->params().estimator)
            << "\n"
            << "space:      " << sketch->SpaceBytes() / 1024 << " KiB\n";
  return 0;
}

int CmdEstimate(const Flags& flags) {
  const std::string path = flags.GetString("sketch", "");
  if (path.empty()) return Fail(Status::InvalidArgument("--sketch is required"));
  if (!flags.Has("item")) return Fail(Status::InvalidArgument("--item is required"));
  auto item = flags.GetInt("item", 0);
  if (!item.ok()) return Fail(item.status());
  auto sketch = ReadSketchFile(path);
  if (!sketch.ok()) return Fail(sketch.status());
  std::cout << sketch->Estimate(static_cast<ItemId>(*item)) << "\n";
  return 0;
}

int CmdWords(const Flags& flags) {
  const std::string path = flags.GetString("text", "");
  if (path.empty()) return Fail(Status::InvalidArgument("--text is required"));
  auto params = SketchParamsFromFlags(flags);
  if (!params.ok()) return Fail(params.status());
  auto k = flags.GetInt("k", 10);
  if (!k.ok()) return Fail(k.status());
  auto min_length = flags.GetInt("min-length", 1);
  if (!min_length.ok()) return Fail(min_length.status());

  auto topk = StringTopK::Make(*params, static_cast<size_t>(2 * *k));
  if (!topk.ok()) return Fail(topk.status());

  TextReaderOptions options;
  options.min_token_length = static_cast<size_t>(*min_length);
  auto tokens = ForEachToken(path, options, [&](const std::string& token) {
    topk->Add(token);
  });
  if (!tokens.ok()) return Fail(tokens.status());

  std::cout << "processed " << *tokens << " tokens from " << path << "\n";
  TablePrinter table({"rank", "word", "estimate"});
  int rank = 0;
  for (const KeyCount& kc : topk->Candidates(static_cast<size_t>(*k))) {
    table.AddRowValues(++rank, kc.key, kc.count);
  }
  table.Print(std::cout);
  std::cout << "summary memory: " << topk->SpaceBytes() / 1024 << " KiB\n";
  return 0;
}

int CmdHeavyHitters(const Flags& flags) {
  auto stream = LoadTrace(flags, "trace");
  if (!stream.ok()) return Fail(stream.status());
  auto phi = flags.GetDouble("phi", 0.01);
  if (!phi.ok()) return Fail(phi.status());

  auto hh = PhiHeavyHitters::Make(*phi);
  if (!hh.ok()) return Fail(hh.status());
  for (ItemId q : *stream) hh->Add(q);

  TablePrinter table({"item", "count upper", "count lower", "status"});
  for (const PhiHeavyHitter& r : hh->Report()) {
    table.AddRowValues(r.item, r.count_upper, r.count_lower,
                       r.guaranteed ? "guaranteed" : "possible");
  }
  table.Print(std::cout);
  std::cout << "phi=" << *phi << " n=" << hh->StreamLength()
            << " threshold=" << *phi * static_cast<double>(hh->StreamLength())
            << " space=" << hh->SpaceBytes() / 1024 << "KiB\n";
  return 0;
}

int CmdVerify(const Flags& flags) {
  auto seed = flags.GetInt("seed", 42);
  auto iters = flags.GetInt("iters", 200);
  auto width_scale = flags.GetDouble("width-scale", 1.0);
  auto shrink = flags.GetBool("shrink", true);
  for (const Status& s :
       {seed.status(), iters.status(), width_scale.status(),
        shrink.status()}) {
    if (!s.ok()) return Fail(s);
  }
  if (*iters <= 0) {
    return Fail(Status::InvalidArgument("--iters must be positive"));
  }
  if (!(*width_scale > 0.0)) {
    return Fail(Status::InvalidArgument("--width-scale must be positive"));
  }

  FuzzOptions options;
  options.seed = static_cast<uint64_t>(*seed);
  options.iterations = static_cast<size_t>(*iters);
  options.algorithm_filter = flags.GetString("algo", "");
  options.width_scale = *width_scale;
  options.shrink = *shrink;
  const FuzzDriver driver(options);

  // Replay mode: one program line, full violation detail, no fuzzing.
  const std::string program_line = flags.GetString("program", "");
  if (!program_line.empty()) {
    auto program = ParseProgram(program_line);
    if (!program.ok()) return Fail(program.status());
    auto result = driver.RunProgram(*program);
    if (!result.ok()) return Fail(result.status());
    std::cout << "program: " << FormatProgram(*program) << "\n"
              << "checks run: " << result->checks << "\n";
    for (const Violation& v : result->violations) {
      std::cout << "VIOLATION " << FormatViolation(v) << "\n";
    }
    if (result->violations.empty()) {
      std::cout << "all guarantees hold\n";
      return 0;
    }
    return 1;
  }

  auto report = driver.Run();
  if (!report.ok()) return Fail(report.status());

  TablePrinter table({"algorithm", "checks", "violations"});
  for (const auto& [name, checks] : report->checks_by_algorithm) {
    const auto it = report->violations_by_algorithm.find(name);
    const size_t violations =
        it == report->violations_by_algorithm.end() ? 0 : it->second;
    table.AddRowValues(name, checks, violations);
  }
  EmitTable(table, "verify", std::cout);
  std::cout << "programs=" << report->programs << " checks=" << report->checks
            << " violations=" << report->violations << " seed=" << *seed
            << " width-scale=" << *width_scale << "\n";
  for (const FuzzFailure& failure : report->failures) {
    std::cout << "FAIL (" << failure.violations.size() << " violation"
              << (failure.violations.size() == 1 ? "" : "s") << "):\n";
    for (size_t i = 0; i < failure.violations.size() && i < 4; ++i) {
      std::cout << "  " << FormatViolation(failure.violations[i]) << "\n";
    }
    std::cout << "  replay: sfq verify --program \""
              << FormatProgram(failure.minimal) << "\"\n";
  }

  std::vector<JsonField> fields;
  fields.push_back(JsonField::Integer("seed", *seed));
  fields.push_back(
      JsonField::Integer("programs", static_cast<int64_t>(report->programs)));
  fields.push_back(
      JsonField::Integer("checks", static_cast<int64_t>(report->checks)));
  fields.push_back(JsonField::Integer(
      "violations", static_cast<int64_t>(report->violations)));
  fields.push_back(JsonField::Number("width_scale", *width_scale));
  for (const auto& [name, checks] : report->checks_by_algorithm) {
    fields.push_back(JsonField::Integer("checks." + name,
                                        static_cast<int64_t>(checks)));
  }
  for (const auto& [name, violations] : report->violations_by_algorithm) {
    fields.push_back(JsonField::Integer("violations." + name,
                                        static_cast<int64_t>(violations)));
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    const Status s = WriteJsonReport(json_path, "verify", fields);
    if (!s.ok()) return Fail(s);
    std::cout << "(json: " << json_path << ")\n";
  }
  EmitJsonReport("verify", fields, std::cout);
  return report->Pass() ? 0 : 1;
}

int CmdChaos(const Flags& flags) {
  auto seed = flags.GetInt("seed", 42);
  auto iters = flags.GetInt("iters", 200);
  auto io = flags.GetBool("io", true);
  auto server = flags.GetBool("server", false);
  auto restart = flags.GetBool("server-restart", false);
  auto tree = flags.GetBool("tree", false);
  for (const Status& s :
       {seed.status(), iters.status(), io.status(), server.status(),
        restart.status(), tree.status()}) {
    if (!s.ok()) return Fail(s);
  }
  if (*iters <= 0) {
    return Fail(Status::InvalidArgument("--iters must be positive"));
  }

  ChaosOptions options;
  options.seed = static_cast<uint64_t>(*seed);
  options.iterations = static_cast<uint64_t>(*iters);
  options.failpoints = flags.GetString("failpoints", "");
  options.exercise_io = *io;
  if (*restart) {
    // The campaign forks fresh `sfq serve` processes from this very image.
    std::error_code ec;
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) {
      return Fail(Status::IoError(
          "chaos: cannot resolve /proc/self/exe: " + ec.message()));
    }
    options.server_binary = self.string();
  }
  auto report = *restart ? RunServerRestartCampaign(options)
                : *server ? RunServerChaosCampaign(options)
                : *tree   ? RunTreeChaosCampaign(options)
                          : RunChaosCampaign(options);
  if (!report.ok()) return Fail(report.status());

  TablePrinter table({"metric", "value"});
  table.AddRowValues("iterations", report->iterations);
  table.AddRowValues("verified", report->verified);
  table.AddRowValues("clean errors", report->clean_errors);
  table.AddRowValues("guarantee failures", report->guarantee_failures);
  table.AddRowValues("fault fires", report->fault_fires);
  table.AddRowValues("faulted iterations", report->faulted_iterations);
  table.AddRowValues("worker respawns", report->worker_respawns);
  table.AddRowValues("dropped items", report->dropped_items);
  if (*restart) {
    table.AddRowValues("server requests", report->server_requests);
    table.AddRowValues("connection severs", report->server_severs);
    table.AddRowValues("server restarts", report->server_restarts);
    table.AddRowValues("process deaths", report->crash_kills);
    table.AddRowValues("recoveries", report->recoveries);
    table.AddRowValues("identity checks", report->identity_checks);
  } else if (*server) {
    table.AddRowValues("server requests", report->server_requests);
    table.AddRowValues("connection severs", report->server_severs);
    table.AddRowValues("stale serves", report->stale_serves);
  } else if (*tree) {
    table.AddRowValues("deltas shipped", report->deltas_shipped);
    table.AddRowValues("delta dedups", report->delta_dedups);
    table.AddRowValues("severed links", report->severed_links);
    table.AddRowValues("nodes lost", report->nodes_lost);
    table.AddRowValues("identity checks", report->identity_checks);
  } else {
    table.AddRowValues("io round trips", report->io_round_trips);
    table.AddRowValues("io faults", report->io_faults);
  }
  EmitTable(table, "chaos", std::cout);
  for (const ChaosFailure& failure : report->failures) {
    std::cout << "FAIL iteration " << failure.index << ": " << failure.detail
              << "\n  schedule: " << failure.schedule
              << "\n  replay: sfq chaos --seed " << *seed
              << " --iters " << (failure.index + 1)
              << (*restart ? " --server-restart true"
                  : *server ? " --server true"
                  : *tree   ? " --tree true" : "")
              << (options.failpoints.empty()
                      ? ""
                      : " --failpoints \"" + options.failpoints + "\"")
              << "\n  program: " << failure.program << "\n";
  }
  std::cout << (report->Passed() ? "CHAOS PASS" : "CHAOS FAIL") << ": "
            << report->verified << " verified + " << report->clean_errors
            << " clean errors / " << report->iterations << " iterations, "
            << report->fault_fires << " fault fires (seed=" << *seed
            << ")\n";

  std::vector<JsonField> fields;
  fields.push_back(JsonField::Integer("seed", *seed));
  fields.push_back(JsonField::Integer(
      "iterations", static_cast<int64_t>(report->iterations)));
  fields.push_back(JsonField::Integer(
      "verified", static_cast<int64_t>(report->verified)));
  fields.push_back(JsonField::Integer(
      "clean_errors", static_cast<int64_t>(report->clean_errors)));
  fields.push_back(JsonField::Integer(
      "guarantee_failures", static_cast<int64_t>(report->guarantee_failures)));
  fields.push_back(JsonField::Integer(
      "fault_fires", static_cast<int64_t>(report->fault_fires)));
  fields.push_back(JsonField::Integer(
      "faulted_iterations",
      static_cast<int64_t>(report->faulted_iterations)));
  fields.push_back(JsonField::Integer(
      "worker_respawns", static_cast<int64_t>(report->worker_respawns)));
  fields.push_back(JsonField::Integer(
      "dropped_items", static_cast<int64_t>(report->dropped_items)));
  fields.push_back(JsonField::Integer(
      "io_round_trips", static_cast<int64_t>(report->io_round_trips)));
  fields.push_back(JsonField::Integer(
      "io_faults", static_cast<int64_t>(report->io_faults)));
  if (*server || *restart) {
    fields.push_back(JsonField::Integer(
        "server_requests", static_cast<int64_t>(report->server_requests)));
    fields.push_back(JsonField::Integer(
        "server_severs", static_cast<int64_t>(report->server_severs)));
    fields.push_back(JsonField::Integer(
        "stale_serves", static_cast<int64_t>(report->stale_serves)));
  }
  if (*restart) {
    fields.push_back(JsonField::Integer(
        "server_restarts", static_cast<int64_t>(report->server_restarts)));
    fields.push_back(JsonField::Integer(
        "crash_kills", static_cast<int64_t>(report->crash_kills)));
    fields.push_back(JsonField::Integer(
        "recoveries", static_cast<int64_t>(report->recoveries)));
    fields.push_back(JsonField::Integer(
        "identity_checks", static_cast<int64_t>(report->identity_checks)));
  }
  if (*tree) {
    fields.push_back(JsonField::Integer(
        "deltas_shipped", static_cast<int64_t>(report->deltas_shipped)));
    fields.push_back(JsonField::Integer(
        "delta_dedups", static_cast<int64_t>(report->delta_dedups)));
    fields.push_back(JsonField::Integer(
        "severed_links", static_cast<int64_t>(report->severed_links)));
    fields.push_back(JsonField::Integer(
        "nodes_lost", static_cast<int64_t>(report->nodes_lost)));
    fields.push_back(JsonField::Integer(
        "identity_checks", static_cast<int64_t>(report->identity_checks)));
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    const Status s = WriteJsonReport(json_path, "chaos", fields);
    if (!s.ok()) return Fail(s);
    std::cout << "(json: " << json_path << ")\n";
  }
  EmitJsonReport("chaos", fields, std::cout);
  return report->Passed() ? 0 : 1;
}

int CmdAggregate(const Flags& flags) {
  AggregateOptions options;
  auto workers = flags.GetInt("workers", 4);
  auto fanout = flags.GetInt("fanout", 0);
  auto items = flags.GetInt("items", 200000);
  auto universe = flags.GetInt("m", 1 << 20);
  auto z = flags.GetDouble("z", 1.1);
  auto seed = flags.GetInt("seed", 42);
  auto delta_every = flags.GetInt("delta-every", 16384);
  auto tracked = flags.GetInt("tracked", 64);
  auto topk = flags.GetInt("k", 10);
  for (const Status& s :
       {workers.status(), fanout.status(), items.status(), universe.status(),
        z.status(), seed.status(), delta_every.status(), tracked.status(),
        topk.status()}) {
    if (!s.ok()) return Fail(s);
  }
  if (*workers <= 0 || *items < 0 || *universe <= 0 || *delta_every <= 0 ||
      *tracked <= 0 || *topk <= 0 || *fanout < 0) {
    return Fail(Status::InvalidArgument("aggregate: flags must be positive"));
  }
  options.workers = static_cast<uint64_t>(*workers);
  options.fanout = static_cast<uint64_t>(*fanout);
  options.items = static_cast<uint64_t>(*items);
  options.universe = static_cast<uint64_t>(*universe);
  options.zipf_z = *z;
  options.seed = static_cast<uint64_t>(*seed);
  options.delta_every = static_cast<uint64_t>(*delta_every);
  options.tracked = static_cast<size_t>(*tracked);
  options.topk = static_cast<size_t>(*topk);
  auto params = SketchParamsFromFlags(flags);
  if (!params.ok()) return Fail(params.status());
  options.params = *params;

  std::error_code ec;
  const std::filesystem::path socket_dir =
      std::filesystem::temp_directory_path(ec) /
      ("sfq_agg_" + std::to_string(::getpid()));
  if (ec) return Fail(Status::IoError("aggregate: no temp dir"));
  std::filesystem::create_directories(socket_dir, ec);
  if (ec) {
    return Fail(Status::IoError("aggregate: cannot create socket dir: " +
                                socket_dir.string()));
  }
  options.socket_dir = socket_dir.string();
  auto report = RunAggregate(options);
  std::filesystem::remove_all(socket_dir, ec);
  if (!report.ok()) return Fail(report.status());

  // Score the root's answers: the per-worker substreams are deterministic
  // in (seed, leaf), so the exact global counts are recomputable here.
  ExactCounter exact;
  for (uint64_t leaf = 0; leaf < report->leaves; ++leaf) {
    auto stream = WorkerStreamItems(options, leaf);
    if (!stream.ok()) return Fail(stream.status());
    for (const ItemId id : *stream) exact.Add(id);
  }

  TablePrinter table({"rank", "item", "root estimate", "exact"});
  int rank = 1;
  for (const ItemCount& entry : report->topk) {
    table.AddRowValues(rank++, entry.item, entry.count,
                       exact.CountOf(entry.item));
  }
  EmitTable(table, "aggregate", std::cout);

  uint64_t covered_total = 0;
  for (const CoverageEntry& c : report->covered) covered_total += c.count;
  std::cout << "aggregate: " << report->nodes << " nodes (" << report->leaves
            << " leaves, depth " << report->depth << "), ingested "
            << report->ledger.ingested << "/" << report->ledger.offered
            << " offered, " << report->deltas_applied
            << " deltas applied at the root (" << report->delta_dedups
            << " dedups)\n";

  std::vector<JsonField> fields;
  fields.push_back(JsonField::Integer("workers", *workers));
  fields.push_back(JsonField::Integer("fanout", *fanout));
  fields.push_back(JsonField::Integer(
      "nodes", static_cast<int64_t>(report->nodes)));
  fields.push_back(JsonField::Integer(
      "depth", static_cast<int64_t>(report->depth)));
  fields.push_back(JsonField::Integer(
      "offered", static_cast<int64_t>(report->ledger.offered)));
  fields.push_back(JsonField::Integer(
      "ingested", static_cast<int64_t>(report->ledger.ingested)));
  fields.push_back(JsonField::Integer(
      "covered", static_cast<int64_t>(covered_total)));
  fields.push_back(JsonField::Integer(
      "deltas_applied", static_cast<int64_t>(report->deltas_applied)));
  fields.push_back(JsonField::Integer(
      "delta_dedups", static_cast<int64_t>(report->delta_dedups)));
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    const Status s = WriteJsonReport(json_path, "aggregate", fields);
    if (!s.ok()) return Fail(s);
    std::cout << "(json: " << json_path << ")\n";
  }
  EmitJsonReport("aggregate", fields, std::cout);
  return 0;
}

int CmdServe(const Flags& flags) {
  const std::string socket = flags.GetString("socket", "");
  if (socket.empty()) {
    return Fail(Status::InvalidArgument("--socket is required"));
  }
  auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  auto snapshot_every = flags.GetInt("snapshot-every", 1 << 16);
  if (!snapshot_every.ok()) return Fail(snapshot_every.status());
  if (*snapshot_every < 0) {
    return Fail(Status::InvalidArgument("--snapshot-every must be >= 0"));
  }
  auto fsync = WalFsyncFromName(flags.GetString("fsync", "always"));
  if (!fsync.ok()) return Fail(fsync.status());
  // Optional fault drills: arm the server.* (and any other) sites for the
  // whole serving session, same spec grammar as `sfq chaos`. In the serve
  // binary — and only here — a `crash` action is a real process death
  // (std::_Exit at the site), which is what the kill-restart chaos
  // campaign leans on.
  FailpointRegistry::SetCrashKillsProcess(true);
  ScopedFailpoints failpoints(flags.GetString("failpoints", ""),
                              static_cast<uint64_t>(*seed));
  if (!failpoints.status().ok()) return Fail(failpoints.status());

  ServerOptions options;
  options.socket_path = socket;
  options.service.data_dir = flags.GetString("data-dir", "");
  options.service.fsync = *fsync;
  options.service.snapshot_every_items = static_cast<uint64_t>(*snapshot_every);
  auto server = SfqServer::Start(options);
  if (!server.ok()) return Fail(server.status());
  if (!options.service.data_dir.empty()) {
    std::cout << "sfq serve: durable under " << options.service.data_dir
              << " (fsync=" << WalFsyncName(*fsync) << ", "
              << (*server)->service().TenantCount()
              << " tenants recovered)\n";
    for (const auto& [name, detail] :
         (*server)->service().recovery_failures()) {
      std::cout << "sfq serve: RECOVERY FAILED for tenant " << name << ": "
                << detail << "\n";
    }
  }
  std::cout << "sfq serve: listening on " << socket << std::endl;
  (*server)->Wait();
  const ServerStats stats = (*server)->Stats();
  std::cout << "sfq serve: shut down after " << stats.requests
            << " requests over " << stats.connections_accepted
            << " connections (" << stats.protocol_errors
            << " protocol errors)\n";
  return 0;
}

int CmdClient(const Flags& flags) {
  const std::string socket = flags.GetString("socket", "");
  if (socket.empty()) {
    return Fail(Status::InvalidArgument("--socket is required"));
  }
  auto op = OpcodeFromName(flags.GetString("op", "ping"));
  if (!op.ok()) return Fail(op.status());
  const std::string tenant = flags.GetString("tenant", "");
  auto k = flags.GetInt("k", 10);
  auto item = flags.GetInt("item", 0);
  if (!k.ok()) return Fail(k.status());
  if (!item.ok()) return Fail(item.status());

  auto retries = flags.GetInt("retries", 0);
  auto backoff = flags.GetInt("backoff-ms", 50);
  if (!retries.ok()) return Fail(retries.status());
  if (!backoff.ok()) return Fail(backoff.status());
  if (*retries < 0 || *backoff < 0) {
    return Fail(Status::InvalidArgument(
        "--retries and --backoff-ms must be >= 0"));
  }
  RetryOptions retry;
  retry.retries = static_cast<uint32_t>(*retries);
  retry.backoff_ms = static_cast<uint64_t>(*backoff);
  auto retry_seed = flags.GetInt("seed", 1);
  if (retry_seed.ok()) retry.seed = static_cast<uint64_t>(*retry_seed);

  auto client = SfqClient::Connect(socket, retry);
  if (!client.ok()) return Fail(client.status());

  switch (*op) {
    case Opcode::kPing: {
      const Status status = client->Ping();
      if (!status.ok()) return Fail(status);
      std::cout << "PONG\n";
      return 0;
    }
    case Opcode::kCreateTenant: {
      TenantSpec spec;
      auto depth = flags.GetInt("depth", 0);
      auto width = flags.GetInt("width", 0);
      auto seed = flags.GetInt("seed", 1);
      auto threads = flags.GetInt("threads", 2);
      auto timeout = flags.GetInt("push-timeout-ms", 0);
      auto tracked = flags.GetInt("tracked", 64);
      for (const Status& s :
           {depth.status(), width.status(), seed.status(), threads.status(),
            timeout.status(), tracked.status()}) {
        if (!s.ok()) return Fail(s);
      }
      auto policy = PolicyFromName(flags.GetString("overflow", "block"));
      if (!policy.ok()) return Fail(policy.status());
      spec.depth = static_cast<uint64_t>(*depth);
      spec.width = static_cast<uint64_t>(*width);
      spec.seed = static_cast<uint64_t>(*seed);
      spec.threads = static_cast<uint64_t>(*threads);
      spec.push_timeout_ms = static_cast<uint64_t>(*timeout);
      spec.policy = *policy;
      spec.tracked = static_cast<uint64_t>(*tracked);
      const Status status = client->CreateTenant(tenant, spec);
      if (!status.ok()) return Fail(status);
      std::cout << "created tenant " << tenant << "\n";
      return 0;
    }
    case Opcode::kDropTenant: {
      const Status status = client->DropTenant(tenant);
      if (!status.ok()) return Fail(status);
      std::cout << "dropped tenant " << tenant << "\n";
      return 0;
    }
    case Opcode::kIngest: {
      auto stream = LoadTrace(flags, "trace");
      if (!stream.ok()) return Fail(stream.status());
      const Status status =
          client->Ingest(tenant, std::span<const ItemId>(*stream));
      if (!status.ok()) return Fail(status);
      std::cout << "ingested " << stream->size() << " items into " << tenant
                << "\n";
      return 0;
    }
    case Opcode::kSeal: {
      auto epoch = client->Seal(tenant);
      if (!epoch.ok()) return Fail(epoch.status());
      std::cout << "sealed " << tenant << " at epoch " << *epoch << "\n";
      return 0;
    }
    case Opcode::kTopK: {
      uint64_t epoch = 0;
      auto entries =
          client->TopK(tenant, static_cast<uint64_t>(*k), &epoch);
      if (!entries.ok()) return Fail(entries.status());
      std::cout << "top-" << *k << " of " << tenant << " (epoch " << epoch
                << "):\n";
      for (const ItemCount& entry : *entries) {
        std::cout << "  " << entry.item << "\t" << entry.count << "\n";
      }
      return 0;
    }
    case Opcode::kEstimate: {
      uint64_t epoch = 0;
      auto estimate = client->Estimate(
          tenant, static_cast<ItemId>(*item), &epoch);
      if (!estimate.ok()) return Fail(estimate.status());
      std::cout << *estimate << "\n";
      return 0;
    }
    case Opcode::kMarkEpoch: {
      auto epoch = client->MarkEpoch(tenant);
      if (!epoch.ok()) return Fail(epoch.status());
      std::cout << "marked " << tenant << " at epoch " << *epoch << "\n";
      return 0;
    }
    case Opcode::kMaxChange: {
      auto entries = client->MaxChange(tenant, static_cast<uint64_t>(*k));
      if (!entries.ok()) return Fail(entries.status());
      std::cout << "max-change top-" << *k << " of " << tenant << ":\n";
      for (const ItemCount& entry : *entries) {
        std::cout << "  " << entry.item << "\t" << entry.count << "\n";
      }
      return 0;
    }
    case Opcode::kExport: {
      const std::string out = flags.GetString("out", "");
      if (out.empty()) {
        return Fail(Status::InvalidArgument("--out is required for export"));
      }
      auto sketch = client->Export(tenant);
      if (!sketch.ok()) return Fail(sketch.status());
      const Status status = WriteSketchFile(out, *sketch);
      if (!status.ok()) return Fail(status);
      std::cout << "exported " << tenant << " to " << out << "\n";
      return 0;
    }
    case Opcode::kRecoveryInfo: {
      auto info = client->RecoveryInfo(tenant);
      if (!info.ok()) return Fail(info.status());
      std::cout << *info << "\n";
      return 0;
    }
    case Opcode::kStatsz: {
      auto statsz = client->Statsz();
      if (!statsz.ok()) return Fail(statsz.status());
      std::cout << *statsz << "\n";
      return 0;
    }
    case Opcode::kShutdown: {
      const Status status = client->Shutdown();
      if (!status.ok()) return Fail(status);
      std::cout << "server shutting down\n";
      return 0;
    }
  }
  return Fail(Status::InvalidArgument("unsupported --op"));
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty()) {
    PrintUsage();
    return 1;
  }
  const std::string& command = flags->positional()[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "topk") return CmdTopK(*flags);
  if (command == "suite") return CmdSuite(*flags);
  if (command == "maxchange") return CmdMaxChange(*flags);
  if (command == "sketch") return CmdSketch(*flags);
  if (command == "inspect") return CmdInspect(*flags);
  if (command == "estimate") return CmdEstimate(*flags);
  if (command == "words") return CmdWords(*flags);
  if (command == "hh") return CmdHeavyHitters(*flags);
  if (command == "verify") return CmdVerify(*flags);
  if (command == "chaos") return CmdChaos(*flags);
  if (command == "aggregate") return CmdAggregate(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "client") return CmdClient(*flags);
  PrintUsage();
  return Fail(Status::InvalidArgument("unknown command: " + command));
}

}  // namespace
}  // namespace streamfreq

int main(int argc, char** argv) { return streamfreq::Main(argc, argv); }
