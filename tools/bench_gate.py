#!/usr/bin/env python3
"""bench_gate: regression gate over the recorded benchmark trajectory.

Compares a freshly generated streamfreq-bench-v1 JSON (written by
`bench_throughput --json <path>`) against the committed baseline
(BENCH_throughput.json at the repo root) and fails when any entry's
items/second fell more than the budget (default 15%) below the baseline.
Run by `scripts/check.sh --bench`; the format is documented in
docs/PERFORMANCE.md.

Usage:
  bench_gate.py CANDIDATE BASELINE [--budget 0.15] [--update]

Semantics:
  * Both files must validate against the streamfreq-bench-v1 schema
    (schema marker, non-empty entries, unique names, positive finite
    items_per_second). A malformed file is an error, not a skip — a gate
    that silently accepts garbage is not a gate.
  * Every baseline entry must appear in the candidate (losing coverage is
    a failure); candidate-only entries are reported and allowed (new
    benchmarks land before their baseline).
  * Ratios are candidate/baseline per matching name. ratio < 1 - budget
    fails. Improvements are reported; use --update to promote the
    candidate to the new committed baseline after review.
  * scalar/simd pairs (names differing only in a trailing `scalar`/`simd`
    component) additionally get their speedup printed — the number
    docs/PERFORMANCE.md tracks.

Exit status: 0 = within budget, 1 = regression/coverage/schema failure,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys

SCHEMA = "streamfreq-bench-v1"


def fail(message: str) -> "sys.NoReturn":
    print(f"bench_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_trajectory(path: str) -> dict:
    """Loads and schema-validates one trajectory file."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(
            f"{path} does not exist; regenerate it with "
            "`scripts/check.sh --bench` (which runs the benchmark and "
            "appends via `bench_gate.py --update`), see docs/PERFORMANCE.md"
        )
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: unreadable or not JSON: {err}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        fail(f"{path}: missing schema marker '{SCHEMA}'")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        fail(f"{path}: 'entries' must be a non-empty list")
    seen = set()
    for entry in entries:
        if not isinstance(entry, dict):
            fail(f"{path}: entry is not an object: {entry!r}")
        name = entry.get("name")
        ips = entry.get("items_per_second")
        if not isinstance(name, str) or not name:
            fail(f"{path}: entry without a name: {entry!r}")
        if name in seen:
            fail(f"{path}: duplicate entry name '{name}'")
        seen.add(name)
        if (
            not isinstance(ips, (int, float))
            or isinstance(ips, bool)
            or not math.isfinite(ips)
            or ips <= 0
        ):
            fail(f"{path}: '{name}' has invalid items_per_second: {ips!r}")
    return doc


def by_name(doc: dict) -> dict:
    return {entry["name"]: entry["items_per_second"] for entry in doc["entries"]}


def human(rate: float) -> str:
    if rate >= 1e9:
        return f"{rate / 1e9:.2f}G/s"
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M/s"
    return f"{rate / 1e3:.1f}K/s"


def report_speedups(candidate: dict) -> None:
    """Prints simd-vs-scalar speedups for paired entry names."""
    rates = by_name(candidate)
    for name, rate in sorted(rates.items()):
        if "scalar" not in name:
            continue
        partner = name.replace("scalar", "simd")
        if partner in rates:
            print(
                f"bench_gate: speedup {partner}: "
                f"{rates[partner] / rate:.2f}x over scalar "
                f"({human(rate)} -> {human(rates[partner])})"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="freshly generated trajectory JSON")
    parser.add_argument("baseline", help="committed baseline trajectory JSON")
    parser.add_argument(
        "--budget",
        type=float,
        default=0.15,
        help="allowed fractional regression per entry (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="on success, copy the candidate over the baseline",
    )
    args = parser.parse_args()
    if not 0 < args.budget < 1:
        print("bench_gate: --budget must be in (0, 1)", file=sys.stderr)
        return 2

    candidate = load_trajectory(args.candidate)
    baseline = load_trajectory(args.baseline)
    cand = by_name(candidate)
    base = by_name(baseline)

    if candidate.get("simd_backend") != baseline.get("simd_backend"):
        print(
            f"bench_gate: note: backend changed "
            f"{baseline.get('simd_backend')} -> {candidate.get('simd_backend')}"
            " (numbers compare across different kernels)"
        )

    regressions = []
    for name, base_rate in sorted(base.items()):
        if name not in cand:
            fail(f"baseline entry '{name}' missing from candidate (coverage lost)")
        ratio = cand[name] / base_rate
        marker = ""
        if ratio < 1 - args.budget:
            regressions.append((name, ratio))
            marker = "  << REGRESSION"
        print(
            f"bench_gate: {name}: {human(base_rate)} -> {human(cand[name])} "
            f"({ratio:.2f}x){marker}"
        )
    for name in sorted(set(cand) - set(base)):
        print(f"bench_gate: new entry (no baseline yet): {name}")

    report_speedups(candidate)

    if regressions:
        for name, ratio in regressions:
            print(
                f"bench_gate: FAIL: {name} regressed to {ratio:.2f}x of "
                f"baseline (budget {1 - args.budget:.2f}x)",
                file=sys.stderr,
            )
        return 1

    if args.update:
        shutil.copyfile(args.candidate, args.baseline)
        print(f"bench_gate: baseline updated: {args.baseline}")
    print(f"bench_gate: OK ({len(base)} entries within {args.budget:.0%} budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
