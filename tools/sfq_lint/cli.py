"""sfq-lint v2 driver: per-file rules + whole-program passes.

Modes:
  python3 tools/sfq_lint.py [--root DIR]       lint the repository
  ... --check-file F --as PATH                 lint one file as if at PATH
  ... --files P1 P2 ...                        lint the listed repo-relative
                                               files + all repo-level passes
                                               (scripts/lint.sh --changed)
  ... --fixtures DIR                           fixture self-check
  ... --include-graph-root DIR                 run only the layer-DAG pass
                                               over DIR (DIR/layers.toml)
  ... --list-rules                             print the rule ids
  ... --json                                   one JSON object per finding
                                               (see docs/STATIC_ANALYSIS.md)

Exit status is 1 when any finding is reported, else 0, in every mode.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import hotpath, include_graph, locks, repo_rules
from .file_rules import CXX_EXTENSIONS, FileLinter
from .tokenizer import code_lines

RULE_IDS = [
    "row-seed",
    "raw-geometry",
    "nondet-random",
    "dropped-status",
    "raw-mutex",
    "unguarded-member",
    "concurrent-label",
    "nodiscard-decl",
    "failpoint-site",
    "server-opcode",
    "durable-write",
    "simd-ifdef",
    "layer-dag",
    "lock-order",
    "blocking-under-lock",
    "hot-path",
]

# Directories deliberately outside the normal scan: fixtures are broken on
# purpose, probes deliberately drop a Status to prove the compiler rejects it.
EXCLUDED_DIRS = ("tests/lint_fixtures", "tests/nodiscard_probes")

SCAN_SUBDIRS = ("src", "tools", "tests", "bench", "examples")


def _load_spec(root):
    return include_graph.load_layers(
        os.path.join(root, "tools", "layers.toml"), "tools/layers.toml")


def _read(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return text.splitlines(), code_lines(text)


def _per_file_findings(rel, raw, code, status_methods, failpoint_sites, spec):
    linter = FileLinter(rel, "", status_methods, failpoint_sites)
    linter.lines, linter.code = raw, code  # precomputed views

    findings = linter.run()
    if rel.endswith(CXX_EXTENSIONS):
        findings += hotpath.check_file(rel, raw, code)
        findings += include_graph.check_file_back_edges(rel, raw, code, spec)
    return findings


def lint_repo(root, only_files=None):
    """Full lint. `only_files` restricts the per-file rules (--files mode);
    the whole-program passes always see the complete tree."""
    status_methods = repo_rules.scan_status_methods(root)
    failpoint_sites = repo_rules.scan_failpoint_sites(root)
    spec, layer_findings = _load_spec(root)
    findings = []

    if only_files is not None:
        targets = []
        for rel in only_files:
            rel = rel.replace(os.sep, "/")
            if rel.startswith(EXCLUDED_DIRS) or not rel.startswith(
                tuple(s + "/" for s in SCAN_SUBDIRS)
            ):
                continue
            if rel.endswith(CXX_EXTENSIONS) and os.path.exists(
                os.path.join(root, rel)
            ):
                targets.append(rel)
    else:
        targets = []
        for sub in SCAN_SUBDIRS:
            for path in repo_rules.walk_files(
                os.path.join(root, sub), CXX_EXTENSIONS
            ):
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if not rel.startswith(EXCLUDED_DIRS):
                    targets.append(rel)

    lock_files = []
    for rel in targets:
        raw, code = _read(os.path.join(root, rel))
        findings += _per_file_findings(
            rel, raw, code, status_methods, failpoint_sites, spec)

    # The lock analyses always run over all of src/ — a cycle is a property
    # of the whole graph, not of the changed files.
    for path in repo_rules.walk_files(os.path.join(root, "src"),
                                      CXX_EXTENSIONS):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        raw, code = _read(path)
        lock_files.append((rel, raw, code))
    findings += locks.analyze(lock_files)

    findings += repo_rules.check_concurrent_label(
        os.path.join(root, "tests", "CMakeLists.txt"),
        os.path.join(root, "tests"),
        "tests/",
    )
    findings += repo_rules.check_server_opcode_registry(root)
    findings += repo_rules.check_nodiscard_decl(root)
    findings += include_graph.analyze(root, spec, layer_findings)
    return findings


def lint_one_file(root, file_path, pretend_path):
    """Single-file mode: per-file rules + the whole-program analyses scoped
    to this one file (so fixtures can exercise them)."""
    status_methods = repo_rules.scan_status_methods(root)
    failpoint_sites = repo_rules.scan_failpoint_sites(root)
    spec, _ = _load_spec(root)
    raw, code = _read(file_path)
    pretend = pretend_path.replace(os.sep, "/")
    findings = _per_file_findings(
        pretend, raw, code, status_methods, failpoint_sites, spec)
    if pretend.endswith(CXX_EXTENSIONS):
        findings += locks.analyze([(pretend, raw, code)])
    return findings


def run_fixtures(root, fixtures_dir):
    """Checks that every fixture fires exactly its declared findings.

    Each fixture file declares where it pretends to live and what must fire:
        // sfq-lint-path: src/core/broken.cc
        // sfq-lint-expect: row-seed
    A subdirectory with a CMakeLists.txt is a test-tree fixture for the
    concurrent-label rule; a subdirectory with a layers.toml is an
    include-graph fixture for the layer-dag rule (expectations live in
    `# sfq-lint-expect:` lines in the respective file). Exit status 0 means
    the linter behaved on every fixture -- both firing on what is broken
    and staying silent on everything else.
    """
    import re

    ok = True
    entries = sorted(os.listdir(fixtures_dir))
    for entry in entries:
        full = os.path.join(fixtures_dir, entry)
        if os.path.isdir(full) and os.path.exists(
            os.path.join(full, "layers.toml")
        ):
            with open(os.path.join(full, "layers.toml"),
                      encoding="utf-8") as f:
                text = f.read()
            expected = set(re.findall(r"#\s*sfq-lint-expect:\s*([\w-]+)",
                                      text))
            fired = {f.rule for f in lint_include_graph_root(full)}
        elif os.path.isdir(full) and os.path.exists(
            os.path.join(full, "CMakeLists.txt")
        ):
            with open(os.path.join(full, "CMakeLists.txt"),
                      encoding="utf-8") as f:
                text = f.read()
            expected = set(re.findall(r"#\s*sfq-lint-expect:\s*([\w-]+)",
                                      text))
            fired = {
                f.rule
                for f in repo_rules.check_concurrent_label(
                    os.path.join(full, "CMakeLists.txt"), full, entry + "/"
                )
            }
        elif entry.endswith(CXX_EXTENSIONS):
            with open(full, encoding="utf-8") as f:
                text = f.read()
            pretend = re.search(r"sfq-lint-path:\s*(\S+)", text)
            expected = set(re.findall(r"sfq-lint-expect:\s*([\w-]+)", text))
            if not pretend:
                print(f"FIXTURE ERROR {entry}: missing sfq-lint-path comment")
                ok = False
                continue
            fired = {
                f.rule for f in lint_one_file(root, full, pretend.group(1))
            }
        else:
            continue
        if fired == expected:
            print(f"fixture OK   {entry}: {sorted(fired) or ['(silent)']}")
        else:
            print(
                f"fixture FAIL {entry}: expected {sorted(expected)}, "
                f"got {sorted(fired)}"
            )
            ok = False
    return ok


def lint_include_graph_root(graph_root):
    """Layer-DAG pass only, over an arbitrary root (fixtures, tests)."""
    spec, layer_findings = include_graph.load_layers(
        os.path.join(graph_root, "layers.toml"), "layers.toml")
    return include_graph.analyze(graph_root, spec, layer_findings,
                                 toml_rel="layers.toml")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repository root")
    parser.add_argument("--check-file", help="lint a single file")
    parser.add_argument(
        "--as", dest="pretend", help="pretend path for --check-file"
    )
    parser.add_argument(
        "--files", nargs="*", default=None,
        help="repo-relative files for the per-file rules (--changed mode); "
        "whole-program passes still see the full tree",
    )
    parser.add_argument("--fixtures", help="run the fixture self-check")
    parser.add_argument(
        "--include-graph-root",
        help="run only the layer-DAG pass over this root (its layers.toml)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON object per finding instead of text",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join("sfq-" + r for r in RULE_IDS))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

    if args.fixtures:
        return 0 if run_fixtures(root, args.fixtures) else 1

    if args.include_graph_root:
        findings = lint_include_graph_root(args.include_graph_root)
    elif args.check_file:
        pretend = args.pretend or os.path.relpath(args.check_file, root)
        findings = lint_one_file(root, args.check_file, pretend)
    elif args.files is not None:
        findings = lint_repo(root, only_files=args.files)
    else:
        findings = lint_repo(root)

    if args.json:
        for f in findings:
            print(f.render_json())
        return 1 if findings else 0

    for f in findings:
        print(f.render())
    if findings:
        print(f"sfq-lint: {len(findings)} finding(s)")
        return 1
    print("sfq-lint: OK")
    return 0
