"""Lightweight C++ tokenizer: the lexical substrate under every sfq-lint rule.

sfq-lint v1 stripped comments and string contents with a per-line scanner
(`strip_code`), which meant block comments leaked into the "code" view and a
raw string containing `std::mutex` could fire raw-mutex. This module is a
small state machine over the whole translation unit that produces a *code
view* with the same shape as the source:

  * `//` line comments and `/* ... */` block comments are removed (block
    comments spanning lines leave the newlines in place, so line numbers in
    the code view always match the source);
  * string and character literals keep their delimiters but lose their
    contents (`"abc"` -> `""`), so rule regexes can still see "a string
    starts here" without matching inside it;
  * raw strings `R"tag(...)tag"` are recognized and blanked the same way,
    including multi-line bodies;
  * digit separators (`1'000'000`, `0xFFFF'FFFF`) are kept verbatim — they
    are part of a numeric token, not a character literal.

Rules operate on `code_lines(text)`; suppression comments (`NOLINT`) and
annotation comments (`sfq-hot-path`, `sfq-lint-path`) are read from the raw
lines, which are never modified.
"""

from __future__ import annotations

_HEX = set("0123456789abcdefABCDEF")


def strip_to_code(text: str) -> str:
    """Returns `text` with comments removed and literal contents blanked.

    Newlines are preserved exactly (including the ones inside block comments
    and raw strings), so `strip_to_code(t).splitlines()` lines up 1:1 with
    `t.splitlines()`.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        # -- comments ------------------------------------------------------
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2 if i < n else 0
            continue

        # -- raw strings ---------------------------------------------------
        if c == "R" and nxt == '"' and _is_raw_string_start(out):
            i += 2  # past R"
            delim_end = i
            while delim_end < n and text[delim_end] not in '(\n"\\':
                delim_end += 1
            if delim_end < n and text[delim_end] == "(":
                closer = ")" + text[i:delim_end] + '"'
                out.append('R"')
                i = delim_end + 1
                end = text.find(closer, i)
                if end == -1:
                    out.append("\n" * text.count("\n", i))
                    out.append('"')
                    return "".join(out)
                out.append("\n" * text.count("\n", i, end))
                out.append('"')
                i = end + len(closer)
                continue
            # `R"` not followed by a raw-string delimiter: fall through and
            # treat the quote as an ordinary string start.
            out.append("R")
            i -= 1  # reprocess the quote below
            c, nxt = '"', (text[i + 1] if i + 1 < n else "")

        # -- ordinary string literals -------------------------------------
        if c == '"':
            out.append('"')
            i += 1
            while i < n and text[i] not in '"\n':
                i += 2 if text[i] == "\\" else 1
            if i < n and text[i] == '"':
                out.append('"')
                i += 1
            continue

        # -- character literals vs digit separators ------------------------
        if c == "'":
            prev = out[-1][-1] if out and out[-1] else ""
            if prev in _HEX and i + 1 < n and text[i + 1] in _HEX:
                out.append("'")  # digit separator inside a numeric literal
                i += 1
                continue
            out.append("'")
            i += 1
            while i < n and text[i] not in "'\n":
                i += 2 if text[i] == "\\" else 1
            if i < n and text[i] == "'":
                out.append("'")
                i += 1
            continue

        out.append(c)
        i += 1
    return "".join(out)


def _is_raw_string_start(out: list[str]) -> bool:
    """True when a just-seen `R"` begins a raw string (not e.g. `STR"`)."""
    if not out:
        return True
    tail = out[-1]
    prev = tail[-1] if tail else ""
    # An identifier character before the R would make it part of another
    # identifier (FOO_R"..." is not a raw string; u8R/LR prefixes are rare
    # enough in this tree to ignore).
    return not (prev.isalnum() or prev == "_")


def code_lines(text: str) -> list[str]:
    """The comment-free, literal-blanked view of `text`, split into lines.

    Guaranteed to have exactly as many lines as `text.splitlines()`.
    """
    raw = text.splitlines()
    code = strip_to_code(text).splitlines()
    # Defensive: trailing-newline differences must never desynchronize the
    # views the rules index in parallel.
    while len(code) < len(raw):
        code.append("")
    return code[: len(raw)]
