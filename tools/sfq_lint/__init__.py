"""sfq-lint v2: streamfreq's whole-program domain-invariant checker.

Package layout:
  tokenizer.py      comment/string/raw-string-aware code view
  findings.py       Finding record + NOLINT-with-reason suppression
  file_rules.py     the 11 per-file rules (ported from v1)
  repo_rules.py     derived inputs + whole-tree v1 checks
  include_graph.py  include graph + layer-DAG enforcement (layer-dag)
  locks.py          lock-order cycles + blocking-under-lock
  hotpath.py        // sfq-hot-path purity enforcement
  cli.py            driver (modes, --json, fixture self-check)

`python3 tools/sfq_lint.py` remains the entry point (a thin shim), as does
`python3 -m sfq_lint` with tools/ on sys.path.
"""

from .cli import main  # noqa: F401
from .findings import Finding  # noqa: F401
