"""Lock-order and blocking-under-lock analyses (rules: lock-order,
blocking-under-lock).

The lock graph has a node per mutex (qualified as `Class::member` where the
owning class is known) and an edge A -> B whenever B is acquired while A is
held. Edges come from two sources:

  * **lexical nesting** — a `MutexLock` constructed inside the scope of
    another `MutexLock` in any function body under `src/`;
  * **declared order** — a `SFQ_ACQUIRED_AFTER(a)` annotation on a Mutex
    member `b` contributes the edge a -> b, so the documented protocol in
    headers (e.g. `SfqServer::stop_mu_` before `mu_`) is checked against
    the code even when the nesting lives in a file the scanner mis-parses.

Any cycle in that graph is a deadlock risk: two threads taking the locks
in opposite orders can each hold one and wait forever for the other.

The blocking-under-lock half walks the same lexical scopes in
`src/server/` and `src/concurrent/` and flags blocking syscalls
(read/write/accept/connect/poll/...), `PushWithTimeout`, and condition-
variable waits while a MutexLock is held — except a CondVar wait on
exactly the mutexes currently held's *own* mutex, which is the one
sanctioned blocking-under-lock pattern (the wait releases that mutex).

Both are lexical analyses: they see scopes, not data flow, which is
exactly the right fidelity for a lint — the annotated wrappers in
util/mutex.h make real lock usage lexical by construction.
"""

from __future__ import annotations

import re

from .findings import report_unless_suppressed
from .include_graph import _tarjan

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^)]+?)\s*\)")
ACQUIRED_AFTER_RE = re.compile(
    r"\bMutex\s+(\w+)\s+SFQ_ACQUIRED_AFTER\(\s*([^)]+?)\s*\)")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")
# A qualified method *definition* line: only declaration-looking characters
# may precede `Cls::Method(` (no `=`, `(`, `.`, `"` ...), which keeps call
# sites like `auto x = std::min(` from being mistaken for a method scope.
# The greedy prefix makes the capture the last qualifier before the name,
# so `void streamfreq::SfqServer::Stop()` yields SfqServer.
QUAL_FUNC_RE = re.compile(r"^[\w\s:<>*&\[\]]*\b([A-Za-z_]\w*)::~?\w+\s*\(")
MUTEX_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*(?:;|SFQ_)")
WAIT_RE = re.compile(r"(?:\.|->)\s*Wait(?:For)?\s*\(\s*([^,)]+?)\s*[,)]")
BLOCKING_RE = re.compile(
    r"(?<![\w.>])(?:::\s*)?(read|write|pread|pwrite|readv|writev|recv|"
    r"recvfrom|recvmsg|send|sendto|sendmsg|accept|accept4|connect|poll|"
    r"select)\s*\(")
PUSH_TIMEOUT_RE = re.compile(r"\bPushWithTimeout\s*\(")

BLOCKING_DIRS = ("src/server/", "src/concurrent/")


def scan_mutex_members(files):
    """member name -> sorted list of class names declaring `Mutex <name>`.

    `files` is an iterable of (relpath, raw_lines, code_lines). Used to
    qualify lock expressions like `tenant->mu` with their owning class.
    """
    members = {}
    for _, _, code in files:
        ctx = _ClassTracker()
        for line in code:
            cls = ctx.feed_and_current(line)
            m = MUTEX_MEMBER_RE.match(line)
            if m and cls:
                members.setdefault(m.group(1), set()).add(cls)
    return {k: sorted(v) for k, v in members.items()}


class _ClassTracker:
    """Minimal class/struct scope tracker over code lines."""

    def __init__(self):
        self.depth = 0
        self.stack = []  # (name, depth)
        self.pending = None

    def feed_and_current(self, line):
        """Processes one code line; returns the class context *during* it."""
        current = self.stack[-1][0] if self.stack else None
        m = CLASS_RE.search(line)
        if m and not re.search(r"\b(?:class|struct)\s+\w+\s*;", line):
            self.pending = m.group(1)
        for c in line:
            if c == "{":
                self.depth += 1
                if self.pending:
                    self.stack.append((self.pending, self.depth))
                    self.pending = None
            elif c == "}":
                if self.stack and self.stack[-1][1] == self.depth:
                    self.stack.pop()
                self.depth -= 1
            elif c == ";" and self.pending:
                self.pending = None  # forward declaration
        return current


class LockScanner:
    """Extracts lock-graph edges and blocking-under-lock findings from one
    file, by walking brace scopes with the held-lock stack."""

    def __init__(self, relpath, raw_lines, code, member_classes):
        self.path = relpath
        self.raw = raw_lines
        self.code = code
        self.members = member_classes
        self.check_blocking = relpath.startswith(BLOCKING_DIRS)
        # edge key (from, to) -> (path, 0-based line of the inner acquire)
        self.edges = {}
        self.findings = []

    def scan(self):
        depth = 0
        # context stack: (kind, name, depth) for every open brace
        ctx = []
        pending = None  # ('class'|'func', name)
        locks = []  # (node, scope_depth, line_idx)
        for idx, line in enumerate(self.code):
            events = []
            for pos, c in enumerate(line):
                if c in "{};":
                    events.append((pos, c, None))
            m = CLASS_RE.search(line)
            if m:
                events.append((m.start(), "class", m.group(1)))
            m = QUAL_FUNC_RE.search(line)
            if m:
                events.append((m.start(), "func", m.group(1)))
            for m in MUTEXLOCK_RE.finditer(line):
                events.append((m.start(), "lock", m.group(1)))
            for m in ACQUIRED_AFTER_RE.finditer(line):
                events.append((m.start(), "aa", m.groups()))
            if self.check_blocking:
                for m in WAIT_RE.finditer(line):
                    events.append((m.start(), "wait", m.group(1)))
                for m in BLOCKING_RE.finditer(line):
                    events.append((m.start(), "block", m.group(1)))
                for m in PUSH_TIMEOUT_RE.finditer(line):
                    events.append((m.start(), "block", "PushWithTimeout"))
            events.sort(key=lambda e: e[0])

            for pos, kind, payload in events:
                if kind == "{":
                    depth += 1
                    ctx.append((pending[0], pending[1], depth) if pending
                               else ("block", None, depth))
                    pending = None
                elif kind == "}":
                    if ctx and ctx[-1][2] == depth:
                        ctx.pop()
                    depth -= 1
                    while locks and locks[-1][1] > depth:
                        locks.pop()
                elif kind == ";":
                    pending = None  # `Cls x;` / `class Fwd;` open no scope
                elif kind == "class":
                    pending = ("class", payload)
                elif kind == "func":
                    if pending is None:  # class decl wins over Cls::Method
                        pending = ("func", payload)
                elif kind == "lock":
                    node = self._node(payload, ctx)
                    for held, _, _ in locks:
                        if held != node:
                            self.edges.setdefault(
                                (held, node), (self.path, idx))
                    locks.append((node, depth, idx))
                elif kind == "aa":
                    member, after = payload
                    cls = _enclosing(ctx, "class")
                    lo = self._node(after, ctx)
                    hi = f"{cls}::{member}" if cls else member
                    self.edges.setdefault((lo, hi), (self.path, idx))
                elif kind == "wait":
                    waited = self._node(payload, ctx)
                    others = [n for n, _, _ in locks if n != waited]
                    if others:
                        report_unless_suppressed(
                            self.findings, self.raw, self.path, idx,
                            "blocking-under-lock",
                            f"condition-variable wait on {waited} while "
                            f"also holding {', '.join(others)}: the wait "
                            "releases only its own mutex, so the others "
                            "stay held for an unbounded time.")
                elif kind == "block" and locks:
                    held = ", ".join(n for n, _, _ in locks)
                    report_unless_suppressed(
                        self.findings, self.raw, self.path, idx,
                        "blocking-under-lock",
                        f"blocking call {payload}() while holding {held}; "
                        "move the I/O outside the critical section (copy "
                        "the data out under the lock, then block).")
        return self.edges, self.findings

    def _node(self, expr, ctx):
        """Canonical lock-graph node name for a lock expression."""
        e = re.sub(r"\s+", "", expr).replace("this->", "").lstrip("&*")
        e = e.replace("->", ".")
        if "." in e:
            member = e.rsplit(".", 1)[1]
            owners = self.members.get(member, [])
            if len(owners) == 1:
                return f"{owners[0]}::{member}"
            return e
        cls = _enclosing(ctx, "class") or _enclosing(ctx, "func")
        owners = self.members.get(e, [])
        if cls and (cls in owners or e.endswith("_")):
            return f"{cls}::{e}"
        if len(owners) == 1:
            return f"{owners[0]}::{e}"
        return e


def _enclosing(ctx, kind):
    for k, name, _ in reversed(ctx):
        if k == kind:
            return name
    return None


def analyze(files, texts=None):
    """Runs both lock analyses over `files` [(relpath, raw, code)].

    Returns [Finding]. `texts` maps relpath -> raw_lines for suppression
    lookup at cycle-anchor sites (defaults to the raw lines in `files`).
    """
    texts = texts or {rel: raw for rel, raw, _ in files}
    member_classes = scan_mutex_members(files)
    edges = {}
    findings = []
    for rel, raw, code in files:
        if not rel.endswith((".h", ".cc", ".cpp", ".hpp")):
            continue
        file_edges, file_findings = LockScanner(
            rel, raw, code, member_classes).scan()
        findings += file_findings
        for key, site in file_edges.items():
            edges.setdefault(key, site)

    adj = {}
    for (a, b), _ in edges.items():
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    adj = {k: sorted(v) for k, v in adj.items()}
    for scc in _tarjan(adj):
        if len(scc) == 1 and scc[0] not in adj.get(scc[0], []):
            continue
        cycle = _order_cycle(adj, scc)
        sites = []
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            site = edges.get((node, nxt))
            if site:
                sites.append(f"{site[0]}:{site[1] + 1}")
        first_edge = (cycle[0], cycle[1 % len(cycle)])
        anchor_path, anchor_idx = edges.get(first_edge, sites and (
            sites[0].rsplit(":", 1)[0], int(sites[0].rsplit(":", 1)[1]) - 1
        ) or (files[0][0], 0))
        report_unless_suppressed(
            findings, texts.get(anchor_path, []), anchor_path, anchor_idx,
            "lock-order",
            "lock-order cycle (deadlock risk): "
            + " -> ".join(cycle) + " -> " + cycle[0]
            + "; acquisition sites: " + ", ".join(sites)
            + ". Pick one global order (document it with "
            "SFQ_ACQUIRED_AFTER) and restructure the outlier.")
    return findings


def _order_cycle(adj, scc):
    """Deterministic cycle node order through the SCC's smallest node."""
    start = min(scc)
    in_scc = set(scc)
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        for nxt in sorted(adj.get(node, []), reverse=True):
            if nxt == start:
                return path
            if nxt in in_scc and nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return sorted(scc)
