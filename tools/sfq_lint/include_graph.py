"""Include-graph builder + layer-DAG enforcement (rule: layer-dag).

The intended architecture is declared once, in `tools/layers.toml`, as an
ordered list of layers, lowest first; each layer owns one or more directory
prefixes. Two whole-program invariants are enforced over the `#include ""`
graph of those directories:

  * **no back-edges** — a file may only include files in its own layer or a
    lower one. The finding is anchored at the offending include line, so
    the usual NOLINT(sfq-layer-dag) protocol applies to it.
  * **no include cycles** — any strongly connected component in the
    file-level graph is reported with one concrete cycle path
    (`a.h -> b.h -> a.h`), anchored at the include in the lexicographically
    smallest file of the cycle.

Only quoted includes are considered (system `<...>` includes are outside
the architecture); a quoted target is resolved against the repository
`src/` root, matching the tree's `#include "server/protocol.h"` idiom.
Layer classification is purely textual (directory prefixes), so the
back-edge half also works in single-file / fixture mode where the include
target does not exist on disk.
"""

from __future__ import annotations

import os
import re

from .findings import Finding, report_unless_suppressed
from .tokenizer import code_lines

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
# The code view blanks literal contents (`#include ""`), so live-ness of an
# include line is checked against this prefix only.
INCLUDE_CODE_RE = re.compile(r'^\s*#\s*include\s*"')

LAYERS_SCHEMA = "sfq-layers-v1"


class LayerSpec:
    """The ordered layer list parsed from layers.toml."""

    def __init__(self, names, dir_map):
        self.names = names  # ordered, lowest layer first
        self._rank = {n: i for i, n in enumerate(names)}
        # dir prefix (no trailing slash) -> layer name; longest prefix wins.
        self._dirs = sorted(dir_map.items(), key=lambda kv: -len(kv[0]))

    def layer_of(self, relpath):
        """Layer name owning `relpath`, or None if unclassified."""
        for prefix, name in self._dirs:
            if relpath == prefix or relpath.startswith(prefix + "/"):
                return name
        return None

    def rank(self, layer_name):
        return self._rank[layer_name]


def load_layers(toml_path, rel_toml_path):
    """Parses layers.toml. Returns (LayerSpec|None, [Finding])."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python < 3.11
        return None, []  # cannot parse; disable the rule rather than lie
    try:
        with open(toml_path, "rb") as f:
            data = tomllib.load(f)
    except OSError:
        return None, [Finding(
            rel_toml_path, 1, "layer-dag",
            "tools/layers.toml is missing: the layer-DAG has nothing to "
            "enforce. Restore the declared architecture (see "
            "docs/STATIC_ANALYSIS.md).")]
    except tomllib.TOMLDecodeError as err:
        return None, [Finding(
            rel_toml_path, 1, "layer-dag",
            f"layers.toml does not parse: {err}")]
    if data.get("schema") != LAYERS_SCHEMA:
        return None, [Finding(
            rel_toml_path, 1, "layer-dag",
            f"layers.toml schema is {data.get('schema')!r}; expected "
            f"{LAYERS_SCHEMA!r}.")]
    names, dir_map = [], {}
    for layer in data.get("layer", []):
        name = layer.get("name")
        dirs = layer.get("dirs")
        if not name or not isinstance(dirs, list) or not dirs:
            return None, [Finding(
                rel_toml_path, 1, "layer-dag",
                "every [[layer]] needs a `name` and a non-empty `dirs` "
                "list.")]
        names.append(name)
        for d in dirs:
            dir_map[d.rstrip("/")] = name
    if len(names) < 2:
        return None, [Finding(
            rel_toml_path, 1, "layer-dag",
            "layers.toml declares fewer than two layers; the DAG is "
            "vacuous.")]
    return LayerSpec(names, dir_map), []


def classify_include(target):
    """Repo-relative path an include target is judged as (textual)."""
    if target.startswith(("src/", "tools/", "tests/", "bench/")):
        return target
    return "src/" + target


def file_includes(raw_lines, code):
    """Yields (0-based line idx, target) for real quoted includes.

    The raw line carries the target (the code view blanks string contents);
    the code view proves the line is live code, not a comment.
    """
    for idx, raw in enumerate(raw_lines):
        m = INCLUDE_RE.match(raw)
        if m and INCLUDE_CODE_RE.match(code[idx] if idx < len(code) else ""):
            yield idx, m.group(1)


def check_file_back_edges(relpath, raw_lines, code, spec):
    """Back-edge findings for one file (also used by fixture mode)."""
    findings = []
    if spec is None or not relpath.endswith(CXX_EXTENSIONS):
        return findings
    from_layer = spec.layer_of(relpath)
    if from_layer is None:
        return findings
    for idx, target in file_includes(raw_lines, code):
        to_layer = spec.layer_of(classify_include(target))
        if to_layer is None or to_layer == from_layer:
            continue
        if spec.rank(to_layer) > spec.rank(from_layer):
            report_unless_suppressed(
                findings, raw_lines, relpath, idx, "layer-dag",
                f'include of "{target}" is a layer back-edge: '
                f"{from_layer} -> {to_layer}, but the declared order in "
                f"tools/layers.toml is {' -> '.join(spec.names)}. Move the "
                "dependency down a layer or invert it behind an interface.")
    return findings


def analyze(root, spec, layer_findings, toml_rel="tools/layers.toml"):
    """Runs both layer-DAG halves over the tree. Returns [Finding]."""
    findings = list(layer_findings)
    if spec is None:
        return findings

    # file -> (raw_lines, code_lines); edges: file -> [(idx, resolved)]
    texts = {}
    edges = {}
    scan_dirs = sorted({prefix for prefix, _ in spec._dirs})
    for top in scan_dirs:
        for path in _walk(os.path.join(root, top)):
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            try:
                with open(path, encoding="utf-8") as f:
                    text = f.read()
            except OSError:
                continue
            raw = text.splitlines()
            code = code_lines(text)
            texts[rel] = (raw, code)
            findings += check_file_back_edges(rel, raw, code, spec)
            edges[rel] = []
            for idx, target in file_includes(raw, code):
                resolved = classify_include(target)
                if os.path.exists(os.path.join(root, resolved)):
                    edges[rel].append((idx, resolved))

    findings += _cycle_findings(edges, texts)
    return findings


def _walk(top):
    for dirpath, _, names in os.walk(top):
        for name in sorted(names):
            if name.endswith(CXX_EXTENSIONS):
                yield os.path.join(dirpath, name)


def _cycle_findings(edges, texts):
    """One finding per include SCC, with a concrete cycle path."""
    adj = {f: sorted(t for _, t in targets if t in edges)
           for f, targets in edges.items()}
    findings = []
    for scc in _tarjan(adj):
        if len(scc) == 1 and scc[0] not in adj.get(scc[0], []):
            continue
        start = min(scc)
        path = _cycle_path(adj, set(scc), start)
        anchor_idx = 0
        raw = texts.get(start, ([], []))[0]
        next_hop = path[1] if len(path) > 1 else start
        for idx, target in edges.get(start, []):
            if target == next_hop:
                anchor_idx = idx
                break
        report_unless_suppressed(
            findings, raw, start, anchor_idx, "layer-dag",
            "include cycle: " + " -> ".join(path) + " -> " + start +
            ". Break it with a forward declaration or by extracting the "
            "shared piece into a lower layer.")
    return findings


def _cycle_path(adj, scc, start):
    """Deterministic cycle through `start` inside its SCC."""
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        for nxt in sorted(adj.get(node, []), reverse=True):
            if nxt == start and len(path) >= 1 and (len(path) > 1 or
                                                    nxt in adj.get(node, [])):
                return path
            if nxt in scc and nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return [start]


def _tarjan(adj):
    """Iterative Tarjan SCC; deterministic (sorted roots and neighbors)."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root_node in sorted(adj):
        if root_node in index:
            continue
        work = [(root_node, iter(sorted(adj.get(root_node, []))))]
        index[root_node] = low[root_node] = counter[0]
        counter[0] += 1
        stack.append(root_node)
        on_stack.add(root_node)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in adj:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, [])))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))
    return sccs
