"""Repo-level rules: derived rule inputs plus the whole-tree v1 checks.

These are ported from sfq-lint v1 unchanged: the Status-method scan that
feeds dropped-status, the failpoint site tables, the concurrent-label check
over tests/CMakeLists.txt, the server opcode registry audit, and the
nodiscard-decl disarmament check.
"""

from __future__ import annotations

import os
import re

from .findings import Finding


def walk_files(top, extensions):
    for dirpath, _, names in os.walk(top):
        for name in sorted(names):
            if name.endswith(extensions):
                yield os.path.join(dirpath, name)


def scan_status_methods(root):
    """Derives the set of Status-returning method names from src/ headers."""
    methods = set()
    decl = re.compile(
        r"(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+)?Status\s+([A-Z]\w*)\s*\("
    )
    for path in walk_files(os.path.join(root, "src"), (".h",)):
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = decl.search(line)
                # `static Status Foo(` lines in status.h are Status's own
                # factories, not fallible operations.
                if m and "static Status" not in line:
                    methods.add(m.group(1))
    return methods


def scan_failpoint_sites(root):
    """Returns (registered, documented) failpoint site-name sets.

    Registered sites come from the BuildKnownSites() table in
    src/util/failpoint.cc; documented sites are the backtick-quoted
    `component.site` tokens in docs/ROBUSTNESS.md. Either set is empty when
    its source file is missing, which disables that half of the rule rather
    than flagging every planted site.
    """
    site_re = re.compile(r'"([a-z_]+\.[a-z_]+)"')
    registered = set()
    try:
        with open(
            os.path.join(root, "src", "util", "failpoint.cc"), encoding="utf-8"
        ) as f:
            m = re.search(r"BuildKnownSites\(\)\s*\{(.*?)\};", f.read(), re.S)
            if m:
                registered = set(site_re.findall(m.group(1)))
    except OSError:
        pass
    documented = set()
    try:
        with open(
            os.path.join(root, "docs", "ROBUSTNESS.md"), encoding="utf-8"
        ) as f:
            documented = set(re.findall(r"`([a-z_]+\.[a-z_]+)`", f.read()))
    except OSError:
        pass
    return frozenset(registered), frozenset(documented)


def check_concurrent_label(cmake_path, src_dir, relprefix):
    """Tests using src/concurrent/ must carry the `concurrent` ctest label."""
    findings = []
    try:
        with open(cmake_path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return findings
    m = re.search(r"set\(STREAMFREQ_TESTS\s*(.*?)\)", text, re.S)
    if not m:
        return findings
    tests = re.findall(r"[\w-]+", m.group(1))
    labelled = set()
    for props in re.finditer(r"set_tests_properties\((.*?)\)", text, re.S):
        body = props.group(1)
        if re.search(r"LABELS\s+\S*concurrent", body):
            labelled.update(re.findall(r"[\w-]+", body.split("PROPERTIES")[0]))
    for test in tests:
        src = os.path.join(src_dir, test + ".cc")
        if not os.path.exists(src):
            continue
        with open(src, encoding="utf-8") as f:
            uses_concurrent = '#include "concurrent/' in f.read()
        if uses_concurrent and test not in labelled:
            line = 1 + text[: text.find(test)].count("\n")
            findings.append(
                Finding(
                    relprefix + "CMakeLists.txt",
                    line,
                    "concurrent-label",
                    f"{test} exercises src/concurrent/ but lacks the "
                    "`concurrent` ctest label, so the TSan step "
                    "(ctest -L concurrent) never runs it.",
                )
            )
    return findings


def check_server_opcode_registry(root):
    """kOpcodeTable must cover the Opcode enum exactly, kOpcodeCount too.

    The wire protocol's invariants (dense opcodes, name round-trips, the
    per-opcode corruption matrix) all quantify over OpcodeTable(); an
    enumerator missing from the table would decode via the enum but
    dispatch nowhere, and a stale kOpcodeCount silently truncates the
    registry span. Both files absent disables the rule (pre-server trees).
    """
    findings = []
    header = os.path.join(root, "src", "server", "protocol.h")
    source = os.path.join(root, "src", "server", "protocol.cc")
    try:
        with open(header, encoding="utf-8") as f:
            header_text = f.read()
        with open(source, encoding="utf-8") as f:
            source_text = f.read()
    except OSError:
        return findings

    enum_match = re.search(
        r"enum\s+class\s+Opcode[^{]*\{(.*?)\};", header_text, re.S
    )
    table_match = re.search(
        r"kOpcodeTable\s*\[[^\]]*\]\s*=\s*\{(.*?)\};", source_text, re.S
    )
    count_match = re.search(r"kOpcodeCount\s*=\s*(\d+)", header_text)
    if not enum_match:
        findings.append(
            Finding("src/server/protocol.h", 1, "server-opcode",
                    "cannot find the `enum class Opcode` definition the "
                    "opcode-registry check quantifies over."))
        return findings
    if not table_match:
        findings.append(
            Finding("src/server/protocol.cc", 1, "server-opcode",
                    "cannot find the kOpcodeTable registry the wire "
                    "protocol dispatches through."))
        return findings

    enumerators = re.findall(r"\b(k[A-Z]\w*)\s*=\s*\d+", enum_match.group(1))
    table_rows = re.findall(r"Opcode\s*::\s*(k[A-Z]\w*)", table_match.group(1))
    enum_line = 1 + header_text[: enum_match.start()].count("\n")
    table_line = 1 + source_text[: table_match.start()].count("\n")

    for name in sorted(set(enumerators) - set(table_rows)):
        findings.append(
            Finding("src/server/protocol.cc", table_line, "server-opcode",
                    f"Opcode::{name} is declared in protocol.h but has no "
                    "kOpcodeTable row: it would decode and then dispatch "
                    "nowhere. Register it (name + needs_tenant)."))
    for name in sorted(set(table_rows) - set(enumerators)):
        findings.append(
            Finding("src/server/protocol.cc", table_line, "server-opcode",
                    f"kOpcodeTable row Opcode::{name} has no matching "
                    "enumerator in protocol.h."))
    seen = set()
    for name in table_rows:
        if name in seen:
            findings.append(
                Finding("src/server/protocol.cc", table_line, "server-opcode",
                        f"kOpcodeTable registers Opcode::{name} twice; "
                        "LookupOpcode/OpcodeName take the first hit and the "
                        "duplicate row is dead."))
        seen.add(name)
    if count_match and int(count_match.group(1)) != len(enumerators):
        findings.append(
            Finding("src/server/protocol.h", enum_line, "server-opcode",
                    f"kOpcodeCount = {count_match.group(1)} but the enum "
                    f"declares {len(enumerators)} opcodes; the registry "
                    "span and the dense-range checks are sized wrong."))
    return findings


def check_nodiscard_decl(root):
    """The enforcement layer must not be quietly disarmed."""
    findings = []
    wanted = [
        ("src/util/status.h", r"class \[\[nodiscard\]\] Status",
         "Status lost its class-level [[nodiscard]]: dropped errors compile "
         "clean again."),
        ("src/util/result.h", r"class \[\[nodiscard\]\] Result",
         "Result lost its class-level [[nodiscard]]: dropped values/errors "
         "compile clean again."),
        ("src/util/macros.h", r"#define SFQ_GUARDED_BY\(",
         "the SFQ_GUARDED_BY annotation macro is gone: the thread-safety "
         "analysis has nothing to check."),
    ]
    for rel, pattern, message in wanted:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            text = ""
        if not re.search(pattern, text):
            findings.append(Finding(rel, 1, "nodiscard-decl", message))
    return findings
