"""Hot-path purity analysis (rule: hot-path).

A function annotated with `// sfq-hot-path` on the line(s) above its
signature is declared allocation- and exception-free: it runs per batch in
the ingest inner loop, where the SIMD wins recorded in
BENCH_throughput.json live or die by the loop staying malloc- and
branch-miss-free (the DataSketches speed study attributes most of its
throughput to exactly this). Inside the annotated body these are errors:

  * `new` / `make_unique` / `make_shared`,
  * C allocators (`malloc`, `calloc`, `realloc`, `aligned_alloc`, ...),
  * growing container calls (`push_back`, `emplace_back`, `resize`,
    `reserve`, `insert`, `append`, `emplace`),
  * `throw`,
  * `Status`-allocating factories (`Status::InvalidArgument(...)` etc. —
    everything but `Status::OK()` builds a message string).

The annotation is enforcement, not documentation: adding an allocation to
a `// sfq-hot-path` function fails lint even though it would sail through
the perf gate on a machine where the regression hides in run-to-run noise.
"""

from __future__ import annotations

import re

from .findings import report_unless_suppressed

ANNOTATION_RE = re.compile(r"//\s*sfq-hot-path\b")

# How far below the annotation the function's opening brace may sit
# (signatures wrap, but not indefinitely).
MAX_SIGNATURE_SPAN = 15

BANNED = [
    (re.compile(r"\bnew\b"), "operator new allocates"),
    (re.compile(
        r"\b(?:malloc|calloc|realloc|aligned_alloc|strdup|posix_memalign)"
        r"\s*\("),
     "C allocator call"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "heap allocation"),
    (re.compile(
        r"(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve|insert|"
        r"append|emplace)\s*\("),
     "growing container call (may reallocate)"),
    (re.compile(r"\bthrow\b"), "throw unwinds the hot loop"),
    (re.compile(r"\bStatus\s*::\s*(?!OK\b)[A-Z]\w*\s*\("),
     "Status factory allocates its message"),
]


def check_file(relpath, raw_lines, code):
    """Hot-path findings for one file. Returns [Finding]."""
    findings = []
    idx = 0
    n = len(code)
    while idx < n:
        if not ANNOTATION_RE.search(raw_lines[idx]):
            idx += 1
            continue
        open_idx = _find_open_brace(code, idx)
        if open_idx is None:
            report_unless_suppressed(
                findings, raw_lines, relpath, idx, "hot-path",
                "// sfq-hot-path annotation with no function body within "
                f"{MAX_SIGNATURE_SPAN} lines; attach it directly above the "
                "function it constrains.")
            idx += 1
            continue
        end_idx = _find_close(code, open_idx)
        for body_idx in range(open_idx, end_idx + 1):
            line = code[body_idx]
            for pat, why in BANNED:
                m = pat.search(line)
                if m:
                    report_unless_suppressed(
                        findings, raw_lines, relpath, body_idx, "hot-path",
                        f"'{m.group(0).strip()}' inside a // sfq-hot-path "
                        f"function: {why}. The ingest inner loop must stay "
                        "allocation- and exception-free (see "
                        "docs/PERFORMANCE.md); hoist the allocation out or "
                        "use a fixed stack buffer.")
        idx = end_idx + 1
    return findings


def _find_open_brace(code, start):
    """Line index of the function's opening `{`, or None."""
    for idx in range(start, min(start + MAX_SIGNATURE_SPAN, len(code))):
        line = code[idx]
        if ";" in line.split("{")[0]:
            return None  # a declaration ended before any body opened
        if "{" in line:
            return idx
    return None


def _find_close(code, open_idx):
    """Line index of the matching closing brace (inclusive)."""
    depth = 0
    for idx in range(open_idx, len(code)):
        depth += code[idx].count("{") - code[idx].count("}")
        if depth <= 0:
            return idx
    return len(code) - 1
