"""Per-file rules: the 11 v1 rules ported onto the tokenizer, plus durable-write.

Behavior is intentionally identical to the v1 single-file linter on the
fixture corpus (proven by `--fixtures` and lint_selfcheck_test); the only
difference is the lexical substrate — rules now see a comment-free,
literal-blanked code view from sfq_lint.tokenizer instead of the fragile
per-line `strip_code`, so block comments and raw strings can no longer
produce phantom findings.
"""

from __future__ import annotations

import os
import re

from .findings import Finding, report_unless_suppressed
from .tokenizer import code_lines

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Member types that need no lock: atomics, the synchronization primitives
# themselves, joined-thread handles, and internally-synchronized classes.
THREADSAFE_TYPE_PREFIXES = (
    "std::atomic",
    "Mutex",
    "CondVar",
    "std::thread",
    "std::vector<std::thread>",
    "BatchQueue",
    "SnapshotCell",
)


class FileLinter:
    """Runs the per-file rules on one file at a (possibly pretend) path."""

    def __init__(self, relpath, text, status_methods, failpoint_sites=None):
        self.path = relpath.replace(os.sep, "/")
        self.lines = text.splitlines()
        self.code = code_lines(text)
        self.status_methods = status_methods
        self.failpoint_sites = failpoint_sites or (frozenset(), frozenset())
        self.findings = []

    def run(self):
        if not self.path.endswith(CXX_EXTENSIONS):
            return []
        in_src = self.path.startswith("src/")
        in_tools = self.path.startswith("tools/")
        if in_src:
            self.check_row_seed()
            self.check_unguarded_member()
        if in_src or in_tools:
            self.check_raw_geometry()
            if self.path != "src/util/mutex.h":
                self.check_raw_mutex()
            if not self.path.startswith("src/util/failpoint"):
                self.check_failpoint_site()
            if not self.path.startswith("src/server/protocol"):
                self.check_server_opcode_cast()
        if self.path.startswith("src/server/") and not self.path.startswith(
            "src/server/wal."
        ):
            self.check_durable_write()
        if (
            in_src or in_tools or self.path.startswith("bench/")
        ) and self.path != "src/util/simd.h":
            self.check_simd_ifdef()
        if self.path.startswith(("src/verify/", "src/stream/")):
            self.check_nondet_random()
        self.check_dropped_status()
        return self.findings

    def report(self, idx, rule, message):
        """Records a finding at 0-based line idx unless suppressed."""
        report_unless_suppressed(
            self.findings, self.lines, self.path, idx, rule, message)

    # -- row-seed ----------------------------------------------------------
    def check_row_seed(self):
        """Flags SplitMix64 construction inside a hash-row loop.

        The blessed idiom constructs one seeder before the loop and lets
        each emplace_back(seeder) advance it, giving every row fresh
        parameters. A SplitMix64 built inside the loop restarts the stream
        each iteration: all rows share one seed.
        """
        i = 0
        while i < len(self.code):
            line = self.code[i]
            m = re.search(r"\bfor\s*\(", line)
            if not m:
                i += 1
                continue
            body_lines = self._loop_body(i)
            has_emplace = any(
                re.search(r"\b(emplace_back|push_back)\s*\(", b)
                for _, b in body_lines
            )
            for idx, b in body_lines:
                if has_emplace and re.search(r"\bSplitMix64\b", b):
                    self.report(
                        idx,
                        "row-seed",
                        "SplitMix64 constructed inside a per-row loop: every "
                        "row hashes with the same seed, voiding pairwise "
                        "independence (Lemma 5). Construct one seeder before "
                        "the loop and pass it to each row's constructor.",
                    )
            i = body_lines[-1][0] + 1 if body_lines else i + 1

    def _loop_body(self, start):
        """Returns [(idx, code)] for the loop whose `for` is on line start."""
        depth = 0
        seen_open = False
        out = []
        for idx in range(start, min(start + 200, len(self.code))):
            code = self.code[idx]
            seg = code[code.index("for") :] if idx == start and "for" in code else code
            out.append((idx, seg))
            depth += seg.count("{") - seg.count("}")
            if "{" in seg:
                seen_open = True
            if seen_open and depth <= 0:
                break
            if not seen_open and seg.rstrip().endswith(";") and idx > start:
                break  # single-statement body
        return out

    # -- raw-geometry ------------------------------------------------------
    def check_raw_geometry(self):
        if self.path.startswith("src/core/sketch_params"):
            return  # the sizing rules themselves
        pat = re.compile(
            r"[.>]\s*(width|depth)\s*=\s*(\d[\dxXa-fA-F']*)\s*(?:<<\s*\d+\s*)?;"
        )
        for idx, code in enumerate(self.code):
            m = pat.search(code)
            if not m:
                continue
            if m.group(2) in ("0",):  # zero-inits are validation defaults
                continue
            self.report(
                idx,
                "raw-geometry",
                f"sketch {m.group(1)} set from a raw literal; derive it from "
                "sketch_params.h (SizeForApproxTop/ZipfWidth) or a named "
                "constant so the Lemma 5 sizing stays auditable.",
            )

    # -- nondet-random -----------------------------------------------------
    def check_nondet_random(self):
        pat = re.compile(r"std::random_device|\b(?:s?rand)\s*\(")
        for idx, code in enumerate(self.code):
            if pat.search(code):
                self.report(
                    idx,
                    "nondet-random",
                    "nondeterministic randomness in a deterministic-replay "
                    "path; seed a SplitMix64/std::mt19937 from an explicit "
                    "seed so fuzz reproducers replay bit-identically.",
                )

    # -- dropped-status ----------------------------------------------------
    def check_dropped_status(self):
        if not self.status_methods:
            return
        names = "|".join(sorted(self.status_methods))
        # A whole statement of the form `receiver.Method(...);` (or ->) with
        # nothing consuming the return value. Assignments, returns, (void)
        # casts, and macro wrappers all fail this shape.
        pat = re.compile(
            rf"^\s*[A-Za-z_][\w.\[\]]*(?:->[\w.\[\]]+)*(?:\.|->)({names})\(.*\)\s*;\s*$"
        )
        # A line that is really the tail of a wrapped statement
        # (`const Status s =\n    foo.Bar();`) is consumed by whatever the
        # previous line ends with, not dropped.
        continuation = re.compile(r"(=|\(|,|\+|\?|:|\|\||&&|\breturn)\s*$")
        for idx, code in enumerate(self.code):
            prev = ""
            for back in range(idx - 1, -1, -1):
                if self.code[back].strip():
                    prev = self.code[back]
                    break
            if continuation.search(prev):
                continue
            if pat.match(code):
                m = pat.match(code)
                self.report(
                    idx,
                    "dropped-status",
                    f"result of Status-returning {m.group(1)}() is discarded; "
                    "check it, propagate it, or cast to (void) with a comment.",
                )

    # -- raw-mutex ---------------------------------------------------------
    def check_raw_mutex(self):
        pat = re.compile(
            r"std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b"
        )
        for idx, code in enumerate(self.code):
            m = pat.search(code)
            if m:
                self.report(
                    idx,
                    "raw-mutex",
                    f"std::{m.group(1)} is invisible to the thread-safety "
                    "analysis; use streamfreq::Mutex/MutexLock/CondVar from "
                    "util/mutex.h so SFQ_GUARDED_BY members stay checked.",
                )

    # -- failpoint-site ----------------------------------------------------
    def check_failpoint_site(self):
        """Failpoints are planted only via SFQ_FAILPOINT with a known literal.

        The macro is what makes sites compile out under
        STREAMFREQ_FAILPOINTS=OFF; the literal-site requirement is what lets
        Configure() reject typo'd --failpoints specs and lets the chaos
        scheduler enumerate every plantable fault.
        """
        registered, documented = self.failpoint_sites
        lit = re.compile(r'SFQ_FAILPOINT\(\s*"([^"]*)"')
        direct = re.compile(
            r"FailpointRegistry\b.*\bEvaluate\s*\(|\bGlobal\(\)\s*\.\s*Evaluate\s*\("
        )
        for idx, code in enumerate(self.code):
            if "SFQ_FAILPOINT" in code and "#define" not in code:
                # self.code has literal contents blanked; re-read the raw
                # line to recover the site name.
                m = lit.search(self.lines[idx])
                if not m:
                    self.report(
                        idx,
                        "failpoint-site",
                        "SFQ_FAILPOINT takes a string-literal site name; a "
                        "computed name cannot be validated by Configure() or "
                        "enumerated by the chaos scheduler.",
                    )
                elif registered and m.group(1) not in registered:
                    self.report(
                        idx,
                        "failpoint-site",
                        f"failpoint site '{m.group(1)}' is not registered in "
                        "FailpointRegistry::KnownSites() "
                        "(src/util/failpoint.cc); register it there so "
                        "--failpoints specs naming it validate.",
                    )
                elif documented and m.group(1) not in documented:
                    self.report(
                        idx,
                        "failpoint-site",
                        f"failpoint site '{m.group(1)}' is missing from the "
                        "site table in docs/ROBUSTNESS.md; document what it "
                        "injects and which degraded path it exercises.",
                    )
            if direct.search(code):
                self.report(
                    idx,
                    "failpoint-site",
                    "direct FailpointRegistry Evaluate() call; plant faults "
                    'via SFQ_FAILPOINT("site") so they compile out when '
                    "STREAMFREQ_FAILPOINTS=OFF and the site stays auditable.",
                )

    # -- server-opcode (per-file half) -------------------------------------
    def check_server_opcode_cast(self):
        """Only the registry may materialize an Opcode from a raw number.

        LookupOpcode() is the one blessed number->Opcode conversion: it
        rejects unregistered values, so every Opcode in flight names a row
        of kOpcodeTable. A static_cast<Opcode>(literal) elsewhere can mint
        values the dispatch switch has never heard of.
        """
        pat = re.compile(
            r"static_cast\s*<\s*(?:streamfreq\s*::\s*)?Opcode\s*>\s*\(\s*"
            r"(?:0[xX][0-9a-fA-F']+|\d[\d']*)"
        )
        for idx, code in enumerate(self.code):
            if pat.search(code):
                self.report(
                    idx,
                    "server-opcode",
                    "Opcode minted from a raw numeric literal; go through "
                    "LookupOpcode() (src/server/protocol.cc) so unregistered "
                    "opcodes stay unrepresentable.",
                )

    # -- durable-write -----------------------------------------------------
    DURABLE_WRITE_RE = re.compile(
        r"std::ofstream\b|\bfopen\s*\(|\bfwrite\s*\(|\bcreat\s*\("
        r"|(?:std::filesystem::|std::|::)rename\s*\("
        r"|::open\s*\([^;]*O_(?:WRONLY|RDWR|CREAT|APPEND|TRUNC)"
    )

    def check_durable_write(self):
        """src/server/ persists state only through the two audited paths.

        Tenant durability rests on exactly two write disciplines: the
        sketch_io write-temp-then-rename snapshot path (one rename is one
        commit point) and the CRC-framed WAL append in src/server/wal.cc
        (torn tails are detected and discarded at replay). A raw ofstream,
        fopen/fwrite, or rename anywhere else in the server can leave a
        half-written file that recovery has no framing to reject.
        """
        for idx, code in enumerate(self.code):
            m = self.DURABLE_WRITE_RE.search(code)
            if m:
                self.report(
                    idx,
                    "durable-write",
                    f"raw file write '{m.group(0).strip()}' in src/server/; "
                    "persist through core/sketch_io.h (write-temp-then-"
                    "rename) or the WAL (src/server/wal.cc) so a crash "
                    "cannot publish a half-written file recovery would "
                    "trust.",
                )

    # -- simd-ifdef --------------------------------------------------------
    SIMD_TOKEN_RE = re.compile(
        r"__AVX512[A-Z0-9]*__|__AVX2?__|__SSE[0-9_]*__"
        r"|__ARM_NEON(?:__)?|STREAMFREQ_FORCE_SCALAR_SIMD"
        r"|\b(?:imm|x86|arm_ne|smm|emm|tmm)\w*intrin\.h|\barm_neon\.h"
        r"|\b_mm(?:256|512)?_\w+|\bv(?:ld|st)[1-4]q?_\w+"
        r"|vector_size\s*\("
    )

    def check_simd_ifdef(self):
        """ISA conditionals and intrinsics live in src/util/simd.h only.

        The whole bit-identity argument (docs/PERFORMANCE.md) rests on the
        kernels being compiled once, against one lane-bundle abstraction,
        in the one library target that receives STREAMFREQ_SIMD flags. A
        stray __AVX2__ ifdef elsewhere reintroduces per-TU divergence.
        """
        for idx, code in enumerate(self.code):
            m = self.SIMD_TOKEN_RE.search(code)
            if m:
                self.report(
                    idx,
                    "simd-ifdef",
                    f"instruction-set token '{m.group(0).strip()}' outside "
                    "src/util/simd.h; program against simd::U64x8 (or add a "
                    "new primitive to simd.h) so SIMD stays confined to the "
                    "one audited dispatch header.",
                )

    # -- unguarded-member --------------------------------------------------
    MEMBER_RE = re.compile(
        r"^\s*(?P<mutable>mutable\s+)?(?P<const>const\s+)?"
        r"(?P<type>[\w:]+(?:<[^;=]*>)?(?:\s*[*&])?)\s+"
        r"(?P<name>[a-z]\w*_)\s*"
        r"(?P<guard>SFQ(?:_PT)?_GUARDED_BY\([^)]*\))?\s*"
        r"(?:\{[^}]*\}|=[^;]*)?;\s*$"
    )

    def check_unguarded_member(self):
        for body in self._class_bodies():
            members = []
            has_mutex = False
            for idx in body:
                m = self.MEMBER_RE.match(self.code[idx])
                if not m:
                    continue
                members.append((idx, m))
                if m.group("type") == "Mutex":
                    has_mutex = True
            if not has_mutex:
                continue
            for idx, m in members:
                if m.group("guard") or m.group("const"):
                    continue
                mtype = m.group("type")
                if any(mtype.startswith(p) for p in THREADSAFE_TYPE_PREFIXES):
                    continue
                self.report(
                    idx,
                    "unguarded-member",
                    f"member '{m.group('name')}' of a mutex-owning class has "
                    "no SFQ_GUARDED_BY annotation; annotate it, or suppress "
                    "with a justification if it is thread-confined.",
                )

    def _class_bodies(self):
        """Yields lists of 0-based line indices at each class-body depth."""
        depth = 0
        stack = []  # (class_body_depth, [line indices])
        pending_class = False
        for idx, code in enumerate(self.code):
            if re.search(r"\b(class|struct)\s+\w+[^;]*$", code) and ";" not in code:
                pending_class = True
            for c in code:
                if c == "{":
                    depth += 1
                    if pending_class:
                        stack.append((depth, []))
                        pending_class = False
                elif c == "}":
                    if stack and stack[-1][0] == depth:
                        yield stack.pop()[1]
                    depth -= 1
            if stack and stack[-1][0] == depth:
                stack[-1][1].append(idx)
