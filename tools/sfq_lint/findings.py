"""Finding record + the NOLINT-with-reason suppression protocol.

Every line-anchored rule in the checker routes its report through
`report_unless_suppressed`, so the suppression grammar is identical across
the per-file rules and the whole-program passes:

    offending();  // NOLINT(sfq-<rule>): <why this is safe>
    // NOLINTNEXTLINE(sfq-<rule>): <why this is safe>
    offending();

The reason is mandatory; a bare suppression is itself a finding.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [sfq-{self.rule}] {self.message}"

    def render_json(self) -> str:
        """One finding as one JSON object (the --json schema; see
        docs/STATIC_ANALYSIS.md)."""
        return json.dumps(
            {
                "path": self.path,
                "line": self.line,
                "rule": "sfq-" + self.rule,
                "message": self.message,
            },
            sort_keys=False,
        )


_SUPPRESS_RE_CACHE: dict[str, re.Pattern] = {}


def _suppress_re(tag: str) -> re.Pattern:
    if tag not in _SUPPRESS_RE_CACHE:
        _SUPPRESS_RE_CACHE[tag] = re.compile(
            rf"//\s*{tag}\(sfq-([\w-]+)\)(.*)")
    return _SUPPRESS_RE_CACHE[tag]


def report_unless_suppressed(findings, raw_lines, path, idx, rule, message):
    """Appends a Finding at 0-based line `idx` unless a justified
    NOLINT/NOLINTNEXTLINE for `rule` covers it. A suppression without a
    reason is converted into its own finding (the gate must stay auditable).
    """
    line = raw_lines[idx] if idx < len(raw_lines) else ""
    prev = raw_lines[idx - 1] if idx > 0 else ""
    for text, tag in ((line, "NOLINT"), (prev, "NOLINTNEXTLINE")):
        m = _suppress_re(tag).search(text)
        if m and m.group(1) == rule:
            rest = m.group(2)
            if not rest.lstrip().startswith(":") or not rest.lstrip(
                ": "
            ).strip():
                findings.append(
                    Finding(
                        path,
                        idx + 1,
                        rule,
                        "suppression without a reason -- write "
                        f"NOLINT(sfq-{rule}): <why this is safe>",
                    )
                )
            return
    findings.append(Finding(path, idx + 1, rule, message))
