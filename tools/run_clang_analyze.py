#!/usr/bin/env python3
"""Runs the clang static analyzer over the compilation database and diffs
the warnings against a committed baseline.

scripts/lint.sh wires this in as an optional layer (skipped when clang++
is absent, like the tidy and thread-safety steps). Per translation unit in
compile_commands.json (src/ and tools/ only -- tests and benches are not
shipped code), the TU is re-driven with `--analyze` and the analyzer's
`warning:` lines are collected, normalized (absolute paths made
repo-relative, line/column numbers kept), and compared with the baseline
file. Any warning not in the baseline fails; baseline entries that no
longer fire are reported as stale so the file shrinks over time instead of
fossilizing.

The committed baseline (tools/clang_analyze_baseline.txt) is empty: the
tree currently analyzes clean, and the bar is to keep it that way. If the
analyzer ever reports a false positive that cannot be restructured away,
append the normalized warning line to the baseline with a comment.

Usage:
  python3 tools/run_clang_analyze.py \
      --compdb build/compile_commands.json \
      --baseline tools/clang_analyze_baseline.txt [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

WARNING_RE = re.compile(r"^(.*?):(\d+):(\d+): warning: (.*)$")

# Driver flags the analyzer invocation must not inherit (output control and
# codegen have no meaning under --analyze).
STRIP_FLAGS = {"-c", "-o"}


def analyze_tu(entry, root):
    """Runs clang --analyze for one compdb entry; returns warning lines."""
    args = (shlex.split(entry["command"])
            if "command" in entry else list(entry["arguments"]))
    cmd = [args[0], "--analyze", "-Xclang", "-analyzer-output=text"]
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in STRIP_FLAGS:
            skip_next = a == "-o"
            continue
        cmd.append(a)
    proc = subprocess.run(
        cmd, cwd=entry.get("directory", root),
        capture_output=True, text=True)
    warnings = []
    for line in proc.stderr.splitlines():
        m = WARNING_RE.match(line)
        if not m:
            continue
        path = os.path.relpath(
            os.path.normpath(
                os.path.join(entry.get("directory", root), m.group(1))
            ), root).replace(os.sep, "/")
        warnings.append(f"{path}:{m.group(2)}:{m.group(3)}: {m.group(4)}")
    return warnings


def load_baseline(path):
    try:
        with open(path, encoding="utf-8") as f:
            return {
                line.strip()
                for line in f
                if line.strip() and not line.startswith("#")
            }
    except OSError:
        print(f"run_clang_analyze: baseline {path} missing; "
              "treating as empty", file=sys.stderr)
        return set()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compdb", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = os.getcwd()
    try:
        with open(args.compdb, encoding="utf-8") as f:
            compdb = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"run_clang_analyze: cannot read {args.compdb}: {err}",
              file=sys.stderr)
        return 1

    entries = []
    for entry in compdb:
        rel = os.path.relpath(entry["file"], root).replace(os.sep, "/")
        if rel.startswith(("src/", "tools/")):
            entries.append(entry)
    if not entries:
        print("run_clang_analyze: no src/ or tools/ entries in the "
              "compilation database")
        return 0

    baseline = load_baseline(args.baseline)
    found = set()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for warnings in pool.map(lambda e: analyze_tu(e, root), entries):
            found.update(warnings)

    new = sorted(found - baseline)
    stale = sorted(baseline - found)
    for w in new:
        print(f"NEW  {w}")
    for w in stale:
        print(f"stale baseline entry (analyzer no longer reports): {w}")
    if new:
        print(f"run_clang_analyze: {len(new)} new analyzer warning(s); fix "
              f"them or (for a justified false positive) append to "
              f"{args.baseline}")
        return 1
    print(f"run_clang_analyze: OK ({len(entries)} TU(s), "
          f"{len(baseline)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
