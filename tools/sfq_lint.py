#!/usr/bin/env python3
"""sfq-lint: streamfreq's domain-invariant static checker (entry point).

The implementation lives in the tools/sfq_lint/ package: a C++-aware
tokenizer, the 11 per-file rules ported from the original single-file
linter, and the whole-program passes (layer-DAG enforcement over the
include graph, lock-order deadlock detection, blocking-call-under-lock,
and // sfq-hot-path purity). Run `--list-rules` for the rule ids and see
docs/STATIC_ANALYSIS.md for the catalog, the suppression protocol, and
the --json output schema.

This shim only keeps the historical invocation working:

    python3 tools/sfq_lint.py [args...]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from sfq_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
