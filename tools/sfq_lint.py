#!/usr/bin/env python3
"""sfq-lint: streamfreq's domain-invariant static checker.

Generic tools (clang-tidy, -Werror=thread-safety) cannot see the library's
*domain* invariants -- the ones the paper's analysis actually depends on.
This checker mechanizes them:

  row-seed          Per-row hash functions must draw parameters from one
                    shared advancing seeder. Constructing a fresh
                    SplitMix64 inside a row loop hands every row the same
                    (a, b) parameters, which silently voids the pairwise-
                    independence assumption behind Lemma 5's error bound.
  raw-geometry      Sketch width/depth in library/tool code must come from
                    the sketch_params.h sizing rules or a named constant,
                    never a bare integer literal (tests and benches sweep
                    arbitrary geometries and are exempt).
  nondet-random     No rand()/srand()/std::random_device in deterministic-
                    replay paths (src/verify/, src/stream/): fuzz
                    reproducers and generated workloads must replay
                    bit-identically from a seed.
  dropped-status    A statement-level call to a Status-returning method
                    discards the error. The [[nodiscard]] attribute already
                    makes this a compile error in C++; this rule also covers
                    non-compiled snippets and keeps fixtures honest.
  raw-mutex         std::mutex / std::lock_guard / std::unique_lock /
                    std::condition_variable are invisible to clang's
                    thread-safety analysis; use the annotated wrappers in
                    util/mutex.h instead.
  unguarded-member  In a class that owns a Mutex, every data member must be
                    SFQ_GUARDED_BY one, be inherently thread-safe (atomic,
                    internally-synchronized type), be const, or carry a
                    justified suppression.
  concurrent-label  Every test whose source uses src/concurrent/ must carry
                    the `concurrent` ctest label, or the TSan step in
                    scripts/check.sh (ctest -L concurrent) silently skips it.
  nodiscard-decl    status.h/result.h must keep their class-level
                    [[nodiscard]], and util/macros.h must keep the
                    SFQ_GUARDED_BY annotation macros -- removing either
                    disarms a whole enforcement layer.
  failpoint-site    Fault injection in library/tool code must go through
                    the SFQ_FAILPOINT("literal") macro (so sites compile
                    out when STREAMFREQ_FAILPOINTS=OFF), the literal must
                    be registered in FailpointRegistry::KnownSites()
                    (src/util/failpoint.cc) so --failpoints specs naming
                    it validate, and it must appear in the site table in
                    docs/ROBUSTNESS.md.
  server-opcode     The wire protocol's opcode registry (kOpcodeTable in
                    src/server/protocol.cc) must enumerate every Opcode
                    enumerator exactly once and kOpcodeCount must match --
                    a registered-but-unhandled opcode would decode and then
                    dispatch nowhere. And no file other than the registry
                    may conjure an Opcode from a raw numeric literal
                    (static_cast<Opcode>(3)): unregistered opcodes must
                    stay unrepresentable so the corruption matrix in
                    tests/server_protocol_test.cc covers the whole space.
  simd-ifdef        Instruction-set conditionals (__AVX512F__, __AVX2__,
                    __SSE2__, __ARM_NEON), <immintrin.h>-style includes,
                    raw _mm*/vld* intrinsics, and vector_size declarations
                    are allowed ONLY in src/util/simd.h. Everything else
                    programs against the simd::U64x8 bundle, so the
                    kernels are compiled once (in streamfreq_hash, the one
                    target that gets STREAMFREQ_SIMD flags) and the
                    scalar/vector bit-identity argument in
                    docs/PERFORMANCE.md stays auditable in a single file.

Suppression: append `// NOLINT(sfq-<rule>): <reason>` to the offending line
or put `// NOLINTNEXTLINE(sfq-<rule>): <reason>` on the line above. The
reason is mandatory; a bare suppression is itself a finding.

Modes:
  sfq_lint.py [--root DIR]                 lint the repository (exit 1 on findings)
  sfq_lint.py --check-file F --as PATH     lint one file as if it lived at PATH
  sfq_lint.py --fixtures DIR               self-check against expectation-annotated
                                           fixtures (tests/lint_fixtures/)
  sfq_lint.py --list-rules                 print the rule ids
"""

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULE_IDS = [
    "row-seed",
    "raw-geometry",
    "nondet-random",
    "dropped-status",
    "raw-mutex",
    "unguarded-member",
    "concurrent-label",
    "nodiscard-decl",
    "failpoint-site",
    "server-opcode",
    "simd-ifdef",
]

# Directories deliberately outside the normal scan: fixtures are broken on
# purpose, probes deliberately drop a Status to prove the compiler rejects it.
EXCLUDED_DIRS = ("tests/lint_fixtures", "tests/nodiscard_probes")

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Member types that need no lock: atomics, the synchronization primitives
# themselves, joined-thread handles, and internally-synchronized classes.
THREADSAFE_TYPE_PREFIXES = (
    "std::atomic",
    "Mutex",
    "CondVar",
    "std::thread",
    "std::vector<std::thread>",
    "BatchQueue",
    "SnapshotCell",
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [sfq-{self.rule}] {self.message}"


def strip_code(line: str) -> str:
    """Removes // comments and the contents of string/char literals."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class FileLinter:
    """Runs the per-file rules on one file at a (possibly pretend) path."""

    def __init__(self, relpath, lines, status_methods, failpoint_sites=None):
        self.path = relpath.replace(os.sep, "/")
        self.lines = lines
        self.code = [strip_code(l) for l in lines]
        self.status_methods = status_methods
        self.failpoint_sites = failpoint_sites or (frozenset(), frozenset())
        self.findings = []

    def run(self):
        if not self.path.endswith(CXX_EXTENSIONS):
            return []
        in_src = self.path.startswith("src/")
        in_tools = self.path.startswith("tools/")
        if in_src:
            self.check_row_seed()
            self.check_unguarded_member()
        if in_src or in_tools:
            self.check_raw_geometry()
            if self.path != "src/util/mutex.h":
                self.check_raw_mutex()
            if not self.path.startswith("src/util/failpoint"):
                self.check_failpoint_site()
            if not self.path.startswith("src/server/protocol"):
                self.check_server_opcode_cast()
        if (
            in_src or in_tools or self.path.startswith("bench/")
        ) and self.path != "src/util/simd.h":
            self.check_simd_ifdef()
        if self.path.startswith(("src/verify/", "src/stream/")):
            self.check_nondet_random()
        self.check_dropped_status()
        return self.findings

    def report(self, idx, rule, message):
        """Records a finding at 0-based line idx unless suppressed."""
        line = self.lines[idx]
        prev = self.lines[idx - 1] if idx > 0 else ""
        for text, tag in ((line, "NOLINT"), (prev, "NOLINTNEXTLINE")):
            m = re.search(rf"//\s*{tag}\(sfq-([\w-]+)\)(.*)", text)
            if m and m.group(1) == rule:
                if not m.group(2).lstrip().startswith(":") or not m.group(2).lstrip(
                    ": "
                ).strip():
                    self.findings.append(
                        Finding(
                            self.path,
                            idx + 1,
                            rule,
                            "suppression without a reason -- write "
                            f"NOLINT(sfq-{rule}): <why this is safe>",
                        )
                    )
                return
        self.findings.append(Finding(self.path, idx + 1, rule, message))

    # -- row-seed ----------------------------------------------------------
    def check_row_seed(self):
        """Flags SplitMix64 construction inside a hash-row loop.

        The blessed idiom constructs one seeder before the loop and lets
        each emplace_back(seeder) advance it, giving every row fresh
        parameters. A SplitMix64 built inside the loop restarts the stream
        each iteration: all rows share one seed.
        """
        i = 0
        while i < len(self.code):
            line = self.code[i]
            m = re.search(r"\bfor\s*\(", line)
            if not m:
                i += 1
                continue
            body_lines = self._loop_body(i)
            has_emplace = any(
                re.search(r"\b(emplace_back|push_back)\s*\(", b)
                for _, b in body_lines
            )
            for idx, b in body_lines:
                if has_emplace and re.search(r"\bSplitMix64\b", b):
                    self.report(
                        idx,
                        "row-seed",
                        "SplitMix64 constructed inside a per-row loop: every "
                        "row hashes with the same seed, voiding pairwise "
                        "independence (Lemma 5). Construct one seeder before "
                        "the loop and pass it to each row's constructor.",
                    )
            i = body_lines[-1][0] + 1 if body_lines else i + 1

    def _loop_body(self, start):
        """Returns [(idx, code)] for the loop whose `for` is on line start."""
        depth = 0
        seen_open = False
        out = []
        for idx in range(start, min(start + 200, len(self.code))):
            code = self.code[idx]
            seg = code[code.index("for") :] if idx == start and "for" in code else code
            out.append((idx, seg))
            depth += seg.count("{") - seg.count("}")
            if "{" in seg:
                seen_open = True
            if seen_open and depth <= 0:
                break
            if not seen_open and seg.rstrip().endswith(";") and idx > start:
                break  # single-statement body
        return out

    # -- raw-geometry ------------------------------------------------------
    def check_raw_geometry(self):
        if self.path.startswith("src/core/sketch_params"):
            return  # the sizing rules themselves
        pat = re.compile(
            r"[.>]\s*(width|depth)\s*=\s*(\d[\dxXa-fA-F']*)\s*(?:<<\s*\d+\s*)?;"
        )
        for idx, code in enumerate(self.code):
            m = pat.search(code)
            if not m:
                continue
            if m.group(2) in ("0",):  # zero-inits are validation defaults
                continue
            self.report(
                idx,
                "raw-geometry",
                f"sketch {m.group(1)} set from a raw literal; derive it from "
                "sketch_params.h (SizeForApproxTop/ZipfWidth) or a named "
                "constant so the Lemma 5 sizing stays auditable.",
            )

    # -- nondet-random -----------------------------------------------------
    def check_nondet_random(self):
        pat = re.compile(r"std::random_device|\b(?:s?rand)\s*\(")
        for idx, code in enumerate(self.code):
            if pat.search(code):
                self.report(
                    idx,
                    "nondet-random",
                    "nondeterministic randomness in a deterministic-replay "
                    "path; seed a SplitMix64/std::mt19937 from an explicit "
                    "seed so fuzz reproducers replay bit-identically.",
                )

    # -- dropped-status ----------------------------------------------------
    def check_dropped_status(self):
        if not self.status_methods:
            return
        names = "|".join(sorted(self.status_methods))
        # A whole statement of the form `receiver.Method(...);` (or ->) with
        # nothing consuming the return value. Assignments, returns, (void)
        # casts, and macro wrappers all fail this shape.
        pat = re.compile(
            rf"^\s*[A-Za-z_][\w.\[\]]*(?:->[\w.\[\]]+)*(?:\.|->)({names})\(.*\)\s*;\s*$"
        )
        # A line that is really the tail of a wrapped statement
        # (`const Status s =\n    foo.Bar();`) is consumed by whatever the
        # previous line ends with, not dropped.
        continuation = re.compile(r"(=|\(|,|\+|\?|:|\|\||&&|\breturn)\s*$")
        for idx, code in enumerate(self.code):
            prev = ""
            for back in range(idx - 1, -1, -1):
                if self.code[back].strip():
                    prev = self.code[back]
                    break
            if continuation.search(prev):
                continue
            if pat.match(code):
                m = pat.match(code)
                self.report(
                    idx,
                    "dropped-status",
                    f"result of Status-returning {m.group(1)}() is discarded; "
                    "check it, propagate it, or cast to (void) with a comment.",
                )

    # -- raw-mutex ---------------------------------------------------------
    def check_raw_mutex(self):
        pat = re.compile(
            r"std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b"
        )
        for idx, code in enumerate(self.code):
            m = pat.search(code)
            if m:
                self.report(
                    idx,
                    "raw-mutex",
                    f"std::{m.group(1)} is invisible to the thread-safety "
                    "analysis; use streamfreq::Mutex/MutexLock/CondVar from "
                    "util/mutex.h so SFQ_GUARDED_BY members stay checked.",
                )

    # -- failpoint-site ----------------------------------------------------
    def check_failpoint_site(self):
        """Failpoints are planted only via SFQ_FAILPOINT with a known literal.

        The macro is what makes sites compile out under
        STREAMFREQ_FAILPOINTS=OFF; the literal-site requirement is what lets
        Configure() reject typo'd --failpoints specs and lets the chaos
        scheduler enumerate every plantable fault.
        """
        registered, documented = self.failpoint_sites
        lit = re.compile(r'SFQ_FAILPOINT\(\s*"([^"]*)"')
        direct = re.compile(
            r"FailpointRegistry\b.*\bEvaluate\s*\(|\bGlobal\(\)\s*\.\s*Evaluate\s*\("
        )
        for idx, code in enumerate(self.code):
            if "SFQ_FAILPOINT" in code and "#define" not in code:
                # self.code has literal contents blanked; re-read the raw
                # line to recover the site name.
                m = lit.search(self.lines[idx])
                if not m:
                    self.report(
                        idx,
                        "failpoint-site",
                        "SFQ_FAILPOINT takes a string-literal site name; a "
                        "computed name cannot be validated by Configure() or "
                        "enumerated by the chaos scheduler.",
                    )
                elif registered and m.group(1) not in registered:
                    self.report(
                        idx,
                        "failpoint-site",
                        f"failpoint site '{m.group(1)}' is not registered in "
                        "FailpointRegistry::KnownSites() "
                        "(src/util/failpoint.cc); register it there so "
                        "--failpoints specs naming it validate.",
                    )
                elif documented and m.group(1) not in documented:
                    self.report(
                        idx,
                        "failpoint-site",
                        f"failpoint site '{m.group(1)}' is missing from the "
                        "site table in docs/ROBUSTNESS.md; document what it "
                        "injects and which degraded path it exercises.",
                    )
            if direct.search(code):
                self.report(
                    idx,
                    "failpoint-site",
                    "direct FailpointRegistry Evaluate() call; plant faults "
                    'via SFQ_FAILPOINT("site") so they compile out when '
                    "STREAMFREQ_FAILPOINTS=OFF and the site stays auditable.",
                )

    # -- server-opcode (per-file half) -------------------------------------
    def check_server_opcode_cast(self):
        """Only the registry may materialize an Opcode from a raw number.

        LookupOpcode() is the one blessed number->Opcode conversion: it
        rejects unregistered values, so every Opcode in flight names a row
        of kOpcodeTable. A static_cast<Opcode>(literal) elsewhere can mint
        values the dispatch switch has never heard of.
        """
        pat = re.compile(
            r"static_cast\s*<\s*(?:streamfreq\s*::\s*)?Opcode\s*>\s*\(\s*"
            r"(?:0[xX][0-9a-fA-F']+|\d[\d']*)"
        )
        for idx, code in enumerate(self.code):
            if pat.search(code):
                self.report(
                    idx,
                    "server-opcode",
                    "Opcode minted from a raw numeric literal; go through "
                    "LookupOpcode() (src/server/protocol.cc) so unregistered "
                    "opcodes stay unrepresentable.",
                )

    # -- simd-ifdef --------------------------------------------------------
    SIMD_TOKEN_RE = re.compile(
        r"__AVX512[A-Z0-9]*__|__AVX2?__|__SSE[0-9_]*__"
        r"|__ARM_NEON(?:__)?|STREAMFREQ_FORCE_SCALAR_SIMD"
        r"|\b(?:imm|x86|arm_ne|smm|emm|tmm)\w*intrin\.h|\barm_neon\.h"
        r"|\b_mm(?:256|512)?_\w+|\bv(?:ld|st)[1-4]q?_\w+"
        r"|vector_size\s*\("
    )

    def check_simd_ifdef(self):
        """ISA conditionals and intrinsics live in src/util/simd.h only.

        The whole bit-identity argument (docs/PERFORMANCE.md) rests on the
        kernels being compiled once, against one lane-bundle abstraction,
        in the one library target that receives STREAMFREQ_SIMD flags. A
        stray __AVX2__ ifdef elsewhere reintroduces per-TU divergence.
        """
        for idx, code in enumerate(self.code):
            m = self.SIMD_TOKEN_RE.search(code)
            if m:
                self.report(
                    idx,
                    "simd-ifdef",
                    f"instruction-set token '{m.group(0).strip()}' outside "
                    "src/util/simd.h; program against simd::U64x8 (or add a "
                    "new primitive to simd.h) so SIMD stays confined to the "
                    "one audited dispatch header.",
                )

    # -- unguarded-member --------------------------------------------------
    MEMBER_RE = re.compile(
        r"^\s*(?P<mutable>mutable\s+)?(?P<const>const\s+)?"
        r"(?P<type>[\w:]+(?:<[^;=]*>)?(?:\s*[*&])?)\s+"
        r"(?P<name>[a-z]\w*_)\s*"
        r"(?P<guard>SFQ(?:_PT)?_GUARDED_BY\([^)]*\))?\s*"
        r"(?:\{[^}]*\}|=[^;]*)?;\s*$"
    )

    def check_unguarded_member(self):
        for body in self._class_bodies():
            members = []
            has_mutex = False
            for idx in body:
                m = self.MEMBER_RE.match(self.code[idx])
                if not m:
                    continue
                members.append((idx, m))
                if m.group("type") == "Mutex":
                    has_mutex = True
            if not has_mutex:
                continue
            for idx, m in members:
                if m.group("guard") or m.group("const"):
                    continue
                mtype = m.group("type")
                if any(mtype.startswith(p) for p in THREADSAFE_TYPE_PREFIXES):
                    continue
                self.report(
                    idx,
                    "unguarded-member",
                    f"member '{m.group('name')}' of a mutex-owning class has "
                    "no SFQ_GUARDED_BY annotation; annotate it, or suppress "
                    "with a justification if it is thread-confined.",
                )

    def _class_bodies(self):
        """Yields lists of 0-based line indices at each class-body depth."""
        depth = 0
        stack = []  # (class_body_depth, [line indices])
        pending_class = False
        for idx, code in enumerate(self.code):
            if re.search(r"\b(class|struct)\s+\w+[^;]*$", code) and ";" not in code:
                pending_class = True
            for c in code:
                if c == "{":
                    depth += 1
                    if pending_class:
                        stack.append((depth, []))
                        pending_class = False
                elif c == "}":
                    if stack and stack[-1][0] == depth:
                        yield stack.pop()[1]
                    depth -= 1
            if stack and stack[-1][0] == depth:
                stack[-1][1].append(idx)


# -- repo-level rules ------------------------------------------------------


def scan_status_methods(root):
    """Derives the set of Status-returning method names from src/ headers."""
    methods = set()
    decl = re.compile(
        r"(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+)?Status\s+([A-Z]\w*)\s*\("
    )
    for path in walk_files(os.path.join(root, "src"), (".h",)):
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = decl.search(line)
                # `static Status Foo(` lines in status.h are Status's own
                # factories, not fallible operations.
                if m and "static Status" not in line:
                    methods.add(m.group(1))
    return methods


def scan_failpoint_sites(root):
    """Returns (registered, documented) failpoint site-name sets.

    Registered sites come from the BuildKnownSites() table in
    src/util/failpoint.cc; documented sites are the backtick-quoted
    `component.site` tokens in docs/ROBUSTNESS.md. Either set is empty when
    its source file is missing, which disables that half of the rule rather
    than flagging every planted site.
    """
    site_re = re.compile(r'"([a-z_]+\.[a-z_]+)"')
    registered = set()
    try:
        with open(
            os.path.join(root, "src", "util", "failpoint.cc"), encoding="utf-8"
        ) as f:
            m = re.search(r"BuildKnownSites\(\)\s*\{(.*?)\};", f.read(), re.S)
            if m:
                registered = set(site_re.findall(m.group(1)))
    except OSError:
        pass
    documented = set()
    try:
        with open(
            os.path.join(root, "docs", "ROBUSTNESS.md"), encoding="utf-8"
        ) as f:
            documented = set(re.findall(r"`([a-z_]+\.[a-z_]+)`", f.read()))
    except OSError:
        pass
    return frozenset(registered), frozenset(documented)


def check_concurrent_label(cmake_path, src_dir, relprefix):
    """Tests using src/concurrent/ must carry the `concurrent` ctest label."""
    findings = []
    try:
        with open(cmake_path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return findings
    m = re.search(r"set\(STREAMFREQ_TESTS\s*(.*?)\)", text, re.S)
    if not m:
        return findings
    tests = re.findall(r"[\w-]+", m.group(1))
    labelled = set()
    for props in re.finditer(r"set_tests_properties\((.*?)\)", text, re.S):
        body = props.group(1)
        if re.search(r"LABELS\s+\S*concurrent", body):
            labelled.update(re.findall(r"[\w-]+", body.split("PROPERTIES")[0]))
    for test in tests:
        src = os.path.join(src_dir, test + ".cc")
        if not os.path.exists(src):
            continue
        with open(src, encoding="utf-8") as f:
            uses_concurrent = '#include "concurrent/' in f.read()
        if uses_concurrent and test not in labelled:
            line = 1 + text[: text.find(test)].count("\n")
            findings.append(
                Finding(
                    relprefix + "CMakeLists.txt",
                    line,
                    "concurrent-label",
                    f"{test} exercises src/concurrent/ but lacks the "
                    "`concurrent` ctest label, so the TSan step "
                    "(ctest -L concurrent) never runs it.",
                )
            )
    return findings


def check_server_opcode_registry(root):
    """kOpcodeTable must cover the Opcode enum exactly, kOpcodeCount too.

    The wire protocol's invariants (dense opcodes, name round-trips, the
    per-opcode corruption matrix) all quantify over OpcodeTable(); an
    enumerator missing from the table would decode via the enum but
    dispatch nowhere, and a stale kOpcodeCount silently truncates the
    registry span. Both files absent disables the rule (pre-server trees).
    """
    findings = []
    header = os.path.join(root, "src", "server", "protocol.h")
    source = os.path.join(root, "src", "server", "protocol.cc")
    try:
        with open(header, encoding="utf-8") as f:
            header_text = f.read()
        with open(source, encoding="utf-8") as f:
            source_text = f.read()
    except OSError:
        return findings

    enum_match = re.search(
        r"enum\s+class\s+Opcode[^{]*\{(.*?)\};", header_text, re.S
    )
    table_match = re.search(
        r"kOpcodeTable\s*\[[^\]]*\]\s*=\s*\{(.*?)\};", source_text, re.S
    )
    count_match = re.search(r"kOpcodeCount\s*=\s*(\d+)", header_text)
    if not enum_match:
        findings.append(
            Finding("src/server/protocol.h", 1, "server-opcode",
                    "cannot find the `enum class Opcode` definition the "
                    "opcode-registry check quantifies over."))
        return findings
    if not table_match:
        findings.append(
            Finding("src/server/protocol.cc", 1, "server-opcode",
                    "cannot find the kOpcodeTable registry the wire "
                    "protocol dispatches through."))
        return findings

    enumerators = re.findall(r"\b(k[A-Z]\w*)\s*=\s*\d+", enum_match.group(1))
    table_rows = re.findall(r"Opcode\s*::\s*(k[A-Z]\w*)", table_match.group(1))
    enum_line = 1 + header_text[: enum_match.start()].count("\n")
    table_line = 1 + source_text[: table_match.start()].count("\n")

    for name in sorted(set(enumerators) - set(table_rows)):
        findings.append(
            Finding("src/server/protocol.cc", table_line, "server-opcode",
                    f"Opcode::{name} is declared in protocol.h but has no "
                    "kOpcodeTable row: it would decode and then dispatch "
                    "nowhere. Register it (name + needs_tenant)."))
    for name in sorted(set(table_rows) - set(enumerators)):
        findings.append(
            Finding("src/server/protocol.cc", table_line, "server-opcode",
                    f"kOpcodeTable row Opcode::{name} has no matching "
                    "enumerator in protocol.h."))
    seen = set()
    for name in table_rows:
        if name in seen:
            findings.append(
                Finding("src/server/protocol.cc", table_line, "server-opcode",
                        f"kOpcodeTable registers Opcode::{name} twice; "
                        "LookupOpcode/OpcodeName take the first hit and the "
                        "duplicate row is dead."))
        seen.add(name)
    if count_match and int(count_match.group(1)) != len(enumerators):
        findings.append(
            Finding("src/server/protocol.h", enum_line, "server-opcode",
                    f"kOpcodeCount = {count_match.group(1)} but the enum "
                    f"declares {len(enumerators)} opcodes; the registry "
                    "span and the dense-range checks are sized wrong."))
    return findings


def check_nodiscard_decl(root):
    """The enforcement layer must not be quietly disarmed."""
    findings = []
    wanted = [
        ("src/util/status.h", r"class \[\[nodiscard\]\] Status",
         "Status lost its class-level [[nodiscard]]: dropped errors compile "
         "clean again."),
        ("src/util/result.h", r"class \[\[nodiscard\]\] Result",
         "Result lost its class-level [[nodiscard]]: dropped values/errors "
         "compile clean again."),
        ("src/util/macros.h", r"#define SFQ_GUARDED_BY\(",
         "the SFQ_GUARDED_BY annotation macro is gone: the thread-safety "
         "analysis has nothing to check."),
    ]
    for rel, pattern, message in wanted:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            text = ""
        if not re.search(pattern, text):
            findings.append(Finding(rel, 1, "nodiscard-decl", message))
    return findings


def walk_files(top, extensions):
    for dirpath, _, names in os.walk(top):
        for name in sorted(names):
            if name.endswith(extensions):
                yield os.path.join(dirpath, name)


def lint_repo(root):
    status_methods = scan_status_methods(root)
    failpoint_sites = scan_failpoint_sites(root)
    findings = []
    for sub in ("src", "tools", "tests", "bench", "examples"):
        top = os.path.join(root, sub)
        for path in walk_files(top, CXX_EXTENSIONS):
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rel.startswith(EXCLUDED_DIRS):
                continue
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            findings += FileLinter(rel, lines, status_methods,
                                   failpoint_sites).run()
    findings += check_concurrent_label(
        os.path.join(root, "tests", "CMakeLists.txt"),
        os.path.join(root, "tests"),
        "tests/",
    )
    findings += check_server_opcode_registry(root)
    findings += check_nodiscard_decl(root)
    return findings


def lint_one_file(root, file_path, pretend_path):
    status_methods = scan_status_methods(root)
    failpoint_sites = scan_failpoint_sites(root)
    with open(file_path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    return FileLinter(pretend_path, lines, status_methods,
                      failpoint_sites).run()


def run_fixtures(root, fixtures_dir):
    """Checks that every fixture fires exactly its declared findings.

    Each fixture file declares where it pretends to live and what must fire:
        // sfq-lint-path: src/core/broken.cc
        // sfq-lint-expect: row-seed
    A subdirectory with a CMakeLists.txt is a test-tree fixture for the
    concurrent-label rule (expectations live in `# sfq-lint-expect:` there).
    Exit status 0 means the linter behaved on every fixture -- both firing
    on what is broken and staying silent on everything else.
    """
    ok = True
    entries = sorted(os.listdir(fixtures_dir))
    for entry in entries:
        full = os.path.join(fixtures_dir, entry)
        if os.path.isdir(full) and os.path.exists(
            os.path.join(full, "CMakeLists.txt")
        ):
            with open(os.path.join(full, "CMakeLists.txt"), encoding="utf-8") as f:
                text = f.read()
            expected = set(re.findall(r"#\s*sfq-lint-expect:\s*([\w-]+)", text))
            fired = {
                f.rule
                for f in check_concurrent_label(
                    os.path.join(full, "CMakeLists.txt"), full, entry + "/"
                )
            }
        elif entry.endswith(CXX_EXTENSIONS):
            with open(full, encoding="utf-8") as f:
                text = f.read()
            pretend = re.search(r"sfq-lint-path:\s*(\S+)", text)
            expected = set(re.findall(r"sfq-lint-expect:\s*([\w-]+)", text))
            if not pretend:
                print(f"FIXTURE ERROR {entry}: missing sfq-lint-path comment")
                ok = False
                continue
            fired = {
                f.rule for f in lint_one_file(root, full, pretend.group(1))
            }
        else:
            continue
        if fired == expected:
            print(f"fixture OK   {entry}: {sorted(fired) or ['(silent)']}")
        else:
            print(
                f"fixture FAIL {entry}: expected {sorted(expected)}, "
                f"got {sorted(fired)}"
            )
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repository root")
    parser.add_argument("--check-file", help="lint a single file")
    parser.add_argument(
        "--as", dest="pretend", help="pretend path for --check-file"
    )
    parser.add_argument("--fixtures", help="run the fixture self-check")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join("sfq-" + r for r in RULE_IDS))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )

    if args.fixtures:
        return 0 if run_fixtures(root, args.fixtures) else 1

    if args.check_file:
        pretend = args.pretend or os.path.relpath(args.check_file, root)
        findings = lint_one_file(root, args.check_file, pretend)
    else:
        findings = lint_repo(root)

    for f in findings:
        print(f.render())
    if findings:
        print(f"sfq-lint: {len(findings)} finding(s)")
        return 1
    print("sfq-lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
