#!/usr/bin/env bash
# Installs the repository's git pre-commit hook: a fast lint pass over the
# files the commit actually touches (scripts/lint.sh --changed --quick).
#
#   scripts/install-hooks.sh            install (refuses to clobber a
#                                       foreign pre-commit hook)
#   scripts/install-hooks.sh --force    overwrite whatever is there
#
# The hook is a small shim, so pulling a newer lint.sh updates the checks
# without reinstalling. Bypass a single commit with `git commit --no-verify`
# (the CI gate still runs the full lint).
set -euo pipefail
cd "$(dirname "$0")/.."

FORCE=0
for arg in "$@"; do
  case "$arg" in
    --force) FORCE=1 ;;
    *) echo "usage: scripts/install-hooks.sh [--force]" >&2; exit 2 ;;
  esac
done

HOOKS_DIR=$(git rev-parse --git-path hooks)
HOOK="$HOOKS_DIR/pre-commit"
MARKER="installed by scripts/install-hooks.sh"

if [[ -e "$HOOK" && "$FORCE" -ne 1 ]] && ! grep -q "$MARKER" "$HOOK"; then
  echo "error: $HOOK exists and was not installed by this script." >&2
  echo "       Re-run with --force to overwrite it." >&2
  exit 1
fi

mkdir -p "$HOOKS_DIR"
cat > "$HOOK" <<'EOF'
#!/usr/bin/env bash
# installed by scripts/install-hooks.sh -- fast lint over changed files.
# Bypass once with: git commit --no-verify
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"
exec scripts/lint.sh --changed --quick
EOF
chmod +x "$HOOK"
echo "install-hooks.sh: pre-commit hook installed at $HOOK"
