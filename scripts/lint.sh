#!/usr/bin/env bash
# Static-analysis gate (see docs/STATIC_ANALYSIS.md).
#
#   scripts/lint.sh           sfq-lint + clang-format drift + clang-tidy +
#                             clang -Werror=thread-safety build
#   scripts/lint.sh --quick   skips clang-tidy (the slow AST pass)
#
# The sfq-lint invariant checker always runs (pure python). The clang-based
# layers are skipped with a notice when the tool is not installed -- the
# committed configs (.clang-tidy, STREAMFREQ_THREAD_SAFETY, .clang-format)
# activate automatically on machines that have them. Any layer that does
# run and finds a problem fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/lint.sh [--quick]" >&2; exit 2 ;;
  esac
done

echo "== sfq-lint (domain invariants) =="
python3 tools/sfq_lint.py

echo "== sfq-lint fixture self-check =="
python3 tools/sfq_lint.py --fixtures tests/lint_fixtures

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format drift =="
  # Fixtures are deliberately broken scratch and exempt from style.
  git ls-files '*.cc' '*.h' '*.cpp' \
    | grep -v '^tests/lint_fixtures/' \
    | xargs clang-format --dry-run -Werror
else
  echo "notice: clang-format not installed; skipping format drift check"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ "$QUICK" -eq 1 ]]; then
    echo "notice: --quick skips clang-tidy"
  else
    echo "== clang-tidy (.clang-tidy profile) =="
    # The compilation database comes from the primary build tree
    # (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
    if [[ ! -f build/compile_commands.json ]]; then
      cmake -B build -DCMAKE_BUILD_TYPE=Release >/dev/null
    fi
    git ls-files 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cpp' \
      | xargs clang-tidy -p build --quiet
  fi
else
  echo "notice: clang-tidy not installed; skipping tidy profile"
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Werror=thread-safety (annotated concurrent subsystem) =="
  # Dedicated analysis tree: the SFQ_* capability annotations only bite
  # under clang. Building the concurrent-labelled tests instantiates the
  # ParallelIngestor/SnapshotCell templates so their annotations are
  # checked too, not just batch_queue.cc.
  cmake -B build-tsa \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release \
    -DSTREAMFREQ_THREAD_SAFETY=ON \
    -DSTREAMFREQ_BUILD_BENCHMARKS=OFF \
    -DSTREAMFREQ_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsa --target streamfreq_concurrent \
    parallel_ingestor_test batch_add_test
else
  echo "notice: clang++ not installed; thread-safety annotations compile as" \
       "no-ops under this toolchain (gcc) and are enforced where clang exists"
fi

echo "lint.sh: OK"
