#!/usr/bin/env bash
# Static-analysis gate (see docs/STATIC_ANALYSIS.md).
#
#   scripts/lint.sh            sfq-lint + clang-format drift + clang-tidy +
#                              clang --analyze + clang -Werror=thread-safety
#   scripts/lint.sh --quick    skips clang-tidy and clang --analyze (the
#                              slow AST passes)
#   scripts/lint.sh --changed  fast mode: per-file sfq-lint rules run only
#                              on files changed vs. the merge-base with
#                              ${SFQ_LINT_BASE:-origin/main} (plus working-
#                              tree changes); whole-program passes always
#                              see the full tree. Used by the pre-commit
#                              hook (scripts/install-hooks.sh).
#
# The sfq-lint invariant checker always runs (pure python). The clang-based
# layers are skipped with a notice when the tool is not installed -- the
# committed configs (.clang-tidy, STREAMFREQ_THREAD_SAFETY, .clang-format)
# activate automatically on machines that have them. Any layer that does
# run and finds a problem fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
CHANGED=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --changed) CHANGED=1 ;;
    *) echo "usage: scripts/lint.sh [--quick] [--changed]" >&2; exit 2 ;;
  esac
done

if [[ "$CHANGED" -eq 1 ]]; then
  # Changed = diff vs the merge-base with the upstream branch, plus any
  # staged/unstaged/untracked files, deduplicated. Falls back to a plain
  # local base when no remote exists.
  BASE="${SFQ_LINT_BASE:-}"
  if [[ -z "$BASE" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      BASE=origin/main
    else
      BASE=main
    fi
  fi
  MERGE_BASE=$(git merge-base "$BASE" HEAD 2>/dev/null || echo HEAD)
  mapfile -t CHANGED_FILES < <(
    {
      git diff --name-only --diff-filter=d "$MERGE_BASE"
      git diff --name-only --diff-filter=d --cached
      git ls-files --others --exclude-standard
    } | sort -u
  )
  echo "== sfq-lint (--changed: ${#CHANGED_FILES[@]} file(s) vs $BASE) =="
  # --files with an empty list still runs every whole-program pass.
  python3 tools/sfq_lint.py --files "${CHANGED_FILES[@]}"
else
  echo "== sfq-lint (domain invariants) =="
  python3 tools/sfq_lint.py
fi

echo "== sfq-lint fixture self-check =="
python3 tools/sfq_lint.py --fixtures tests/lint_fixtures

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format drift =="
  # Fixtures are deliberately broken scratch and exempt from style.
  git ls-files '*.cc' '*.h' '*.cpp' \
    | grep -v '^tests/lint_fixtures/' \
    | xargs clang-format --dry-run -Werror
else
  echo "notice: clang-format not installed; skipping format drift check"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ "$QUICK" -eq 1 || "$CHANGED" -eq 1 ]]; then
    echo "notice: --quick/--changed skips clang-tidy"
  else
    echo "== clang-tidy (.clang-tidy profile) =="
    # The compilation database comes from the primary build tree
    # (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
    if [[ ! -f build/compile_commands.json ]]; then
      cmake -B build -DCMAKE_BUILD_TYPE=Release >/dev/null
    fi
    git ls-files 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cpp' \
      | xargs clang-tidy -p build --quiet
  fi
else
  echo "notice: clang-tidy not installed; skipping tidy profile"
fi

if command -v clang++ >/dev/null 2>&1; then
  if [[ "$QUICK" -eq 1 || "$CHANGED" -eq 1 ]]; then
    echo "notice: --quick/--changed skips clang --analyze"
  else
    echo "== clang --analyze (static analyzer over compile_commands.json) =="
    if [[ ! -f build/compile_commands.json ]]; then
      cmake -B build -DCMAKE_BUILD_TYPE=Release >/dev/null
    fi
    # Diffs analyzer warnings against the committed (empty) baseline in
    # tools/clang_analyze_baseline.txt; any new warning fails.
    python3 tools/run_clang_analyze.py \
      --compdb build/compile_commands.json \
      --baseline tools/clang_analyze_baseline.txt
  fi
else
  echo "notice: clang++ not installed; skipping clang --analyze"
fi

if [[ "$CHANGED" -eq 1 ]]; then
  echo "notice: --changed skips the thread-safety build (fast pre-commit mode)"
elif command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Werror=thread-safety (annotated concurrent subsystem) =="
  # Dedicated analysis tree: the SFQ_* capability annotations only bite
  # under clang. Building the concurrent-labelled tests instantiates the
  # ParallelIngestor/SnapshotCell templates so their annotations are
  # checked too, not just batch_queue.cc.
  cmake -B build-tsa \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release \
    -DSTREAMFREQ_THREAD_SAFETY=ON \
    -DSTREAMFREQ_BUILD_BENCHMARKS=OFF \
    -DSTREAMFREQ_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsa --target streamfreq_concurrent \
    parallel_ingestor_test batch_add_test
else
  echo "notice: clang++ not installed; thread-safety annotations compile as" \
       "no-ops under this toolchain (gcc) and are enforced where clang exists"
fi

echo "lint.sh: OK"
