#!/usr/bin/env bash
# Server smoke test: boot `sfq serve` on a scratch Unix socket, drive one
# tenant through its whole lifecycle with `sfq client`, and check the
# answers line up (export must estimate bit-identically to the server).
#
#   scripts/serve_smoke.sh [path/to/sfq]
#
# Used by scripts/check.sh (--quick and full). See docs/SERVER.md.
set -euo pipefail
cd "$(dirname "$0")/.."

SFQ="${1:-build/tools/sfq}"
if [[ ! -x "$SFQ" ]]; then
  echo "serve_smoke: $SFQ not built" >&2
  exit 2
fi

DIR="$(mktemp -d /tmp/sfq_serve_smoke.XXXXXX)"
SOCK="$DIR/serve.sock"
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

"$SFQ" generate --kind zipf --n 20000 --m 500 --z 1.2 --seed 7 \
  --out "$DIR/trace.bin" >/dev/null

"$SFQ" serve --socket "$SOCK" >"$DIR/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -S "$SOCK" ]] && break
  sleep 0.05
done
if [[ ! -S "$SOCK" ]]; then
  echo "serve_smoke: server never bound $SOCK" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

client() { "$SFQ" client --socket "$SOCK" "$@"; }

client --op ping >/dev/null
client --op create --tenant smoke --threads 2 --overflow shed >/dev/null
client --op ingest --tenant smoke --trace "$DIR/trace.bin" >/dev/null
client --op mark --tenant smoke >/dev/null
client --op ingest --tenant smoke --trace "$DIR/trace.bin" >/dev/null
client --op topk --tenant smoke --k 5 >"$DIR/topk.txt"
client --op maxchange --tenant smoke --k 5 >"$DIR/maxchange.txt"
client --op seal --tenant smoke >/dev/null
client --op export --tenant smoke --out "$DIR/export.bin" >/dev/null
remote="$(client --op estimate --tenant smoke --item 42)"
local_est="$("$SFQ" estimate --sketch "$DIR/export.bin" --item 42)"
if [[ "$remote" != "$local_est" ]]; then
  echo "serve_smoke: exported sketch disagrees with server" \
       "(server=$remote export=$local_est)" >&2
  exit 1
fi
statsz="$(client --op statsz)"
case "$statsz" in
  *'"tenants":'*'"smoke"'*'"sealed":true'*) ;;
  *) echo "serve_smoke: statsz missing sealed tenant: $statsz" >&2; exit 1 ;;
esac

# Unknown tenant and bad opcode must come back as clean errors, not hangs.
if client --op topk --tenant missing --k 1 >/dev/null 2>&1; then
  echo "serve_smoke: query for missing tenant unexpectedly succeeded" >&2
  exit 1
fi

client --op shutdown >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
echo "serve_smoke: OK"
