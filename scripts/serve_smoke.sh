#!/usr/bin/env bash
# Server smoke test: boot `sfq serve` on a scratch Unix socket, drive one
# tenant through its whole lifecycle with `sfq client`, and check the
# answers line up (export must estimate bit-identically to the server).
# Then reboot in durable mode (--data-dir), SIGKILL the daemon mid-life,
# and check a restart recovers the tenant from WAL + snapshot.
#
#   scripts/serve_smoke.sh [path/to/sfq]
#
# Used by scripts/check.sh (--quick and full). See docs/SERVER.md.
set -euo pipefail
cd "$(dirname "$0")/.."

SFQ="${1:-build/tools/sfq}"
if [[ ! -x "$SFQ" ]]; then
  echo "serve_smoke: $SFQ not built" >&2
  exit 2
fi

DIR="$(mktemp -d /tmp/sfq_serve_smoke.XXXXXX)"
SOCK="$DIR/serve.sock"
SERVER_PID=""
# One trap owns every resource the script can leak: whichever server
# process is current (TERM first, then KILL if it lingers), the socket
# file, and the scratch dir — on EXIT, INT, and TERM alike.
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    for _ in $(seq 1 40); do
      kill -0 "$SERVER_PID" 2>/dev/null || break
      sleep 0.05
    done
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

# Polls until $SERVER_PID is gone (the server is disowned, so `wait` does
# not apply — and bash's async "Killed" notice stays out of the output).
wait_gone() {
  for _ in $(seq 1 200); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; return 0; }
    sleep 0.05
  done
  echo "serve_smoke: server $SERVER_PID did not exit" >&2
  exit 1
}

# Boots `sfq serve $@` on $SOCK and waits for the bind. Any stale socket
# file is removed first so a crashed predecessor cannot block the bind.
start_server() {
  rm -f "$SOCK"
  "$SFQ" serve --socket "$SOCK" "$@" >>"$DIR/serve.log" 2>&1 &
  SERVER_PID=$!
  disown "$SERVER_PID"
  for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "serve_smoke: server died before binding $SOCK" >&2
      cat "$DIR/serve.log" >&2
      exit 1
    fi
    sleep 0.05
  done
  if [[ ! -S "$SOCK" ]]; then
    echo "serve_smoke: server never bound $SOCK" >&2
    cat "$DIR/serve.log" >&2
    exit 1
  fi
}

"$SFQ" generate --kind zipf --n 20000 --m 500 --z 1.2 --seed 7 \
  --out "$DIR/trace.bin" >/dev/null

start_server

client() { "$SFQ" client --socket "$SOCK" "$@"; }

client --op ping >/dev/null
client --op create --tenant smoke --threads 2 --overflow shed >/dev/null
client --op ingest --tenant smoke --trace "$DIR/trace.bin" >/dev/null
client --op mark --tenant smoke >/dev/null
client --op ingest --tenant smoke --trace "$DIR/trace.bin" >/dev/null
client --op topk --tenant smoke --k 5 >"$DIR/topk.txt"
client --op maxchange --tenant smoke --k 5 >"$DIR/maxchange.txt"
client --op seal --tenant smoke >/dev/null
client --op export --tenant smoke --out "$DIR/export.bin" >/dev/null
remote="$(client --op estimate --tenant smoke --item 42)"
local_est="$("$SFQ" estimate --sketch "$DIR/export.bin" --item 42)"
if [[ "$remote" != "$local_est" ]]; then
  echo "serve_smoke: exported sketch disagrees with server" \
       "(server=$remote export=$local_est)" >&2
  exit 1
fi
statsz="$(client --op statsz)"
case "$statsz" in
  *'"tenants":'*'"smoke"'*'"sealed":true'*) ;;
  *) echo "serve_smoke: statsz missing sealed tenant: $statsz" >&2; exit 1 ;;
esac

# Unknown tenant and bad opcode must come back as clean errors, not hangs.
if client --op topk --tenant missing --k 1 >/dev/null 2>&1; then
  echo "serve_smoke: query for missing tenant unexpectedly succeeded" >&2
  exit 1
fi

client --op shutdown >/dev/null
wait_gone
SERVER_PID=""

# Durable mode: two tenants against --data-dir, then the daemon dies by
# SIGKILL. "sealed" is sealed before the kill (its final snapshot is on
# disk — answers must survive bit-for-bit); "live" is mid-ingest (it must
# recover from WAL replay and keep accepting writes).
DATA="$DIR/tenants"
start_server --data-dir "$DATA"
client --op create --tenant sealed --threads 2 --overflow shed >/dev/null
client --op ingest --tenant sealed --trace "$DIR/trace.bin" >/dev/null
client --op seal --tenant sealed >/dev/null
before="$(client --op estimate --tenant sealed --item 42)"
client --op create --tenant live --threads 2 --overflow shed >/dev/null
client --op ingest --tenant live --trace "$DIR/trace.bin" >/dev/null
kill -9 "$SERVER_PID"
wait_gone
SERVER_PID=""

start_server --data-dir "$DATA"
for t in sealed live; do
  recovery="$(client --op recoveryinfo --tenant "$t")"
  case "$recovery" in
    *'"recovered":true'*) ;;
    *) echo "serve_smoke: restart did not recover '$t': $recovery" >&2
       exit 1 ;;
  esac
done
after="$(client --op estimate --tenant sealed --item 42)"
if [[ "$before" != "$after" ]]; then
  echo "serve_smoke: sealed estimate changed across kill-restart" \
       "(before=$before after=$after)" >&2
  exit 1
fi
# Sealed stays read-only; live keeps accepting writes on the new journal.
if client --op ingest --tenant sealed --trace "$DIR/trace.bin" \
    >/dev/null 2>&1; then
  echo "serve_smoke: sealed tenant accepted ingest after restart" >&2
  exit 1
fi
client --op topk --tenant live --k 5 >/dev/null
client --op ingest --tenant live --trace "$DIR/trace.bin" >/dev/null
client --op seal --tenant live >/dev/null
client --op shutdown >/dev/null
wait_gone
SERVER_PID=""
echo "serve_smoke: OK"
