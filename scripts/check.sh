#!/usr/bin/env bash
# Verification sweep.
#
#   scripts/check.sh --quick    lint + build + ctest + TSan concurrent
#                               re-check + 200-iteration chaos profile
#                               (incl. server failpoints, the 200-
#                               iteration kill-restart recovery campaign,
#                               and the 200-iteration merge-tree campaign)
#                               + server smoke
#   scripts/check.sh            the above, plus benchmarks, examples, an
#                               ASan/UBSan build running the full suite,
#                               a failpoints-compiled-out sanity build,
#                               and nightly-scale `sfq verify` + `sfq chaos`
#                               campaigns
#   scripts/check.sh --bench    build bench_throughput + bench_serve +
#                               bench_merge_tree, regenerate the ingest
#                               trajectory, the server latency/qps profile,
#                               and the merge-tree shipping profile, and
#                               gate them against the committed
#                               BENCH_throughput.json / BENCH_serve.json /
#                               BENCH_merge.json via tools/bench_gate.py
#                               (>15% regression fails; see
#                               docs/PERFORMANCE.md and docs/SERVER.md)
#
# Environment:
#   SFQ_FUZZ_SEED    master seed for the nightly fuzz campaign (default 42)
#   SFQ_FUZZ_ITERS   nightly fuzz iterations (default 2000; CI smoke is 200)
#   SFQ_CHAOS_SEED   master seed for the chaos campaigns (default 42)
#   SFQ_CHAOS_ITERS  nightly chaos iterations (default 2000; quick is 200)
#   SFQ_BENCH_BUDGET fractional throughput regression allowed by --bench
#                    (default 0.15)
#   SFQ_SERVE_BENCH_BUDGET  budget for the bench_serve gate (default 0.35;
#                    socket RPC latency is noisier than in-process kernels)
#   SFQ_MERGE_BENCH_BUDGET  budget for the bench_merge_tree gate
#                    (default 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
BENCH=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --bench) BENCH=1 ;;
    *) echo "usage: scripts/check.sh [--quick|--bench]" >&2; exit 2 ;;
  esac
done

# Prefer Ninja for speed, but fall back to the platform default generator
# when it is not installed.
GEN=()
if command -v ninja >/dev/null 2>&1; then
  GEN=(-G Ninja)
fi

# Throughput regression gate: rerun the ingest-trajectory benchmarks and
# compare against the committed baseline. 5 repetitions, best-of (the
# reporter keeps each benchmark's fastest repetition — interference on a
# loaded box only slows runs down) keeps single-core noise from tripping
# the budget.
if [[ "$BENCH" -eq 1 ]]; then
  cmake -B build "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release
  cmake --build build --target bench_throughput bench_serve bench_merge_tree
  out="$(mktemp /tmp/sfq_bench.XXXXXX.json)"
  serve_out="$(mktemp /tmp/sfq_bench_serve.XXXXXX.json)"
  merge_out="$(mktemp /tmp/sfq_bench_merge.XXXXXX.json)"
  trap 'rm -f "$out" "$serve_out" "$merge_out"' EXIT
  build/bench/bench_throughput \
    --benchmark_filter='BatchAddBackend|BM_Update' \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=5 \
    --json "$out"
  python3 tools/bench_gate.py "$out" BENCH_throughput.json \
    --budget "${SFQ_BENCH_BUDGET:-0.15}"
  # The serve gate gets a wider default budget: request latency over a
  # unix socket is far more load-sensitive than the in-process kernels
  # (best-of-3 inside bench_serve absorbs most of it, but run-to-run
  # spread on a busy box still exceeds 15%).
  build/bench/bench_serve --json "$serve_out"
  python3 tools/bench_gate.py "$serve_out" BENCH_serve.json \
    --budget "${SFQ_SERVE_BENCH_BUDGET:-0.35}"
  # The merge-tree gate sits between the two: pure in-process compute,
  # but whole-fleet wall times are more scheduler-sensitive than a single
  # kernel loop.
  build/bench/bench_merge_tree --json "$merge_out"
  python3 tools/bench_gate.py "$merge_out" BENCH_merge.json \
    --budget "${SFQ_MERGE_BENCH_BUDGET:-0.25}"
  echo "check.sh --bench: OK"
  exit 0
fi

# Static analysis first: the cheapest signal, and sfq-lint needs no build.
# (clang-tidy inside lint.sh reuses build/compile_commands.json when a
# clang toolchain exists; see docs/STATIC_ANALYSIS.md.)
if [[ "$QUICK" -eq 1 ]]; then
  scripts/lint.sh --quick
else
  scripts/lint.sh
fi

cmake -B build "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

# Race check: src/concurrent/ and the batch paths must stay TSan-clean.
# Separate build tree (TSan is ABI-incompatible with the normal build);
# benchmarks/examples are skipped — only the concurrent-labelled tests run.
cmake -B build-tsan "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMFREQ_BUILD_BENCHMARKS=OFF \
  -DSTREAMFREQ_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS=-fsanitize=thread \
  -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
cmake --build build-tsan --target parallel_ingestor_test batch_add_test \
  batch_queue_test failpoint_test chaos_test server_e2e_test \
  server_recovery_test
ctest --test-dir build-tsan -L concurrent --output-on-failure

# Server smoke: boot `sfq serve`, run one tenant through its lifecycle,
# check export bit-identity and clean errors (docs/SERVER.md).
scripts/serve_smoke.sh build/tools/sfq

# Chaos quick profile: seeded fuzz programs replayed under randomized
# failpoint schedules (docs/ROBUSTNESS.md). Every iteration must end in a
# clean error Status or a sketch passing its guarantee checker over the
# effective stream; a failure prints a replayable seed/schedule/program.
# --server folds the serve-path failpoints into the campaign.
# --server-restart SIGKILLs a real `sfq serve` daemon at armed crash
# points and asserts WAL+snapshot recovery (conservation ledger, ack
# durability, bit-identical sketches on loss-free runs; docs/SERVER.md).
# --tree drives the distributed merge tree under the dist.* schedule:
# clean error or a root bit-identical to the covered-prefix reference,
# composed conservation, exact dedup (docs/DISTRIBUTED.md).
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" --iters 200
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" --iters 40 --server true
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" --iters 200 \
  --server-restart true
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" --iters 200 --tree true

if [[ "$QUICK" -eq 1 ]]; then
  echo "check.sh --quick: OK"
  exit 0
fi

for b in build/bench/*; do "$b"; done
for e in build/examples/*; do "$e"; done

# Memory/UB check: the full test suite — including the fuzz and metamorphic
# tests — must stay clean under AddressSanitizer + UndefinedBehaviorSanitizer.
cmake -B build-asan "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMFREQ_BUILD_BENCHMARKS=OFF \
  -DSTREAMFREQ_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

# Zero-overhead sanity: the whole tree must still compile with every
# SFQ_FAILPOINT site compiled out, and the overhead bench from that tree
# is the measurement backing the "free when disabled" claim. No ctest
# here — injection-dependent tests are meaningless without failpoints.
cmake -B build-nofp "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSTREAMFREQ_FAILPOINTS=OFF \
  -DSTREAMFREQ_BUILD_EXAMPLES=OFF
cmake --build build-nofp
build-nofp/bench/bench_failpoint_overhead

# Nightly-scale differential fuzz campaign: every guarantee checker over
# seeded workloads at the paper's Lemma 5 sizing. Zero violations expected;
# a failure prints a shrunk `sfq verify --program "..."` reproducer.
build/tools/sfq verify --seed="${SFQ_FUZZ_SEED:-42}" \
  --iters="${SFQ_FUZZ_ITERS:-2000}"

# Nightly chaos campaign: same contract as the quick profile, at scale.
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" \
  --iters "${SFQ_CHAOS_ITERS:-2000}"
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" \
  --iters "$(( ${SFQ_CHAOS_ITERS:-2000} / 10 ))" --server true
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" \
  --iters "$(( ${SFQ_CHAOS_ITERS:-2000} / 4 ))" --server-restart true
build/tools/sfq chaos --seed "${SFQ_CHAOS_SEED:-42}" \
  --iters "${SFQ_CHAOS_ITERS:-2000}" --tree true

echo "check.sh: OK"
