#!/usr/bin/env bash
# Full verification sweep: configure, build, test, run every experiment,
# then re-check the concurrent subsystem under ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
for e in build/examples/*; do "$e"; done

# Race check: src/concurrent/ and the batch paths must stay TSan-clean.
# Separate build tree (TSan is ABI-incompatible with the normal build);
# benchmarks/examples are skipped — only the concurrent-labelled tests run.
cmake -B build-tsan -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMFREQ_BUILD_BENCHMARKS=OFF \
  -DSTREAMFREQ_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS=-fsanitize=thread \
  -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
cmake --build build-tsan --target parallel_ingestor_test batch_add_test
ctest --test-dir build-tsan -L concurrent --output-on-failure
