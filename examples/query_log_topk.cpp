// Search-engine scenario (paper Section 1): find the most frequent queries
// in a stream using string keys through the typed adapter.
//
// Synthesizes a query log whose popularity is Zipfian over a templated
// phrase vocabulary, then reports the top queries with estimated counts.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/typed.h"
#include "hash/random.h"
#include "stream/discrete_distribution.h"
#include "util/logging.h"

using namespace streamfreq;

namespace {

// A toy query synthesizer: popular heads get short, plausible queries;
// the long tail is unique noise ("rare query #n").
std::vector<std::string> BuildVocabulary() {
  const std::vector<std::string> subjects = {
      "weather",       "news",       "maps",      "stock price",
      "translate",     "pizza near", "flights to", "how to fix",
      "lyrics",        "recipe for"};
  const std::vector<std::string> objects = {
      "today", "tomorrow", "london", "new york", "python",  "bicycle",
      "pasta", "guitar",   "tokyo",  "c++",      "rainbow", "coffee"};
  std::vector<std::string> vocab;
  for (const auto& s : subjects) {
    for (const auto& o : objects) vocab.push_back(s + " " + o);
  }
  return vocab;
}

}  // namespace

int main() {
  const std::vector<std::string> vocab = BuildVocabulary();

  // Zipf weights over the vocabulary; the generator index doubles as rank.
  std::vector<double> weights(vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto dist_result = DiscreteDistribution::Make(weights);
  SFQ_CHECK_OK(dist_result.status());

  CountSketchParams params;
  params.depth = 5;
  params.width = 4096;
  params.seed = 2026;
  auto topk_result = StringTopK::Make(params, /*tracked=*/15);
  SFQ_CHECK_OK(topk_result.status());
  StringTopK& topk = *topk_result;

  Xoshiro256 rng(99);
  constexpr int kQueries = 500000;
  int64_t tail_serial = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (rng.UniformDouble() < 0.30) {
      // 30% long-tail noise: unique queries that must not crowd out heads.
      topk.Add("rare query #" + std::to_string(++tail_serial));
    } else {
      topk.Add(vocab[dist_result->Sample(rng)]);
    }
  }

  std::cout << "Processed " << kQueries << " queries ("
            << tail_serial << " unique tail queries)\n";
  std::cout << "Summary memory: " << topk.SpaceBytes() / 1024 << " KiB\n\n";
  std::cout << "Top 10 queries by estimated count:\n";
  int rank = 0;
  for (const KeyCount& kc : topk.Candidates(10)) {
    std::cout << "  " << ++rank << ". \"" << kc.key << "\"  ~" << kc.count
              << " occurrences\n";
  }

  std::cout << "\nPoint queries:\n";
  for (const char* q : {"weather today", "recipe for pasta", "nonexistent"}) {
    std::cout << "  Estimate(\"" << q << "\") = " << topk.Estimate(q) << "\n";
  }
  return EXIT_SUCCESS;
}
