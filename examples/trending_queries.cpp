// Zeitgeist scenario (paper Section 4.2): which queries changed popularity
// most between two time periods?
//
// Builds a two-period query log with planted risers and fallers, runs the
// paper's two-pass max-change algorithm on the difference sketch, and
// compares its report against the planted ground truth -- including the
// case top-k diffing would miss.
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/max_change.h"
#include "stream/exact_counter.h"
#include "stream/query_log.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  QueryLogSpec spec;
  spec.universe = 200000;
  spec.z = 1.0;
  spec.period_length = 1500000;
  spec.trending = 15;
  spec.fading = 15;
  spec.boost = 12.0;
  spec.fade = 1.0 / 12.0;
  spec.seed = 4;

  std::cout << "Generating two periods of " << spec.period_length
            << " queries each over " << spec.universe << " distinct queries\n";
  auto log = MakeQueryLog(spec);
  SFQ_CHECK_OK(log.status());

  CountSketchParams params;
  params.depth = 6;
  params.width = 1 << 14;
  params.seed = 8;
  constexpr size_t kTracked = 100;
  constexpr size_t kReport = 30;

  auto changes = MaxChangeDetector::Run(params, kTracked, log->period1,
                                        log->period2, kReport);
  SFQ_CHECK_OK(changes.status());

  ExactCounter c1, c2;
  c1.AddAll(log->period1);
  c2.AddAll(log->period2);

  std::unordered_set<ItemId> planted(log->trending_ids.begin(),
                                     log->trending_ids.end());
  planted.insert(log->fading_ids.begin(), log->fading_ids.end());

  std::unordered_set<ItemId> trending(log->trending_ids.begin(),
                                      log->trending_ids.end());
  TablePrinter table({"item", "period1", "period2", "delta", "planted?"});
  size_t trending_found = 0, fading_found = 0;
  for (const ChangeResult& c : *changes) {
    const bool is_planted = planted.count(c.item) > 0;
    if (is_planted) {
      ++(trending.count(c.item) ? trending_found : fading_found);
    }
    table.AddRowValues(c.item, c.count_s1, c.count_s2, c.Delta(),
                       is_planted ? "yes" : "");
  }
  table.Print(std::cout);
  std::cout << "\nPlanted risers among the reported top-" << kReport << ": "
            << trending_found << "/" << log->trending_ids.size()
            << "; planted fallers: " << fading_found << "/"
            << log->fading_ids.size()
            << " (fallers shrink by |delta| ~ fade * base and are inherently"
               " closer to the head items' sampling noise)\n";

  // Sanity: exact deltas of the reported items really are large.
  Count worst_reported = 0;
  for (const ChangeResult& c : *changes) {
    worst_reported = std::max(worst_reported, c.AbsDelta());
  }
  std::cout << "Largest reported |delta|: " << worst_reported << "\n";
  std::cout << "Sketch memory for the difference: "
            << (params.depth * params.width * sizeof(int64_t)) / 1024
            << " KiB (two passes, no per-item state)\n";
  return EXIT_SUCCESS;
}
