// Database-operations scenario: streaming latency percentiles and SLO
// range queries from a dyadic sketch, without storing samples.
//
// Latencies (microseconds, log-normal-ish) stream through a
// HierarchicalCountMin; the monitor answers:
//   * p50/p90/p99/p999 (KeyAtRank),
//   * "how many requests exceeded the 10ms SLO?" (EstimateRange), and
//   * "which exact latency buckets are suspiciously hot?" (HeavyHitters —
//     e.g. a retry storm hammering one timeout value).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/hierarchical_cm.h"
#include "hash/random.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  // 20-bit domain: latencies up to ~1.05 s in microseconds.
  HierarchicalParams params;
  params.bits = 20;
  params.depth = 4;
  params.width = 4096;
  params.seed = 2026;
  auto sketch = HierarchicalCountMin::Make(params);
  SFQ_CHECK_OK(sketch.status());

  // Synthesize 2M request latencies: lognormal body around ~400us plus a
  // pathological spike at exactly 10ms (a stuck downstream timeout).
  Xoshiro256 rng(11);
  std::vector<uint64_t> sample;  // reservoir for exact-percentile truth
  constexpr int kRequests = 2000000;
  constexpr uint64_t kSpike = 10000;
  for (int i = 0; i < kRequests; ++i) {
    uint64_t us;
    if (rng.UniformDouble() < 0.005) {
      us = kSpike;  // the stuck timeout
    } else {
      const double u1 = std::max(rng.UniformDouble(), 1e-12);
      const double u2 = rng.UniformDouble();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      us = static_cast<uint64_t>(
          std::clamp(std::exp(6.0 + 0.8 * z), 1.0, 1048575.0));
    }
    sketch->Add(us);
    if (sample.size() < 100000) sample.push_back(us);
  }
  std::sort(sample.begin(), sample.end());

  std::cout << "Streamed " << kRequests << " request latencies through a "
            << sketch->SpaceBytes() / 1024 << " KiB dyadic sketch\n\n";

  TablePrinter table({"percentile", "sketch (us)", "sample truth (us)"});
  for (double p : {0.50, 0.90, 0.99, 0.999}) {
    const auto rank = static_cast<Count>(p * kRequests);
    const uint64_t est = sketch->KeyAtRank(rank);
    const uint64_t truth = sample[static_cast<size_t>(p * (sample.size() - 1))];
    char label[16];
    std::snprintf(label, sizeof(label), "p%d", static_cast<int>(p * 1000));
    table.AddRowValues(label, est, truth);
  }
  table.Print(std::cout);

  auto over_slo = sketch->EstimateRange(10000, (1u << 20) - 1);
  SFQ_CHECK_OK(over_slo.status());
  std::cout << "\nRequests over the 10ms SLO: ~" << *over_slo << " ("
            << 100.0 * static_cast<double>(*over_slo) / kRequests << "%)\n";

  // The lognormal body peaks near ~3.6k requests per microsecond bucket;
  // 0.25% of traffic (5k) isolates genuinely anomalous single buckets.
  std::cout << "\nHot exact-latency buckets (>= 0.25% of traffic):\n";
  for (const HeavyHitter& hh : sketch->HeavyHitters(kRequests / 400)) {
    std::cout << "  " << hh.key << " us  x" << hh.estimate
              << (hh.key == kSpike ? "   <-- the stuck 10ms timeout" : "")
              << "\n";
  }
  return EXIT_SUCCESS;
}
