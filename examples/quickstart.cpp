// Quickstart: the Count-Sketch public API in five minutes.
//
// Builds a sketch, streams items through it, queries estimates, runs the
// paper's full top-k algorithm, and demonstrates sketch additivity.
#include <cstdlib>
#include <iostream>

#include "core/count_sketch.h"
#include "core/top_k_tracker.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"
#include "util/logging.h"

using namespace streamfreq;

int main() {
  // 1. A Zipf-distributed stream of 200k items over a 50k-item universe --
  //    the kind of skewed stream (search queries, packet flows) the paper
  //    targets.
  auto gen_result = ZipfGenerator::Make(/*universe=*/50000, /*z=*/1.1,
                                        /*seed=*/42);
  SFQ_CHECK_OK(gen_result.status());
  ZipfGenerator& gen = *gen_result;
  const Stream stream = gen.Take(200000);

  // 2. A Count-Sketch: t=5 hash tables of b=4096 counters (256 KiB).
  CountSketchParams params;
  params.depth = 5;
  params.width = 4096;
  params.seed = 7;
  auto sketch_result = CountSketch::Make(params);
  SFQ_CHECK_OK(sketch_result.status());
  CountSketch& sketch = *sketch_result;

  ExactCounter exact;  // ground truth, for the demo only
  for (ItemId q : stream) {
    sketch.Add(q);  // ADD(C, q)
    exact.Add(q);
  }

  std::cout << "Point estimates for the head of the distribution:\n";
  std::cout << "rank  true_count  sketch_estimate\n";
  for (uint64_t rank : {1, 2, 5, 10, 50, 200}) {
    const ItemId item = gen.IdForRank(rank);
    std::cout << rank << "\t" << exact.CountOf(item) << "\t"
              << sketch.Estimate(item) << "\n";  // ESTIMATE(C, q)
  }

  // 3. The paper's one-pass ApproxTop algorithm: sketch + top-l heap.
  auto topk_result = CountSketchTopK::Make(params, /*tracked=*/20);
  SFQ_CHECK_OK(topk_result.status());
  CountSketchTopK& topk = *topk_result;
  topk.AddAll(stream);

  std::cout << "\nTop-10 candidates (tracked count vs truth):\n";
  for (const ItemCount& ic : topk.Candidates(10)) {
    std::cout << "item " << ic.item << "  est=" << ic.count
              << "  true=" << exact.CountOf(ic.item) << "\n";
  }

  // 4. Additivity: sketches with the same parameters form a group.
  auto first_half = CountSketch::Make(params);
  auto second_half = CountSketch::Make(params);
  SFQ_CHECK_OK(first_half.status());
  SFQ_CHECK_OK(second_half.status());
  for (size_t i = 0; i < stream.size() / 2; ++i) first_half->Add(stream[i]);
  for (size_t i = stream.size() / 2; i < stream.size(); ++i) {
    second_half->Add(stream[i]);
  }
  SFQ_CHECK_OK(first_half->Merge(*second_half));
  const ItemId head = gen.IdForRank(1);
  std::cout << "\nMerged halves estimate for rank-1 item: "
            << first_half->Estimate(head)
            << " (whole-stream sketch: " << sketch.Estimate(head) << ")\n";

  std::cout << "\nSketch memory: " << sketch.SpaceBytes() / 1024 << " KiB for "
            << stream.size() << " stream items over " << exact.Distinct()
            << " distinct keys\n";
  return EXIT_SUCCESS;
}
