// Network-router scenario (paper Section 1): identify large packet flows.
//
// Streams two million synthetic packets from heavy-tailed (Pareto) flows
// through the whole algorithm suite at one space budget and reports each
// algorithm's recall/precision against the true elephant flows, plus the
// ApproxTop verdict for the Count-Sketch entrant.
#include <cstdlib>
#include <iostream>

#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/suite.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kPackets = 2000000;
  constexpr size_t kK = 20;

  std::cout << "Generating " << kPackets
            << " packets from Pareto(1.2) flows...\n";
  auto workload = MakeFlowWorkload(/*pareto_alpha=*/1.2, kPackets, /*seed=*/7);
  SFQ_CHECK_OK(workload.status());
  std::cout << "Distinct flows: " << workload->oracle.Distinct()
            << ", largest flow: " << workload->oracle.TopK(1)[0].count
            << " packets\n\n";

  SuiteSpec spec;
  spec.space_budget_bytes = 64 * 1024;
  spec.k = kK;
  spec.seed = 11;
  spec.expected_stream_length = kPackets;
  auto suite = MakeDefaultSuite(spec);
  SFQ_CHECK_OK(suite.status());

  TablePrinter table({"algorithm", "recall@20", "precision@20", "ARE@20",
                      "space KiB", "Mitems/s"});
  for (const auto& algo : *suite) {
    const RunResult r = RunAndScore(*algo, *workload, kK);
    table.AddRowValues(r.algorithm, r.topk_quality.recall,
                       r.topk_quality.precision, r.are_topk,
                       static_cast<double>(r.space_bytes) / 1024.0,
                       r.items_per_second / 1e6);
  }
  table.Print(std::cout);

  // The paper's contract, checked explicitly for Count-Sketch.
  auto cs = MakeAlgorithm(AlgorithmKind::kCountSketchTopK, spec);
  SFQ_CHECK_OK(cs.status());
  (*cs)->AddAll(workload->stream);
  const auto verdict = CheckApproxTop((*cs)->Candidates(kK), workload->oracle,
                                      kK, /*epsilon=*/0.1);
  std::cout << "\nApproxTop(S, k=20, eps=0.1) verdict for Count-Sketch: "
            << (verdict.Pass() ? "PASS" : "FAIL")
            << " (low-count candidates: " << verdict.violations_low
            << ", missing mandatory: " << verdict.violations_missing << ")\n";
  return EXIT_SUCCESS;
}
