// Live monitoring scenario: "what is hot RIGHT NOW?"
//
// Contrasts three recency models over the same drifting stream:
//   * whole-stream Count-Sketch top-k (the paper's algorithm) — dominated
//     by stale history after the workload shifts;
//   * jumping-window sketch — hard cutoff at the last W items;
//   * exponentially-decayed sketch — smooth recency weighting.
// A DGIM counter supplies the windowed denominator for frequency-threshold
// readouts.
#include <cstdlib>
#include <iostream>

#include "core/count_sketch.h"
#include "core/decayed.h"
#include "core/dgim.h"
#include "core/top_k_tracker.h"
#include "core/windowed.h"
#include "hash/random.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  // Three epochs of 200k arrivals; each epoch has its own hot item (ids
  // 1001, 1002, 1003) at 10% of traffic over uniform noise.
  constexpr int kEpochs = 3;
  constexpr int kEpochLen = 200000;

  CountSketchParams base;
  base.depth = 5;
  base.width = 4096;
  base.seed = 77;
  auto whole_stream = CountSketchTopK::Make(base, 10);
  SFQ_CHECK_OK(whole_stream.status());

  WindowedSketchParams wparams;
  wparams.window = 100000;
  wparams.blocks = 8;
  wparams.sketch = base;
  auto windowed = WindowedCountSketch::Make(wparams);
  SFQ_CHECK_OK(windowed.status());

  DecayedSketchParams dparams;
  dparams.depth = base.depth;
  dparams.width = base.width;
  dparams.seed = base.seed;
  dparams.half_life = 30000.0;
  auto decayed = DecayedCountSketch::Make(dparams);
  SFQ_CHECK_OK(decayed.status());

  auto hot_traffic = DgimCounter::Make(/*window=*/100000);
  SFQ_CHECK_OK(hot_traffic.status());

  Xoshiro256 rng(5);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const ItemId hot = 1001 + static_cast<ItemId>(epoch);
    for (int i = 0; i < kEpochLen; ++i) {
      const bool is_hot = rng.UniformDouble() < 0.10;
      const ItemId q =
          is_hot ? hot : (1u << 20) + static_cast<ItemId>(rng.UniformBelow(1u << 18));
      whole_stream->Add(q);
      windowed->Add(q);
      decayed->Add(q);
      decayed->Tick();
      hot_traffic->Observe(is_hot);
    }
  }

  std::cout << "After " << kEpochs << " epochs (current hot item: 1003):\n\n";
  TablePrinter table(
      {"item", "whole-stream est", "window est", "decayed est"});
  for (ItemId item : {1001u, 1002u, 1003u}) {
    table.AddRowValues(item, whole_stream->Estimate(item),
                       windowed->Estimate(item), decayed->Estimate(item));
  }
  table.Print(std::cout);

  std::cout << "\nWhole-stream top-3 (stale by design):\n";
  for (const ItemCount& ic : whole_stream->Candidates(3)) {
    std::cout << "  item " << ic.item << " ~" << ic.count << "\n";
  }
  std::cout << "\nHot-item traffic in the last " << 100000
            << " arrivals (DGIM): ~" << hot_traffic->Estimate() << " ("
            << hot_traffic->LowerBound() << " to "
            << hot_traffic->UpperBound() << ")\n";
  std::cout << "\nReading: the whole-stream sketch still reports all three "
               "epochs' heroes at similar counts; the window has fully "
               "forgotten items 1001-1002; the decayed sketch ranks 1003 "
               ">> 1002 >> 1001.\n";
  return EXIT_SUCCESS;
}
