#include "stream/query_log.h"

#include <cmath>

#include "hash/mixers.h"
#include "hash/random.h"
#include "stream/discrete_distribution.h"

namespace streamfreq {

namespace {

ItemId IdForRank(uint64_t rank, uint64_t salt) { return Fmix64(rank ^ salt) | 1; }

Result<Stream> SamplePeriod(const std::vector<double>& weights, uint64_t n,
                            uint64_t salt, uint64_t seed) {
  STREAMFREQ_ASSIGN_OR_RETURN(DiscreteDistribution dist,
                              DiscreteDistribution::Make(weights));
  Xoshiro256 rng(seed);
  Stream s;
  s.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    s.push_back(IdForRank(dist.Sample(rng) + 1, salt));
  }
  return s;
}

}  // namespace

Result<QueryLog> MakeQueryLog(const QueryLogSpec& spec) {
  if (spec.universe == 0 || spec.period_length == 0) {
    return Status::InvalidArgument("QueryLogSpec: universe and period_length "
                                   "must be positive");
  }
  if (spec.trending + spec.fading >= spec.universe) {
    return Status::InvalidArgument(
        "QueryLogSpec: trending + fading must be below the universe size");
  }
  if (!(spec.boost > 1.0) || !(spec.fade > 0.0) || !(spec.fade < 1.0)) {
    return Status::InvalidArgument(
        "QueryLogSpec: need boost > 1 and fade in (0, 1)");
  }

  const uint64_t m = spec.universe;
  std::vector<double> base(m);
  for (uint64_t q = 1; q <= m; ++q) {
    base[q - 1] = std::pow(static_cast<double>(q), -spec.z);
  }

  // Pick the changed items from the mid-popularity band: frequent enough
  // that their planted deltas dominate the sampling noise of the head
  // items, but not already rank-1 head items themselves.
  const uint64_t band_start = std::max<uint64_t>(1, m / 1000);
  QueryLog log;
  const uint64_t salt = SplitMix64(spec.seed ^ 0xC0FFEEULL).Next();
  std::vector<double> p2 = base;
  for (uint64_t i = 0; i < spec.trending; ++i) {
    const uint64_t rank = band_start + i + 1;
    p2[rank - 1] *= spec.boost;
    log.trending_ids.push_back(IdForRank(rank, salt));
  }
  for (uint64_t i = 0; i < spec.fading; ++i) {
    const uint64_t rank = band_start + spec.trending + i + 1;
    p2[rank - 1] *= spec.fade;
    log.fading_ids.push_back(IdForRank(rank, salt));
  }

  STREAMFREQ_ASSIGN_OR_RETURN(
      log.period1, SamplePeriod(base, spec.period_length, salt, spec.seed + 1));
  STREAMFREQ_ASSIGN_OR_RETURN(
      log.period2, SamplePeriod(p2, spec.period_length, salt, spec.seed + 2));
  return log;
}

}  // namespace streamfreq
