// Synthetic network flow-traffic workload.
//
// The paper's second motivating application is "identifying large packet
// flows in a network router" ([3]: heavy-tailed distributions on the web).
// Real router traces (e.g. CAIDA) are not available offline, so this
// generator substitutes a packet stream whose per-flow packet counts follow
// a Pareto (heavy-tailed) law and whose packets from concurrent flows are
// interleaved — the two properties the heavy-hitter experiments depend on.
#pragma once

#include <cstdint>
#include <string>

#include "hash/random.h"
#include "stream/generator.h"
#include "util/result.h"

namespace streamfreq {

/// Configuration for the flow workload.
struct FlowTrafficSpec {
  /// Pareto shape for flow sizes; smaller = heavier tail. The classic
  /// elephants-and-mice regime is alpha in (1, 2).
  double pareto_alpha = 1.2;
  /// Minimum packets per flow (Pareto scale parameter).
  uint64_t min_flow_packets = 1;
  /// Cap on packets per flow so a single flow cannot swamp a short run.
  uint64_t max_flow_packets = 1 << 20;
  /// Number of flows concurrently emitting packets.
  uint64_t concurrent_flows = 256;
  uint64_t seed = 7;
};

/// Emits packets (flow ids) from a churning set of concurrent heavy-tailed
/// flows: each step picks a live flow at random, emits one of its packets,
/// and replaces it with a fresh flow once exhausted.
class FlowTrafficGenerator : public StreamGenerator {
 public:
  /// Validates the spec and builds the generator.
  static Result<FlowTrafficGenerator> Make(const FlowTrafficSpec& spec);

  ItemId Next() override;

  std::string Describe() const override;

 private:
  explicit FlowTrafficGenerator(const FlowTrafficSpec& spec);

  /// Draws a truncated-Pareto flow size.
  uint64_t DrawFlowSize();

  struct LiveFlow {
    ItemId id;
    uint64_t remaining;
  };

  FlowTrafficSpec spec_;
  Xoshiro256 rng_;
  uint64_t next_flow_serial_ = 0;
  std::vector<LiveFlow> live_;
};

}  // namespace streamfreq
