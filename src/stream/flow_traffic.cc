#include "stream/flow_traffic.h"

#include <algorithm>
#include <cmath>

#include "hash/mixers.h"

namespace streamfreq {

Result<FlowTrafficGenerator> FlowTrafficGenerator::Make(
    const FlowTrafficSpec& spec) {
  if (!(spec.pareto_alpha > 0.0)) {
    return Status::InvalidArgument("FlowTrafficSpec: pareto_alpha must be > 0");
  }
  if (spec.min_flow_packets == 0 ||
      spec.max_flow_packets < spec.min_flow_packets) {
    return Status::InvalidArgument(
        "FlowTrafficSpec: need 1 <= min_flow_packets <= max_flow_packets");
  }
  if (spec.concurrent_flows == 0) {
    return Status::InvalidArgument(
        "FlowTrafficSpec: concurrent_flows must be positive");
  }
  return FlowTrafficGenerator(spec);
}

FlowTrafficGenerator::FlowTrafficGenerator(const FlowTrafficSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  live_.reserve(spec_.concurrent_flows);
  for (uint64_t i = 0; i < spec_.concurrent_flows; ++i) {
    live_.push_back({Fmix64(++next_flow_serial_ ^ spec_.seed) | 1, DrawFlowSize()});
  }
}

uint64_t FlowTrafficGenerator::DrawFlowSize() {
  // Inverse-CDF Pareto: size = scale / U^{1/alpha}, truncated to the cap.
  const double u = std::max(rng_.UniformDouble(), 1e-18);
  const double raw = static_cast<double>(spec_.min_flow_packets) *
                     std::pow(u, -1.0 / spec_.pareto_alpha);
  const double capped =
      std::min(raw, static_cast<double>(spec_.max_flow_packets));
  return std::max<uint64_t>(1, static_cast<uint64_t>(capped));
}

ItemId FlowTrafficGenerator::Next() {
  const uint64_t slot = rng_.UniformBelow(live_.size());
  LiveFlow& f = live_[slot];
  const ItemId id = f.id;
  if (--f.remaining == 0) {
    f.id = Fmix64(++next_flow_serial_ ^ spec_.seed) | 1;
    f.remaining = DrawFlowSize();
  }
  return id;
}

std::string FlowTrafficGenerator::Describe() const {
  return "FlowTraffic(alpha=" + std::to_string(spec_.pareto_alpha) +
         ", concurrent=" + std::to_string(spec_.concurrent_flows) + ")";
}

}  // namespace streamfreq
