// Adversarial boundary-case stream construction.
//
// The paper motivates ApproxTop by observing that CandidateTop(S, k, l) is
// arbitrarily hard when n_k = n_{l+1} + 1: an adversary can scale counts so
// that rank k and rank l+1 are indistinguishable. This generator builds
// exactly that family of instances so tests and benchmarks can probe the
// boundary behaviour the (1 +/- eps) guarantee is designed around.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters of a boundary-case instance.
struct AdversarialSpec {
  /// Number of "head" items (the true top k).
  uint64_t k = 10;
  /// Number of "shadow" items whose count is within `gap` of the head.
  uint64_t shadows = 40;
  /// Occurrences of each head item.
  uint64_t head_count = 1000;
  /// head_count - gap = occurrences of each shadow item (gap >= 1).
  uint64_t gap = 1;
  /// Number of distinct background items, each occurring `tail_count` times.
  uint64_t tail_items = 10000;
  uint64_t tail_count = 5;
  /// Shuffle seed; the emitted order is a uniform permutation.
  uint64_t seed = 1;
};

/// Materializes the boundary-case stream described by `spec`, shuffled into
/// a uniformly random arrival order.
///
/// Item ids are structured for test introspection:
///   head item i   -> id = kHeadBase + i      (i in [0, k))
///   shadow item j -> id = kShadowBase + j
///   tail item t   -> id = kTailBase + t
Result<Stream> MakeAdversarialStream(const AdversarialSpec& spec);

inline constexpr ItemId kHeadBase = 1ULL << 40;
inline constexpr ItemId kShadowBase = 1ULL << 41;
inline constexpr ItemId kTailBase = 1ULL << 42;

}  // namespace streamfreq
