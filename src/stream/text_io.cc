#include "stream/text_io.h"

#include <cctype>
#include <fstream>

namespace streamfreq {

Result<uint64_t> ForEachToken(
    const std::string& path, const TextReaderOptions& options,
    const std::function<void(const std::string&)>& consume) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  uint64_t emitted = 0;
  std::string token;
  auto flush = [&] {
    if (token.size() >= options.min_token_length) {
      consume(token);
      ++emitted;
    }
    token.clear();
  };

  char ch;
  while (in.get(ch)) {
    const auto uc = static_cast<unsigned char>(ch);
    const bool is_word_char =
        std::isalpha(uc) || (options.keep_digits && std::isdigit(uc)) ||
        ch == '\'' || ch == '-';
    if (is_word_char) {
      token.push_back(options.lowercase
                          ? static_cast<char>(std::tolower(uc))
                          : ch);
    } else {
      flush();
    }
  }
  flush();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return emitted;
}

}  // namespace streamfreq
