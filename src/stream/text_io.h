// Text-key ingestion: tokenize text files into key streams for the typed
// top-k pipeline (e.g. word frequencies over a corpus through the CLI).
#pragma once

#include <functional>
#include <string>

#include "util/result.h"

namespace streamfreq {

/// Tokenization options.
struct TextReaderOptions {
  /// Lowercase ASCII letters before emitting.
  bool lowercase = true;
  /// Keep digits inside tokens.
  bool keep_digits = true;
  /// Tokens shorter than this are dropped.
  size_t min_token_length = 1;
};

/// Streams whitespace/punctuation-delimited tokens from `path` to
/// `consume`, one call per token. Returns the number of tokens emitted, or
/// IoError when the file cannot be read.
Result<uint64_t> ForEachToken(
    const std::string& path, const TextReaderOptions& options,
    const std::function<void(const std::string&)>& consume);

}  // namespace streamfreq
