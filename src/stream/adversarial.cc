#include "stream/adversarial.h"

#include <algorithm>

#include "hash/random.h"

namespace streamfreq {

Result<Stream> MakeAdversarialStream(const AdversarialSpec& spec) {
  if (spec.k == 0) {
    return Status::InvalidArgument("AdversarialSpec: k must be positive");
  }
  if (spec.gap == 0 || spec.gap >= spec.head_count) {
    return Status::InvalidArgument(
        "AdversarialSpec: gap must be in [1, head_count)");
  }
  if (spec.tail_count >= spec.head_count - spec.gap) {
    return Status::InvalidArgument(
        "AdversarialSpec: tail_count must be below the shadow count");
  }

  const uint64_t shadow_count = spec.head_count - spec.gap;
  Stream s;
  s.reserve(spec.k * spec.head_count + spec.shadows * shadow_count +
            spec.tail_items * spec.tail_count);
  for (uint64_t i = 0; i < spec.k; ++i) {
    s.insert(s.end(), spec.head_count, kHeadBase + i);
  }
  for (uint64_t j = 0; j < spec.shadows; ++j) {
    s.insert(s.end(), shadow_count, kShadowBase + j);
  }
  for (uint64_t t = 0; t < spec.tail_items; ++t) {
    s.insert(s.end(), spec.tail_count, kTailBase + t);
  }

  // Fisher-Yates with our deterministic engine (std::shuffle's result is
  // implementation-defined; this keeps traces identical across toolchains).
  Xoshiro256 rng(spec.seed);
  for (size_t i = s.size(); i > 1; --i) {
    std::swap(s[i - 1], s[rng.UniformBelow(i)]);
  }
  return s;
}

}  // namespace streamfreq
