// Zipfian stream generator.
//
// The paper's Section 4.1 analyzes space bounds for Zipfian frequency
// distributions n_q = c / q^z, the model it argues fits search-engine query
// streams and network packet traces. This generator samples ranks from the
// exact Zipf(z, m) law via the alias method (O(1)/item) and maps ranks to
// pseudorandom item ids so that id order carries no frequency information.
#pragma once

#include <cstdint>
#include <string>

#include "hash/mixers.h"
#include "hash/random.h"
#include "stream/discrete_distribution.h"
#include "stream/generator.h"
#include "util/result.h"

namespace streamfreq {

/// Generates i.i.d. draws from Zipf(z) over a universe of m items.
class ZipfGenerator : public StreamGenerator {
 public:
  /// Creates a generator over ranks 1..m with P(rank=q) proportional to
  /// 1/q^z. Fails for m == 0 or negative z. z == 0 degenerates to uniform.
  static Result<ZipfGenerator> Make(uint64_t universe, double z, uint64_t seed);

  ItemId Next() override {
    const uint64_t rank = dist_.Sample(rng_) + 1;  // 1-based rank
    return IdForRank(rank);
  }

  std::string Describe() const override;

  /// The item id assigned to frequency rank q (1-based). Ids are a fixed
  /// pseudorandom relabeling of ranks so heavy items are scattered in id
  /// space, as in real workloads.
  ItemId IdForRank(uint64_t rank) const {
    return Fmix64(rank ^ id_salt_) | 1;  // |1 avoids the reserved id 0
  }

  /// Exact probability of the rank-q item (1-based).
  double ProbabilityOfRank(uint64_t rank) const {
    return dist_.Probability(rank - 1);
  }

  uint64_t universe() const { return dist_.size(); }
  double z() const { return z_; }

 private:
  ZipfGenerator(DiscreteDistribution dist, double z, uint64_t seed)
      : dist_(std::move(dist)),
        z_(z),
        rng_(seed),
        id_salt_(SplitMix64(seed ^ 0x5A17F00DULL).Next()) {}

  DiscreteDistribution dist_;
  double z_;
  Xoshiro256 rng_;
  uint64_t id_salt_;
};

/// Generates uniform draws over a universe of m items (Zipf z = 0 without
/// the alias-table memory).
class UniformGenerator : public StreamGenerator {
 public:
  /// Creates a uniform generator over m items.
  static Result<UniformGenerator> Make(uint64_t universe, uint64_t seed);

  ItemId Next() override {
    return Fmix64((rng_.UniformBelow(universe_) + 1) ^ id_salt_) | 1;
  }

  std::string Describe() const override;

 private:
  UniformGenerator(uint64_t universe, uint64_t seed)
      : universe_(universe),
        rng_(seed),
        id_salt_(SplitMix64(seed ^ 0x5A17F00DULL).Next()) {}

  uint64_t universe_;
  Xoshiro256 rng_;
  uint64_t id_salt_;
};

}  // namespace streamfreq
