#include "stream/discrete_distribution.h"

#include <cmath>
#include <limits>

namespace streamfreq {

Result<DiscreteDistribution> DiscreteDistribution::Make(
    const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("DiscreteDistribution: empty weight vector");
  }
  if (weights.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("DiscreteDistribution: too many outcomes");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "DiscreteDistribution: weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("DiscreteDistribution: weights sum to zero");
  }

  const size_t m = weights.size();
  DiscreteDistribution d;
  d.pmf_.resize(m);
  d.prob_.assign(m, 0.0);
  d.alias_.assign(m, 0);

  // Vose's algorithm: partition scaled probabilities into small (< 1) and
  // large (>= 1) worklists, pairing each small slot with a large donor.
  std::vector<double> scaled(m);
  std::vector<uint32_t> small, large;
  small.reserve(m);
  large.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    d.pmf_[i] = weights[i] / total;
    scaled[i] = d.pmf_[i] * static_cast<double>(m);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    d.prob_[s] = scaled[s];
    d.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers are all (within rounding) exactly 1.
  for (uint32_t l : large) d.prob_[l] = 1.0;
  for (uint32_t s : small) d.prob_[s] = 1.0;
  return d;
}

}  // namespace streamfreq
