// Core stream value types.
#pragma once

#include <cstdint>
#include <vector>

namespace streamfreq {

/// Items are 64-bit opaque identifiers. Typed keys (strings, tuples) are
/// mapped to ItemId by the typed adapter (core/typed.h).
using ItemId = uint64_t;

/// Signed counts; sketches operate in the turnstile model where updates may
/// be negative (stream deltas, sketch subtraction).
using Count = int64_t;

/// A materialized stream: the sequence q1..qn of the paper.
using Stream = std::vector<ItemId>;

}  // namespace streamfreq
