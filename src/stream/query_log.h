// Synthetic search-engine query-log workload.
//
// The paper's motivating application (Section 1) is finding the most
// frequent queries at a search engine, and its Section 4.2 application is
// "Google Zeitgeist"-style trending detection: the queries whose frequency
// changes most between two consecutive time periods. The original Google
// query logs are proprietary; this generator substitutes a two-period
// synthetic log that preserves the properties the paper relies on:
//   * per-period popularity is Zipfian (Section 4.1's model), and
//   * between periods a chosen set of items rises or falls by a controlled
//     factor, creating known ground-truth max-change items.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Configuration for the two-period query log.
struct QueryLogSpec {
  uint64_t universe = 100000;  ///< number of distinct queries m
  double z = 1.0;              ///< Zipf skew of baseline popularity
  uint64_t period_length = 1000000;  ///< items per period n
  /// Number of "trending" queries boosted in period 2 and number of
  /// "fading" queries suppressed in period 2.
  uint64_t trending = 20;
  uint64_t fading = 20;
  /// Multiplicative popularity change for trending (>1) / fading (<1) items.
  double boost = 8.0;
  double fade = 0.125;
  uint64_t seed = 42;
};

/// A generated two-period log with ground truth.
struct QueryLog {
  Stream period1;
  Stream period2;
  /// Queries whose popularity was boosted (ground-truth risers).
  std::vector<ItemId> trending_ids;
  /// Queries whose popularity was suppressed (ground-truth fallers).
  std::vector<ItemId> fading_ids;
};

/// Builds the two-period log. Trending/fading items are drawn from the
/// mid-popularity band (ranks around universe/100) so the change — not the
/// baseline rank — is what distinguishes them.
Result<QueryLog> MakeQueryLog(const QueryLogSpec& spec);

}  // namespace streamfreq
