#include "stream/trace.h"

#include <cstring>
#include <fstream>

namespace streamfreq {

namespace {
constexpr char kMagic[8] = {'S', 'F', 'Q', 'T', 'R', 'C', '0', '1'};
}  // namespace

Status WriteTrace(const std::string& path, const Stream& stream) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint64_t n = stream.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) {
    out.write(reinterpret_cast<const char*>(stream.data()),
              static_cast<std::streamsize>(n * sizeof(ItemId)));
  }
  // Flush before checking: a buffered ofstream can report success for every
  // write and only surface ENOSPC at (unchecked) destruction.
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Stream> ReadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad trace magic in " + path);
  }
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::Corruption("truncated trace header in " + path);
  // Validate the declared length against the actual file size BEFORE
  // allocating: a corrupted header must not trigger a giant allocation.
  const auto payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(payload_start);
  const uint64_t available =
      static_cast<uint64_t>(file_end - payload_start);
  if (n > available / sizeof(ItemId)) {
    return Status::Corruption("trace header declares more items than the "
                              "file holds: " + path);
  }
  Stream stream(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(stream.data()),
            static_cast<std::streamsize>(n * sizeof(ItemId)));
    if (!in) return Status::Corruption("truncated trace payload in " + path);
  }
  return stream;
}

}  // namespace streamfreq
