#include "stream/exact_counter.h"

#include <algorithm>
#include <cmath>

namespace streamfreq {

Count ExactCounter::TotalCount() const {
  Count n = 0;
  for (const auto& [item, c] : counts_) n += c;
  return n;
}

std::vector<ItemCount> ExactCounter::SortedByCount() const {
  std::vector<ItemCount> out;
  out.reserve(counts_.size());
  for (const auto& [item, c] : counts_) out.push_back({item, c});
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::vector<ItemCount> ExactCounter::TopK(size_t k) const {
  std::vector<ItemCount> sorted = SortedByCount();
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

Count ExactCounter::NthCount(size_t k) const {
  if (k == 0 || k > counts_.size()) return 0;
  return SortedByCount()[k - 1].count;
}

double ExactCounter::ResidualF2(size_t k) const {
  std::vector<ItemCount> sorted = SortedByCount();
  double f2 = 0.0;
  for (size_t i = k; i < sorted.size(); ++i) {
    const double c = static_cast<double>(sorted[i].count);
    f2 += c * c;
  }
  return f2;
}

double ExactCounter::Gamma(size_t k, size_t b) const {
  if (b == 0) return 0.0;
  return std::sqrt(ResidualF2(k) / static_cast<double>(b));
}

}  // namespace streamfreq
