// Exact frequency oracle.
//
// Every experiment needs ground truth: the exact n_i of the paper's
// notation, the true top-k set, and the residual second moment
// F2^{>k} = sum_{q' > k} n_{q'}^2 that drives the Count-Sketch error term
// gamma = sqrt(F2^{>k} / b). This oracle is the memory-intensive solution
// the paper says is infeasible at stream scale — here it is the referee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/types.h"

namespace streamfreq {

/// An (item, exact count) pair.
struct ItemCount {
  ItemId item;
  Count count;

  friend bool operator==(const ItemCount&, const ItemCount&) = default;
};

/// Exact per-item counting with the derived statistics the paper's analysis
/// uses. Counts may go negative under turnstile updates.
class ExactCounter {
 public:
  ExactCounter() = default;

  /// Counts one occurrence of `item` (or `weight` occurrences).
  void Add(ItemId item, Count weight = 1) { counts_[item] += weight; }

  /// Counts every item of `stream`.
  void AddAll(const Stream& stream) {
    for (ItemId q : stream) Add(q);
  }

  /// Exact count of `item`; 0 when never seen.
  Count CountOf(ItemId item) const {
    auto it = counts_.find(item);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Number of distinct items seen (m' <= m).
  size_t Distinct() const { return counts_.size(); }

  /// Total stream length n (sum of all counts).
  Count TotalCount() const;

  /// Items sorted by descending count (ties broken by ascending id, so the
  /// ranking is deterministic). O(m' log m').
  std::vector<ItemCount> SortedByCount() const;

  /// The true top-k items (k clipped to the number of distinct items).
  std::vector<ItemCount> TopK(size_t k) const;

  /// The count of the k-th most frequent item (paper's n_k); 0 when fewer
  /// than k distinct items exist.
  Count NthCount(size_t k) const;

  /// Residual second moment F2^{>k} = sum over all but the top k items of
  /// count^2. k = 0 gives the full second moment F2.
  double ResidualF2(size_t k) const;

  /// The paper's error scale gamma = sqrt(F2^{>k} / b).
  double Gamma(size_t k, size_t b) const;

  /// Read-only access to the raw table.
  const std::unordered_map<ItemId, Count>& counts() const { return counts_; }

 private:
  std::unordered_map<ItemId, Count> counts_;
};

}  // namespace streamfreq
