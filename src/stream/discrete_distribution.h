// O(1) sampling from an arbitrary discrete distribution (Vose's alias method).
#pragma once

#include <cstdint>
#include <vector>

#include "hash/random.h"
#include "util/result.h"

namespace streamfreq {

/// Samples indices 0..m-1 proportionally to a fixed weight vector in O(1)
/// per sample after an O(m) build (Vose's alias method).
class DiscreteDistribution {
 public:
  /// Builds the alias tables from `weights`. Fails when `weights` is empty,
  /// contains a negative/non-finite entry, or sums to zero.
  static Result<DiscreteDistribution> Make(const std::vector<double>& weights);

  /// Draws one index using `rng`.
  uint64_t Sample(Xoshiro256& rng) const {
    const uint64_t i = rng.UniformBelow(prob_.size());
    return rng.UniformDouble() < prob_[i] ? i : alias_[i];
  }

  /// Exact probability of index i under the normalized distribution.
  double Probability(uint64_t i) const { return pmf_[i]; }

  /// Number of outcomes m.
  uint64_t size() const { return prob_.size(); }

 private:
  DiscreteDistribution() = default;

  std::vector<double> prob_;    // acceptance threshold per slot
  std::vector<uint32_t> alias_; // fallback index per slot
  std::vector<double> pmf_;     // normalized weights
};

}  // namespace streamfreq
