#include "stream/zipf.h"

#include <cmath>

namespace streamfreq {

Result<ZipfGenerator> ZipfGenerator::Make(uint64_t universe, double z,
                                          uint64_t seed) {
  if (universe == 0) {
    return Status::InvalidArgument("ZipfGenerator: universe must be positive");
  }
  if (universe > (1ull << 27)) {
    // The alias tables cost ~20 bytes per outcome; cap the build at ~2.7 GiB
    // rather than letting a mistyped universe exhaust memory.
    return Status::InvalidArgument(
        "ZipfGenerator: universe above 2^27 outcomes is not supported by the "
        "alias-table sampler");
  }
  if (!(z >= 0.0) || !std::isfinite(z)) {
    return Status::InvalidArgument("ZipfGenerator: z must be finite and >= 0");
  }
  std::vector<double> weights(universe);
  for (uint64_t q = 1; q <= universe; ++q) {
    weights[q - 1] = std::pow(static_cast<double>(q), -z);
  }
  STREAMFREQ_ASSIGN_OR_RETURN(DiscreteDistribution dist,
                              DiscreteDistribution::Make(weights));
  return ZipfGenerator(std::move(dist), z, seed);
}

std::string ZipfGenerator::Describe() const {
  return "Zipf(z=" + std::to_string(z_) + ", m=" + std::to_string(universe()) + ")";
}

Result<UniformGenerator> UniformGenerator::Make(uint64_t universe, uint64_t seed) {
  if (universe == 0) {
    return Status::InvalidArgument("UniformGenerator: universe must be positive");
  }
  return UniformGenerator(universe, seed);
}

std::string UniformGenerator::Describe() const {
  return "Uniform(m=" + std::to_string(universe_) + ")";
}

}  // namespace streamfreq
