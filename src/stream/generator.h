// Stream generator interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "stream/types.h"

namespace streamfreq {

/// Produces an unbounded sequence of items. Generators are deterministic
/// given their construction seed.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Returns the next item of the stream.
  virtual ItemId Next() = 0;

  /// Human-readable description used in experiment logs.
  virtual std::string Describe() const = 0;

  /// Materializes the next `n` items into a vector.
  Stream Take(size_t n) {
    Stream out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }
};

}  // namespace streamfreq
