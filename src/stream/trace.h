// Binary trace files: persisting generated streams for reproducible runs.
//
// Format (little-endian):
//   8-byte magic "SFQTRC01", uint64 item count, then count uint64 item ids.
#pragma once

#include <string>

#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Writes `stream` to `path`, replacing any existing file.
Status WriteTrace(const std::string& path, const Stream& stream);

/// Reads a trace file written by WriteTrace. Returns Corruption for bad
/// magic or truncated payloads, IoError for filesystem failures.
Result<Stream> ReadTrace(const std::string& path);

}  // namespace streamfreq
