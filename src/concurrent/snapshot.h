// Epoch-published snapshots: single-site installation, wait-free readers.
//
// The publisher builds a fresh immutable T off to the side, hands ownership
// to the cell, and installs the raw pointer with a release store; readers
// acquire-load the current pointer and keep using it for as long as the
// cell is alive. Reclamation is deferred to cell destruction (RCU-style
// grace period of "the whole run"): a superseded snapshot is retained, not
// freed, so a reader holding yesterday's pointer never observes a torn or
// recycled value — the classic seqlock hazard this design avoids — and the
// read path is a single atomic load with no lock, retry loop, or reference
// count. The epoch counter advances on every publication so readers can
// detect staleness without comparing pointers.
//
// The memory cost is one retained T per publication, released when the
// cell is destroyed. Publications are expected to be coarse (the ingestor
// folds every publish_every_batches batches, or only at Finish).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/mutex.h"

namespace streamfreq {

/// A concurrently readable cell holding the latest published T.
template <typename T>
class SnapshotCell {
 public:
  /// Installs `next` as the current snapshot and advances the epoch. The
  /// cell takes ownership and keeps every published snapshot alive until
  /// it is destroyed, which is what makes Read a plain pointer load.
  /// Publications may come from any thread; readers never block on one.
  void Publish(std::unique_ptr<const T> next) {
    const T* raw = next.get();
    {
      MutexLock lock(retained_mu_);
      retained_.push_back(std::move(next));
    }
    current_.store(raw, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  /// The latest published snapshot; nullptr before the first Publish.
  /// Wait-free. The pointer stays valid until the cell is destroyed.
  const T* Read() const { return current_.load(std::memory_order_acquire); }

  /// Number of publications so far.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  std::atomic<const T*> current_{nullptr};
  std::atomic<uint64_t> epoch_{0};

  Mutex retained_mu_;  // publisher-side only; readers never touch it
  std::vector<std::unique_ptr<const T>> retained_ SFQ_GUARDED_BY(retained_mu_);
};

}  // namespace streamfreq
