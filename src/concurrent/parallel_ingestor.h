// ParallelIngestor<SketchT>: sharded multi-threaded stream ingestion over
// mergeable summaries.
//
// The paper's additivity observation ("sketches for two streams can be
// directly added") is the whole parallelization strategy: N worker threads
// each own a private sketch built from the same parameters and seed, the
// producer shards the stream into batches over a bounded queue, and worker
// results are folded by Merge. No counter is ever touched by two threads.
//
//   producers --Ingest(span)--> BatchQueue --> worker 0: local sketch
//                                          --> worker 1: local sketch
//                                          ...
//              periodic + final folds (merge mutex) --> accumulated sketch
//                             publication --> SnapshotCell (epoch, lock-free
//                                             readers)
//
// Linear sketches (CountSketch, CountMin) produce a merged result that is
// bit-identical to single-threaded ingestion of the same multiset — the
// counters are a linear function of the input, so the partition is
// invisible. Counter summaries (SpaceSaving, MisraGries) produce a
// guarantee-preserving merge instead (see their Merge contracts and
// docs/PARALLELISM.md); for those, prefer publish_every_batches = 0, since
// every intermediate fold adds a little merge slack.
//
// Reads never block: Snapshot() returns a borrowed pointer to the latest
// published merged sketch (epoch-published, RCU-style with reclamation
// deferred to the ingestor's destruction), so queries run concurrently
// with ingestion at any thread count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "concurrent/batch_queue.h"
#include "concurrent/snapshot.h"
#include "stream/types.h"
#include "util/mutex.h"
#include "util/result.h"

namespace streamfreq {

/// Tuning knobs for ParallelIngestor.
struct IngestOptions {
  /// Worker threads (>= 1). Each owns a full private sketch, so memory is
  /// threads x SpaceBytes().
  size_t threads = 4;
  /// Items per queued batch: the granularity of sharding and of the
  /// BatchAdd fast path. Larger batches amortize queue locking further but
  /// add latency before work reaches idle workers.
  size_t batch_items = 8192;
  /// Bound on in-flight batches (backpressure for producers).
  size_t queue_batches = 64;
  /// When > 0, a worker folds its private sketch into the shared
  /// accumulated sketch and publishes a fresh snapshot after ingesting this
  /// many batches. 0 publishes only at Finish — the right setting for
  /// counter summaries, whose merges accrue slack.
  size_t publish_every_batches = 0;
};

/// Shards a stream across worker threads that each ingest into a private
/// SketchT, folding results into a concurrently readable merged snapshot.
///
/// SketchT must be copyable and provide BatchAdd(span<const ItemId>) and
/// Status Merge(const SketchT&); all sketches in src/core/ that the
/// ingestor is used with satisfy this.
template <typename SketchT>
class ParallelIngestor {
 public:
  /// Builds one compatible sketch per use site (workers, deltas, the
  /// accumulator). Capture shared params + seed so the results merge.
  using Factory = std::function<Result<SketchT>()>;

  /// Validates options, builds the accumulator and every worker's private
  /// sketch up front (so factory errors surface here, not mid-stream),
  /// publishes an empty epoch-0 snapshot, and starts the workers.
  static Result<std::unique_ptr<ParallelIngestor>> Make(Factory factory,
                                                        IngestOptions options) {
    if (options.threads == 0) {
      return Status::InvalidArgument("ParallelIngestor: threads must be >= 1");
    }
    if (options.batch_items == 0) {
      return Status::InvalidArgument(
          "ParallelIngestor: batch_items must be >= 1");
    }
    if (!factory) {
      return Status::InvalidArgument("ParallelIngestor: factory is empty");
    }
    STREAMFREQ_ASSIGN_OR_RETURN(SketchT accumulated, factory());
    std::vector<SketchT> locals;
    locals.reserve(options.threads);
    for (size_t i = 0; i < options.threads; ++i) {
      STREAMFREQ_ASSIGN_OR_RETURN(SketchT local, factory());
      locals.push_back(std::move(local));
    }
    return std::unique_ptr<ParallelIngestor>(
        new ParallelIngestor(std::move(factory), options, std::move(accumulated),
                             std::move(locals)));
  }

  ~ParallelIngestor() { Shutdown(); }

  ParallelIngestor(const ParallelIngestor&) = delete;
  ParallelIngestor& operator=(const ParallelIngestor&) = delete;

  /// Copies `items` into batches of batch_items and hands them to the
  /// workers, blocking while the queue is full. Safe to call from multiple
  /// producer threads. Fails once Finish has been called.
  Status Ingest(std::span<const ItemId> items) {
    while (!items.empty()) {
      const size_t take = std::min(items.size(), options_.batch_items);
      std::vector<ItemId> batch(items.begin(), items.begin() + take);
      if (!queue_.Push(std::move(batch))) {
        return Status::InvalidArgument(
            "ParallelIngestor::Ingest: already finished");
      }
      items = items.subspan(take);
    }
    return Status::OK();
  }

  /// Drains the queue, joins the workers, folds every worker's remaining
  /// delta, publishes the final snapshot, and returns a copy of the merged
  /// sketch. Idempotent; the first internal error (if any) wins.
  Result<SketchT> Finish() {
    Shutdown();
    MutexLock lock(merge_mu_);
    if (!first_error_.ok()) return first_error_;
    return accumulated_;
  }

  /// The latest published merged sketch. Never null: an empty sketch is
  /// published at construction. Wait-free for readers; the returned
  /// pointer stays valid until the ingestor is destroyed (each published
  /// snapshot is retained for the ingestor's lifetime).
  const SketchT* Snapshot() const { return snapshot_.Read(); }

  /// Publication count: 1 after construction, +1 per periodic or final
  /// fold. A reader that remembers the epoch can poll for freshness.
  uint64_t SnapshotEpoch() const { return snapshot_.Epoch(); }

  /// Items ingested by workers so far (relaxed; exact after Finish).
  uint64_t ItemsIngested() const {
    return items_ingested_.load(std::memory_order_relaxed);
  }

  size_t threads() const { return options_.threads; }

 private:
  ParallelIngestor(Factory factory, const IngestOptions& options,
                   SketchT accumulated, std::vector<SketchT> locals)
      : options_(options),
        factory_(std::move(factory)),
        queue_(options.queue_batches),
        accumulated_(std::move(accumulated)),
        locals_(std::move(locals)) {
    snapshot_.Publish(std::make_unique<const SketchT>(accumulated_));
    workers_.reserve(options_.threads);
    for (size_t w = 0; w < options_.threads; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  /// Pops batches into this worker's private sketch; folds periodically
  /// when configured and always once at end-of-stream.
  void WorkerLoop(size_t w) {
    SketchT* local = &locals_[w];  // single-writer: only this thread
    size_t batches_since_fold = 0;
    while (auto batch = queue_.Pop()) {
      local->BatchAdd(std::span<const ItemId>(*batch));
      items_ingested_.fetch_add(batch->size(), std::memory_order_relaxed);
      if (options_.publish_every_batches > 0 &&
          ++batches_since_fold >= options_.publish_every_batches) {
        batches_since_fold = 0;
        // Swap the delta out for a fresh empty sketch so the fold never
        // reads state a worker is still writing.
        Result<SketchT> fresh = factory_();
        if (!fresh.ok()) {
          RecordError(fresh.status());
          continue;  // keep accumulating; the final fold picks it up
        }
        SketchT delta = std::exchange(*local, std::move(*fresh));
        FoldAndPublish(delta);
      }
    }
    FoldAndPublish(*local);
  }

  /// Merges a worker delta into the accumulator and publishes a copy.
  /// Serialized by merge_mu_; the publication itself never blocks readers.
  void FoldAndPublish(const SketchT& delta) SFQ_EXCLUDES(merge_mu_) {
    MutexLock lock(merge_mu_);
    const Status s = accumulated_.Merge(delta);
    if (!s.ok()) {
      if (first_error_.ok()) first_error_ = s;
      return;
    }
    snapshot_.Publish(std::make_unique<const SketchT>(accumulated_));
  }

  void RecordError(const Status& s) SFQ_EXCLUDES(merge_mu_) {
    MutexLock lock(merge_mu_);
    if (first_error_.ok()) first_error_ = s;
  }

  void Shutdown() {
    queue_.Close();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  const IngestOptions options_;
  const Factory factory_;
  BatchQueue queue_;
  SnapshotCell<SketchT> snapshot_;
  std::atomic<uint64_t> items_ingested_{0};

  Mutex merge_mu_;
  SketchT accumulated_ SFQ_GUARDED_BY(merge_mu_);
  Status first_error_ SFQ_GUARDED_BY(merge_mu_);

  // Not lock-protected by design: slot w is written only by worker w, and
  // the final read happens after the workers are joined.
  // NOLINTNEXTLINE(sfq-unguarded-member): single-writer-per-slot, joined before read
  std::vector<SketchT> locals_;
  std::vector<std::thread> workers_;
};

/// Wraps shared construction parameters into a Factory: every sketch the
/// ingestor builds shares params (and therefore seed and hash functions),
/// which is exactly the Merge compatibility requirement. Works for any
/// SketchT with a static Make(ParamsT) — CountSketch(CountSketchParams),
/// CountMin(CountMinParams), SpaceSaving/MisraGries(capacity).
template <typename SketchT, typename ParamsT>
typename ParallelIngestor<SketchT>::Factory MakeSharedParamsFactory(
    ParamsT params) {
  return [params]() -> Result<SketchT> { return SketchT::Make(params); };
}

/// One-shot convenience: shards `stream` across options.threads workers and
/// returns the merged sketch. For linear sketches the result is identical
/// to sequential ingestion of `stream` at every thread count.
template <typename SketchT>
Result<SketchT> ParallelIngest(std::span<const ItemId> stream,
                               typename ParallelIngestor<SketchT>::Factory factory,
                               const IngestOptions& options) {
  STREAMFREQ_ASSIGN_OR_RETURN(
      std::unique_ptr<ParallelIngestor<SketchT>> ingestor,
      ParallelIngestor<SketchT>::Make(std::move(factory), options));
  STREAMFREQ_RETURN_NOT_OK(ingestor->Ingest(stream));
  return ingestor->Finish();
}

}  // namespace streamfreq
