// ParallelIngestor<SketchT>: sharded multi-threaded stream ingestion over
// mergeable summaries.
//
// The paper's additivity observation ("sketches for two streams can be
// directly added") is the whole parallelization strategy: N worker threads
// each own a private sketch built from the same parameters and seed, the
// producer shards the stream into batches over a bounded queue, and worker
// results are folded by Merge. No counter is ever touched by two threads.
//
//   producers --Ingest(span)--> BatchQueue --> worker 0: local sketch
//                                          --> worker 1: local sketch
//                                          ...
//              periodic + final folds (merge mutex) --> accumulated sketch
//                             publication --> SnapshotCell (epoch, lock-free
//                                             readers)
//
// Linear sketches (CountSketch, CountMin) produce a merged result that is
// bit-identical to single-threaded ingestion of the same multiset — the
// counters are a linear function of the input, so the partition is
// invisible. Counter summaries (SpaceSaving, MisraGries) produce a
// guarantee-preserving merge instead (see their Merge contracts and
// docs/PARALLELISM.md); for those, prefer publish_every_batches = 0, since
// every intermediate fold adds a little merge slack.
//
// Reads never block: Snapshot() returns a borrowed pointer to the latest
// published merged sketch (epoch-published, RCU-style with reclamation
// deferred to the ingestor's destruction), so queries run concurrently
// with ingestion at any thread count.
//
// Degraded modes (docs/ROBUSTNESS.md): producers can bound their push wait
// (push_timeout_ms) and pick an OverflowPolicy for what happens when the
// deadline passes — fail the Ingest call, shed the batch, or downsample it.
// Workers detect simulated crashes (SFQ_FAILPOINT "ingestor.worker_batch"),
// requeue the in-flight batch, and respawn; Finish can bound the shutdown
// drain (drain_timeout_ms), abandoning the backlog instead of hanging.
// Every dropped item is counted in IngestStats — and optionally recorded
// (record_shed) — so accuracy accounting can widen error bounds by exactly
// the shed mass.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "concurrent/batch_queue.h"
#include "concurrent/snapshot.h"
#include "stream/types.h"
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/result.h"

namespace streamfreq {

/// What a producer does with a batch the queue would not accept within its
/// deadline (only consulted when push_timeout_ms > 0).
enum class OverflowPolicy : uint8_t {
  /// Fail the Ingest call with IoError. The default: overload is loud.
  kBlock,
  /// Drop the whole batch, count it (shed_batches/shed_items), continue.
  kShed,
  /// Keep every sample_keep_one_in-th item of the batch and enqueue the
  /// remainder with a blocking push; count the rest as
  /// sampled_items_dropped. Trades a bounded accuracy hit for liveness.
  kSample,
};

/// Degradation counters, all zero on a fault-free run. The conservation
/// invariant (checked by tests and the chaos harness) is
///   items offered == items_ingested + shed_items + sampled_items_dropped
///                    + abandoned_items.
struct IngestStats {
  uint64_t items_ingested = 0;
  uint64_t deadline_misses = 0;   ///< push deadlines that expired
  uint64_t shed_batches = 0;      ///< kShed: whole batches dropped
  uint64_t shed_items = 0;
  uint64_t sampled_batches = 0;   ///< kSample: batches downsampled
  uint64_t sampled_items_dropped = 0;
  uint64_t worker_respawns = 0;   ///< crashed workers brought back
  uint64_t abandoned_batches = 0; ///< drain timeout: backlog discarded
  uint64_t abandoned_items = 0;
  uint64_t publish_failures = 0;  ///< snapshot publications skipped

  /// Total stream mass that never reached a sketch. Accuracy checkers must
  /// widen additive bounds by exactly this much (see docs/ROBUSTNESS.md).
  uint64_t DroppedItems() const {
    return shed_items + sampled_items_dropped + abandoned_items;
  }
};

/// Tuning knobs for ParallelIngestor.
struct IngestOptions {
  /// Worker threads (>= 1). Each owns a full private sketch, so memory is
  /// threads x SpaceBytes().
  size_t threads = 4;
  /// Items per queued batch: the granularity of sharding and of the
  /// BatchAdd fast path. Larger batches amortize queue locking further but
  /// add latency before work reaches idle workers.
  size_t batch_items = 8192;
  /// Bound on in-flight batches (backpressure for producers).
  size_t queue_batches = 64;
  /// When > 0, a worker folds its private sketch into the shared
  /// accumulated sketch and publishes a fresh snapshot after ingesting this
  /// many batches. 0 publishes only at Finish — the right setting for
  /// counter summaries, whose merges accrue slack.
  size_t publish_every_batches = 0;
  /// Producer push deadline in milliseconds. 0 = block indefinitely
  /// (classic backpressure); > 0 = a miss triggers overflow_policy.
  uint64_t push_timeout_ms = 0;
  /// What to do when the push deadline expires.
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  /// kSample keeps one item in this many (clamped to >= 2).
  size_t sample_keep_one_in = 8;
  /// Bound on the Finish-time backlog drain in milliseconds. 0 = drain
  /// everything; > 0 = batches still queued at the deadline are discarded
  /// and counted as abandoned.
  uint64_t drain_timeout_ms = 0;
  /// Record every dropped item so callers (the chaos harness) can compute
  /// the exact effective stream. Off by default: it buffers shed mass.
  bool record_shed = false;
};

/// Shards a stream across worker threads that each ingest into a private
/// SketchT, folding results into a concurrently readable merged snapshot.
///
/// SketchT must be copyable and provide BatchAdd(span<const ItemId>) and
/// Status Merge(const SketchT&); all sketches in src/core/ that the
/// ingestor is used with satisfy this.
template <typename SketchT>
class ParallelIngestor {
 public:
  /// Builds one compatible sketch per use site (workers, deltas, the
  /// accumulator). Capture shared params + seed so the results merge.
  using Factory = std::function<Result<SketchT>()>;

  /// Validates options, builds the accumulator and every worker's private
  /// sketch up front (so factory errors surface here, not mid-stream),
  /// publishes an empty epoch-0 snapshot, and starts the workers.
  ///
  /// When `initial` is set it replaces the factory-built accumulator: the
  /// epoch-0 snapshot and every later fold include that state. This is the
  /// crash-recovery seam — the server seeds a recovered sketch here and
  /// then replays only the journal tail (sketch linearity makes the result
  /// identical to re-ingesting the whole stream). `initial` must be
  /// mergeable with the factory's sketches (same geometry and seed).
  static Result<std::unique_ptr<ParallelIngestor>> Make(
      Factory factory, IngestOptions options,
      std::optional<SketchT> initial = std::nullopt) {
    if (options.threads == 0) {
      return Status::InvalidArgument("ParallelIngestor: threads must be >= 1");
    }
    if (options.batch_items == 0) {
      return Status::InvalidArgument(
          "ParallelIngestor: batch_items must be >= 1");
    }
    if (!factory) {
      return Status::InvalidArgument("ParallelIngestor: factory is empty");
    }
    options.sample_keep_one_in = std::max<size_t>(2, options.sample_keep_one_in);
    STREAMFREQ_ASSIGN_OR_RETURN(SketchT accumulated, factory());
    if (initial) accumulated = std::move(*initial);
    std::vector<SketchT> locals;
    locals.reserve(options.threads);
    for (size_t i = 0; i < options.threads; ++i) {
      STREAMFREQ_ASSIGN_OR_RETURN(SketchT local, factory());
      locals.push_back(std::move(local));
    }
    return std::unique_ptr<ParallelIngestor>(
        new ParallelIngestor(std::move(factory), options, std::move(accumulated),
                             std::move(locals)));
  }

  ~ParallelIngestor() { Shutdown(); }

  ParallelIngestor(const ParallelIngestor&) = delete;
  ParallelIngestor& operator=(const ParallelIngestor&) = delete;

  /// Copies `items` into batches of batch_items and hands them to the
  /// workers, blocking while the queue is full (up to push_timeout_ms when
  /// set, then applying overflow_policy). Safe to call from multiple
  /// producer threads. Fails once Finish has been called.
  Status Ingest(std::span<const ItemId> items) {
    while (!items.empty()) {
      const size_t take = std::min(items.size(), options_.batch_items);
      std::vector<ItemId> batch(items.begin(), items.begin() + take);
      STREAMFREQ_RETURN_NOT_OK(PushOne(std::move(batch)));
      items = items.subspan(take);
    }
    return Status::OK();
  }

  /// Drains the queue, joins the workers, folds every worker's remaining
  /// delta, publishes the final snapshot, and returns a copy of the merged
  /// sketch. Idempotent; the first internal error (if any) wins.
  Result<SketchT> Finish() {
    Shutdown();
    MutexLock lock(merge_mu_);
    if (!first_error_.ok()) return first_error_;
    return accumulated_;
  }

  /// The latest published merged sketch. Never null: an empty sketch is
  /// published at construction. Wait-free for readers; the returned
  /// pointer stays valid until the ingestor is destroyed (each published
  /// snapshot is retained for the ingestor's lifetime).
  const SketchT* Snapshot() const { return snapshot_.Read(); }

  /// Publication count: 1 after construction, +1 per periodic or final
  /// fold. A reader that remembers the epoch can poll for freshness.
  uint64_t SnapshotEpoch() const { return snapshot_.Epoch(); }

  /// Items ingested by workers so far (relaxed; exact after Finish).
  uint64_t ItemsIngested() const {
    return items_ingested_.load(std::memory_order_relaxed);
  }

  /// Degradation counters (relaxed reads; exact after Finish).
  IngestStats Stats() const {
    IngestStats stats;
    stats.items_ingested = items_ingested_.load(std::memory_order_relaxed);
    stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
    stats.shed_batches = shed_batches_.load(std::memory_order_relaxed);
    stats.shed_items = shed_items_.load(std::memory_order_relaxed);
    stats.sampled_batches = sampled_batches_.load(std::memory_order_relaxed);
    stats.sampled_items_dropped =
        sampled_items_dropped_.load(std::memory_order_relaxed);
    stats.worker_respawns = worker_respawns_.load(std::memory_order_relaxed);
    stats.abandoned_batches =
        abandoned_batches_.load(std::memory_order_relaxed);
    stats.abandoned_items = abandoned_items_.load(std::memory_order_relaxed);
    stats.publish_failures = publish_failures_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Every item dropped so far, in drop order (requires record_shed; empty
  /// otherwise). Call after Finish for the complete spill.
  std::vector<ItemId> SpilledItems() const {
    MutexLock lock(spill_mu_);
    return spill_;
  }

  size_t threads() const { return options_.threads; }

 private:
  ParallelIngestor(Factory factory, const IngestOptions& options,
                   SketchT accumulated, std::vector<SketchT> locals)
      : options_(options),
        factory_(std::move(factory)),
        queue_(options.queue_batches),
        accumulated_(std::move(accumulated)),
        locals_(std::move(locals)) {
    snapshot_.Publish(std::make_unique<const SketchT>(accumulated_));
    workers_.reserve(options_.threads);
    {
      MutexLock lock(drain_mu_);
      active_workers_ = options_.threads;
    }
    for (size_t w = 0; w < options_.threads; ++w) {
      workers_.emplace_back([this, w] { RunWorker(w); });
    }
  }

  /// Applies the configured overflow behavior to one batch.
  Status PushOne(std::vector<ItemId> batch) SFQ_EXCLUDES(spill_mu_) {
    if (options_.push_timeout_ms == 0) {
      if (!queue_.Push(std::move(batch))) {
        return Status::InvalidArgument(
            "ParallelIngestor::Ingest: already finished");
      }
      return Status::OK();
    }
    QueuePushResult result = queue_.PushWithTimeout(
        &batch, std::chrono::milliseconds(options_.push_timeout_ms));
    if (result == QueuePushResult::kClosed) {
      return Status::InvalidArgument(
          "ParallelIngestor::Ingest: already finished");
    }
    if (result == QueuePushResult::kOk) return Status::OK();

    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    switch (options_.overflow_policy) {
      case OverflowPolicy::kBlock:
        return Status::IoError(
            "ParallelIngestor::Ingest: push deadline exceeded "
            "(queue full; consumer stalled?)");
      case OverflowPolicy::kShed:
        shed_batches_.fetch_add(1, std::memory_order_relaxed);
        shed_items_.fetch_add(batch.size(), std::memory_order_relaxed);
        RecordSpill(batch);
        return Status::OK();
      case OverflowPolicy::kSample: {
        // Deterministic 1-in-k decimation: keep indices 0, k, 2k, ...
        sampled_batches_.fetch_add(1, std::memory_order_relaxed);
        std::vector<ItemId> kept;
        std::vector<ItemId> dropped;
        kept.reserve(batch.size() / options_.sample_keep_one_in + 1);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (i % options_.sample_keep_one_in == 0) {
            kept.push_back(batch[i]);
          } else {
            dropped.push_back(batch[i]);
          }
        }
        sampled_items_dropped_.fetch_add(dropped.size(),
                                         std::memory_order_relaxed);
        RecordSpill(dropped);
        // The decimated batch goes in with classic backpressure: it is
        // 1/k of the load, and dropping it too would be double shedding.
        if (!queue_.Push(std::move(kept))) {
          return Status::InvalidArgument(
              "ParallelIngestor::Ingest: already finished");
        }
        return Status::OK();
      }
    }
    return Status::Internal("ParallelIngestor: unreachable overflow policy");
  }

  void RecordSpill(const std::vector<ItemId>& items) SFQ_EXCLUDES(spill_mu_) {
    if (!options_.record_shed || items.empty()) return;
    MutexLock lock(spill_mu_);
    spill_.insert(spill_.end(), items.begin(), items.end());
  }

  /// Worker thread body: respawn WorkerLoop after every simulated crash
  /// (the crashed iteration has already requeued its in-flight batch, so
  /// no mass is lost and linear-sketch results stay bit-identical).
  void RunWorker(size_t w) SFQ_EXCLUDES(drain_mu_) {
    while (!WorkerLoop(w)) {
      worker_respawns_.fetch_add(1, std::memory_order_relaxed);
    }
    MutexLock lock(drain_mu_);
    --active_workers_;
    drain_cv_.NotifyAll();
  }

  /// Pops batches into this worker's private sketch; folds periodically
  /// when configured and always once at end-of-stream. Returns false iff
  /// the worker "crashed" (fault injection) and must be respawned.
  bool WorkerLoop(size_t w) {
    SketchT* local = &locals_[w];  // single-writer: only this thread
    size_t batches_since_fold = 0;
    while (auto batch = queue_.Pop()) {
      if (abort_drain_.load(std::memory_order_relaxed)) {
        // Drain deadline passed: discard the backlog instead of hanging.
        abandoned_batches_.fetch_add(1, std::memory_order_relaxed);
        abandoned_items_.fetch_add(batch->size(), std::memory_order_relaxed);
        RecordSpill(*batch);
        continue;
      }
      if (const FailDecision fp = SFQ_FAILPOINT("ingestor.worker_batch"); fp) {
        if (fp.action == FailAction::kStall) {
          std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
        } else if (fp.action == FailAction::kCrash) {
          // Die before touching the sketch; the batch goes back first so
          // the respawned worker (or a peer) re-processes it exactly once.
          queue_.Requeue(std::move(*batch));
          return false;
        } else if (fp.action == FailAction::kError) {
          RecordError(Status::Internal(
              "injected failure: ingestor.worker_batch"));
        }
      }
      local->BatchAdd(std::span<const ItemId>(*batch));
      items_ingested_.fetch_add(batch->size(), std::memory_order_relaxed);
      if (options_.publish_every_batches > 0 &&
          ++batches_since_fold >= options_.publish_every_batches) {
        batches_since_fold = 0;
        // Swap the delta out for a fresh empty sketch so the fold never
        // reads state a worker is still writing.
        Result<SketchT> fresh = factory_();
        if (!fresh.ok()) {
          RecordError(fresh.status());
          continue;  // keep accumulating; the final fold picks it up
        }
        SketchT delta = std::exchange(*local, std::move(*fresh));
        FoldAndPublish(delta);
      }
    }
    FoldAndPublish(*local);
    return true;
  }

  /// Merges a worker delta into the accumulator and publishes a copy.
  /// Serialized by merge_mu_; the publication itself never blocks readers.
  void FoldAndPublish(const SketchT& delta) SFQ_EXCLUDES(merge_mu_) {
    MutexLock lock(merge_mu_);
    const Status s = accumulated_.Merge(delta);
    if (!s.ok()) {
      if (first_error_.ok()) first_error_ = s;
      return;
    }
    // A publish fault degrades freshness, never correctness: the merge
    // above already happened, readers just keep the previous snapshot.
    if (const FailDecision fp = SFQ_FAILPOINT("ingestor.publish");
        fp.action == FailAction::kError) {
      publish_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    snapshot_.Publish(std::make_unique<const SketchT>(accumulated_));
  }

  void RecordError(const Status& s) SFQ_EXCLUDES(merge_mu_) {
    MutexLock lock(merge_mu_);
    if (first_error_.ok()) first_error_ = s;
  }

  void Shutdown() SFQ_EXCLUDES(drain_mu_) {
    queue_.Close();
    if (options_.drain_timeout_ms > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.drain_timeout_ms);
      MutexLock lock(drain_mu_);
      while (active_workers_ > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          // Tell workers to discard what remains; they exit promptly since
          // Pop never blocks after Close.
          abort_drain_.store(true, std::memory_order_relaxed);
          break;
        }
        (void)drain_cv_.WaitFor(
            drain_mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - now) +
                           std::chrono::milliseconds(1));
      }
    }
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  const IngestOptions options_;
  const Factory factory_;
  BatchQueue queue_;
  SnapshotCell<SketchT> snapshot_;
  std::atomic<uint64_t> items_ingested_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> shed_batches_{0};
  std::atomic<uint64_t> shed_items_{0};
  std::atomic<uint64_t> sampled_batches_{0};
  std::atomic<uint64_t> sampled_items_dropped_{0};
  std::atomic<uint64_t> worker_respawns_{0};
  std::atomic<uint64_t> abandoned_batches_{0};
  std::atomic<uint64_t> abandoned_items_{0};
  std::atomic<uint64_t> publish_failures_{0};
  std::atomic<bool> abort_drain_{false};

  Mutex merge_mu_;
  SketchT accumulated_ SFQ_GUARDED_BY(merge_mu_);
  Status first_error_ SFQ_GUARDED_BY(merge_mu_);

  mutable Mutex spill_mu_;
  std::vector<ItemId> spill_ SFQ_GUARDED_BY(spill_mu_);

  Mutex drain_mu_;
  CondVar drain_cv_;
  size_t active_workers_ SFQ_GUARDED_BY(drain_mu_) = 0;

  // Not lock-protected by design: slot w is written only by worker w, and
  // the final read happens after the workers are joined.
  // NOLINTNEXTLINE(sfq-unguarded-member): single-writer-per-slot, joined before read
  std::vector<SketchT> locals_;
  std::vector<std::thread> workers_;
};

/// Wraps shared construction parameters into a Factory: every sketch the
/// ingestor builds shares params (and therefore seed and hash functions),
/// which is exactly the Merge compatibility requirement. Works for any
/// SketchT with a static Make(ParamsT) — CountSketch(CountSketchParams),
/// CountMin(CountMinParams), SpaceSaving/MisraGries(capacity).
template <typename SketchT, typename ParamsT>
typename ParallelIngestor<SketchT>::Factory MakeSharedParamsFactory(
    ParamsT params) {
  return [params]() -> Result<SketchT> { return SketchT::Make(params); };
}

/// One-shot convenience: shards `stream` across options.threads workers and
/// returns the merged sketch. For linear sketches the result is identical
/// to sequential ingestion of `stream` at every thread count.
template <typename SketchT>
Result<SketchT> ParallelIngest(std::span<const ItemId> stream,
                               typename ParallelIngestor<SketchT>::Factory factory,
                               const IngestOptions& options) {
  STREAMFREQ_ASSIGN_OR_RETURN(
      std::unique_ptr<ParallelIngestor<SketchT>> ingestor,
      ParallelIngestor<SketchT>::Make(std::move(factory), options));
  STREAMFREQ_RETURN_NOT_OK(ingestor->Ingest(stream));
  return ingestor->Finish();
}

}  // namespace streamfreq
