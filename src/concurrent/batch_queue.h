// Bounded MPMC queue of item batches: the hand-off between stream
// producers and the parallel ingestion workers.
//
// Batches (not single items) are the unit of transfer so that lock traffic
// is amortized over thousands of updates; with the default 8 KiB-item
// batches the queue is invisible in profiles. Producers block while the
// queue is full (backpressure, bounded memory); consumers block while it is
// empty. Close() starts shutdown: producers fail fast, consumers drain the
// remaining batches and then observe end-of-stream.
//
// Overload handling: plain Push blocks indefinitely, which is the right
// default for bounded in-process pipelines but wedges the producer if a
// consumer stalls. TryPush and PushWithTimeout give producers a deadline so
// ParallelIngestor can implement shed/sample overflow policies (see
// docs/ROBUSTNESS.md); both keep ownership of the batch on failure so the
// caller decides whether to drop, downsample, or retry it.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "stream/types.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace streamfreq {

/// Outcome of a non-blocking or deadline-bounded enqueue.
enum class QueuePushResult : uint8_t {
  kOk,        ///< batch enqueued
  kTimedOut,  ///< queue stayed full past the deadline; caller keeps batch
  kClosed,    ///< queue is shut down; caller keeps batch
};

/// A bounded queue of ItemId batches.
class BatchQueue {
 public:
  /// A queue holding at most `max_batches` in-flight batches (>= 1 is
  /// enforced by clamping).
  explicit BatchQueue(size_t max_batches);

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues a batch, blocking while the queue is full. Returns false iff
  /// the queue was closed (the batch is dropped).
  [[nodiscard]] bool Push(std::vector<ItemId> batch);

  /// Enqueues `*batch` only if there is room right now. On kOk the batch
  /// has been moved out; on kTimedOut/kClosed `*batch` is untouched.
  [[nodiscard]] QueuePushResult TryPush(std::vector<ItemId>* batch);

  /// Enqueues `*batch`, waiting up to `timeout` for room. Returns
  /// kTimedOut (batch retained) if the queue is still full at the
  /// deadline — the fix for the stalled-consumer livelock: a producer is
  /// never parked past its deadline even if no consumer ever wakes it.
  [[nodiscard]] QueuePushResult PushWithTimeout(
      std::vector<ItemId>* batch, std::chrono::milliseconds timeout);

  /// Puts a batch back at the *front* of the queue, ignoring the capacity
  /// bound and closed state. Reserved for crash recovery: a respawning
  /// worker returns its in-flight batch so no mass is lost and FIFO order
  /// is disturbed as little as possible. Never blocks.
  void Requeue(std::vector<ItemId> batch);

  /// Dequeues the oldest batch, blocking while the queue is empty. Returns
  /// nullopt once the queue is closed and drained.
  [[nodiscard]] std::optional<std::vector<ItemId>> Pop();

  /// Begins shutdown: wakes every waiter; subsequent Push calls fail and
  /// Pop drains what remains.
  void Close();

  /// Batches currently queued (diagnostic; racy by nature).
  size_t Depth() const;

 private:
  const size_t max_batches_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<std::vector<ItemId>> batches_ SFQ_GUARDED_BY(mu_);
  bool closed_ SFQ_GUARDED_BY(mu_) = false;
};

}  // namespace streamfreq
