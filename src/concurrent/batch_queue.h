// Bounded MPMC queue of item batches: the hand-off between stream
// producers and the parallel ingestion workers.
//
// Batches (not single items) are the unit of transfer so that lock traffic
// is amortized over thousands of updates; with the default 8 KiB-item
// batches the queue is invisible in profiles. Producers block while the
// queue is full (backpressure, bounded memory); consumers block while it is
// empty. Close() starts shutdown: producers fail fast, consumers drain the
// remaining batches and then observe end-of-stream.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "stream/types.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace streamfreq {

/// A bounded queue of ItemId batches.
class BatchQueue {
 public:
  /// A queue holding at most `max_batches` in-flight batches (>= 1 is
  /// enforced by clamping).
  explicit BatchQueue(size_t max_batches);

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues a batch, blocking while the queue is full. Returns false iff
  /// the queue was closed (the batch is dropped).
  [[nodiscard]] bool Push(std::vector<ItemId> batch);

  /// Dequeues the oldest batch, blocking while the queue is empty. Returns
  /// nullopt once the queue is closed and drained.
  [[nodiscard]] std::optional<std::vector<ItemId>> Pop();

  /// Begins shutdown: wakes every waiter; subsequent Push calls fail and
  /// Pop drains what remains.
  void Close();

  /// Batches currently queued (diagnostic; racy by nature).
  size_t Depth() const;

 private:
  const size_t max_batches_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<std::vector<ItemId>> batches_ SFQ_GUARDED_BY(mu_);
  bool closed_ SFQ_GUARDED_BY(mu_) = false;
};

}  // namespace streamfreq
