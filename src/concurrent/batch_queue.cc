#include "concurrent/batch_queue.h"

#include <algorithm>
#include <utility>

namespace streamfreq {

BatchQueue::BatchQueue(size_t max_batches)
    : max_batches_(std::max<size_t>(1, max_batches)) {}

bool BatchQueue::Push(std::vector<ItemId> batch) {
  {
    MutexLock lock(mu_);
    while (!closed_ && batches_.size() >= max_batches_) not_full_.Wait(mu_);
    if (closed_) return false;
    batches_.push_back(std::move(batch));
  }
  not_empty_.NotifyOne();
  return true;
}

std::optional<std::vector<ItemId>> BatchQueue::Pop() {
  std::vector<ItemId> batch;
  {
    MutexLock lock(mu_);
    while (!closed_ && batches_.empty()) not_empty_.Wait(mu_);
    if (batches_.empty()) return std::nullopt;  // closed and drained
    batch = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.NotifyOne();
  return batch;
}

void BatchQueue::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

size_t BatchQueue::Depth() const {
  MutexLock lock(mu_);
  return batches_.size();
}

}  // namespace streamfreq
