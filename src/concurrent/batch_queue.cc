#include "concurrent/batch_queue.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/failpoint.h"

namespace streamfreq {

namespace {

// All producer entry points share one injection site: `error` makes the
// queue look closed to this producer, `stall` delays the hand-off.
bool ApplyPushFailpoint() {
  const FailDecision fp = SFQ_FAILPOINT("batch_queue.push");
  if (fp.action == FailAction::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
  }
  return fp.action == FailAction::kError;
}

// Consumer-side site: `stall` simulates a wedged worker between hand-off
// and processing. Other actions are ignored here (dropping a pop would
// silently lose a batch, which no real fault mode corresponds to).
void ApplyPopFailpoint() {
  const FailDecision fp = SFQ_FAILPOINT("batch_queue.pop");
  if (fp.action == FailAction::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
  }
}

}  // namespace

BatchQueue::BatchQueue(size_t max_batches)
    : max_batches_(std::max<size_t>(1, max_batches)) {}

bool BatchQueue::Push(std::vector<ItemId> batch) {
  if (ApplyPushFailpoint()) return false;
  {
    MutexLock lock(mu_);
    while (!closed_ && batches_.size() >= max_batches_) not_full_.Wait(mu_);
    if (closed_) return false;
    batches_.push_back(std::move(batch));
  }
  not_empty_.NotifyOne();
  return true;
}

QueuePushResult BatchQueue::TryPush(std::vector<ItemId>* batch) {
  if (ApplyPushFailpoint()) return QueuePushResult::kClosed;
  {
    MutexLock lock(mu_);
    if (closed_) return QueuePushResult::kClosed;
    if (batches_.size() >= max_batches_) return QueuePushResult::kTimedOut;
    batches_.push_back(std::move(*batch));
  }
  not_empty_.NotifyOne();
  return QueuePushResult::kOk;
}

QueuePushResult BatchQueue::PushWithTimeout(std::vector<ItemId>* batch,
                                            std::chrono::milliseconds timeout) {
  if (ApplyPushFailpoint()) return QueuePushResult::kClosed;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  {
    MutexLock lock(mu_);
    while (!closed_ && batches_.size() >= max_batches_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return QueuePushResult::kTimedOut;
      // WaitFor may wake spuriously or early; the deadline governs, not the
      // per-wait budget, so the loop re-derives the remaining time.
      (void)not_full_.WaitFor(
          mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                   deadline - now) +
                   std::chrono::milliseconds(1));
    }
    if (closed_) return QueuePushResult::kClosed;
    batches_.push_back(std::move(*batch));
  }
  not_empty_.NotifyOne();
  return QueuePushResult::kOk;
}

void BatchQueue::Requeue(std::vector<ItemId> batch) {
  {
    MutexLock lock(mu_);
    // Deliberately exceeds max_batches_ and ignores closed_: the batch was
    // already admitted once, and recovery must not deadlock against a full
    // queue or lose mass during shutdown drain.
    batches_.push_front(std::move(batch));
  }
  not_empty_.NotifyOne();
}

std::optional<std::vector<ItemId>> BatchQueue::Pop() {
  ApplyPopFailpoint();
  std::vector<ItemId> batch;
  {
    MutexLock lock(mu_);
    while (!closed_ && batches_.empty()) not_empty_.Wait(mu_);
    if (batches_.empty()) return std::nullopt;  // closed and drained
    batch = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.NotifyOne();
  return batch;
}

void BatchQueue::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

size_t BatchQueue::Depth() const {
  MutexLock lock(mu_);
  return batches_.size();
}

}  // namespace streamfreq
