#include "concurrent/batch_queue.h"

#include <algorithm>
#include <utility>

namespace streamfreq {

BatchQueue::BatchQueue(size_t max_batches)
    : max_batches_(std::max<size_t>(1, max_batches)) {}

bool BatchQueue::Push(std::vector<ItemId> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || batches_.size() < max_batches_; });
  if (closed_) return false;
  batches_.push_back(std::move(batch));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<std::vector<ItemId>> BatchQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !batches_.empty(); });
  if (batches_.empty()) return std::nullopt;  // closed and drained
  std::vector<ItemId> batch = std::move(batches_.front());
  batches_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return batch;
}

void BatchQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t BatchQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

}  // namespace streamfreq
