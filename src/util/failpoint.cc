#include "util/failpoint.h"

#include <cstdlib>

namespace streamfreq {

namespace {

// The canonical site list. Adding a site means planting SFQ_FAILPOINT in
// exactly one place, adding its name here, and documenting it in
// docs/ROBUSTNESS.md (sfq-lint's failpoint-site rule checks all three).
const std::vector<std::string>* BuildKnownSites() {
  return new std::vector<std::string>{
      "batch_queue.push",        // producer hand-off (stall, error)
      "batch_queue.pop",         // consumer hand-off (stall)
      "ingestor.worker_batch",   // per popped batch (crash, stall, error)
      "ingestor.publish",        // snapshot fold (error)
      "sketch_io.write",         // payload write (error, torn)
      "sketch_io.rename",        // atomic-rename commit (error)
      "sketch_io.read",          // load path (error, bitflip)
      "server.accept",           // drop a just-accepted connection (error)
      "server.read",             // sever before reading a frame (error)
      "server.write",            // sever before writing a response (error)
      "server.publish",          // withhold a snapshot refresh (error)
      "wal.append",              // journal record write (error, torn, crash)
      "wal.fsync",               // journal durability barrier (error, crash)
      "snapshot.publish",        // tenant snapshot commit (error, crash)
      "dist.ingest",             // leaf admission (error, torn, crash)
      "dist.ship",               // uplink frame (error, torn, bitflip)
      "dist.deliver",            // parent apply (error = drop, old ack)
      "dist.ack",                // downlink ack (error = lost)
      "dist.node",               // merge-tree node (crash = permanent loss)
  };
}

// Local splitmix64 step: util/ sits below hash/, so the generator is
// inlined rather than imported (same constants as hash/random.h).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t* state) {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

Status ParseAction(const std::string& text, FailAction* out) {
  if (text == "off") {
    *out = FailAction::kNone;
  } else if (text == "error") {
    *out = FailAction::kError;
  } else if (text == "stall") {
    *out = FailAction::kStall;
  } else if (text == "crash") {
    *out = FailAction::kCrash;
  } else if (text == "torn") {
    *out = FailAction::kTorn;
  } else if (text == "bitflip") {
    *out = FailAction::kBitFlip;
  } else {
    return Status::InvalidArgument("failpoint: unknown action: " + text);
  }
  return Status::OK();
}

Status ParseUint(const std::string& what, const std::string& text,
                 uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || text.empty()) {
    return Status::InvalidArgument("failpoint: bad " + what + ": " + text);
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

}  // namespace

std::atomic<bool> FailpointRegistry::crash_kills_process_{false};

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

const std::vector<std::string>& FailpointRegistry::KnownSites() {
  static const std::vector<std::string>* sites = BuildKnownSites();
  return *sites;
}

bool FailpointRegistry::IsKnownSite(const std::string& site) {
  for (const std::string& known : KnownSites()) {
    if (known == site) return true;
  }
  return false;
}

Status FailpointRegistry::Configure(const std::string& spec, uint64_t seed) {
  Disarm();
  if (spec.empty()) return Status::OK();

  std::map<std::string, Clause> parsed;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause_text = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause_text.empty()) continue;

    const size_t eq = clause_text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint: clause without '=': " +
                                     clause_text);
    }
    const std::string site = clause_text.substr(0, eq);
    if (!IsKnownSite(site)) {
      return Status::InvalidArgument("failpoint: unknown site: " + site);
    }

    // action[:param][@probability][*count] — suffixes in any order.
    std::string rest = clause_text.substr(eq + 1);
    Clause clause;
    const size_t suffix = rest.find_first_of(":@*");
    std::string action_text =
        suffix == std::string::npos ? rest : rest.substr(0, suffix);
    STREAMFREQ_RETURN_NOT_OK(ParseAction(action_text, &clause.action));
    size_t pos = action_text.size();
    while (pos < rest.size()) {
      const char tag = rest[pos];
      size_t next = rest.find_first_of(":@*", pos + 1);
      if (next == std::string::npos) next = rest.size();
      const std::string value = rest.substr(pos + 1, next - pos - 1);
      pos = next;
      if (tag == ':') {
        STREAMFREQ_RETURN_NOT_OK(ParseUint("param", value, &clause.param));
      } else if (tag == '*') {
        STREAMFREQ_RETURN_NOT_OK(ParseUint("count", value, &clause.max_fires));
        if (clause.max_fires == 0) {
          return Status::InvalidArgument("failpoint: *count must be >= 1");
        }
      } else {  // '@'
        char* num_end = nullptr;
        clause.probability = std::strtod(value.c_str(), &num_end);
        if (num_end == value.c_str() || *num_end != '\0' ||
            !(clause.probability >= 0.0 && clause.probability <= 1.0)) {
          return Status::InvalidArgument("failpoint: probability not in "
                                         "[0, 1]: " + value);
        }
      }
    }
    if (clause.action != FailAction::kNone) {
      parsed[site] = clause;
    }
  }

  MutexLock lock(mu_);
  clauses_ = std::move(parsed);
  rng_state_ = seed ^ 0xFA17F017FA17F017ULL;
  armed_.store(!clauses_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FailpointRegistry::Disarm() {
  MutexLock lock(mu_);
  clauses_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FailDecision FailpointRegistry::Evaluate(const char* site) {
  // The disarmed fast path: one relaxed load, no lock. Production builds
  // that never Configure pay only this.
  if (!armed_.load(std::memory_order_relaxed)) return {};
  MutexLock lock(mu_);
  const auto it = clauses_.find(site);
  if (it == clauses_.end()) return {};
  Clause& clause = it->second;
  if (clause.max_fires > 0 && clause.fires >= clause.max_fires) return {};
  if (clause.probability < 1.0 && NextUnit(&rng_state_) >= clause.probability) {
    return {};
  }
  ++clause.fires;
  FailDecision decision;
  decision.action = clause.action;
  decision.param = clause.param;
  if (clause.action == FailAction::kBitFlip && decision.param == 0) {
    decision.param = NextRandom(&rng_state_);  // site maps onto payload bits
  }
  return decision;
}

uint64_t FailpointRegistry::Fires(const std::string& site) const {
  MutexLock lock(mu_);
  const auto it = clauses_.find(site);
  return it == clauses_.end() ? 0 : it->second.fires;
}

uint64_t FailpointRegistry::TotalFires() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, clause] : clauses_) total += clause.fires;
  return total;
}

}  // namespace streamfreq
