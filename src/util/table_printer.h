// Aligned console tables and CSV output for benchmark harnesses.
//
// Every experiment binary prints its result series both as an aligned table
// (for humans) and optionally as CSV (for plotting), mirroring how the paper
// reports Table 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamfreq {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers
  /// (checked, aborts on mismatch — a harness programming error).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({Format(values)...});
  }

  /// Renders the aligned table to `os`.
  void Print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish: cells containing comma/quote/newline are
  /// quoted) to `os`.
  void PrintCsv(std::ostream& os) const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a value for a cell. Doubles use 4 significant decimals.
  static std::string Format(double v);
  static std::string Format(float v) { return Format(static_cast<double>(v)); }
  static std::string Format(const std::string& v) { return v; }
  static std::string Format(const char* v) { return v; }
  template <typename T>
  static std::string Format(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamfreq
