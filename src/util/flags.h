// Minimal command-line flag parsing for the CLI tools.
//
// Supports `--name=value`, `--name value`, bare boolean `--name`, and
// positional arguments. No registration step: callers query the parsed map
// with typed getters that validate and default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace streamfreq {

/// Parsed command line.
class Flags {
 public:
  /// Parses argv[1..argc). `--` ends flag parsing (the rest is positional).
  /// Fails on malformed flags (e.g. `--=x`).
  static Result<Flags> Parse(int argc, const char* const* argv);

  /// True iff --name was present (with or without a value).
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

  /// Integer flag with default; fails on non-numeric values.
  Result<int64_t> GetInt(const std::string& name, int64_t default_value) const;

  /// Floating-point flag with default; fails on non-numeric values.
  Result<double> GetDouble(const std::string& name, double default_value) const;

  /// Boolean flag: present without value or with value in
  /// {true,1,yes} / {false,0,no}.
  Result<bool> GetBool(const std::string& name, bool default_value) const;

  /// Positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried — callers can reject typos.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace streamfreq
