// Bit-manipulation helpers used by hash tables and sketches.
#pragma once

#include <bit>
#include <cstdint>

namespace streamfreq {

/// 128-bit unsigned integer (GCC/Clang builtin; __extension__ silences the
/// pedantic warning about the non-ISO type).
__extension__ using uint128_t = unsigned __int128;

namespace bit_util {

/// True iff v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v=0 -> 1). Saturates at 2^63.
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  return std::bit_ceil(v);
}

/// floor(log2(v)) for v > 0.
constexpr int FloorLog2(uint64_t v) { return 63 - std::countl_zero(v); }

/// ceil(log2(v)) for v > 0.
constexpr int CeilLog2(uint64_t v) {
  return v <= 1 ? 0 : FloorLog2(v - 1) + 1;
}

/// Rotates x left by r bits.
constexpr uint64_t RotateLeft(uint64_t x, int r) { return std::rotl(x, r); }

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Fast range reduction: maps a uniform 64-bit hash to [0, n) without a
/// modulo (Lemire's multiply-shift trick). Unbiased enough for bucketing.
inline uint64_t FastRange64(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<uint128_t>(hash) * static_cast<uint128_t>(n)) >> 64);
}

}  // namespace bit_util
}  // namespace streamfreq
