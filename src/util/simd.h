// SIMD dispatch: the ONE translation-unit-visible place where instruction-
// set conditionals are allowed (enforced by the sfq-simd-ifdef lint rule).
//
// Everything above this header programs against a fixed-width bundle of
// eight 64-bit lanes (`U64x8`) with exact unsigned two's-complement
// semantics. On GCC/Clang the bundle is a compiler vector type, so the
// same source lowers to AVX-512/AVX2/SSE2/NEON depending on the flags the
// build selected (see STREAMFREQ_SIMD in the top-level CMakeLists.txt); on
// other compilers it degrades to a plain struct-of-lanes that optimizers
// still unroll. Either way the arithmetic is bit-identical — lane math is
// ordinary uint64_t math — which is what lets simd_equivalence_test demand
// exact equality between the scalar and vectorized sketch paths instead of
// a tolerance.
//
// The backend *name* reported by kSimdBackend describes the instruction
// set this translation unit was compiled for. The authoritative value for
// the library hot path is batch_hash::BackendName() (compiled into
// streamfreq_hash, the only library that receives the SIMD flags).
#pragma once

#include <cstdint>
#include <cstring>

#if defined(__AVX512F__) && !defined(STREAMFREQ_FORCE_SCALAR_SIMD)
// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on its own
// _mm512_undefined_epi32 self-initialization idiom under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif

namespace streamfreq {
namespace simd {

// -- backend identification (ifdefs live here and nowhere else) -----------

#if defined(STREAMFREQ_FORCE_SCALAR_SIMD)
inline constexpr const char kSimdBackend[] = "scalar-forced";
#elif defined(__AVX512F__) && defined(__AVX512DQ__)
inline constexpr const char kSimdBackend[] = "avx512";
#elif defined(__AVX2__)
inline constexpr const char kSimdBackend[] = "avx2";
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
inline constexpr const char kSimdBackend[] = "sse2";
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
inline constexpr const char kSimdBackend[] = "neon";
#else
inline constexpr const char kSimdBackend[] = "scalar";
#endif

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(STREAMFREQ_FORCE_SCALAR_SIMD)
#define SFQ_SIMD_VECTOR_EXT 1
#else
#define SFQ_SIMD_VECTOR_EXT 0
#endif

/// Lanes processed per bundle. Eight regardless of ISA: one AVX-512
/// register, two AVX2 registers, four SSE2/NEON registers — the compiler
/// splits as needed, and the kernels in src/hash/batch_hash.cc consume two
/// bundles (16 keys) per iteration.
inline constexpr size_t kLanes = 8;

/// Marks a function whose loops must stay scalar. The kScalar reference
/// kernels live in the same translation unit as the vector kernels and
/// would otherwise be auto-vectorized under the unit's -march flags,
/// which would make the "scalar baseline" rows in BENCH_throughput.json
/// measure a second, accidental SIMD path instead of the historical
/// one-key-at-a-time code.
#if defined(__clang__)
#define SFQ_SIMD_NO_AUTOVEC
#elif defined(__GNUC__)
#define SFQ_SIMD_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SFQ_SIMD_NO_AUTOVEC
#endif

// -- the lane bundle ------------------------------------------------------

#if SFQ_SIMD_VECTOR_EXT

typedef uint64_t U64x8 __attribute__((vector_size(8 * sizeof(uint64_t))));
// Comparison results are a same-sized signed vector; used only as an
// all-ones/all-zeros mask and immediately recast to U64x8.
typedef int64_t I64x8 __attribute__((vector_size(8 * sizeof(int64_t))));

inline U64x8 Broadcast(uint64_t v) {
  return U64x8{v, v, v, v, v, v, v, v};
}

inline U64x8 LoadUnaligned(const uint64_t* p) {
  U64x8 out;
  std::memcpy(&out, p, sizeof(out));
  return out;
}

inline void StoreUnaligned(uint64_t* p, U64x8 v) {
  std::memcpy(p, &v, sizeof(v));
}

/// All-ones mask in lanes where a >= b (unsigned), zero elsewhere.
/// (Vector comparisons yield a same-sized signed vector; the C-style cast
/// is the blessed GCC/Clang idiom for the same-width reinterpret.)
inline U64x8 MaskGe(U64x8 a, U64x8 b) { return (U64x8)(a >= b); }

/// All-ones mask in lanes where a < b (unsigned), zero elsewhere.
inline U64x8 MaskLt(U64x8 a, U64x8 b) { return (U64x8)(a < b); }

inline uint64_t Lane(U64x8 v, size_t i) { return v[i]; }

#else  // portable struct-of-lanes fallback (non-GNU compilers)

struct U64x8 {
  uint64_t lane[8];

  friend U64x8 operator+(U64x8 a, U64x8 b) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend U64x8 operator-(U64x8 a, U64x8 b) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend U64x8 operator*(U64x8 a, U64x8 b) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend U64x8 operator&(U64x8 a, U64x8 b) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] & b.lane[i];
    return r;
  }
  friend U64x8 operator|(U64x8 a, U64x8 b) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] | b.lane[i];
    return r;
  }
  friend U64x8 operator>>(U64x8 a, int s) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] >> s;
    return r;
  }
  friend U64x8 operator<<(U64x8 a, int s) {
    U64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] << s;
    return r;
  }
};

inline U64x8 Broadcast(uint64_t v) {
  U64x8 r;
  for (int i = 0; i < 8; ++i) r.lane[i] = v;
  return r;
}

inline U64x8 LoadUnaligned(const uint64_t* p) {
  U64x8 r;
  std::memcpy(r.lane, p, sizeof(r.lane));
  return r;
}

inline void StoreUnaligned(uint64_t* p, U64x8 v) {
  std::memcpy(p, v.lane, sizeof(v.lane));
}

inline U64x8 MaskGe(U64x8 a, U64x8 b) {
  U64x8 r;
  for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] >= b.lane[i] ? ~0ULL : 0;
  return r;
}

inline U64x8 MaskLt(U64x8 a, U64x8 b) {
  U64x8 r;
  for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? ~0ULL : 0;
  return r;
}

inline uint64_t Lane(U64x8 v, size_t i) { return v.lane[i]; }

#endif  // SFQ_SIMD_VECTOR_EXT

// -- derived arithmetic (ISA-independent, exact) --------------------------

/// Full 64-bit product of the LOW 32-bit halves of each lane (the high
/// halves are ignored). This is the one multiply shape every x86 vector
/// ISA executes natively (vpmuludq, one uop); AVX-512DQ's full 64-bit
/// vpmullq is 3 uops on current cores, and GCC does not pattern-match the
/// masked-limb idiom back to vpmuludq on its own — hence the intrinsic.
inline U64x8 MulLo32(U64x8 a, U64x8 b) {
#if defined(__AVX512F__) && SFQ_SIMD_VECTOR_EXT
  return (U64x8)_mm512_mul_epu32((__m512i)a, (__m512i)b);
#else
  const U64x8 lo32 = Broadcast(0xFFFFFFFFULL);
  return (a & lo32) * (b & lo32);
#endif
}

/// The full 128-bit product a*b per lane, as (low 64, high 64) halves —
/// the vector twin of the scalar __int128 multiply in
/// bit_util::FastRange64 and CarterWegmanHash::Eval. The textbook
/// four-limb decomposition: each 32x32 partial is exact in 64 bits, the
/// carry lane `cross` cannot overflow (max 2^32-1 summands), and the low
/// half's `(lh + hl) << 32` wraps exactly as the product does mod 2^64.
struct U64x8Pair {
  U64x8 lo;
  U64x8 hi;
};

inline U64x8Pair Mul64Wide(U64x8 a, U64x8 b) {
  const U64x8 lo32 = Broadcast(0xFFFFFFFFULL);
  const U64x8 a_hi = a >> 32;
  const U64x8 b_hi = b >> 32;
  const U64x8 ll = MulLo32(a, b);
  const U64x8 lh = MulLo32(a, b_hi);
  const U64x8 hl = MulLo32(a_hi, b);
  const U64x8 hh = MulLo32(a_hi, b_hi);
  const U64x8 cross = (ll >> 32) + (lh & lo32) + (hl & lo32);
  return {ll + ((lh + hl) << 32),
          hh + (lh >> 32) + (hl >> 32) + (cross >> 32)};
}

/// High 64 bits of the full 128-bit product a*b, lane-wise.
inline U64x8 MulHi64(U64x8 a, U64x8 b) { return Mul64Wide(a, b).hi; }

/// Lane-wise FastRange64: maps a uniform 64-bit hash into [0, n) with the
/// same multiply-shift reduction as bit_util::FastRange64.
inline U64x8 FastRange64(U64x8 hash, U64x8 n) { return MulHi64(hash, n); }

/// Lane-wise conditional subtract: a - m where a >= m, else a.
inline U64x8 SubWhereGe(U64x8 a, U64x8 m) { return a - (m & MaskGe(a, m)); }

}  // namespace simd
}  // namespace streamfreq
