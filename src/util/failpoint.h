// Deterministic failpoint injection for chaos testing.
//
// A failpoint is a named site in library code where a fault can be injected
// at runtime: an error return, a stall, a simulated worker crash, a torn
// write, or a flipped bit. Sites are planted with the SFQ_FAILPOINT macro
// and do nothing unless a spec string arms them, so production code paths
// keep their exact shape:
//
//   if (const FailDecision fp = SFQ_FAILPOINT("batch_queue.push");
//       fp.action == FailAction::kError) {
//     return QueuePushResult::kClosed;
//   }
//
// Cost model: with STREAMFREQ_FAILPOINTS compiled OFF the macro expands to
// an empty decision and the branch folds away entirely (zero overhead —
// bench_failpoint_overhead sanity-checks the disarmed path, and
// scripts/check.sh compiles the OFF configuration). Compiled ON but
// disarmed, Evaluate is one relaxed atomic load and a predicted branch.
//
// Spec grammar (see docs/ROBUSTNESS.md):
//
//   spec    := clause (';' clause)*
//   clause  := site '=' action [':' param] ['@' probability] ['*' count]
//   action  := off | error | stall | crash | torn | bitflip
//
//   batch_queue.push=error@0.01           fail 1% of pushes
//   ingestor.worker_batch=crash@0.1*2     kill a worker twice, p=0.1 each
//   sketch_io.write=torn*1                tear exactly one write
//   batch_queue.pop=stall:20              sleep 20 ms on every pop
//
// `param` is action-specific: milliseconds for stall, payload bytes kept
// for torn (0 = half), bit index for bitflip (0 = seeded-random bit).
// Probabilities are resolved by a seeded generator, so a whole chaos
// campaign replays bit-identically from (spec, seed).
//
// Site names must be string literals registered in KnownSites() and
// documented in docs/ROBUSTNESS.md — sfq-lint's failpoint-site rule
// enforces both, and Configure rejects unknown sites so spec typos fail
// loudly instead of silently injecting nothing.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

#include <atomic>

namespace streamfreq {

/// What an armed failpoint tells its site to do.
enum class FailAction : uint8_t {
  kNone = 0,   ///< proceed normally
  kError,      ///< return the site's injected-failure Status/result
  kStall,      ///< sleep `param` milliseconds, then proceed
  kCrash,      ///< simulate the death of the executing worker
  kTorn,       ///< write only a prefix (persistence sites)
  kBitFlip,    ///< flip payload bit `param` (read sites)
};

/// One evaluation's verdict: the action to take plus its parameter.
struct FailDecision {
  FailAction action = FailAction::kNone;
  uint64_t param = 0;  ///< stall ms / torn bytes kept / bit index

  explicit operator bool() const { return action != FailAction::kNone; }
};

/// The process-wide registry of armed failpoints. Thread-safe; Evaluate may
/// be called concurrently from workers, producers, and I/O paths.
class FailpointRegistry {
 public:
  /// The singleton all SFQ_FAILPOINT sites consult.
  static FailpointRegistry& Global();

  /// Arms the registry from a spec string (replacing any previous
  /// configuration) with a deterministic probability stream derived from
  /// `seed`. An empty spec disarms. Unknown sites, actions, or malformed
  /// clauses are InvalidArgument and leave the registry disarmed.
  Status Configure(const std::string& spec, uint64_t seed);

  /// Disarms every site and clears counters.
  void Disarm();

  /// The decision for one arrival at `site`. kNone when disarmed, when the
  /// site has no clause, when the probability roll passes, or when the
  /// clause's fire budget is spent.
  FailDecision Evaluate(const char* site);

  /// Times `site` resolved to a non-kNone action since Configure.
  uint64_t Fires(const std::string& site) const;

  /// Total fires across all sites since Configure.
  uint64_t TotalFires() const;

  /// True iff any clause is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Every site name planted in the library, in stable order. Configure
  /// validates against this list, as does sfq-lint's failpoint-site rule.
  static const std::vector<std::string>& KnownSites();

  /// True iff `site` is in KnownSites().
  static bool IsKnownSite(const std::string& site);

  /// Process-crash mode: when enabled, a kCrash decision at a persistence
  /// site (wal.*, snapshot.publish, sketch_io.*) terminates the whole
  /// process via MaybeDieAtFailpoint instead of being interpreted as a
  /// simulated worker death. Only `sfq serve` turns this on — in-process
  /// tests and the library-level chaos harness must keep running, so the
  /// default is off.
  static void SetCrashKillsProcess(bool enabled) {
    crash_kills_process_.store(enabled, std::memory_order_relaxed);
  }
  static bool CrashKillsProcess() {
    return crash_kills_process_.load(std::memory_order_relaxed);
  }

 private:
  struct Clause {
    FailAction action = FailAction::kNone;
    double probability = 1.0;
    uint64_t param = 0;
    uint64_t max_fires = 0;  ///< 0 = unlimited
    uint64_t fires = 0;
  };

  mutable Mutex mu_;
  std::map<std::string, Clause> clauses_ SFQ_GUARDED_BY(mu_);
  uint64_t rng_state_ SFQ_GUARDED_BY(mu_) = 0;
  // Fast disarmed check so un-armed evaluations never take the mutex.
  std::atomic<bool> armed_{false};
  static std::atomic<bool> crash_kills_process_;
};

/// Kills the process (exit code 137, the SIGKILL convention) when `decision`
/// is kCrash and process-crash mode is on. Persistence sites call this
/// right after evaluating their failpoint so the kill-restart chaos
/// campaign can SIGKILL a real daemon mid-write; everywhere else kCrash
/// keeps its in-process meaning.
inline void MaybeDieAtFailpoint(const FailDecision& decision) {
  if (decision.action == FailAction::kCrash &&
      FailpointRegistry::CrashKillsProcess()) {
    std::_Exit(137);
  }
}

/// RAII arming for tests and the chaos harness: configures the global
/// registry on construction, disarms on destruction. Check status() before
/// relying on the spec having taken effect.
class ScopedFailpoints {
 public:
  ScopedFailpoints(const std::string& spec, uint64_t seed)
      : status_(FailpointRegistry::Global().Configure(spec, seed)) {}
  ~ScopedFailpoints() { FailpointRegistry::Global().Disarm(); }

  STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(ScopedFailpoints);

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace streamfreq

// Plants a failpoint site. `site` must be a string literal registered in
// FailpointRegistry::KnownSites() (enforced by sfq-lint's failpoint-site
// rule). Expands to an empty FailDecision when failpoints are compiled out.
#if STREAMFREQ_FAILPOINTS
#define SFQ_FAILPOINT(site) \
  (::streamfreq::FailpointRegistry::Global().Evaluate(site))
#else
#define SFQ_FAILPOINT(site) (::streamfreq::FailDecision{})
#endif
