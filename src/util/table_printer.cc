#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/logging.h"

namespace streamfreq {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SFQ_CHECK_EQ(cells.size(), headers_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Format(double v) {
  char buf[64];
  // %.4g keeps tables compact while preserving 4 significant digits.
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  PrintCsv(out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace streamfreq
