// Little-endian byte serialization helpers for sketch persistence.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace streamfreq {

/// Appends fixed-width little-endian values to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutU64(bits);
  }

  void PutBytes(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

  /// Length-prefixed byte string: u64 length + raw bytes. The wire form of
  /// every variable-length field (server protocol, manifests).
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutBytes(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads fixed-width little-endian values, tracking underflow as a sticky
/// Corruption status.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU64(uint64_t* v) {
    if (data_.size() < 8) return Status::Corruption("byte buffer underflow");
    std::memcpy(v, data_.data(), 8);
    data_.remove_prefix(8);
    return Status::OK();
  }

  Status GetI64(int64_t* v) {
    uint64_t u;
    STREAMFREQ_RETURN_NOT_OK(GetU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetDouble(double* v) {
    uint64_t bits;
    STREAMFREQ_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(v, &bits, 8);
    return Status::OK();
  }

  /// Reads a PutString-encoded byte string. The declared length is checked
  /// against the bytes actually remaining BEFORE any allocation, so a
  /// corrupt length cannot trigger a giant resize; `max_len` additionally
  /// caps well-formed-but-absurd fields (protocol decoders pass their
  /// frame bound).
  Status GetString(std::string* v, size_t max_len = SIZE_MAX) {
    uint64_t len;
    STREAMFREQ_RETURN_NOT_OK(GetU64(&len));
    if (len > data_.size()) {
      return Status::Corruption("byte string length exceeds buffer");
    }
    if (len > max_len) {
      return Status::Corruption("byte string length exceeds field bound");
    }
    v->assign(data_.data(), static_cast<size_t>(len));
    data_.remove_prefix(static_cast<size_t>(len));
    return Status::OK();
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

}  // namespace streamfreq
