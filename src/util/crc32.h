// CRC-32C (Castagnoli) checksums for on-disk integrity of sketch and trace
// files. Software slice-by-one implementation — file I/O here is not a hot
// path, and the polynomial matches what RocksDB/LevelDB use, including the
// same masking trick for checksums-of-checksums.
#pragma once

#include <cstddef>
#include <cstdint>

namespace streamfreq {
namespace crc32c {

/// Extends `crc` with `data[0, n)`; start from crc = 0.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of a whole buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC so that storing a CRC inside CRC-protected data does not
/// produce degenerate checksums (LevelDB's rotation+offset trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8U;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8U;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace streamfreq
