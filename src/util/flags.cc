#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

namespace streamfreq {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  bool positional_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (positional_only || arg.empty() || arg[0] != '-' || arg == "-") {
      flags.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      positional_only = true;
      continue;
    }
    size_t start = arg.find_first_not_of('-');
    if (start == std::string::npos || start > 2) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    std::string body = arg.substr(start);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) return Status::InvalidArgument("malformed flag: " + arg);
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; else bare
    // boolean.
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return v;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

Result<bool> Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("--" + name + " expects a boolean, got '" + v +
                                 "'");
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace streamfreq
