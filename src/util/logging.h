// Minimal glog-style logging and CHECK macros.
//
// CHECK failures indicate programming errors (precondition violations on
// never-fail paths) and abort; recoverable failures use Status instead.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "util/macros.h"
#include "util/status.h"

namespace streamfreq {
namespace internal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level actually emitted; settable for tests/benchmarks.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(LogMessage);

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement when the level is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace streamfreq

#define STREAMFREQ_LOG_INTERNAL(level)                                    \
  ::streamfreq::internal::LogMessage(::streamfreq::internal::LogLevel::level, \
                                     __FILE__, __LINE__)                  \
      .stream()

#define SFQ_LOG(level) STREAMFREQ_LOG_INTERNAL(k##level)

#define SFQ_CHECK(cond)                                            \
  if (STREAMFREQ_PREDICT_TRUE(cond)) {                             \
  } else /* NOLINT */                                              \
    SFQ_LOG(Fatal) << "Check failed: " #cond " "

#define SFQ_CHECK_OP(op, a, b) SFQ_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define SFQ_CHECK_EQ(a, b) SFQ_CHECK_OP(==, a, b)
#define SFQ_CHECK_NE(a, b) SFQ_CHECK_OP(!=, a, b)
#define SFQ_CHECK_LT(a, b) SFQ_CHECK_OP(<, a, b)
#define SFQ_CHECK_LE(a, b) SFQ_CHECK_OP(<=, a, b)
#define SFQ_CHECK_GT(a, b) SFQ_CHECK_OP(>, a, b)
#define SFQ_CHECK_GE(a, b) SFQ_CHECK_OP(>=, a, b)

#define SFQ_CHECK_OK(expr)                        \
  do {                                            \
    ::streamfreq::Status _st = (expr);            \
    SFQ_CHECK(_st.ok()) << _st.ToString();        \
  } while (0)

#ifndef NDEBUG
#define SFQ_DCHECK(cond) SFQ_CHECK(cond)
#define SFQ_DCHECK_LT(a, b) SFQ_CHECK_LT(a, b)
#define SFQ_DCHECK_LE(a, b) SFQ_CHECK_LE(a, b)
#define SFQ_DCHECK_GE(a, b) SFQ_CHECK_GE(a, b)
#else
#define SFQ_DCHECK(cond) \
  while (false) SFQ_CHECK(cond)
#define SFQ_DCHECK_LT(a, b) \
  while (false) SFQ_CHECK_LT(a, b)
#define SFQ_DCHECK_LE(a, b) \
  while (false) SFQ_CHECK_LE(a, b)
#define SFQ_DCHECK_GE(a, b) \
  while (false) SFQ_CHECK_GE(a, b)
#endif
