// Wall-clock timing helpers for benchmarks and the experiment runner.
#pragma once

#include <chrono>
#include <cstdint>

namespace streamfreq {

/// A monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds (floating point).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Elapsed time in milliseconds (floating point).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamfreq
