#include "util/status.h"

namespace streamfreq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace streamfreq
