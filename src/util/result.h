// Result<T>: a value or an error Status (Arrow's Result / absl::StatusOr).
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace streamfreq {

/// Holds either a successfully-computed T or the Status explaining why it
/// could not be computed. Never holds an OK status without a value.
///
/// [[nodiscard]] at class level: discarding a Result discards both the value
/// and the error, so it is a compile error under -Werror (see status.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::InvalidArgument(...)`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const noexcept { return value_.has_value(); }

  /// The error status; Status::OK() when a value is present.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Accesses the value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alternative` when in the error state.
  T ValueOr(T alternative) const& {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace streamfreq
