// Annotated synchronization primitives for the clang thread-safety analysis.
//
// std::mutex and std::lock_guard carry no capability attributes, so code
// built directly on them is invisible to `-Werror=thread-safety`: a member
// read outside its lock compiles clean. These thin wrappers restore
// visibility — Mutex is a capability, MutexLock a scoped acquisition, and
// CondVar::Wait declares that the mutex must already be held — so every
// SFQ_GUARDED_BY member in the tree is checked at compile time under clang
// (see docs/STATIC_ANALYSIS.md). Under other compilers the annotations
// vanish and the wrappers compile down to the std primitives they hold.
//
// CondVar wraps std::condition_variable_any (Mutex is BasicLockable, not
// std::mutex); the extra indirection is noise here because all waiters are
// batch-granular (thousands of items per queue operation).
//
// sfq-lint's raw-mutex rule enforces that new code uses these wrappers
// instead of <mutex> primitives everywhere outside this header.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/macros.h"

namespace streamfreq {

/// A standard mutex, annotated as a thread-safety capability.
class SFQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() SFQ_ACQUIRE() { mu_.lock(); }
  void Unlock() SFQ_RELEASE() { mu_.unlock(); }
  bool TryLock() SFQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any (and
  // std::scoped_lock) can drive a Mutex directly.
  void lock() SFQ_ACQUIRE() { mu_.lock(); }
  void unlock() SFQ_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock, annotated so the analysis knows the capability is held for
/// exactly this scope (the std::lock_guard equivalent).
class SFQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SFQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SFQ_RELEASE() { mu_.Unlock(); }

  STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  Mutex& mu_;
};

/// Condition variable bound to an annotated Mutex. Wait requires the mutex
/// (checked under clang); use the classic while-loop form at call sites so
/// the guarded predicate is re-checked under the lock:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases `mu`, sleeps, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) SFQ_REQUIRES(mu) { cv_.wait(mu); }

  /// Like Wait but gives up after `timeout`. Returns false on timeout, true
  /// on notify/spurious wakeup — callers still re-check their predicate and
  /// track the deadline themselves (a deadline, not a per-wait budget).
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      SFQ_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace streamfreq
