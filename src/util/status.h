// Arrow/RocksDB-style Status for fallible operations.
//
// Hot paths (sketch updates/queries) never return Status; it is reserved for
// construction-time validation, I/O, and (de)serialization.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "util/macros.h"

namespace streamfreq {

/// Error categories roughly mirroring the failure modes of the library.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kIoError = 3,
  kNotFound = 4,
  kCorruption = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns a human-readable name for a StatusCode ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to pass around: the OK state is a null
/// pointer, errors allocate a small state block.
///
/// The class-level [[nodiscard]] makes every function returning a Status by
/// value unignorable: a dropped error is a compile error under -Werror (and
/// sfq-lint's nodiscard-decl rule keeps the attribute from regressing).
/// Intentional discards must spell out `(void)` plus a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, Arrow-style.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace streamfreq
