#include "util/crc32.h"

#include <array>

namespace streamfreq {
namespace crc32c {

namespace {

// Table for the reflected CRC-32C polynomial 0x1EDC6F41.
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78U;  // reflected Castagnoli
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t state = crc ^ 0xFFFFFFFFU;
  for (size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ p[i]) & 0xFF] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFU;
}

}  // namespace crc32c
}  // namespace streamfreq
