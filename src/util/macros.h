// Common macros used across streamfreq.
#pragma once

// Marks a branch as unlikely for the optimizer (used on error paths so hot
// paths stay straight-line).
#if defined(__GNUC__) || defined(__clang__)
#define STREAMFREQ_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define STREAMFREQ_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define STREAMFREQ_PREDICT_FALSE(x) (x)
#define STREAMFREQ_PREDICT_TRUE(x) (x)
#endif

#define STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;                 \
  TypeName& operator=(const TypeName&) = delete

// Propagates a non-OK Status from an expression, Arrow-style.
#define STREAMFREQ_RETURN_NOT_OK(expr)                  \
  do {                                                  \
    ::streamfreq::Status _st = (expr);                  \
    if (STREAMFREQ_PREDICT_FALSE(!_st.ok())) return _st; \
  } while (0)

#define STREAMFREQ_CONCAT_IMPL(x, y) x##y
#define STREAMFREQ_CONCAT(x, y) STREAMFREQ_CONCAT_IMPL(x, y)

// ---------------------------------------------------------------------------
// Clang thread-safety analysis annotations (no-ops elsewhere).
//
// These drive `-Werror=thread-safety` in the clang analysis configuration
// (see STREAMFREQ_THREAD_SAFETY in CMakeLists.txt and scripts/lint.sh):
// a member declared SFQ_GUARDED_BY(mu_) may only be touched while mu_ is
// held, and the compiler proves it at every call site. Apply them through
// the annotated wrappers in util/mutex.h — raw std::mutex is invisible to
// the analysis (and flagged by sfq-lint's raw-mutex rule).
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#define SFQ_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define SFQ_THREAD_ANNOTATION_IMPL(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define SFQ_CAPABILITY(x) SFQ_THREAD_ANNOTATION_IMPL(capability(x))
/// Declares an RAII type whose lifetime holds a capability.
#define SFQ_SCOPED_CAPABILITY SFQ_THREAD_ANNOTATION_IMPL(scoped_lockable)
/// The annotated member may only be accessed while `x` is held.
#define SFQ_GUARDED_BY(x) SFQ_THREAD_ANNOTATION_IMPL(guarded_by(x))
/// The pointee of the annotated pointer is protected by `x`.
#define SFQ_PT_GUARDED_BY(x) SFQ_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))
/// The annotated mutex must be acquired after the listed mutexes. This both
/// feeds clang's analysis and declares a lock-graph edge sfq-lint's
/// lock-order pass checks the lexical nesting against.
#define SFQ_ACQUIRED_AFTER(...) \
  SFQ_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))
/// The annotated function must be called with the capability held.
#define SFQ_REQUIRES(...) \
  SFQ_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
/// The annotated function acquires the capability and holds it on return.
#define SFQ_ACQUIRE(...) \
  SFQ_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
/// The annotated function releases the capability.
#define SFQ_RELEASE(...) \
  SFQ_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
/// The annotated function acquires the capability iff it returns `b`.
#define SFQ_TRY_ACQUIRE(b, ...) \
  SFQ_THREAD_ANNOTATION_IMPL(try_acquire_capability(b, __VA_ARGS__))
/// The annotated function must NOT be called with the capability held.
#define SFQ_EXCLUDES(...) SFQ_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))
/// The annotated function returns a reference to the named capability.
#define SFQ_RETURN_CAPABILITY(x) SFQ_THREAD_ANNOTATION_IMPL(lock_returned(x))
/// Opts a function out of the analysis (document why at each use).
#define SFQ_NO_THREAD_SAFETY_ANALYSIS \
  SFQ_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status.
#define STREAMFREQ_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto STREAMFREQ_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (STREAMFREQ_PREDICT_FALSE(!STREAMFREQ_CONCAT(_res_, __LINE__).ok())) \
    return STREAMFREQ_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(STREAMFREQ_CONCAT(_res_, __LINE__)).ValueOrDie()
