// Common macros used across streamfreq.
#pragma once

// Marks a branch as unlikely for the optimizer (used on error paths so hot
// paths stay straight-line).
#if defined(__GNUC__) || defined(__clang__)
#define STREAMFREQ_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define STREAMFREQ_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define STREAMFREQ_PREDICT_FALSE(x) (x)
#define STREAMFREQ_PREDICT_TRUE(x) (x)
#endif

#define STREAMFREQ_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;                 \
  TypeName& operator=(const TypeName&) = delete

// Propagates a non-OK Status from an expression, Arrow-style.
#define STREAMFREQ_RETURN_NOT_OK(expr)                  \
  do {                                                  \
    ::streamfreq::Status _st = (expr);                  \
    if (STREAMFREQ_PREDICT_FALSE(!_st.ok())) return _st; \
  } while (0)

#define STREAMFREQ_CONCAT_IMPL(x, y) x##y
#define STREAMFREQ_CONCAT(x, y) STREAMFREQ_CONCAT_IMPL(x, y)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status.
#define STREAMFREQ_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto STREAMFREQ_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (STREAMFREQ_PREDICT_FALSE(!STREAMFREQ_CONCAT(_res_, __LINE__).ok())) \
    return STREAMFREQ_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(STREAMFREQ_CONCAT(_res_, __LINE__)).ValueOrDie()
