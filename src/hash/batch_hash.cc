#include "hash/batch_hash.h"

#include "util/simd.h"

namespace streamfreq {
namespace batch_hash {
namespace {

using simd::Broadcast;
using simd::LoadUnaligned;
using simd::MaskLt;
using simd::StoreUnaligned;
using simd::U64x8;

/// Lane-wise CarterWegmanHash::Eval, operation-for-operation:
///   xr = x >= p ? x - p : x
///   v  = a * xr + b                      (full 128-bit product + carry)
///   ModMersenne61(v)                     (two shift-add folds + one
///                                         conditional subtract)
/// Each lane's arithmetic is the scalar arithmetic, so the result is
/// bit-identical to h.Eval(x) for every key.
// sfq-hot-path
inline U64x8 CwEval(U64x8 x, U64x8 a, U64x8 b, U64x8 p) {
  const U64x8 xr = simd::SubWhereGe(x, p);
  // One widening multiply yields both halves of a*xr from shared partial
  // products (4 vpmuludq on AVX-512 instead of 5 vpmullq).
  const simd::U64x8Pair prod = simd::Mul64Wide(a, xr);
  U64x8 hi_prod = prod.hi;
  const U64x8 lo = prod.lo + b;
  // 128-bit carry of the +b: lanes where lo wrapped below b.
  hi_prod = hi_prod - MaskLt(lo, b);  // mask is all-ones == -1 per lane
  const U64x8 lo61 = lo & p;
  const U64x8 hi61 = (lo >> 61) | (hi_prod << 3);  // low 64 of v >> 61
  U64x8 r = lo61 + hi61;                           // < 2^63
  r = (r & p) + (r >> 61);
  return simd::SubWhereGe(r, p);
}

/// Lane-wise MultiplyShiftHash::Mix: a*x + b mod 2^64.
// sfq-hot-path
inline U64x8 MsMix(U64x8 x, U64x8 a, U64x8 b) { return a * x + b; }

/// ±1 from bit `shift` of the lane-wise hash value: bit set -> +1, clear
/// -> -1 (matches CarterWegmanHash::Sign / MultiplyShiftHash::Sign).
// sfq-hot-path
inline U64x8 SignFromBit(U64x8 v, int shift) {
  const U64x8 bit = (v >> shift) & Broadcast(1);
  return (bit << 1) - Broadcast(1);  // 1 -> +1, 0 -> ~0 (== -1 as int64)
}

/// Stores a U64x8 of ±1 lanes into an int64_t output block.
// sfq-hot-path
inline void StoreSigns(int64_t* out, U64x8 s) {
  StoreUnaligned(reinterpret_cast<uint64_t*>(out), s);
}

/// Scalar reference loops. SFQ_SIMD_NO_AUTOVEC keeps the compiler from
/// auto-vectorizing them under this TU's -march flags: the kScalar
/// backend must measure (and replicate) the historical one-key-at-a-time
/// path, not an accidental second SIMD path. Also used for the sub-bundle
/// tails of the vectorized kernels.
// sfq-hot-path
template <typename HashT>
SFQ_SIMD_NO_AUTOVEC void ScalarBuckets(const HashT& h, const uint64_t* keys,
                                       size_t n, uint64_t range,
                                       uint64_t* out_bucket) {
  for (size_t i = 0; i < n; ++i) out_bucket[i] = h.Bucket(keys[i], range);
}

// sfq-hot-path
template <typename HashT>
SFQ_SIMD_NO_AUTOVEC void ScalarBucketsAndSigns(const HashT& hb,
                                               const HashT& hs,
                                               const uint64_t* keys, size_t n,
                                               uint64_t range,
                                               uint64_t* out_bucket,
                                               int64_t* out_sign) {
  for (size_t i = 0; i < n; ++i) {
    out_bucket[i] = hb.Bucket(keys[i], range);
    out_sign[i] = hs.Sign(keys[i]);
  }
}

}  // namespace

const char* BackendName() { return simd::kSimdBackend; }

// -- CarterWegman ----------------------------------------------------------

// sfq-hot-path
void Buckets(const CarterWegmanHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket, Backend backend) {
  const size_t n = keys.size();
  size_t i = 0;
  if (backend == Backend::kVectorized) {
    const U64x8 a = Broadcast(h.a());
    const U64x8 b = Broadcast(h.b());
    const U64x8 p = Broadcast(kMersenne61);
    const U64x8 r = Broadcast(range);
    for (; i + kBlock <= n; i += kBlock) {
      const U64x8 e0 = CwEval(LoadUnaligned(keys.data() + i), a, b, p);
      const U64x8 e1 =
          CwEval(LoadUnaligned(keys.data() + i + simd::kLanes), a, b, p);
      StoreUnaligned(out_bucket + i, simd::FastRange64(e0 << 3, r));
      StoreUnaligned(out_bucket + i + simd::kLanes,
                     simd::FastRange64(e1 << 3, r));
    }
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      const U64x8 e = CwEval(LoadUnaligned(keys.data() + i), a, b, p);
      StoreUnaligned(out_bucket + i, simd::FastRange64(e << 3, r));
    }
  }
  ScalarBuckets(h, keys.data() + i, n - i, range, out_bucket + i);
}

// sfq-hot-path
void BucketsAndSigns(const CarterWegmanHash& hb, const CarterWegmanHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend backend) {
  const size_t n = keys.size();
  size_t i = 0;
  if (backend == Backend::kVectorized) {
    const U64x8 ab = Broadcast(hb.a());
    const U64x8 bb = Broadcast(hb.b());
    const U64x8 as = Broadcast(hs.a());
    const U64x8 bs = Broadcast(hs.b());
    const U64x8 p = Broadcast(kMersenne61);
    const U64x8 r = Broadcast(range);
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      const U64x8 x = LoadUnaligned(keys.data() + i);
      const U64x8 eb = CwEval(x, ab, bb, p);
      const U64x8 es = CwEval(x, as, bs, p);
      StoreUnaligned(out_bucket + i, simd::FastRange64(eb << 3, r));
      StoreSigns(out_sign + i, SignFromBit(es, 60));
    }
  }
  ScalarBucketsAndSigns(hb, hs, keys.data() + i, n - i, range, out_bucket + i,
                        out_sign + i);
}

// -- MultiplyShift ---------------------------------------------------------

// sfq-hot-path
void Buckets(const MultiplyShiftHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket, Backend backend) {
  const size_t n = keys.size();
  size_t i = 0;
  if (backend == Backend::kVectorized) {
    const U64x8 a = Broadcast(h.a());
    const U64x8 b = Broadcast(h.b());
    const U64x8 r = Broadcast(range);
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      const U64x8 mix = MsMix(LoadUnaligned(keys.data() + i), a, b);
      StoreUnaligned(out_bucket + i, simd::FastRange64(mix, r));
    }
  }
  ScalarBuckets(h, keys.data() + i, n - i, range, out_bucket + i);
}

// sfq-hot-path
void BucketsAndSigns(const MultiplyShiftHash& hb, const MultiplyShiftHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend backend) {
  const size_t n = keys.size();
  size_t i = 0;
  if (backend == Backend::kVectorized) {
    const U64x8 ab = Broadcast(hb.a());
    const U64x8 bb = Broadcast(hb.b());
    const U64x8 as = Broadcast(hs.a());
    const U64x8 bs = Broadcast(hs.b());
    const U64x8 r = Broadcast(range);
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      const U64x8 x = LoadUnaligned(keys.data() + i);
      StoreUnaligned(out_bucket + i, simd::FastRange64(MsMix(x, ab, bb), r));
      StoreSigns(out_sign + i, SignFromBit(MsMix(x, as, bs), 63));
    }
  }
  ScalarBucketsAndSigns(hb, hs, keys.data() + i, n - i, range, out_bucket + i,
                        out_sign + i);
}

// -- Tabulation (scalar on every backend; see header) ----------------------

// sfq-hot-path
void Buckets(const TabulationHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket, Backend /*backend*/) {
  ScalarBuckets(h, keys.data(), keys.size(), range, out_bucket);
}

// sfq-hot-path
void BucketsAndSigns(const TabulationHash& hb, const TabulationHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend /*backend*/) {
  ScalarBucketsAndSigns(hb, hs, keys.data(), keys.size(), range, out_bucket,
                        out_sign);
}

}  // namespace batch_hash
}  // namespace streamfreq
