// Pairwise-independent hash functions.
//
// The Count-Sketch analysis (Lemmas 1-5 of the paper) requires the bucket
// hashes h_i : O -> [b] and the sign hashes s_i : O -> {+1,-1} to be
// pairwise independent, with all functions mutually independent. The
// Carter-Wegman construction h(x) = ((a*x + b) mod p) over the Mersenne
// prime p = 2^61 - 1 provides exactly this guarantee for 61-bit keys;
// range reduction to [b] and the sign bit introduce an O(1/p) bias that is
// negligible at any realistic scale (documented, tested statistically).
//
// A faster multiply-shift family and tabulation hashing are provided for the
// ablation benchmarks (E11).
#pragma once

#include <cstdint>

#include "hash/mixers.h"
#include "hash/random.h"
#include "util/bit_util.h"

namespace streamfreq {

/// The Mersenne prime 2^61 - 1 used as the Carter-Wegman field size.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduces a 128-bit value modulo 2^61 - 1 using two shift-add folds.
inline uint64_t ModMersenne61(uint128_t v) {
  // v < 2^123 in all our uses (a, x < 2^61, so a*x + b < 2^122 + 2^61).
  uint64_t lo = static_cast<uint64_t>(v) & kMersenne61;
  uint64_t hi = static_cast<uint64_t>(v >> 61);  // < 2^62
  uint64_t r = lo + hi;                          // < 2^63
  r = (r & kMersenne61) + (r >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// A Carter-Wegman degree-1 hash: x -> (a*x + b) mod (2^61 - 1).
/// Pairwise independent over keys in [0, 2^61 - 1).
class CarterWegmanHash {
 public:
  CarterWegmanHash() : a_(1), b_(0) {}

  /// Draws fresh (a, b) parameters from `seeder`; a is non-zero mod p.
  explicit CarterWegmanHash(SplitMix64& seeder) {
    do {
      a_ = seeder.Next() & kMersenne61;
    } while (a_ == 0);
    b_ = seeder.Next() & kMersenne61;
  }

  /// Evaluates the raw field hash in [0, 2^61 - 1).
  uint64_t Eval(uint64_t x) const {
    // Keys wider than 61 bits are pre-mixed and folded into the field; the
    // fold loses pairwise independence only for key pairs colliding mod p,
    // a ~2^-61 event for mixed keys.
    uint64_t xr = x >= kMersenne61 ? x - kMersenne61 : x;
    return ModMersenne61(static_cast<uint128_t>(a_) * xr + b_);
  }

  /// Hashes into [0, range).
  uint64_t Bucket(uint64_t x, uint64_t range) const {
    return bit_util::FastRange64(Eval(x) << 3, range);
  }

  /// Returns +1 or -1 (a near-unbiased pairwise-independent sign).
  int64_t Sign(uint64_t x) const {
    return (Eval(x) >> 60) & 1 ? +1 : -1;
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  /// Reconstructs a hash from stored parameters (deserialization).
  static CarterWegmanHash FromParams(uint64_t a, uint64_t b) {
    CarterWegmanHash h;
    h.a_ = a;
    h.b_ = b;
    return h;
  }

 private:
  uint64_t a_;
  uint64_t b_;
};

/// Dietzfelbinger multiply-shift: x -> (a*x + b) >> (64 - l) for buckets of
/// size 2^l. 2-universal, the fastest family here; used in ablations.
class MultiplyShiftHash {
 public:
  MultiplyShiftHash() : a_(1), b_(0) {}

  explicit MultiplyShiftHash(SplitMix64& seeder)
      : a_(seeder.NextNonZero() | 1), b_(seeder.Next()) {}

  /// Hashes into [0, range). Range need not be a power of two (uses the full
  /// 64-bit product high half, then FastRange).
  uint64_t Bucket(uint64_t x, uint64_t range) const {
    return bit_util::FastRange64(Mix(x), range);
  }

  /// Returns +1 or -1 from the top bit of an independent mix.
  int64_t Sign(uint64_t x) const { return (Mix(x) >> 63) ? +1 : -1; }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static MultiplyShiftHash FromParams(uint64_t a, uint64_t b) {
    MultiplyShiftHash h;
    h.a_ = a | 1;
    h.b_ = b;
    return h;
  }

 private:
  uint64_t Mix(uint64_t x) const { return a_ * x + b_; }

  uint64_t a_;  // odd
  uint64_t b_;
};

/// Simple tabulation hashing over 8 byte-indexed tables. 3-independent and
/// behaves like full independence in most applications (Patrascu-Thorup).
class TabulationHash {
 public:
  TabulationHash() : tables_{} {}

  explicit TabulationHash(SplitMix64& seeder) {
    for (auto& table : tables_) {
      for (auto& cell : table) cell = seeder.Next();
    }
  }

  /// Evaluates the full 64-bit tabulation hash.
  uint64_t Eval(uint64_t x) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xFF];
    }
    return h;
  }

  /// Hashes into [0, range).
  uint64_t Bucket(uint64_t x, uint64_t range) const {
    return bit_util::FastRange64(Eval(x), range);
  }

  /// Returns +1 or -1.
  int64_t Sign(uint64_t x) const { return (Eval(x) >> 63) ? +1 : -1; }

 private:
  uint64_t tables_[8][256];
};

}  // namespace streamfreq
