// Seeded 64-bit hashing of byte strings (typed-adapter substrate).
//
// Maps arbitrary-length keys (query strings, flow 5-tuples, ...) to the
// 64-bit ItemId domain the sketches operate on. This is a fast Murmur-style
// block hash with strong avalanche; collisions at 64 bits are negligible for
// laptop-scale universes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "hash/mixers.h"

namespace streamfreq {

/// Hashes `data` with `seed`. Deterministic across runs and platforms of the
/// same endianness.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * 0xC6A4A7935BD1E995ULL);
  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k = Fmix64(k);
    h = (h ^ k) * 0x9DDFEA08EB382D69ULL;
    h = Moremur64(h);
    p += 8;
    len -= 8;
  }
  if (len > 0) {
    uint64_t k = 0;
    std::memcpy(&k, p, len);
    h ^= Fmix64(k ^ len);
  }
  return Fmix64(h);
}

/// Hashes a string view with `seed`.
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace streamfreq
