// Fixed 64-bit mixing functions (finalizers).
#pragma once

#include <cstdint>

namespace streamfreq {

/// MurmurHash3's 64-bit finalizer: a fast bijective mixer with good
/// avalanche. Used to decorrelate sequential item ids before hashing.
constexpr uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// Moremur (Pelle Evensen): a slightly stronger bijective mixer.
constexpr uint64_t Moremur64(uint64_t x) {
  x ^= x >> 27;
  x *= 0x3C79AC492BA7B653ULL;
  x ^= x >> 33;
  x *= 0x1C69B3F74AC4AE35ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace streamfreq
