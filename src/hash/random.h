// Deterministic pseudo-random number generation.
//
// All randomness in streamfreq flows from explicit 64-bit seeds so that every
// experiment is reproducible run-to-run. SplitMix64 expands a single seed
// into independent sub-seeds; Xoshiro256** is the workhorse engine and
// satisfies std::uniform_random_bit_generator so it composes with <random>
// distributions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/bit_util.h"

namespace streamfreq {

/// SplitMix64: a tiny, high-quality seed expander (Steele, Lea, Flood 2014).
/// Each Next() returns an independent-looking 64-bit value; primarily used to
/// derive sub-seeds for hash functions and engines.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Returns the next output, guaranteed non-zero (hash parameter seeds).
  uint64_t NextNonZero() {
    uint64_t v;
    do {
      v = Next();
    } while (v == 0);
    return v;
  }

 private:
  uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna): fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() {
    const uint64_t result = bit_util::RotateLeft(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = bit_util::RotateLeft(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, n) via Lemire's multiply-shift reduction.
  uint64_t UniformBelow(uint64_t n) { return bit_util::FastRange64((*this)(), n); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace streamfreq
