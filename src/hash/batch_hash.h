// Batched row-hash evaluation: the SIMD half of the sketch ingest hot path.
//
// A sketch's BatchAdd splits per row into two phases: (1) hash a block of
// keys to bucket indices (and, for Count-Sketch, ±1 signs), then (2)
// scatter counter updates. Phase 1 is pure lane-parallel integer math and
// is what these kernels vectorize — 16 keys per iteration as two
// simd::U64x8 bundles; phase 2 stays scalar because the bucket indices are
// data-dependent (a gather/scatter would serialize on conflicts anyway).
//
// Every kernel has two selectable backends:
//   kScalar      one key at a time through the hash class's own
//                Bucket()/Sign() — the reference semantics.
//   kVectorized  the simd::U64x8 pipeline. Exact lane math (Mersenne
//                fold, FastRange reduction) mirrors the scalar code
//                operation for operation, so results are bit-identical —
//                asserted exhaustively by tests/simd_equivalence_test.cc.
// TabulationHash is the documented exception: its byte-indexed table
// lookups do not vectorize profitably without gather hardware, so its
// kVectorized backend is the scalar loop (see the dispatch matrix in
// docs/PERFORMANCE.md).
//
// The kernels are compiled ONCE, into streamfreq_hash, which is the only
// library target that receives the STREAMFREQ_SIMD instruction-set flags.
// Callers (core sketches, tests, benches) always link the same code, so
// BackendName() is authoritative for the whole process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "hash/pairwise.h"

namespace streamfreq {
namespace batch_hash {

/// Which implementation a caller wants. kVectorized is the default hot
/// path; kScalar is the reference used for equivalence tests and the
/// scalar-baseline benchmark rows in BENCH_throughput.json.
enum class Backend : uint8_t { kScalar, kVectorized };

/// Keys consumed per kernel iteration (two simd::U64x8 bundles). The
/// kernels accept spans of any length; callers staging outputs on the
/// stack pick a multiple of this (the sketches use 1024-key stripes to
/// amortize the call across many blocks).
inline constexpr size_t kBlock = 16;

/// The instruction set the kernels in this library were compiled for:
/// "avx512", "avx2", "sse2", "neon", or "scalar". Reported in
/// BENCH_throughput.json and `sfq sketch --json`.
const char* BackendName();

/// out_bucket[i] = h.Bucket(keys[i], range) for every key.
void Buckets(const CarterWegmanHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket,
             Backend backend = Backend::kVectorized);
void Buckets(const MultiplyShiftHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket,
             Backend backend = Backend::kVectorized);
void Buckets(const TabulationHash& h, std::span<const uint64_t> keys,
             uint64_t range, uint64_t* out_bucket,
             Backend backend = Backend::kVectorized);

/// out_bucket[i] = hb.Bucket(keys[i], range), out_sign[i] = hs.Sign(keys[i])
/// for every key — the fused Count-Sketch row evaluation (one pass over the
/// keys instead of two).
void BucketsAndSigns(const CarterWegmanHash& hb, const CarterWegmanHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend backend = Backend::kVectorized);
void BucketsAndSigns(const MultiplyShiftHash& hb, const MultiplyShiftHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend backend = Backend::kVectorized);
void BucketsAndSigns(const TabulationHash& hb, const TabulationHash& hs,
                     std::span<const uint64_t> keys, uint64_t range,
                     uint64_t* out_bucket, int64_t* out_sign,
                     Backend backend = Backend::kVectorized);

}  // namespace batch_hash
}  // namespace streamfreq
