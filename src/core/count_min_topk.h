// Count-Min + tracked top-l set: the Count-Min analogue of the paper's
// Section 3.2 algorithm, used as the sketch-vs-sketch comparator.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/count_min.h"
#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// Count-Min sketch with heap-based candidate tracking.
class CountMinTopK final : public StreamSummary {
 public:
  /// Builds the algorithm over a Count-Min with `sketch_params`, tracking
  /// `tracked` candidates.
  static Result<CountMinTopK> Make(const CountMinParams& sketch_params,
                                   size_t tracked);

  std::string Name() const override;

  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Tracked count for tracked items, sketch upper bound otherwise.
  Count Estimate(ItemId item) const override;

  std::vector<ItemCount> Candidates(size_t k) const override;

  const CountMin& sketch() const { return sketch_; }
  size_t SpaceBytes() const override;

 private:
  CountMinTopK(CountMin sketch, size_t tracked);

  CountMin sketch_;
  size_t capacity_;
  std::unordered_map<ItemId, Count> tracked_;
  std::set<std::pair<Count, ItemId>> by_count_;
};

}  // namespace streamfreq
