// Typed adapter: run the frequent-items machinery over real keys (query
// strings, URLs, flow tuples) instead of raw 64-bit ids.
//
// Keys are hashed to ItemId with a seeded 64-bit string hash; the adapter
// stores the original key only for items currently tracked by the
// underlying algorithm (the paper's Section 5 point: Count-Sketch stores
// just k objects, unlike SAMPLING's potentially huge distinct sample), so
// the space overhead stays O(l * key size).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/top_k_tracker.h"
#include "hash/string_hash.h"
#include "util/result.h"

namespace streamfreq {

/// A reported (key, estimated count) pair.
struct KeyCount {
  std::string key;
  Count count;
};

/// Count-Sketch top-k over string keys.
class StringTopK {
 public:
  /// Builds the adapter over a CountSketchTopK with the given parameters.
  static Result<StringTopK> Make(const CountSketchParams& sketch_params,
                                 size_t tracked);

  /// Processes one occurrence of `key`.
  void Add(std::string_view key, Count weight = 1);

  /// Estimated count of `key`.
  Count Estimate(std::string_view key) const;

  /// The current top-k candidates with their original keys.
  std::vector<KeyCount> Candidates(size_t k) const;

  /// State bytes including the stored keys of tracked items.
  size_t SpaceBytes() const;

  const CountSketchTopK& tracker() const { return tracker_; }

 private:
  StringTopK(CountSketchTopK tracker, uint64_t key_seed);

  ItemId IdOf(std::string_view key) const {
    return HashString(key, key_seed_) | 1;
  }

  CountSketchTopK tracker_;
  uint64_t key_seed_;
  std::unordered_map<ItemId, std::string> keys_;  // tracked items only
};

}  // namespace streamfreq
