// Exponentially time-decayed Count-Sketch.
//
// Monitoring deployments often want "recent counts matter more" rather
// than a hard window: each occurrence at time t contributes
// 2^{-(now - t)/half_life} to the decayed count. The classic
// implementation trick avoids touching every counter on each tick: store
// counters scaled by 2^{t/half_life} at insertion time (a logical
// timestamped magnitude), and divide by the current scale on read. To
// keep the stored doubles in range, the whole array is renormalized
// whenever the scale grows past a threshold — O(t*b) amortized over many
// ticks.
//
// Linearity is preserved (decay is a per-occurrence scalar), so decayed
// sketches with the same parameters, seed, AND logical clock can be
// merged; estimates inherit the Count-Sketch median guarantee over the
// decayed frequency vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/pairwise.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters for the decayed sketch.
struct DecayedSketchParams {
  size_t depth = 5;
  size_t width = 1024;
  uint64_t seed = 1;
  /// Time (in Tick() units) for a contribution to halve.
  double half_life = 1000.0;
};

/// Count-Sketch over exponentially decayed counts.
class DecayedCountSketch {
 public:
  /// Validates parameters (half_life > 0) and builds a zeroed sketch.
  static Result<DecayedCountSketch> Make(const DecayedSketchParams& params);

  /// Advances the logical clock by `steps` ticks.
  void Tick(uint64_t steps = 1);

  /// Records `weight` occurrences of `item` at the current time.
  void Add(ItemId item, Count weight = 1);

  /// Estimated decayed count of `item` at the current time.
  double Estimate(ItemId item) const;

  /// Logical time elapsed.
  uint64_t Now() const { return now_; }

  size_t SpaceBytes() const;

 private:
  explicit DecayedCountSketch(const DecayedSketchParams& params);

  /// Rescales all counters so scale_ returns to 1 (clock base moves up).
  void Renormalize();

  DecayedSketchParams params_;
  size_t depth_;
  size_t width_;
  std::vector<CarterWegmanHash> bucket_hashes_;
  std::vector<CarterWegmanHash> sign_hashes_;
  std::vector<double> counters_;
  uint64_t now_ = 0;
  double scale_ = 1.0;  // 2^{(now - base)/half_life}
};

}  // namespace streamfreq
