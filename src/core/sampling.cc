#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamfreq {

namespace {

/// Sorts (item, count) pairs by descending count then ascending id and
/// truncates to k.
std::vector<ItemCount> RankedTopK(const std::unordered_map<ItemId, Count>& table,
                                  size_t k, double scale) {
  std::vector<ItemCount> out;
  out.reserve(table.size());
  for (const auto& [id, c] : table) {
    out.push_back({id, static_cast<Count>(std::llround(
                           static_cast<double>(c) * scale))});
  }
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

/// Draws Binomial(n, p) — exact via per-trial coins for small n, normal
/// approximation clamped to [0, n] for large n (thinning only needs the
/// right distribution shape, and entries with huge counts are the heavy
/// hitters we must not lose: the approximation keeps their mean exact).
Count BinomialThin(Count n, double p, Xoshiro256& rng) {
  if (n <= 0 || p >= 1.0) return n;
  if (p <= 0.0) return 0;
  if (n <= 64) {
    Count kept = 0;
    for (Count i = 0; i < n; ++i) {
      if (rng.UniformDouble() < p) ++kept;
    }
    return kept;
  }
  const double mean = static_cast<double>(n) * p;
  const double stddev = std::sqrt(mean * (1.0 - p));
  // Box-Muller normal draw.
  const double u1 = std::max(rng.UniformDouble(), 1e-18);
  const double u2 = rng.UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  const double draw = mean + stddev * z;
  return std::clamp<Count>(static_cast<Count>(std::llround(draw)), 0, n);
}

constexpr size_t kMapEntryBytes = sizeof(ItemId) + sizeof(Count) + sizeof(void*);

}  // namespace

// ---------------------------------------------------------------- SAMPLING

Result<SamplingSummary> SamplingSummary::Make(double inclusion_probability,
                                              uint64_t seed) {
  if (!(inclusion_probability > 0.0) || inclusion_probability > 1.0) {
    return Status::InvalidArgument(
        "SamplingSummary: inclusion probability must be in (0, 1]");
  }
  return SamplingSummary(inclusion_probability, seed);
}

SamplingSummary::SamplingSummary(double p, uint64_t seed) : p_(p), rng_(seed) {}

std::string SamplingSummary::Name() const {
  return "Sampling(p=" + std::to_string(p_) + ")";
}

void SamplingSummary::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  const Count kept = BinomialThin(weight, p_, rng_);
  if (kept > 0) sample_[item] += kept;
}

Count SamplingSummary::Estimate(ItemId item) const {
  auto it = sample_.find(item);
  if (it == sample_.end()) return 0;
  return static_cast<Count>(std::llround(static_cast<double>(it->second) / p_));
}

std::vector<ItemCount> SamplingSummary::Candidates(size_t k) const {
  return RankedTopK(sample_, k, 1.0 / p_);
}

size_t SamplingSummary::SpaceBytes() const {
  return sample_.size() * kMapEntryBytes;
}

// ---------------------------------------------------------------- Concise

Result<ConciseSampling> ConciseSampling::Make(size_t max_entries, uint64_t seed) {
  if (max_entries == 0) {
    return Status::InvalidArgument("ConciseSampling: max_entries must be positive");
  }
  return ConciseSampling(max_entries, seed);
}

ConciseSampling::ConciseSampling(size_t max_entries, uint64_t seed)
    : max_entries_(max_entries), rng_(seed) {}

std::string ConciseSampling::Name() const {
  return "ConciseSamples(max=" + std::to_string(max_entries_) + ")";
}

void ConciseSampling::EvictToBudget() {
  // Raise tau geometrically and binomially thin every entry until the
  // distinct-entry budget holds again (Gibbons-Matias eviction).
  while (sample_.size() > max_entries_) {
    const double new_tau = tau_ * 1.5;
    const double keep = tau_ / new_tau;
    for (auto it = sample_.begin(); it != sample_.end();) {
      it->second = BinomialThin(it->second, keep, rng_);
      if (it->second == 0) {
        it = sample_.erase(it);
      } else {
        ++it;
      }
    }
    tau_ = new_tau;
  }
}

void ConciseSampling::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  const Count kept = BinomialThin(weight, 1.0 / tau_, rng_);
  if (kept > 0) {
    sample_[item] += kept;
    EvictToBudget();
  }
}

Count ConciseSampling::Estimate(ItemId item) const {
  auto it = sample_.find(item);
  if (it == sample_.end()) return 0;
  return static_cast<Count>(
      std::llround(static_cast<double>(it->second) * tau_));
}

std::vector<ItemCount> ConciseSampling::Candidates(size_t k) const {
  return RankedTopK(sample_, k, tau_);
}

size_t ConciseSampling::SpaceBytes() const {
  return sample_.size() * kMapEntryBytes;
}

// --------------------------------------------------------------- Counting

Result<CountingSampling> CountingSampling::Make(size_t max_entries,
                                                uint64_t seed) {
  if (max_entries == 0) {
    return Status::InvalidArgument(
        "CountingSampling: max_entries must be positive");
  }
  return CountingSampling(max_entries, seed);
}

CountingSampling::CountingSampling(size_t max_entries, uint64_t seed)
    : max_entries_(max_entries), rng_(seed) {}

std::string CountingSampling::Name() const {
  return "CountingSamples(max=" + std::to_string(max_entries_) + ")";
}

void CountingSampling::EvictToBudget() {
  // Gibbons-Matias eviction: on raising tau, each entry flips coins at the
  // new rate, decrementing its count until the first success; entries
  // reaching zero are removed. Heavy items lose O(1) counts in expectation
  // while lightly-counted entries are flushed.
  while (sample_.size() > max_entries_) {
    const double new_tau = tau_ * 1.5;
    const double keep = tau_ / new_tau;
    for (auto it = sample_.begin(); it != sample_.end();) {
      while (it->second > 0 && rng_.UniformDouble() >= keep) {
        --it->second;
      }
      if (it->second == 0) {
        it = sample_.erase(it);
      } else {
        ++it;
      }
    }
    tau_ = new_tau;
  }
}

void CountingSampling::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  auto it = sample_.find(item);
  if (it != sample_.end()) {
    // Already monitored: count exactly.
    it->second += weight;
    return;
  }
  // Admission: first success among `weight` coins at rate 1/tau admits the
  // item; occurrences after the admitting one are counted exactly.
  for (Count i = 0; i < weight; ++i) {
    if (rng_.UniformDouble() < 1.0 / tau_) {
      sample_[item] = weight - i;
      EvictToBudget();
      return;
    }
  }
}

Count CountingSampling::Estimate(ItemId item) const {
  auto it = sample_.find(item);
  if (it == sample_.end()) return 0;
  // Expected occurrences missed before admission: tau - 1.
  return it->second + static_cast<Count>(std::llround(tau_ - 1.0));
}

std::vector<ItemCount> CountingSampling::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(sample_.size());
  const Count correction = static_cast<Count>(std::llround(tau_ - 1.0));
  for (const auto& [id, c] : sample_) out.push_back({id, c + correction});
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

size_t CountingSampling::SpaceBytes() const {
  return sample_.size() * kMapEntryBytes;
}

// ----------------------------------------------------------------- Sticky

Result<StickySampling> StickySampling::Make(double support, double epsilon,
                                            double delta, uint64_t seed) {
  if (!(support > 0.0) || support >= 1.0) {
    return Status::InvalidArgument("StickySampling: support must be in (0, 1)");
  }
  if (!(epsilon > 0.0) || epsilon >= support) {
    return Status::InvalidArgument(
        "StickySampling: epsilon must be in (0, support)");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("StickySampling: delta must be in (0, 1)");
  }
  return StickySampling(support, epsilon, delta, seed);
}

StickySampling::StickySampling(double support, double epsilon, double delta,
                               uint64_t seed)
    : support_(support),
      epsilon_(epsilon),
      delta_(delta),
      rng_(seed) {
  // t = (1/eps) * ln(1/(s*delta)); the first 2t arrivals are sampled at
  // rate 1, the next 2t at rate 2, then 4t at rate 4, ... (Manku-Motwani).
  t_ = std::max<Count>(
      1, static_cast<Count>(std::ceil(std::log(1.0 / (support * delta)) / epsilon)));
  epoch_end_ = 2 * t_;
}

std::string StickySampling::Name() const {
  return "StickySampling(s=" + std::to_string(support_) +
         ",eps=" + std::to_string(epsilon_) + ")";
}

void StickySampling::AdvanceEpoch() {
  rate_ *= 2.0;
  epoch_end_ += static_cast<Count>(rate_) * t_;
  // Diminish each entry: toss unbiased coins, decrement until heads; drop
  // entries reaching zero. This re-normalizes counts to the new rate.
  for (auto it = entries_.begin(); it != entries_.end();) {
    while (it->second > 0 && rng_.UniformDouble() < 0.5) {
      --it->second;
    }
    if (it->second == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void StickySampling::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  for (Count i = 0; i < weight; ++i) {
    ++n_;
    if (n_ > epoch_end_) AdvanceEpoch();
    auto it = entries_.find(item);
    if (it != entries_.end()) {
      ++it->second;
    } else if (rng_.UniformDouble() < 1.0 / rate_) {
      entries_[item] = 1;
    }
  }
}

Count StickySampling::Estimate(ItemId item) const {
  auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second;
}

std::vector<ItemCount> StickySampling::Candidates(size_t k) const {
  return RankedTopK(entries_, k, 1.0);
}

size_t StickySampling::SpaceBytes() const {
  return entries_.size() * kMapEntryBytes;
}

}  // namespace streamfreq
