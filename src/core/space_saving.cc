#include "core/space_saving.h"

#include <algorithm>

#include "util/logging.h"

namespace streamfreq {

Result<SpaceSaving> SpaceSaving::Make(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("SpaceSaving: capacity must be positive");
  }
  return SpaceSaving(capacity);
}

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  heap_.reserve(capacity);
  position_.reserve(capacity);
}

std::string SpaceSaving::Name() const {
  return "SpaceSaving(c=" + std::to_string(capacity_) + ")";
}

void SpaceSaving::SwapSlots(size_t i, size_t j) {
  std::swap(heap_[i], heap_[j]);
  position_[heap_[i].item] = i;
  position_[heap_[j].item] = j;
}

void SpaceSaving::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t smallest = i;
    const size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
    if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
    if (smallest == i) return;
    SwapSlots(i, smallest);
    i = smallest;
  }
}

void SpaceSaving::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= heap_[i].count) return;
    SwapSlots(i, parent);
    i = parent;
  }
}

void SpaceSaving::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  auto it = position_.find(item);
  if (it != position_.end()) {
    heap_[it->second].count += weight;
    SiftDown(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({item, weight, 0});
    position_[item] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
    return;
  }
  // Replace the minimum: the newcomer inherits its count as error bound.
  Slot& root = heap_[0];
  position_.erase(root.item);
  const Count min_count = root.count;
  root = {item, min_count + weight, min_count};
  position_[item] = 0;
  SiftDown(0);
}

void SpaceSaving::BatchAdd(std::span<const ItemId> items) {
  std::unordered_map<ItemId, Count> aggregated;
  aggregated.reserve(std::min(items.size(), size_t{4} * capacity_));
  for (const ItemId q : items) ++aggregated[q];
  for (const auto& [item, weight] : aggregated) Add(item, weight);
}

Count SpaceSaving::Estimate(ItemId item) const {
  auto it = position_.find(item);
  if (it != position_.end()) return heap_[it->second].count;
  return MinCount();
}

Count SpaceSaving::ErrorOf(ItemId item) const {
  auto it = position_.find(item);
  return it == position_.end() ? 0 : heap_[it->second].error;
}

Count SpaceSaving::MinCount() const {
  return heap_.size() < capacity_ || heap_.empty() ? 0 : heap_[0].count;
}

Status SpaceSaving::Merge(const SpaceSaving& other) {
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument("SpaceSaving::Merge: capacities must match");
  }
  const Count min1 = MinCount();
  const Count min2 = other.MinCount();

  std::unordered_map<ItemId, Slot> merged;
  merged.reserve(heap_.size() + other.heap_.size());
  for (const Slot& s : heap_) {
    merged[s.item] = {s.item, s.count + min2, s.error + min2};
  }
  for (const Slot& s : other.heap_) {
    auto it = merged.find(s.item);
    if (it != merged.end()) {
      // Monitored on both sides: replace the min2 placeholder with the
      // other side's actual bounds.
      it->second.count += s.count - min2;
      it->second.error += s.error - min2;
    } else {
      merged[s.item] = {s.item, s.count + min1, s.error + min1};
    }
  }

  std::vector<Slot> slots;
  slots.reserve(merged.size());
  for (const auto& [item, slot] : merged) slots.push_back(slot);
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (slots.size() > capacity_) slots.resize(capacity_);

  heap_.clear();
  position_.clear();
  for (const Slot& s : slots) {
    heap_.push_back(s);
    position_[s.item] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }
  return Status::OK();
}

std::vector<ItemCount> SpaceSaving::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(heap_.size());
  for (const Slot& s : heap_) out.push_back({s.item, s.count});
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<ItemCount> SpaceSaving::GuaranteedAtLeast(Count threshold) const {
  std::vector<ItemCount> out;
  for (const Slot& s : heap_) {
    if (s.count - s.error >= threshold) out.push_back({s.item, s.count});
  }
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::vector<SpaceSavingEntry> SpaceSaving::Entries() const {
  std::vector<SpaceSavingEntry> out;
  out.reserve(heap_.size());
  for (const Slot& s : heap_) out.push_back({s.item, s.count, s.error});
  return out;
}

Result<SpaceSaving> SpaceSaving::FromEntries(
    size_t capacity, std::span<const SpaceSavingEntry> entries) {
  STREAMFREQ_ASSIGN_OR_RETURN(SpaceSaving summary, Make(capacity));
  if (entries.size() > capacity) {
    return Status::InvalidArgument(
        "SpaceSaving::FromEntries: more entries than capacity");
  }
  for (const SpaceSavingEntry& e : entries) {
    if (e.count == 0) {
      return Status::InvalidArgument(
          "SpaceSaving::FromEntries: zero-count entry");
    }
    if (e.count < e.error) {
      return Status::InvalidArgument(
          "SpaceSaving::FromEntries: count below error bound");
    }
    if (summary.position_.count(e.item) != 0) {
      return Status::InvalidArgument(
          "SpaceSaving::FromEntries: duplicate item");
    }
    summary.heap_.push_back({e.item, e.count, e.error});
    summary.position_[e.item] = summary.heap_.size() - 1;
    summary.SiftUp(summary.heap_.size() - 1);
  }
  return summary;
}

size_t SpaceSaving::SpaceBytes() const {
  return heap_.size() * sizeof(Slot) +
         position_.size() * (sizeof(ItemId) + sizeof(size_t) + sizeof(void*));
}

}  // namespace streamfreq
