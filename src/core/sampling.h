// Sampling-based baselines.
//
// SamplingSummary is the SAMPLING algorithm of the paper's Section 2: keep
// each stream position independently with probability p, stored as (item,
// sampled-occurrence counter) pairs. With p >= O(log k / n_k) all top-k
// items appear in the sample w.h.p., solving CandidateTop(S, k, x) where x
// is the number of distinct sampled items — the space the paper's Table 1
// charges it.
//
// ConciseSampling and CountingSampling are the Gibbons-Matias refinements
// [7]: they target a fixed space budget without knowing n in advance by
// raising the inclusion threshold tau and sub-sampling the existing sample
// on overflow. CountingSampling additionally counts occurrences exactly
// once an item is in the sample.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequent.h"
#include "hash/random.h"
#include "util/result.h"

namespace streamfreq {

/// Fixed-probability Bernoulli sampling (the paper's SAMPLING algorithm).
class SamplingSummary final : public StreamSummary {
 public:
  /// Creates a sampler including each occurrence with probability p.
  static Result<SamplingSummary> Make(double inclusion_probability,
                                      uint64_t seed);

  std::string Name() const override;

  /// Flips `weight` independent coins for the occurrences of `item`.
  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Unbiased estimate: sampled count / p, rounded.
  Count Estimate(ItemId item) const override;

  /// Sampled items by descending sampled count, estimates scaled by 1/p.
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Number of distinct items in the sample — the space measure Table 1
  /// uses for SAMPLING.
  size_t DistinctSampled() const { return sample_.size(); }

  double inclusion_probability() const { return p_; }
  size_t SpaceBytes() const override;

 private:
  SamplingSummary(double p, uint64_t seed);

  double p_;
  Xoshiro256 rng_;
  std::unordered_map<ItemId, Count> sample_;
};

/// Gibbons-Matias concise samples: adaptive-threshold Bernoulli sampling
/// within a fixed bound on distinct sample entries.
class ConciseSampling final : public StreamSummary {
 public:
  /// Creates a sampler holding at most `max_entries` distinct items.
  static Result<ConciseSampling> Make(size_t max_entries, uint64_t seed);

  std::string Name() const override;

  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Estimate: sampled count * tau (each retained occurrence represents tau
  /// stream occurrences in expectation).
  Count Estimate(ItemId item) const override;

  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Current inclusion threshold (an occurrence is kept with prob 1/tau).
  double tau() const { return tau_; }
  size_t SpaceBytes() const override;

 private:
  ConciseSampling(size_t max_entries, uint64_t seed);

  /// Raises tau and binomially thins every entry until under budget.
  void EvictToBudget();

  size_t max_entries_;
  double tau_ = 1.0;
  Xoshiro256 rng_;
  std::unordered_map<ItemId, Count> sample_;
};

/// Gibbons-Matias counting samples: concise-sample admission, but once an
/// item is admitted its later occurrences are counted exactly.
class CountingSampling final : public StreamSummary {
 public:
  /// Creates a sampler holding at most `max_entries` distinct items.
  static Result<CountingSampling> Make(size_t max_entries, uint64_t seed);

  std::string Name() const override;

  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Estimate: exact-since-admission count plus the expected tau - 1
  /// occurrences missed before admission.
  Count Estimate(ItemId item) const override;

  std::vector<ItemCount> Candidates(size_t k) const override;

  double tau() const { return tau_; }
  size_t SpaceBytes() const override;

 private:
  CountingSampling(size_t max_entries, uint64_t seed);

  /// Raises tau; each entry survives the new threshold with prob tau/tau'.
  void EvictToBudget();

  size_t max_entries_;
  double tau_ = 1.0;
  Xoshiro256 rng_;
  std::unordered_map<ItemId, Count> sample_;
};

/// Sticky Sampling (Manku & Motwani): probabilistic counting with a rate
/// that halves as the stream grows, guaranteeing eps-deficient counts with
/// probability 1 - delta in O((1/eps) log(1/(s*delta))) expected entries.
class StickySampling final : public StreamSummary {
 public:
  /// Creates a sampler for support threshold `support`, error `epsilon`
  /// (< support) and failure probability `delta`.
  static Result<StickySampling> Make(double support, double epsilon,
                                     double delta, uint64_t seed);

  std::string Name() const override;

  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Lower-bound estimate: the stored counter when present, else 0.
  Count Estimate(ItemId item) const override;

  std::vector<ItemCount> Candidates(size_t k) const override;

  size_t SpaceBytes() const override;

 private:
  StickySampling(double support, double epsilon, double delta, uint64_t seed);

  /// Moves to the next sampling epoch: rate doubles, existing entries are
  /// diminished by geometric coin flips per the original algorithm.
  void AdvanceEpoch();

  double support_;
  double epsilon_;
  double delta_;
  double rate_ = 1.0;     // an arrival is counted with probability 1/rate
  Count epoch_end_;       // stream position at which the rate next doubles
  Count t_;               // 2t = epoch length unit
  Count n_ = 0;
  Xoshiro256 rng_;
  std::unordered_map<ItemId, Count> entries_;
};

}  // namespace streamfreq
