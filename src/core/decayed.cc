#include "core/decayed.h"

#include <algorithm>
#include <cmath>

#include "hash/random.h"

namespace streamfreq {

namespace {
// Renormalize when stored magnitudes have grown by 2^64 to stay far from
// double overflow (~1e308) while renormalizing rarely.
constexpr double kRenormThreshold = 1.8446744073709552e19;  // 2^64
}  // namespace

Result<DecayedCountSketch> DecayedCountSketch::Make(
    const DecayedSketchParams& params) {
  if (params.depth == 0 || params.width == 0) {
    return Status::InvalidArgument(
        "DecayedCountSketch: depth and width must be positive");
  }
  if (!(params.half_life > 0.0)) {
    return Status::InvalidArgument(
        "DecayedCountSketch: half_life must be positive");
  }
  return DecayedCountSketch(params);
}

DecayedCountSketch::DecayedCountSketch(const DecayedSketchParams& params)
    : params_(params),
      depth_(params.depth),
      width_(params.width),
      counters_(params.depth * params.width, 0.0) {
  SplitMix64 bucket_seeder(SplitMix64(params.seed).Next() ^ 0xDECA1ULL);
  SplitMix64 sign_seeder(SplitMix64(params.seed + 1).Next() ^ 0xDECA2ULL);
  bucket_hashes_.reserve(depth_);
  sign_hashes_.reserve(depth_);
  for (size_t i = 0; i < depth_; ++i) {
    bucket_hashes_.emplace_back(bucket_seeder);
    sign_hashes_.emplace_back(sign_seeder);
  }
}

void DecayedCountSketch::Renormalize() {
  const double inv = 1.0 / scale_;
  for (double& c : counters_) c *= inv;
  scale_ = 1.0;
}

void DecayedCountSketch::Tick(uint64_t steps) {
  now_ += steps;
  scale_ *= std::exp2(static_cast<double>(steps) / params_.half_life);
  if (scale_ > kRenormThreshold) Renormalize();
}

void DecayedCountSketch::Add(ItemId item, Count weight) {
  const double scaled = static_cast<double>(weight) * scale_;
  for (size_t i = 0; i < depth_; ++i) {
    const uint64_t bucket = bucket_hashes_[i].Bucket(item, width_);
    const double signed_weight =
        scaled * static_cast<double>(sign_hashes_[i].Sign(item));
    counters_[i * width_ + bucket] += signed_weight;
  }
}

double DecayedCountSketch::Estimate(ItemId item) const {
  std::vector<double> est(depth_);
  for (size_t i = 0; i < depth_; ++i) {
    const uint64_t bucket = bucket_hashes_[i].Bucket(item, width_);
    est[i] = counters_[i * width_ + bucket] *
             static_cast<double>(sign_hashes_[i].Sign(item));
  }
  const size_t mid = depth_ / 2;
  std::nth_element(est.begin(), est.begin() + static_cast<ptrdiff_t>(mid),
                   est.end());
  double median;
  if (depth_ % 2 == 1) {
    median = est[mid];
  } else {
    const double hi = est[mid];
    const double lo =
        *std::max_element(est.begin(), est.begin() + static_cast<ptrdiff_t>(mid));
    median = (lo + hi) / 2.0;
  }
  return median / scale_;
}

size_t DecayedCountSketch::SpaceBytes() const {
  return counters_.size() * sizeof(double) +
         depth_ * 4 * sizeof(uint64_t);
}

}  // namespace streamfreq
