// EXTENSION — max-*percent*-change detection (the paper's open problem).
//
// Section 5 closes: "there is still an open problem of finding the elements
// with the max-percent change, or other objective functions that somehow
// balance absolute and relative changes." This module implements a
// practical heuristic for it on top of the same machinery as Section 4.2:
// two per-period Count-Sketches and a second pass that scores each item by
// a smoothed ratio
//
//     score(q) = (nhat2(q) + s) / (nhat1(q) + s),
//
// tracking the l items with the most extreme max(score, 1/score). The
// additive smoothing s plays the role the open problem hints at: it
// balances absolute and relative change, suppressing the 1 -> 3
// "300% risers" that dominate a naive ratio. No theoretical guarantee is
// claimed (none is known); tests characterize behaviour empirically.
#pragma once

#include <cstddef>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/count_sketch.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// One reported relative change.
struct RelativeChangeResult {
  ItemId item;
  Count count_s1;  ///< exact pass-2 count in S1
  Count count_s2;  ///< exact pass-2 count in S2
  double score;    ///< smoothed ratio at admission time

  /// Exact smoothed ratio from the pass-2 counts.
  double ExactRatio(double smoothing) const {
    const double a = static_cast<double>(count_s1) + smoothing;
    const double b = static_cast<double>(count_s2) + smoothing;
    return b > a ? b / a : a / b;
  }
};

/// Two-pass max-percent-change detector.
class RelativeChangeDetector {
 public:
  /// `smoothing` > 0 is the additive prior mass; larger values demand more
  /// absolute evidence before a ratio counts as extreme.
  static Result<RelativeChangeDetector> Make(
      const CountSketchParams& sketch_params, size_t tracked,
      double smoothing);

  /// Pass 1: sketch each period separately.
  void ObserveS1(ItemId item, Count weight = 1) { sketch1_.Add(item, weight); }
  void ObserveS2(ItemId item, Count weight = 1) { sketch2_.Add(item, weight); }
  void FinishFirstPass() { first_pass_done_ = true; }

  /// Pass 2 over both streams: maintains the l most ratio-extreme items
  /// with exact per-period counts (same admission argument as Section 4.2:
  /// scores are frozen, the bar only rises).
  void SecondPass(int stream, ItemId item);

  /// The k most extreme items by exact smoothed ratio, descending.
  std::vector<RelativeChangeResult> TopChanges(size_t k) const;

  /// Convenience driver over materialized streams.
  static Result<std::vector<RelativeChangeResult>> Run(
      const CountSketchParams& sketch_params, size_t tracked, double smoothing,
      const Stream& s1, const Stream& s2, size_t k);

  double smoothing() const { return smoothing_; }
  size_t SpaceBytes() const;

 private:
  RelativeChangeDetector(CountSketch s1, CountSketch s2, size_t tracked,
                         double smoothing);

  double ScoreOf(ItemId item) const;

  struct Member {
    double score;
    Count count_s1 = 0;
    Count count_s2 = 0;
  };

  CountSketch sketch1_;
  CountSketch sketch2_;
  size_t capacity_;
  double smoothing_;
  bool first_pass_done_ = false;
  std::unordered_map<ItemId, Member> members_;
  std::set<std::pair<double, ItemId>> by_score_;
};

}  // namespace streamfreq
