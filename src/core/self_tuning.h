// Self-tuning sketch sizing: pick Lemma-5-compliant Count-Sketch
// dimensions without a ground-truth oracle.
//
// The paper notes (Section 3.1) that "one needs to know some properties of
// the distribution beforehand in order to actually implement the
// algorithm" — the width rule of Lemma 5 needs the residual moment
// F2^{>k} and the k-th count n_k. This module estimates both from the
// stream itself with tiny auxiliary summaries:
//   * F2 (>= F2^{>k}, conservative) from an AMS tug-of-war sketch;
//   * n_k from a Space-Saving summary (counts are upper bounds, and the
//     error bound n/c lets us lower-bound n_k when needed).
// StreamProfiler ingests a calibration prefix (or the whole stream) and
// emits an ApproxTopSpec + SketchSizing, closing the loop the paper leaves
// to the operator. The E14 benchmark compares self-tuned widths and
// resulting quality against oracle-sized sketches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/ams_f2.h"
#include "core/sketch_params.h"
#include "core/space_saving.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Configuration of the profiling pass.
struct ProfilerParams {
  size_t k = 10;             ///< the later top-k target
  double epsilon = 0.1;      ///< ApproxTop slack to size for
  double delta = 0.05;       ///< failure probability to size for
  size_t space_saving_capacity = 1024;  ///< n_k estimator size
  AmsF2Params f2;            ///< F2 estimator size
  uint64_t seed = 1;
};

/// One-pass profiler producing Lemma 5 inputs.
class StreamProfiler {
 public:
  /// Validates the configuration and builds the auxiliary summaries.
  static Result<StreamProfiler> Make(const ProfilerParams& params);

  /// Observes one stream item.
  void Add(ItemId item, Count weight = 1);

  /// Items observed so far.
  uint64_t ItemsSeen() const { return items_; }

  /// Estimated F2 of the observed prefix (upper proxy for F2^{>k}).
  double EstimateF2() const { return f2_.Estimate(); }

  /// Estimated residual moment F2^{>k}: the AMS F2 estimate minus the
  /// squared guaranteed lower bounds (count - error) of the top-k
  /// Space-Saving entries. Since (count - error)^2 <= n_i^2 for each head
  /// item, this remains an upper proxy for the true residual moment (up to
  /// the AMS estimation error), while removing the head mass that would
  /// otherwise inflate the Lemma 5 width by orders of magnitude on skewed
  /// streams.
  double EstimateResidualF2() const;

  /// Estimated n_k: the k-th largest Space-Saving count, corrected down by
  /// its error bound so it is not an overestimate.
  double EstimateNk() const;

  /// Lemma 5 sizing from the profiled statistics, scaled for a stream of
  /// `expected_stream_length` items (counts are extrapolated linearly from
  /// the profiled prefix; pass ItemsSeen() when profiling the full stream).
  Result<SketchSizing> Size(uint64_t expected_stream_length) const;

  size_t SpaceBytes() const;

 private:
  StreamProfiler(ProfilerParams params, AmsF2Sketch f2, SpaceSaving heavy);

  ProfilerParams params_;
  AmsF2Sketch f2_;
  SpaceSaving heavy_;
  uint64_t items_ = 0;
};

}  // namespace streamfreq
