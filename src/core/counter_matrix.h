// CounterMatrix: cache-line-aware counter storage for the linear sketches.
//
// CountSketch and CountMin used to hold their t x b counter tables in a
// bare std::vector<int64_t> with stride == width. This class is the same
// logical matrix with a physical layout tuned for the batched ingest path:
//
//   * the allocation is 64-byte aligned, and
//   * each row's stride is padded up to a whole cache line (8 counters),
//     so row starts never straddle lines and the row-major BatchAdd walk
//     touches the minimum number of lines per stripe.
//
// Padding cells are born zero and stay zero: the sketch update paths only
// ever index columns < width, and the whole-buffer Add/Subtract used by
// Merge preserves zeros (0 + 0 == 0). That invariant is what lets Merge
// run over the padded buffer without masking. Serialization iterates
// logical cells only, so the on-disk format is identical to the unpadded
// layout and old sketch files deserialize unchanged.
//
// For the common power-of-two widths (>= 8) the stride equals the width
// and the padding is zero bytes; only odd widths pay (at most 56 bytes
// per row).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

namespace streamfreq {

/// A depth x width matrix of int64 counters, cache-line aligned.
class CounterMatrix {
 public:
  /// Counters per 64-byte cache line; rows are padded to a multiple.
  static constexpr size_t kLineCounters = 64 / sizeof(int64_t);

  CounterMatrix() = default;

  /// Builds a zeroed matrix. Dimension validation (non-zero, plausible)
  /// belongs to the owning sketch's Make.
  CounterMatrix(size_t depth, size_t width)
      : depth_(depth),
        width_(width),
        stride_((width + kLineCounters - 1) / kLineCounters * kLineCounters) {
    data_.reset(static_cast<int64_t*>(
        std::aligned_alloc(64, depth_ * stride_ * sizeof(int64_t))));
    Clear();
  }

  CounterMatrix(const CounterMatrix& other)
      : depth_(other.depth_), width_(other.width_), stride_(other.stride_) {
    if (other.data_ == nullptr) return;
    data_.reset(static_cast<int64_t*>(
        std::aligned_alloc(64, depth_ * stride_ * sizeof(int64_t))));
    std::memcpy(data_.get(), other.data_.get(),
                depth_ * stride_ * sizeof(int64_t));
  }

  CounterMatrix& operator=(const CounterMatrix& other) {
    if (this != &other) *this = CounterMatrix(other);
    return *this;
  }

  CounterMatrix(CounterMatrix&&) noexcept = default;
  CounterMatrix& operator=(CounterMatrix&&) noexcept = default;

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t stride() const { return stride_; }

  /// First counter of row i (64-byte aligned).
  // sfq-hot-path
  int64_t* Row(size_t i) noexcept { return data_.get() + i * stride_; }
  // sfq-hot-path
  const int64_t* Row(size_t i) const noexcept {
    return data_.get() + i * stride_;
  }

  // sfq-hot-path
  int64_t& At(size_t row, size_t col) noexcept { return Row(row)[col]; }
  // sfq-hot-path
  int64_t At(size_t row, size_t col) const noexcept { return Row(row)[col]; }

  /// Zeroes every cell, padding included.
  // sfq-hot-path
  void Clear() noexcept {
    std::memset(data_.get(), 0, depth_ * stride_ * sizeof(int64_t));
  }

  /// this += other, over the whole padded buffer (padding stays zero).
  /// Caller guarantees equal dimensions (the sketches' CompatibleWith).
  // sfq-hot-path
  void AddAll(const CounterMatrix& other) noexcept {
    int64_t* a = data_.get();
    const int64_t* b = other.data_.get();
    const size_t n = depth_ * stride_;
    for (size_t i = 0; i < n; ++i) a[i] += b[i];
  }

  /// this -= other, same contract as AddAll.
  // sfq-hot-path
  void SubtractAll(const CounterMatrix& other) noexcept {
    int64_t* a = data_.get();
    const int64_t* b = other.data_.get();
    const size_t n = depth_ * stride_;
    for (size_t i = 0; i < n; ++i) a[i] -= b[i];
  }

  /// Logical-cell equality (padding excluded); dimensions must match too.
  friend bool operator==(const CounterMatrix& a, const CounterMatrix& b) {
    if (a.depth_ != b.depth_ || a.width_ != b.width_) return false;
    for (size_t i = 0; i < a.depth_; ++i) {
      if (!std::equal(a.Row(i), a.Row(i) + a.width_, b.Row(i))) return false;
    }
    return true;
  }

  /// Bytes actually held, padding included (reported by SpaceBytes).
  size_t AllocatedBytes() const { return depth_ * stride_ * sizeof(int64_t); }

 private:
  struct Free {
    void operator()(int64_t* p) const { std::free(p); }
  };

  size_t depth_ = 0;
  size_t width_ = 0;
  size_t stride_ = 0;
  std::unique_ptr<int64_t[], Free> data_;
};

}  // namespace streamfreq
