// Lossy Counting (Manku & Motwani, VLDB 2002), the deterministic
// epsilon-deficient counter algorithm cited as [15] in the paper.
//
// The stream is conceptually divided into buckets of width ceil(1/eps).
// Each entry stores (item, f, delta) where f counts occurrences since entry
// and delta bounds occurrences before entry. At each bucket boundary,
// entries with f + delta <= current bucket id are pruned. Guarantees:
//   * counter f underestimates by at most eps * n, and
//   * at most (1/eps) * log(eps * n) entries are live.
// Answers iceberg queries "all items with frequency >= s*n" with no false
// negatives when queried with threshold (s - eps) * n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// Lossy Counting summary.
class LossyCounting final : public StreamSummary {
 public:
  /// Creates a summary with error parameter eps in (0, 1).
  static Result<LossyCounting> Make(double epsilon);

  std::string Name() const override;

  /// Weighted arrival; weight must be >= 1. Bucket boundaries that the
  /// weight spans are processed in order.
  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Lower-bound estimate: the stored f when present, else 0.
  Count Estimate(ItemId item) const override;

  /// Entries by descending f + delta; reported counts are that upper
  /// bound (Estimate() gives the lower-bound view).
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Items with estimated frequency at least (threshold - eps) * n — the
  /// iceberg-query answer with no false negatives at `threshold`.
  std::vector<ItemCount> IcebergQuery(double threshold) const;

  double epsilon() const { return epsilon_; }
  Count stream_length() const { return n_; }
  size_t EntryCount() const { return entries_.size(); }
  size_t SpaceBytes() const override;

 private:
  explicit LossyCounting(double epsilon);

  struct Entry {
    Count f;      // occurrences since the item entered
    Count delta;  // max occurrences before entry
  };

  void AdvanceBucketsTo(Count n);

  double epsilon_;
  Count bucket_width_;       // ceil(1/eps)
  Count current_bucket_ = 1; // 1-based bucket id
  Count n_ = 0;              // total weight processed
  std::unordered_map<ItemId, Entry> entries_;
};

}  // namespace streamfreq
