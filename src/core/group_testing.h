// Combinatorial group testing (CGT) sketch: turnstile heavy-hitter
// *identification* by bit decoding (Cormode & Muthukrishnan, "What's hot
// and what's not").
//
// Each of t rows hashes keys into b groups; each group keeps 1 + 64
// counters: the group total and one counter per key bit (incremented only
// when that bit of the key is 1). A group dominated by one heavy key
// decodes it directly: bit j of the key is 1 iff the bit-j counter holds
// more than half of the group total. Like the dyadic structure this works
// in the turnstile model, but recovery costs one pass over the t*b groups
// instead of a tree descent, and each update touches ~65 counters in its
// row (cheaper than log U full sketches when U is large).
//
// Designed for non-negative group totals at decode time (a difference
// stream should be decoded as |delta| by decoding both (S2 - S1) and
// (S1 - S2) sketches, which Subtract makes cheap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hash/pairwise.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters for the CGT sketch.
struct GroupTestingParams {
  size_t depth = 3;    ///< independent rows (decode votes)
  size_t groups = 512; ///< groups per row
  size_t key_bits = 32;///< decode width; keys must fit in this many bits
  uint64_t seed = 1;
};

/// A decoded heavy key.
struct DecodedHeavyHitter {
  uint64_t key;
  Count estimate;  ///< median of the key's group totals across rows
};

/// The CGT sketch.
class GroupTestingSketch {
 public:
  /// Validates parameters and builds a zeroed sketch.
  static Result<GroupTestingSketch> Make(const GroupTestingParams& params);

  /// Adds `weight` (possibly negative) occurrences of `key`.
  void Add(uint64_t key, Count weight = 1) noexcept;

  /// Count-Min-style upper-bound estimate: min over rows of the key's
  /// group total (valid for non-negative streams).
  Count Estimate(uint64_t key) const noexcept;

  /// Decodes every group whose total is at least `threshold`, votes the
  /// decoded keys across rows, and returns keys decoded by a majority of
  /// rows, sorted by descending estimate.
  std::vector<DecodedHeavyHitter> Decode(Count threshold) const;

  /// Counter-wise addition/subtraction of a compatible sketch.
  Status Merge(const GroupTestingSketch& other);
  Status Subtract(const GroupTestingSketch& other);

  size_t SpaceBytes() const;
  const GroupTestingParams& params() const { return params_; }

  /// Raw counters ([total, bit0..bit63] per group, row-major). Exposed for
  /// the merge-tree property test's cell-by-cell shape-independence check.
  std::span<const int64_t> counters() const { return counters_; }

 private:
  explicit GroupTestingSketch(const GroupTestingParams& params);

  bool Compatible(const GroupTestingSketch& other) const;

  /// Counter layout: row-major groups, each group = [total, bit0..bit63].
  size_t GroupBase(size_t row, size_t group) const {
    return (row * params_.groups + group) * stride_;
  }

  GroupTestingParams params_;
  size_t stride_;  // 1 + key_bits
  uint64_t key_mask_;
  std::vector<CarterWegmanHash> hashes_;
  std::vector<int64_t> counters_;
};

}  // namespace streamfreq
