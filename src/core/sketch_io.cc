#include "core/sketch_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace streamfreq {

namespace {

constexpr size_t kHeaderSize = 20;  // u64 magic + u64 length + u32 crc

// Writes `blob` (or its first `len` bytes) to `path`, checking every stage:
// open, write, and the explicit flush — a buffered ofstream happily reports
// success until close on a full disk.
Status WriteBlob(const std::string& path, const std::string& blob,
                 size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(blob.data(), static_cast<std::streamsize>(len));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

Status WriteBlobFileAtomic(const std::string& path, uint64_t magic,
                           const std::string& payload) {
  std::string blob;
  ByteWriter w(&blob);
  w.PutU64(magic);
  w.PutU64(payload.size());
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  w.PutBytes(&crc, sizeof(crc));
  blob += payload;

  if (const FailDecision fp = SFQ_FAILPOINT("sketch_io.write"); fp) {
    MaybeDieAtFailpoint(fp);  // power cut before any byte lands
    if (fp.action == FailAction::kTorn) {
      // Simulate a crash mid-write of a non-atomic writer: a prefix of the
      // blob lands at the *destination* path, bypassing the temp+rename
      // protocol, so readers must catch it via truncation/CRC checks.
      size_t keep = fp.param == 0 ? blob.size() / 2 : fp.param;
      keep = keep < blob.size() ? keep : blob.size();
      (void)WriteBlob(path, blob, keep);
    }
    return Status::IoError("injected failure: sketch_io.write: " + path);
  }

  // Crash consistency: land the bytes in a sibling temp file, then publish
  // with rename — atomic within a directory on POSIX, so a reader sees
  // either the old complete file or the new complete file, never a prefix.
  const std::string tmp_path = path + ".tmp";
  const Status write_status = WriteBlob(tmp_path, blob, blob.size());
  if (!write_status.ok()) {
    std::remove(tmp_path.c_str());
    return write_status;
  }
  if (const FailDecision fp = SFQ_FAILPOINT("sketch_io.rename"); fp) {
    MaybeDieAtFailpoint(fp);  // power cut with the temp written, not renamed
    if (fp.action == FailAction::kError) {
      std::remove(tmp_path.c_str());
      return Status::IoError("injected failure: sketch_io.rename: " + path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("rename failed: " + tmp_path + " -> " + path);
  }
  return Status::OK();
}

Result<std::string> ReadBlobFileVerified(const std::string& path,
                                         uint64_t magic) {
  const FailDecision fp = SFQ_FAILPOINT("sketch_io.read");
  if (fp.action == FailAction::kError) {
    return Status::IoError("injected failure: sketch_io.read: " + path);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  char header[kHeaderSize];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::Corruption("truncated blob file header: " + path);
  }
  uint64_t stored_magic, payload_len;
  uint32_t stored_crc;
  std::memcpy(&stored_magic, header, 8);
  std::memcpy(&payload_len, header + 8, 8);
  std::memcpy(&stored_crc, header + 16, 4);
  if (stored_magic != magic) {
    return Status::Corruption("bad blob file magic: " + path);
  }
  if (payload_len > (1ull << 40)) {
    return Status::Corruption("implausible blob payload length: " + path);
  }
  // Check the declared length against the actual file size BEFORE
  // allocating: a corrupted length field must not trigger a giant
  // allocation (a flipped high bit can claim terabytes).
  const auto payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(payload_start);
  const uint64_t available = static_cast<uint64_t>(file_end - payload_start);
  if (payload_len > available) {
    return Status::Corruption("truncated blob payload: " + path);
  }
  if (payload_len < available) {
    return Status::Corruption("trailing bytes after blob payload: " + path);
  }

  std::string payload(payload_len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (in.gcount() != static_cast<std::streamsize>(payload_len)) {
    return Status::Corruption("truncated blob payload: " + path);
  }
  // A complete file has nothing after the payload; trailing bytes mean the
  // length field and the contents disagree.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return Status::Corruption("trailing bytes after blob payload: " + path);
  }

  if (fp.action == FailAction::kBitFlip && !payload.empty()) {
    // Bit rot between write and read; the CRC below must catch it.
    const uint64_t bit = fp.param % (payload.size() * 8);
    payload[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(payload[bit / 8]) ^ (1u << (bit % 8)));
  }

  const uint32_t actual = crc32c::Value(payload.data(), payload.size());
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::Corruption("blob payload checksum mismatch: " + path);
  }
  return payload;
}

Status WriteSketchFile(const std::string& path, const CountSketch& sketch) {
  std::string payload;
  sketch.SerializeTo(&payload);
  return WriteBlobFileAtomic(path, kSketchFileMagic, payload);
}

Result<CountSketch> ReadSketchFile(const std::string& path) {
  STREAMFREQ_ASSIGN_OR_RETURN(std::string payload,
                              ReadBlobFileVerified(path, kSketchFileMagic));
  return CountSketch::Deserialize(payload);
}

}  // namespace streamfreq
