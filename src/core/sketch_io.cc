#include "core/sketch_io.h"

#include <cstring>
#include <fstream>

#include "util/bytes.h"
#include "util/crc32.h"

namespace streamfreq {

namespace {
constexpr uint64_t kFileMagic = 0x5346515346303153ULL;  // "SFQSKF01"-ish tag
}  // namespace

Status WriteSketchFile(const std::string& path, const CountSketch& sketch) {
  std::string payload;
  sketch.SerializeTo(&payload);

  std::string header;
  ByteWriter w(&header);
  w.PutU64(kFileMagic);
  w.PutU64(payload.size());
  const uint32_t crc = crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  w.PutBytes(&crc, sizeof(crc));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<CountSketch> ReadSketchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  char header[20];
  in.read(header, sizeof(header));
  if (!in) return Status::Corruption("truncated sketch file header: " + path);
  uint64_t magic, payload_len;
  uint32_t stored_crc;
  std::memcpy(&magic, header, 8);
  std::memcpy(&payload_len, header + 8, 8);
  std::memcpy(&stored_crc, header + 16, 4);
  if (magic != kFileMagic) {
    return Status::Corruption("bad sketch file magic: " + path);
  }
  if (payload_len > (1ull << 40)) {
    return Status::Corruption("implausible sketch payload length: " + path);
  }

  std::string payload(payload_len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!in) return Status::Corruption("truncated sketch payload: " + path);

  const uint32_t actual = crc32c::Value(payload.data(), payload.size());
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::Corruption("sketch payload checksum mismatch: " + path);
  }
  return CountSketch::Deserialize(payload);
}

}  // namespace streamfreq
