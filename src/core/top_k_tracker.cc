#include "core/top_k_tracker.h"

#include <algorithm>

namespace streamfreq {

Result<CountSketchTopK> CountSketchTopK::Make(
    const CountSketchParams& sketch_params, size_t tracked) {
  if (tracked == 0) {
    return Status::InvalidArgument("CountSketchTopK: tracked must be positive");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch sketch, CountSketch::Make(sketch_params));
  return CountSketchTopK(std::move(sketch), tracked);
}

CountSketchTopK::CountSketchTopK(CountSketch sketch, size_t tracked)
    : sketch_(std::move(sketch)), capacity_(tracked) {
  tracked_.reserve(tracked + 1);
}

std::string CountSketchTopK::Name() const {
  return "CountSketchTopK(t=" + std::to_string(sketch_.depth()) +
         ",b=" + std::to_string(sketch_.width()) +
         ",l=" + std::to_string(capacity_) + ")";
}

TrackerEvent CountSketchTopK::AddTracked(ItemId item, Count weight) {
  sketch_.Add(item, weight);
  TrackerEvent event;

  auto it = tracked_.find(item);
  if (it != tracked_.end()) {
    // Tracked item: count it exactly from here on (paper step 2, first arm).
    by_count_.erase({it->second, item});
    it->second += weight;
    by_count_.insert({it->second, item});
    return event;
  }

  const Count estimate = sketch_.Estimate(item);
  if (tracked_.size() < capacity_) {
    tracked_.emplace(item, estimate);
    by_count_.insert({estimate, item});
    event.inserted = true;
    return event;
  }
  const auto min_it = by_count_.begin();
  if (estimate > min_it->first) {
    event.evicted = min_it->second;
    tracked_.erase(min_it->second);
    by_count_.erase(min_it);
    tracked_.emplace(item, estimate);
    by_count_.insert({estimate, item});
    event.inserted = true;
  }
  return event;
}

Count CountSketchTopK::Estimate(ItemId item) const {
  auto it = tracked_.find(item);
  if (it != tracked_.end()) return it->second;
  return sketch_.Estimate(item);
}

std::vector<ItemCount> CountSketchTopK::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(std::min(k, by_count_.size()));
  for (auto it = by_count_.rbegin(); it != by_count_.rend() && out.size() < k;
       ++it) {
    out.push_back({it->second, it->first});
  }
  return out;
}

size_t CountSketchTopK::SpaceBytes() const {
  // Sketch + tracked table + ordered index (paper: O(t*b + l)).
  const size_t per_entry =
      (sizeof(ItemId) + sizeof(Count) + sizeof(void*)) +  // hash map entry
      (sizeof(std::pair<Count, ItemId>) + 3 * sizeof(void*));  // tree node
  return sketch_.SpaceBytes() + tracked_.size() * per_entry;
}

}  // namespace streamfreq
