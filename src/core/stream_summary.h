// Space-Saving over the Stream-Summary structure (Metwally et al.'s
// original layout): a doubly-linked list of count buckets, each holding the
// monitored items with exactly that count.
//
// Unit increments are O(1): detach the item from its bucket and attach it
// to the next-higher bucket (creating/destroying buckets at the seam).
// This is the "SSL" variant of the VLDB'08 comparison; the heap variant
// ("SSH", core/space_saving.h) pays O(log c) per update but handles
// weighted updates uniformly. Identical guarantees; E7 measures the
// constant-factor difference.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// Space-Saving with the O(1)-per-increment Stream-Summary layout.
class StreamSummarySpaceSaving final : public StreamSummary {
 public:
  /// Creates a summary with exactly `capacity` counters.
  static Result<StreamSummarySpaceSaving> Make(size_t capacity);

  std::string Name() const override;

  /// Weighted arrival; weight >= 1. Unit weights are O(1); larger weights
  /// cost O(#buckets crossed).
  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Count when monitored (upper bound), else the minimum count.
  Count Estimate(ItemId item) const override;

  /// Monitored items by descending count. O(capacity): the bucket list is
  /// already count-ordered.
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Overestimation bound of a monitored item (0 when unmonitored).
  Count ErrorOf(ItemId item) const;

  /// Smallest monitored count (0 while slots remain free).
  Count MinCount() const;

  size_t capacity() const { return capacity_; }
  size_t MonitoredCount() const { return index_.size(); }
  size_t SpaceBytes() const override;

  /// Structural invariant check for tests: buckets strictly ascending,
  /// every entry's bucket pointer consistent, sizes add up.
  bool CheckInvariants() const;

 private:
  explicit StreamSummarySpaceSaving(size_t capacity);

  struct Bucket;
  struct Entry {
    ItemId item;
    Count error;
    std::list<Bucket>::iterator bucket;
  };
  struct Bucket {
    Count count;
    std::list<Entry> entries;
  };

  /// Moves `entry_it` (in `bucket_it`) to count `new_count`, walking
  /// forward over the (ascending) bucket list.
  void MoveToCount(std::list<Bucket>::iterator bucket_it,
                   std::list<Entry>::iterator entry_it, Count new_count);

  size_t capacity_;
  // Buckets in ascending count order; begin() is the minimum.
  std::list<Bucket> buckets_;
  std::unordered_map<ItemId, std::list<Entry>::iterator> index_;
};

}  // namespace streamfreq
