#include "core/self_tuning.h"

#include <algorithm>
#include <cmath>

namespace streamfreq {

Result<StreamProfiler> StreamProfiler::Make(const ProfilerParams& params) {
  if (params.k == 0) {
    return Status::InvalidArgument("StreamProfiler: k must be positive");
  }
  if (params.space_saving_capacity < 2 * params.k) {
    return Status::InvalidArgument(
        "StreamProfiler: space_saving_capacity must be at least 2k");
  }
  if (!(params.epsilon > 0.0) || params.epsilon >= 1.0) {
    return Status::InvalidArgument("StreamProfiler: epsilon must be in (0, 1)");
  }
  if (!(params.delta > 0.0) || params.delta >= 1.0) {
    return Status::InvalidArgument("StreamProfiler: delta must be in (0, 1)");
  }
  AmsF2Params f2_params = params.f2;
  f2_params.seed = params.seed;
  STREAMFREQ_ASSIGN_OR_RETURN(AmsF2Sketch f2, AmsF2Sketch::Make(f2_params));
  STREAMFREQ_ASSIGN_OR_RETURN(SpaceSaving heavy,
                              SpaceSaving::Make(params.space_saving_capacity));
  return StreamProfiler(params, std::move(f2), std::move(heavy));
}

StreamProfiler::StreamProfiler(ProfilerParams params, AmsF2Sketch f2,
                               SpaceSaving heavy)
    : params_(std::move(params)), f2_(std::move(f2)), heavy_(std::move(heavy)) {}

void StreamProfiler::Add(ItemId item, Count weight) {
  items_ += static_cast<uint64_t>(weight);
  f2_.Add(item, weight);
  heavy_.Add(item, weight);
}

double StreamProfiler::EstimateResidualF2() const {
  double f2 = f2_.Estimate();
  for (const ItemCount& ic : heavy_.Candidates(params_.k)) {
    const double lower =
        static_cast<double>(ic.count - heavy_.ErrorOf(ic.item));
    if (lower > 0) f2 -= lower * lower;
  }
  // Keep a sane floor: the AMS error can push the difference negative on
  // extremely head-dominated streams; at least the tail of the Space-Saving
  // summary is real mass.
  return std::max(f2, static_cast<double>(items_));
}

double StreamProfiler::EstimateNk() const {
  const auto candidates = heavy_.Candidates(params_.k);
  if (candidates.size() < params_.k) {
    // Fewer than k distinct heavy items seen; fall back to the smallest
    // observed count (conservative: smaller n_k means wider sketch).
    return candidates.empty()
               ? 1.0
               : static_cast<double>(candidates.back().count);
  }
  const ItemCount& kth = candidates[params_.k - 1];
  // Space-Saving counts overestimate by at most the item's error bound;
  // subtracting it yields a valid lower bound on n_k (never below 1).
  const Count lower = kth.count - heavy_.ErrorOf(kth.item);
  return std::max<double>(1.0, static_cast<double>(lower));
}

Result<SketchSizing> StreamProfiler::Size(
    uint64_t expected_stream_length) const {
  if (items_ == 0) {
    return Status::InvalidArgument("StreamProfiler: no items profiled yet");
  }
  if (expected_stream_length == 0) {
    return Status::InvalidArgument(
        "StreamProfiler: expected_stream_length must be positive");
  }
  // Linear extrapolation from the profiled prefix to the full stream:
  // counts scale by r, so F2 scales by r^2 and n_k by r.
  const double r = static_cast<double>(expected_stream_length) /
                   static_cast<double>(items_);
  ApproxTopSpec spec;
  spec.stream_length = expected_stream_length;
  spec.k = params_.k;
  spec.epsilon = params_.epsilon;
  spec.delta = params_.delta;
  spec.residual_f2 = std::max(0.0, EstimateResidualF2()) * r * r;
  spec.nk = EstimateNk() * r;
  return SizeForApproxTop(spec);
}

size_t StreamProfiler::SpaceBytes() const {
  return f2_.SpaceBytes() + heavy_.SpaceBytes();
}

}  // namespace streamfreq
