// The paper's 1-pass ApproxTop algorithm (Section 3.2): a Count-Sketch plus
// a bounded set ("heap") of the l items with the largest estimated counts.
//
// For each arrival q:
//   1. ADD(C, q)
//   2. if q is tracked, increment its tracked count; otherwise, if
//      ESTIMATE(C, q) exceeds the smallest tracked count, evict that
//      minimum and start tracking q.
//
// With b chosen per Lemma 5 this solves ApproxTop(S, k, eps): every output
// item has n_i >= (1 - eps) n_k, and every item with n_i >= (1 + eps) n_k
// is output. Tracking l > k items (l = k/(1-eps)^{1/z} for Zipf(z), Section
// 4.1) upgrades the answer to CandidateTop(S, k, l). Total space O(t*b + l).
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/count_sketch.h"
#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// What Add() did to the tracked set — lets callers (e.g. the typed
/// adapter) maintain satellite data for exactly the tracked items.
struct TrackerEvent {
  /// True when `item` entered the tracked set on this arrival.
  bool inserted = false;
  /// When an insertion evicted another item, the evicted id (else 0).
  ItemId evicted = 0;
};

/// Count-Sketch + top-l tracking: the paper's complete 1-pass algorithm.
class CountSketchTopK final : public StreamSummary {
 public:
  /// Builds the algorithm: a Count-Sketch with `sketch_params` and a
  /// tracked set of `tracked` items (the paper's heap of size l >= k).
  static Result<CountSketchTopK> Make(const CountSketchParams& sketch_params,
                                      size_t tracked);

  std::string Name() const override;

  /// Processes one arrival; returns what happened to the tracked set.
  TrackerEvent AddTracked(ItemId item, Count weight = 1);

  void Add(ItemId item, Count weight) override { AddTracked(item, weight); }
  using StreamSummary::Add;

  /// Sketch estimate for arbitrary items; tracked items report their
  /// tracked count (sketch estimate at insertion + exact increments since).
  Count Estimate(ItemId item) const override;

  /// The tracked items by descending tracked count (at most min(k, l)).
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// True iff `item` is currently tracked.
  bool IsTracked(ItemId item) const { return tracked_.contains(item); }

  const CountSketch& sketch() const { return sketch_; }
  size_t tracked_capacity() const { return capacity_; }
  size_t SpaceBytes() const override;

 private:
  CountSketchTopK(CountSketch sketch, size_t tracked);

  CountSketch sketch_;
  size_t capacity_;
  // Tracked counts plus an ordered index for O(log l) min lookup/eviction.
  std::unordered_map<ItemId, Count> tracked_;
  std::set<std::pair<Count, ItemId>> by_count_;
};

}  // namespace streamfreq
