#include "core/sharded_sketch.h"

namespace streamfreq {

Result<ShardedCountSketch> ShardedCountSketch::Make(
    const CountSketchParams& params, size_t shards) {
  if (shards == 0) {
    return Status::InvalidArgument("ShardedCountSketch: shards must be positive");
  }
  std::vector<CountSketch> built;
  built.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    STREAMFREQ_ASSIGN_OR_RETURN(CountSketch s, CountSketch::Make(params));
    built.push_back(std::move(s));
  }
  return ShardedCountSketch(std::move(built));
}

Result<CountSketch> ShardedCountSketch::Combine() const {
  CountSketch combined = shards_[0];  // copy
  for (size_t i = 1; i < shards_.size(); ++i) {
    STREAMFREQ_RETURN_NOT_OK(combined.Merge(shards_[i]));
  }
  return combined;
}

size_t ShardedCountSketch::SpaceBytes() const {
  size_t bytes = 0;
  for (const CountSketch& s : shards_) bytes += s.SpaceBytes();
  return bytes;
}

}  // namespace streamfreq
