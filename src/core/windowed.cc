#include "core/windowed.h"

#include "util/logging.h"

namespace streamfreq {

Result<WindowedCountSketch> WindowedCountSketch::Make(
    const WindowedSketchParams& params) {
  if (params.blocks == 0) {
    return Status::InvalidArgument("WindowedCountSketch: blocks must be positive");
  }
  if (params.window < params.blocks) {
    return Status::InvalidArgument(
        "WindowedCountSketch: window must be at least the block count");
  }
  std::vector<CountSketch> blocks;
  blocks.reserve(params.blocks);
  for (size_t i = 0; i < params.blocks; ++i) {
    STREAMFREQ_ASSIGN_OR_RETURN(CountSketch s, CountSketch::Make(params.sketch));
    blocks.push_back(std::move(s));
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch merged,
                              CountSketch::Make(params.sketch));
  return WindowedCountSketch(params, std::move(blocks), std::move(merged));
}

WindowedCountSketch::WindowedCountSketch(const WindowedSketchParams& params,
                                         std::vector<CountSketch> blocks,
                                         CountSketch merged)
    : params_(params),
      block_capacity_(params.window / params.blocks),
      blocks_(std::move(blocks)),
      block_items_(params.blocks, 0),
      merged_(std::move(merged)) {}

void WindowedCountSketch::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  // Split arrivals that straddle a block boundary so blocks stay aligned.
  while (weight > 0) {
    const uint64_t room = block_capacity_ - block_items_[active_];
    const Count batch =
        std::min<Count>(weight, static_cast<Count>(room));
    blocks_[active_].Add(item, batch);
    merged_.Add(item, batch);
    block_items_[active_] += static_cast<uint64_t>(batch);
    covered_ += static_cast<uint64_t>(batch);
    total_ += static_cast<uint64_t>(batch);
    weight -= batch;

    if (block_items_[active_] == block_capacity_) {
      // Advance the ring; evict whatever the next slot still holds.
      active_ = (active_ + 1) % blocks_.size();
      if (block_items_[active_] > 0) {
        SFQ_CHECK_OK(merged_.Subtract(blocks_[active_]));
        covered_ -= block_items_[active_];
      }
      blocks_[active_].Clear();
      block_items_[active_] = 0;
    }
  }
}

size_t WindowedCountSketch::SpaceBytes() const {
  size_t bytes = merged_.SpaceBytes();
  for (const CountSketch& b : blocks_) bytes += b.SpaceBytes();
  bytes += block_items_.size() * sizeof(uint64_t);
  return bytes;
}

}  // namespace streamfreq
