#include "core/count_min.h"

#include <algorithm>

#include "hash/random.h"
#include "util/logging.h"

namespace streamfreq {

Result<CountMin> CountMin::Make(const CountMinParams& params) {
  if (params.depth == 0 || params.width == 0) {
    return Status::InvalidArgument("CountMin: depth and width must be positive");
  }
  if (params.depth > (1u << 20) || params.width > (1ull << 34)) {
    return Status::InvalidArgument("CountMin: dimensions implausibly large");
  }
  return CountMin(params);
}

CountMin::CountMin(const CountMinParams& params)
    : params_(params),
      depth_(params.depth),
      width_(params.width),
      counters_(params.depth, params.width) {
  SplitMix64 seeder(SplitMix64(params.seed).Next() ^ 0xC3117EULL);
  hashes_.reserve(depth_);
  for (size_t i = 0; i < depth_; ++i) hashes_.emplace_back(seeder);
}

void CountMin::Add(ItemId item, Count weight) noexcept {
  SFQ_DCHECK_GE(weight, 0);
  if (!params_.conservative) {
    for (size_t i = 0; i < depth_; ++i) {
      counters_.At(i, hashes_[i].Bucket(item, width_)) += weight;
    }
    return;
  }
  // Conservative update: raise every counter only as far as
  // Estimate(item) + weight, never beyond what the minimum justifies.
  Count current = Estimate(item);
  const Count target = current + weight;
  for (size_t i = 0; i < depth_; ++i) {
    int64_t& c = counters_.At(i, hashes_[i].Bucket(item, width_));
    c = std::max<int64_t>(c, target);
  }
}

// sfq-hot-path
void CountMin::BatchAddDispatch(std::span<const ItemId> items, Count weight,
                                batch_hash::Backend backend) noexcept {
  SFQ_DCHECK_GE(weight, 0);
  if (params_.conservative) {
    // Order-dependent update; the batch kernels would change semantics.
    for (const ItemId q : items) Add(q, weight);
    return;
  }
  // kChunk-key stripes amortize the kernel call and keep the staging
  // buffer L1-resident (see CountSketch::BatchAddRows).
  constexpr size_t kChunk = 1024;
  static_assert(kChunk % batch_hash::kBlock == 0);
  uint64_t bkt[kChunk];
  for (size_t i = 0; i < depth_; ++i) {
    const CarterWegmanHash& h = hashes_[i];
    int64_t* row = counters_.Row(i);
    for (size_t pos = 0; pos < items.size(); pos += kChunk) {
      const size_t take = std::min(kChunk, items.size() - pos);
      batch_hash::Buckets(
          h, std::span<const uint64_t>(items.data() + pos, take), width_, bkt,
          backend);
      for (size_t j = 0; j < take; ++j) row[bkt[j]] += weight;
    }
  }
}

// sfq-hot-path
void CountMin::BatchAdd(std::span<const ItemId> items, Count weight) noexcept {
  BatchAddDispatch(items, weight, batch_hash::Backend::kVectorized);
}

// sfq-hot-path
void CountMin::BatchAddScalar(std::span<const ItemId> items,
                              Count weight) noexcept {
  BatchAddDispatch(items, weight, batch_hash::Backend::kScalar);
}

Count CountMin::Estimate(ItemId item) const noexcept {
  Count best = counters_.At(0, hashes_[0].Bucket(item, width_));
  for (size_t i = 1; i < depth_; ++i) {
    best = std::min<Count>(best,
                           counters_.At(i, hashes_[i].Bucket(item, width_)));
  }
  return best;
}

bool CountMin::CompatibleWith(const CountMin& other) const {
  return depth_ == other.depth_ && width_ == other.width_ &&
         params_.seed == other.params_.seed;
}

Status CountMin::Merge(const CountMin& other) {
  if (!CompatibleWith(other)) {
    return Status::InvalidArgument("CountMin::Merge: incompatible sketches");
  }
  if (params_.conservative || other.params_.conservative) {
    // Conservative-update counters are not linear; merging would break the
    // upper-bound guarantee.
    return Status::InvalidArgument(
        "CountMin::Merge: conservative-update sketches are not mergeable");
  }
  counters_.AddAll(other.counters_);
  return Status::OK();
}

size_t CountMin::SpaceBytes() const {
  return counters_.AllocatedBytes() + depth_ * 2 * sizeof(uint64_t);
}

}  // namespace streamfreq
