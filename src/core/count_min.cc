#include "core/count_min.h"

#include <algorithm>

#include "hash/random.h"
#include "util/logging.h"

namespace streamfreq {

Result<CountMin> CountMin::Make(const CountMinParams& params) {
  if (params.depth == 0 || params.width == 0) {
    return Status::InvalidArgument("CountMin: depth and width must be positive");
  }
  if (params.depth > (1u << 20) || params.width > (1ull << 34)) {
    return Status::InvalidArgument("CountMin: dimensions implausibly large");
  }
  return CountMin(params);
}

CountMin::CountMin(const CountMinParams& params)
    : params_(params),
      depth_(params.depth),
      width_(params.width),
      counters_(params.depth * params.width, 0) {
  SplitMix64 seeder(SplitMix64(params.seed).Next() ^ 0xC3117EULL);
  hashes_.reserve(depth_);
  for (size_t i = 0; i < depth_; ++i) hashes_.emplace_back(seeder);
}

void CountMin::Add(ItemId item, Count weight) noexcept {
  SFQ_DCHECK_GE(weight, 0);
  if (!params_.conservative) {
    for (size_t i = 0; i < depth_; ++i) {
      counters_[i * width_ + hashes_[i].Bucket(item, width_)] += weight;
    }
    return;
  }
  // Conservative update: raise every counter only as far as
  // Estimate(item) + weight, never beyond what the minimum justifies.
  Count current = Estimate(item);
  const Count target = current + weight;
  for (size_t i = 0; i < depth_; ++i) {
    int64_t& c = counters_[i * width_ + hashes_[i].Bucket(item, width_)];
    c = std::max<int64_t>(c, target);
  }
}

void CountMin::BatchAdd(std::span<const ItemId> items, Count weight) noexcept {
  SFQ_DCHECK_GE(weight, 0);
  if (params_.conservative) {
    for (const ItemId q : items) Add(q, weight);
    return;
  }
  for (size_t i = 0; i < depth_; ++i) {
    const CarterWegmanHash& h = hashes_[i];
    int64_t* row = counters_.data() + i * width_;
    for (const ItemId q : items) row[h.Bucket(q, width_)] += weight;
  }
}

Count CountMin::Estimate(ItemId item) const noexcept {
  Count best = counters_[hashes_[0].Bucket(item, width_)];
  for (size_t i = 1; i < depth_; ++i) {
    best = std::min<Count>(best,
                           counters_[i * width_ + hashes_[i].Bucket(item, width_)]);
  }
  return best;
}

bool CountMin::CompatibleWith(const CountMin& other) const {
  return depth_ == other.depth_ && width_ == other.width_ &&
         params_.seed == other.params_.seed;
}

Status CountMin::Merge(const CountMin& other) {
  if (!CompatibleWith(other)) {
    return Status::InvalidArgument("CountMin::Merge: incompatible sketches");
  }
  if (params_.conservative || other.params_.conservative) {
    // Conservative-update counters are not linear; merging would break the
    // upper-bound guarantee.
    return Status::InvalidArgument(
        "CountMin::Merge: conservative-update sketches are not mergeable");
  }
  for (size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  return Status::OK();
}

size_t CountMin::SpaceBytes() const {
  return counters_.size() * sizeof(int64_t) + depth_ * 2 * sizeof(uint64_t);
}

}  // namespace streamfreq
