#include "core/group_testing.h"

#include <algorithm>
#include <bit>
#include <map>

#include "hash/random.h"
#include "util/logging.h"

namespace streamfreq {

Result<GroupTestingSketch> GroupTestingSketch::Make(
    const GroupTestingParams& params) {
  if (params.depth == 0 || params.groups == 0) {
    return Status::InvalidArgument(
        "GroupTestingSketch: depth and groups must be positive");
  }
  if (params.key_bits == 0 || params.key_bits > 64) {
    return Status::InvalidArgument(
        "GroupTestingSketch: key_bits must be in [1, 64]");
  }
  if (params.depth * params.groups > (1ull << 26)) {
    return Status::InvalidArgument("GroupTestingSketch: too many groups");
  }
  return GroupTestingSketch(params);
}

GroupTestingSketch::GroupTestingSketch(const GroupTestingParams& params)
    : params_(params),
      stride_(1 + params.key_bits),
      key_mask_(params.key_bits >= 64 ? ~0ULL
                                      : (1ULL << params.key_bits) - 1),
      counters_(params.depth * params.groups * stride_, 0) {
  SplitMix64 seeder(SplitMix64(params.seed).Next() ^ 0xC67ULL);
  hashes_.reserve(params.depth);
  for (size_t i = 0; i < params.depth; ++i) hashes_.emplace_back(seeder);
}

void GroupTestingSketch::Add(uint64_t key, Count weight) noexcept {
  SFQ_DCHECK((key & ~key_mask_) == 0) << "key exceeds key_bits";
  key &= key_mask_;
  for (size_t row = 0; row < params_.depth; ++row) {
    const size_t group = hashes_[row].Bucket(key, params_.groups);
    int64_t* base = counters_.data() + GroupBase(row, group);
    base[0] += weight;
    uint64_t remaining = key;
    while (remaining != 0) {
      const int bit = std::countr_zero(remaining);
      base[1 + bit] += weight;
      remaining &= remaining - 1;
    }
  }
}

Count GroupTestingSketch::Estimate(uint64_t key) const noexcept {
  key &= key_mask_;
  Count best = 0;
  for (size_t row = 0; row < params_.depth; ++row) {
    const size_t group = hashes_[row].Bucket(key, params_.groups);
    const Count total = counters_[GroupBase(row, group)];
    best = row == 0 ? total : std::min(best, total);
  }
  return best;
}

std::vector<DecodedHeavyHitter> GroupTestingSketch::Decode(
    Count threshold) const {
  SFQ_DCHECK_GE(threshold, 1);
  // Decode every qualifying group; count per-key row votes.
  std::map<uint64_t, int> votes;
  for (size_t row = 0; row < params_.depth; ++row) {
    for (size_t group = 0; group < params_.groups; ++group) {
      const int64_t* base = counters_.data() + GroupBase(row, group);
      const Count total = base[0];
      if (total < threshold) continue;
      uint64_t key = 0;
      for (size_t bit = 0; bit < params_.key_bits; ++bit) {
        // Majority: more than half the group's mass has this bit set.
        if (2 * base[1 + bit] > total) key |= 1ULL << bit;
      }
      // Verification: the decoded key must actually hash to this group.
      if (hashes_[row].Bucket(key, params_.groups) == group) {
        ++votes[key];
      }
    }
  }

  std::vector<DecodedHeavyHitter> out;
  const int needed = static_cast<int>(params_.depth / 2 + 1);
  for (const auto& [key, vote_count] : votes) {
    if (vote_count < needed) continue;
    const Count est = Estimate(key);
    if (est >= threshold) out.push_back({key, est});
  }
  std::sort(out.begin(), out.end(),
            [](const DecodedHeavyHitter& a, const DecodedHeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  return out;
}

bool GroupTestingSketch::Compatible(const GroupTestingSketch& other) const {
  return params_.depth == other.params_.depth &&
         params_.groups == other.params_.groups &&
         params_.key_bits == other.params_.key_bits &&
         params_.seed == other.params_.seed;
}

Status GroupTestingSketch::Merge(const GroupTestingSketch& other) {
  if (!Compatible(other)) {
    return Status::InvalidArgument("GroupTestingSketch::Merge: incompatible");
  }
  for (size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  return Status::OK();
}

Status GroupTestingSketch::Subtract(const GroupTestingSketch& other) {
  if (!Compatible(other)) {
    return Status::InvalidArgument(
        "GroupTestingSketch::Subtract: incompatible");
  }
  for (size_t i = 0; i < counters_.size(); ++i) counters_[i] -= other.counters_[i];
  return Status::OK();
}

size_t GroupTestingSketch::SpaceBytes() const {
  return counters_.size() * sizeof(int64_t) +
         params_.depth * 2 * sizeof(uint64_t);
}

}  // namespace streamfreq
