// Sliding-window frequency estimation over the most recent W items
// (jumping-window construction).
//
// The paper's model is whole-stream; deployed heavy-hitter monitors
// usually ask about a recent window ("top queries in the last hour").
// The classic bridge is a jumping window: the window of W items is split
// into R blocks of W/R items. Each block has its own Count-Sketch; a
// running merged sketch holds the sum of the live blocks. When a block
// fills, the oldest block's sketch is subtracted from the merged sketch
// (additivity again -- the group structure of Count-Sketch is what makes
// eviction O(t*b) instead of O(block contents)) and its storage is reused.
//
// The answer covers between W - W/R and W of the most recent items
// (granularity error W/R), plus the usual sketch estimation error.
#pragma once

#include <cstddef>
#include <vector>

#include "core/count_sketch.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters for the jumping-window sketch.
struct WindowedSketchParams {
  uint64_t window = 1 << 20;  ///< W: items covered
  size_t blocks = 8;          ///< R: granularity (window/R per block)
  CountSketchParams sketch;   ///< per-block sketch dimensions
};

/// Count-Sketch over a jumping window of the last ~W items.
class WindowedCountSketch {
 public:
  /// Validates (window >= blocks >= 1) and builds the block ring.
  static Result<WindowedCountSketch> Make(const WindowedSketchParams& params);

  /// Processes one arrival (weight must be >= 1: this is a cash-register
  /// window; deletions have no place in a sliding arrival window).
  void Add(ItemId item, Count weight = 1);

  /// Estimated count of `item` among the covered suffix of the stream.
  Count Estimate(ItemId item) const noexcept { return merged_.Estimate(item); }

  /// Number of stream items currently covered: in
  /// (window - window/blocks, window] once warm, smaller during warm-up.
  uint64_t CoveredItems() const { return covered_; }

  /// Total arrivals ever observed.
  uint64_t TotalItems() const { return total_; }

  size_t SpaceBytes() const;

 private:
  WindowedCountSketch(const WindowedSketchParams& params,
                      std::vector<CountSketch> blocks, CountSketch merged);

  WindowedSketchParams params_;
  uint64_t block_capacity_;  // items per block
  std::vector<CountSketch> blocks_;
  std::vector<uint64_t> block_items_;  // weights currently in each block
  size_t active_ = 0;                  // ring index of the filling block
  CountSketch merged_;
  uint64_t covered_ = 0;
  uint64_t total_ = 0;
};

}  // namespace streamfreq
