#include "core/phi_heavy_hitters.h"

#include <algorithm>
#include <cmath>

namespace streamfreq {

Result<PhiHeavyHitters> PhiHeavyHitters::Make(double phi) {
  if (!(phi > 0.0) || phi >= 1.0) {
    return Status::InvalidArgument("PhiHeavyHitters: phi must be in (0, 1)");
  }
  const double capacity = std::ceil(2.0 / phi);
  if (capacity > 1e8) {
    return Status::InvalidArgument(
        "PhiHeavyHitters: phi too small (capacity would exceed 1e8)");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(
      SpaceSaving summary, SpaceSaving::Make(static_cast<size_t>(capacity)));
  return PhiHeavyHitters(phi, std::move(summary));
}

void PhiHeavyHitters::Add(ItemId item, Count weight) {
  n_ += weight;
  summary_.Add(item, weight);
}

std::vector<PhiHeavyHitter> PhiHeavyHitters::Report() const {
  const double threshold = phi_ * static_cast<double>(n_);
  std::vector<PhiHeavyHitter> out;
  for (const ItemCount& ic : summary_.Candidates(summary_.capacity())) {
    if (static_cast<double>(ic.count) <= threshold) continue;
    const Count lower = ic.count - summary_.ErrorOf(ic.item);
    out.push_back({ic.item, ic.count, lower,
                   static_cast<double>(lower) > threshold});
  }
  std::sort(out.begin(), out.end(),
            [](const PhiHeavyHitter& a, const PhiHeavyHitter& b) {
              if (a.count_upper != b.count_upper) {
                return a.count_upper > b.count_upper;
              }
              return a.item < b.item;
            });
  return out;
}

std::vector<PhiHeavyHitter> PhiHeavyHitters::GuaranteedOnly() const {
  std::vector<PhiHeavyHitter> all = Report();
  std::vector<PhiHeavyHitter> out;
  for (const PhiHeavyHitter& hh : all) {
    if (hh.guaranteed) out.push_back(hh);
  }
  return out;
}

}  // namespace streamfreq
