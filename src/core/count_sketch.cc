#include "core/count_sketch.h"

#include <algorithm>
#include <cmath>

#include "hash/random.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace streamfreq {

Result<CountSketch> CountSketch::Make(const CountSketchParams& params) {
  if (params.depth == 0) {
    return Status::InvalidArgument("CountSketch: depth must be positive");
  }
  if (params.width == 0) {
    return Status::InvalidArgument("CountSketch: width must be positive");
  }
  if (params.depth > (1u << 20) || params.width > (1ull << 34)) {
    return Status::InvalidArgument("CountSketch: dimensions implausibly large");
  }
  return CountSketch(params);
}

CountSketch::CountSketch(const CountSketchParams& params)
    : params_(params),
      depth_(params.depth),
      width_(params.width),
      counters_(params.depth, params.width) {
  // One seed stream per role keeps bucket and sign functions mutually
  // independent, as the analysis requires.
  SplitMix64 bucket_seeder(SplitMix64(params.seed).Next() ^ 0xB0C4E7ULL);
  SplitMix64 sign_seeder(SplitMix64(params.seed + 1).Next() ^ 0x51C40FULL);
  switch (params.family) {
    case HashFamily::kCarterWegman:
      cw_bucket_.reserve(depth_);
      cw_sign_.reserve(depth_);
      for (size_t i = 0; i < depth_; ++i) {
        cw_bucket_.emplace_back(bucket_seeder);
        cw_sign_.emplace_back(sign_seeder);
      }
      break;
    case HashFamily::kMultiplyShift:
      ms_bucket_.reserve(depth_);
      ms_sign_.reserve(depth_);
      for (size_t i = 0; i < depth_; ++i) {
        ms_bucket_.emplace_back(bucket_seeder);
        ms_sign_.emplace_back(sign_seeder);
      }
      break;
    case HashFamily::kTabulation:
      tab_bucket_.reserve(depth_);
      tab_sign_.reserve(depth_);
      for (size_t i = 0; i < depth_; ++i) {
        tab_bucket_.emplace_back(bucket_seeder);
        tab_sign_.emplace_back(sign_seeder);
      }
      break;
  }
}

CountSketch::BucketSign CountSketch::Locate(size_t row, ItemId item) const noexcept {
  switch (params_.family) {
    case HashFamily::kCarterWegman:
      return {cw_bucket_[row].Bucket(item, width_), cw_sign_[row].Sign(item)};
    case HashFamily::kMultiplyShift:
      return {ms_bucket_[row].Bucket(item, width_), ms_sign_[row].Sign(item)};
    case HashFamily::kTabulation:
      return {tab_bucket_[row].Bucket(item, width_), tab_sign_[row].Sign(item)};
  }
  return {0, 1};  // unreachable
}

void CountSketch::Add(ItemId item, Count weight) noexcept {
  for (size_t i = 0; i < depth_; ++i) {
    const BucketSign bs = Locate(i, item);
    counters_.At(i, bs.bucket) += weight * bs.sign;
  }
}

template <typename HashT>
// sfq-hot-path
void CountSketch::BatchAddRows(const std::vector<HashT>& bucket,
                               const std::vector<HashT>& sign,
                               std::span<const ItemId> items, Count weight,
                               batch_hash::Backend backend) noexcept {
  // Rows outer, items inner: one row's hash constants stay in registers
  // and every pass walks a single aligned counter stripe. Within a row the
  // bucket/sign evaluation runs through the batch kernels a kChunk-key
  // stripe at a time — large enough to amortize the (non-inlined) kernel
  // call, small enough that the staging buffers stay in L1 — then the
  // scatter runs scalar (data-dependent indices).
  constexpr size_t kChunk = 1024;
  static_assert(kChunk % batch_hash::kBlock == 0);
  uint64_t bkt[kChunk];
  int64_t sgn[kChunk];
  for (size_t i = 0; i < depth_; ++i) {
    const HashT& hb = bucket[i];
    const HashT& hs = sign[i];
    int64_t* row = counters_.Row(i);
    for (size_t pos = 0; pos < items.size(); pos += kChunk) {
      const size_t take = std::min(kChunk, items.size() - pos);
      batch_hash::BucketsAndSigns(
          hb, hs, std::span<const uint64_t>(items.data() + pos, take), width_,
          bkt, sgn, backend);
      for (size_t j = 0; j < take; ++j) row[bkt[j]] += weight * sgn[j];
    }
  }
}

// sfq-hot-path
void CountSketch::BatchAddDispatch(std::span<const ItemId> items, Count weight,
                                   batch_hash::Backend backend) noexcept {
  switch (params_.family) {
    case HashFamily::kCarterWegman:
      BatchAddRows(cw_bucket_, cw_sign_, items, weight, backend);
      break;
    case HashFamily::kMultiplyShift:
      BatchAddRows(ms_bucket_, ms_sign_, items, weight, backend);
      break;
    case HashFamily::kTabulation:
      BatchAddRows(tab_bucket_, tab_sign_, items, weight, backend);
      break;
  }
}

// sfq-hot-path
void CountSketch::BatchAdd(std::span<const ItemId> items,
                           Count weight) noexcept {
  BatchAddDispatch(items, weight, batch_hash::Backend::kVectorized);
}

// sfq-hot-path
void CountSketch::BatchAddScalar(std::span<const ItemId> items,
                                 Count weight) noexcept {
  BatchAddDispatch(items, weight, batch_hash::Backend::kScalar);
}

std::vector<Count> CountSketch::RowEstimates(ItemId item) const {
  std::vector<Count> est(depth_);
  for (size_t i = 0; i < depth_; ++i) {
    const BucketSign bs = Locate(i, item);
    est[i] = counters_.At(i, bs.bucket) * bs.sign;
  }
  return est;
}

CountSketch::EstimateInterval CountSketch::EstimateWithSpread(
    ItemId item) const {
  std::vector<Count> est = RowEstimates(item);
  std::sort(est.begin(), est.end());
  const size_t n = est.size();
  EstimateInterval out;
  out.lower = est[n / 4];
  out.upper = est[(3 * n) / 4 == n ? n - 1 : (3 * n) / 4];
  if (n % 2 == 1) {
    out.estimate = est[n / 2];
  } else {
    out.estimate = (est[n / 2 - 1] + est[n / 2]) / 2;
  }
  return out;
}

Count CountSketch::Estimate(ItemId item) const noexcept {
  // Row estimates live on the stack for the common shallow depths; deep
  // sketches fall back to the heap-allocating path.
  constexpr size_t kStackRows = 64;
  Count stack_est[kStackRows];
  std::vector<Count> heap_est;
  Count* est;
  if (depth_ <= kStackRows) {
    est = stack_est;
  } else {
    heap_est.resize(depth_);
    est = heap_est.data();
  }
  for (size_t i = 0; i < depth_; ++i) {
    const BucketSign bs = Locate(i, item);
    est[i] = counters_.At(i, bs.bucket) * bs.sign;
  }
  if (params_.estimator == Estimator::kMean) {
    // Mean ablation: average rounded toward zero.
    Count sum = 0;
    for (size_t i = 0; i < depth_; ++i) sum += est[i];
    return sum / static_cast<Count>(depth_);
  }
  // Median: middle order statistic; even depths average the two middles
  // (rounding toward zero) so estimates stay symmetric under negation.
  const size_t mid = depth_ / 2;
  std::nth_element(est, est + mid, est + depth_);
  if (depth_ % 2 == 1) return est[mid];
  const Count hi = est[mid];
  const Count lo = *std::max_element(est, est + mid);
  return (lo + hi) / 2;
}

bool CountSketch::CompatibleWith(const CountSketch& other) const {
  return depth_ == other.depth_ && width_ == other.width_ &&
         params_.seed == other.params_.seed &&
         params_.family == other.params_.family;
}

Status CountSketch::Merge(const CountSketch& other) {
  if (!CompatibleWith(other)) {
    return Status::InvalidArgument(
        "CountSketch::Merge: incompatible sketches (parameters or seed "
        "differ)");
  }
  counters_.AddAll(other.counters_);
  return Status::OK();
}

Status CountSketch::Subtract(const CountSketch& other) {
  if (!CompatibleWith(other)) {
    return Status::InvalidArgument(
        "CountSketch::Subtract: incompatible sketches (parameters or seed "
        "differ)");
  }
  counters_.SubtractAll(other.counters_);
  return Status::OK();
}

void CountSketch::Clear() noexcept { counters_.Clear(); }

size_t CountSketch::SpaceBytes() const {
  size_t hash_bytes = 0;
  switch (params_.family) {
    case HashFamily::kCarterWegman:
    case HashFamily::kMultiplyShift:
      hash_bytes = depth_ * 2 * 2 * sizeof(uint64_t);  // (a,b) x {bucket,sign}
      break;
    case HashFamily::kTabulation:
      hash_bytes = depth_ * 2 * sizeof(TabulationHash);
      break;
  }
  return counters_.AllocatedBytes() + hash_bytes;
}

namespace {
constexpr uint64_t kSketchMagic = 0x5346515343303153ULL;  // "SFQSC01S"
}  // namespace

void CountSketch::SerializeTo(std::string* out) const {
  ByteWriter w(out);
  w.PutU64(kSketchMagic);
  w.PutU64(depth_);
  w.PutU64(width_);
  w.PutU64(params_.seed);
  w.PutU64(static_cast<uint64_t>(params_.family));
  w.PutU64(static_cast<uint64_t>(params_.estimator));
  // Logical row-major order, padding skipped: the wire format is the same
  // as the historical unpadded layout.
  for (size_t i = 0; i < depth_; ++i) {
    for (size_t j = 0; j < width_; ++j) w.PutI64(counters_.At(i, j));
  }
}

Result<CountSketch> CountSketch::Deserialize(std::string_view data) {
  ByteReader r(data);
  uint64_t magic, depth, width, seed, family, estimator;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&magic));
  if (magic != kSketchMagic) {
    return Status::Corruption("CountSketch::Deserialize: bad magic");
  }
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&depth));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&width));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&seed));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&family));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&estimator));
  if (family > static_cast<uint64_t>(HashFamily::kTabulation) ||
      estimator > static_cast<uint64_t>(Estimator::kMean)) {
    return Status::Corruption("CountSketch::Deserialize: bad enum value");
  }
  // Validate the payload size BEFORE Make allocates depth*width counters:
  // a corrupted header must fail cleanly, not exhaust memory. The division
  // avoids overflow in depth * width * 8 for hostile headers.
  if (depth == 0 || width == 0 ||
      r.remaining() / sizeof(int64_t) / depth != width ||
      r.remaining() % sizeof(int64_t) != 0) {
    return Status::Corruption("CountSketch::Deserialize: counter payload size "
                              "mismatch");
  }
  CountSketchParams params;
  params.depth = depth;
  params.width = width;
  params.seed = seed;
  params.family = static_cast<HashFamily>(family);
  params.estimator = static_cast<Estimator>(estimator);
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch sketch, Make(params));
  for (size_t i = 0; i < depth; ++i) {
    for (size_t j = 0; j < width; ++j) {
      STREAMFREQ_RETURN_NOT_OK(r.GetI64(&sketch.counters_.At(i, j)));
    }
  }
  return sketch;
}

}  // namespace streamfreq
