// Count-Min sketch (Cormode & Muthukrishnan), the standard sketch
// competitor to Count-Sketch in the frequent-items literature.
//
//   Add(q, w):   for each row i, C[i][h_i(q)] += w
//   Estimate(q): min_i C[i][h_i(q)]
//
// Estimates are one-sided overestimates: true <= est <= true + eps*n with
// probability 1-delta for width e/eps and depth ln(1/delta), assuming
// non-negative updates (cash-register model). The conservative-update
// variant only raises the counters that are at the current minimum, which
// tightens estimates at no extra space (evaluated in the ablation bench).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/counter_matrix.h"
#include "core/frequent.h"
#include "hash/batch_hash.h"
#include "hash/pairwise.h"
#include "util/result.h"

namespace streamfreq {

/// Construction parameters for CountMin.
struct CountMinParams {
  size_t depth = 4;
  size_t width = 256;
  uint64_t seed = 1;
  /// Conservative update: increment only the minimal counters.
  bool conservative = false;
};

/// The Count-Min sketch. Point-query estimates are upper bounds.
class CountMin {
 public:
  /// Validates parameters and builds a zeroed sketch.
  static Result<CountMin> Make(const CountMinParams& params);

  /// Processes `weight` occurrences. Weight must be non-negative; the
  /// min-estimator's guarantee does not survive deletions (checked in
  /// debug builds only — hot path).
  void Add(ItemId item, Count weight = 1) noexcept;

  /// Batch Add: `weight` occurrences of every item in `items`. For the
  /// plain sketch the update is row-major (hash constants and one
  /// cache-line-aligned counter stripe at a time), bucket hashes evaluated
  /// 16 keys per iteration by the SIMD kernels in hash/batch_hash.h, and
  /// the final state is exactly the item-at-a-time state; the
  /// conservative-update variant is order-dependent and falls back to
  /// per-item Add in stream order.
  void BatchAdd(std::span<const ItemId> items, Count weight = 1) noexcept;

  /// BatchAdd forced through the scalar reference kernels — the baseline
  /// side of simd_equivalence_test and of the scalar-baseline rows in
  /// BENCH_throughput.json.
  void BatchAddScalar(std::span<const ItemId> items,
                      Count weight = 1) noexcept;

  /// min over rows of the item's counter: an overestimate of the count.
  Count Estimate(ItemId item) const noexcept;

  /// Counter-wise addition of a compatible sketch.
  Status Merge(const CountMin& other);

  bool CompatibleWith(const CountMin& other) const;

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  bool conservative() const { return params_.conservative; }

  /// Raw counter at (row, bucket). The merge-tree property test compares
  /// counter states cell by cell to prove tree-shape independence.
  int64_t CounterAt(size_t row, size_t bucket) const noexcept {
    return counters_.At(row, bucket);
  }

  /// Bytes held (counters + hash parameters).
  size_t SpaceBytes() const;

 private:
  explicit CountMin(const CountMinParams& params);

  void BatchAddDispatch(std::span<const ItemId> items, Count weight,
                        batch_hash::Backend backend) noexcept;

  CountMinParams params_;
  size_t depth_;
  size_t width_;
  std::vector<CarterWegmanHash> hashes_;
  // depth_ x width_ counters, cache-line aligned and stride-padded (see
  // counter_matrix.h).
  CounterMatrix counters_;
};

}  // namespace streamfreq
