#include "core/dgim.h"

namespace streamfreq {

Result<DgimCounter> DgimCounter::Make(uint64_t window, size_t k_per_size) {
  if (window == 0) {
    return Status::InvalidArgument("DgimCounter: window must be positive");
  }
  if (k_per_size == 0) {
    return Status::InvalidArgument("DgimCounter: k_per_size must be positive");
  }
  return DgimCounter(window, k_per_size);
}

void DgimCounter::ExpireOld() {
  // A bucket is expired when its newest event fell out of the window.
  while (!buckets_.empty() &&
         buckets_.back().newest + window_ <= now_) {
    buckets_.pop_back();
  }
}

void DgimCounter::Observe(bool event) {
  ++now_;
  ExpireOld();
  if (!event) return;

  buckets_.push_front({now_, 1});
  // Cascade merges: allow at most k_per_size + 1 buckets of any size; on
  // overflow merge the two OLDEST of that size into one of double size.
  size_t size_start = 0;  // index of the first bucket with the current size
  uint64_t size = 1;
  while (true) {
    size_t count = 0;
    size_t i = size_start;
    while (i < buckets_.size() && buckets_[i].size == size) {
      ++count;
      ++i;
    }
    if (count <= k_per_size_) break;
    // Merge buckets i-1 and i-2 (the two oldest of this size): the merged
    // bucket keeps the newer of the two "newest" stamps, which is i-2's
    // (buckets are newest-first).
    buckets_[i - 2].size *= 2;
    buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(i) - 1);
    size_start = i - 2;
    size *= 2;
  }
}

uint64_t DgimCounter::UpperBound() const {
  uint64_t total = 0;
  for (const Bucket& b : buckets_) total += b.size;
  return total;
}

uint64_t DgimCounter::LowerBound() const {
  if (buckets_.empty()) return 0;
  const uint64_t total = UpperBound();
  // All of the oldest bucket except its newest event may be outside the
  // window.
  return total - (buckets_.back().size - 1);
}

uint64_t DgimCounter::Estimate() const {
  if (buckets_.empty()) return 0;
  const uint64_t total = UpperBound();
  return total - buckets_.back().size / 2;
}

}  // namespace streamfreq
