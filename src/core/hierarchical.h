// Hierarchical (dyadic) Count-Sketch: range queries, quantiles, and
// turnstile heavy-hitter *recovery* without per-item tracking.
//
// The paper's Section 3.2 algorithm tracks candidates in a heap, which
// requires seeing each heavy item again after its estimate rises — fine for
// insert-only streams, impossible for pure turnstile workloads (e.g. the
// difference of two streams, where "arrivals" never replay). The standard
// fix from the sketching literature is a dyadic decomposition: one sketch
// per prefix level of the key domain. Heavy hitters are recovered by
// descending from the root, expanding only prefixes whose estimated mass
// clears the threshold; ranges decompose into <= 2 log U dyadic nodes; rank
// queries (quantiles) binary-search the prefix tree.
//
// Cost: (levels) sketches, so log U times the single-sketch space and
// update cost. Estimates inherit Count-Sketch's unbiased-median guarantee
// level by level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/count_sketch.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters for the dyadic sketch.
struct HierarchicalParams {
  /// Key domain is [0, 2^bits). Updates outside abort in debug builds and
  /// are masked in release.
  size_t bits = 24;
  /// Count-Sketch depth/width used at every level (narrow levels are
  /// automatically clamped to their domain size).
  size_t depth = 5;
  size_t width = 1024;
  uint64_t seed = 1;
};

/// A recovered heavy item.
struct HeavyHitter {
  uint64_t key;
  Count estimate;
};

/// The dyadic Count-Sketch structure.
class HierarchicalCountSketch {
 public:
  /// Validates parameters (1 <= bits <= 40 to bound level count) and
  /// builds one zeroed sketch per level.
  static Result<HierarchicalCountSketch> Make(const HierarchicalParams& params);

  /// Adds `weight` (may be negative: turnstile) to `key`.
  void Add(uint64_t key, Count weight = 1) noexcept;

  /// Point estimate for `key` (leaf-level sketch).
  Count EstimatePoint(uint64_t key) const noexcept;

  /// Estimated total weight of keys in [lo, hi] (inclusive). Decomposes
  /// into at most 2*bits dyadic nodes. Returns InvalidArgument when
  /// lo > hi or hi is outside the domain.
  Result<Count> EstimateRange(uint64_t lo, uint64_t hi) const;

  /// Recovers all keys whose estimated count is at least `threshold`
  /// (absolute value — turnstile deltas count in both directions), by
  /// descending the prefix tree. Expands at most O(#answers * bits)
  /// nodes when the sketch error is below threshold/2.
  ///
  /// Caveat for signed (difference) data: a positive and a negative heavy
  /// delta under the same ancestor can cancel in that ancestor's estimate
  /// and prune the descent. When hunting signed deltas, decode risers and
  /// fallers separately (sketch the difference both ways) or lower the
  /// threshold.
  std::vector<HeavyHitter> HeavyHitters(Count threshold) const;

  /// The key at estimated rank `target` (0-based) under the current
  /// (non-negative) stream: the smallest key whose prefix-sum estimate
  /// exceeds target. Intended for insert-only streams; with negative
  /// counts present the result is unspecified.
  uint64_t KeyAtRank(Count target) const;

  /// Estimated rank of `key`: the estimated number of occurrences of keys
  /// strictly smaller than `key` (insert-only semantics).
  Count RankOfKey(uint64_t key) const;

  /// Exact total weight added (maintained as a scalar counter).
  Count TotalWeight() const { return total_; }

  /// Merges a compatible dyadic sketch (same params/seed).
  Status Merge(const HierarchicalCountSketch& other);

  /// Subtracts a compatible dyadic sketch: the result sketches the
  /// difference stream, on which HeavyHitters finds max-change keys
  /// *in one pass per stream* (no second pass, unlike Section 4.2).
  Status Subtract(const HierarchicalCountSketch& other);

  size_t bits() const { return params_.bits; }
  size_t SpaceBytes() const;

 private:
  explicit HierarchicalCountSketch(const HierarchicalParams& params);

  /// Estimate of the node `prefix` at `level` (level 0 = root's children
  /// domain of 2 keys... level bits = leaves).
  Count EstimateNode(size_t level, uint64_t prefix) const noexcept;

  HierarchicalParams params_;
  uint64_t domain_mask_;
  Count total_ = 0;
  // Shallow levels (2^level <= width) are counted exactly — an exact array
  // is both smaller and error-free compared to a sketch whose width is
  // clamped to the level's domain (where bucket collisions would destroy
  // estimates). exact_[l] is non-empty for exact levels.
  std::vector<std::vector<Count>> exact_;
  size_t exact_level_count_ = 0;
  // Deep levels use a Count-Sketch. sketch_[l] is populated iff exact_[l]
  // is empty. Level l (1-based) lives at index l-1.
  std::vector<CountSketch> levels_;
};

}  // namespace streamfreq
