#include "core/misra_gries.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace streamfreq {

Result<MisraGries> MisraGries::Make(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("MisraGries: capacity must be positive");
  }
  return MisraGries(capacity);
}

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  counters_.reserve(capacity + 1);
}

std::string MisraGries::Name() const {
  return "MisraGries(c=" + std::to_string(capacity_) + ")";
}

void MisraGries::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, weight);
    return;
  }
  // Weighted decrement step: remove delta = min(weight, smallest counter)
  // from the arriving weight and from every counter, dropping zeros;
  // repeat until the arrival is absorbed or a slot frees up.
  Count remaining = weight;
  while (remaining > 0) {
    Count min_counter = remaining;
    for (const auto& [id, c] : counters_) min_counter = std::min(min_counter, c);
    const Count delta = min_counter;
    decremented_ += delta;
    for (auto jt = counters_.begin(); jt != counters_.end();) {
      jt->second -= delta;
      if (jt->second == 0) {
        jt = counters_.erase(jt);
      } else {
        ++jt;
      }
    }
    remaining -= delta;
    if (remaining == 0) break;
    if (counters_.size() < capacity_) {
      counters_.emplace(item, remaining);
      break;
    }
  }
}

void MisraGries::BatchAdd(std::span<const ItemId> items) {
  std::unordered_map<ItemId, Count> aggregated;
  aggregated.reserve(std::min(items.size(), size_t{4} * capacity_));
  for (const ItemId q : items) ++aggregated[q];
  for (const auto& [item, weight] : aggregated) Add(item, weight);
}

Status MisraGries::Merge(const MisraGries& other) {
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument(
        "MisraGries::Merge: capacities must match");
  }
  for (const auto& [item, count] : other.counters_) {
    counters_[item] += count;
  }
  decremented_ += other.decremented_;
  if (counters_.size() <= capacity_) return Status::OK();

  // Find the (capacity+1)-st largest counter; subtract it everywhere.
  std::vector<Count> values;
  values.reserve(counters_.size());
  for (const auto& [item, count] : counters_) values.push_back(count);
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(capacity_),
                   values.end(), std::greater<Count>());
  const Count pivot = values[capacity_];
  decremented_ += pivot;
  for (auto it = counters_.begin(); it != counters_.end();) {
    it->second -= pivot;
    if (it->second <= 0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
  SFQ_DCHECK_LE(counters_.size(), capacity_);
  return Status::OK();
}

Count MisraGries::Estimate(ItemId item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<ItemCount> MisraGries::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(counters_.size());
  for (const auto& [id, c] : counters_) out.push_back({id, c});
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

size_t MisraGries::SpaceBytes() const {
  // (item, counter) per monitored slot plus table bucket overhead.
  return counters_.size() * (sizeof(ItemId) + sizeof(Count) + sizeof(void*));
}

}  // namespace streamfreq
