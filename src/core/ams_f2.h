// AMS "tug-of-war" sketch for the second frequency moment F2 = sum n_i^2
// (Alon, Matias, Szegedy — reference [2] of the paper, and the origin of
// the random ±1 hash functions Count-Sketch builds on).
//
// Each atom keeps a counter c = sum_i n_i * s(i) with a 4-wise independent
// sign hash s; E[c^2] = F2 and Var[c^2] <= 2*F2^2. Averaging groups of
// atoms and taking the median of group means gives an (eps, delta)
// estimate with O((1/eps^2) log(1/delta)) atoms.
//
// In this library F2 feeds the Lemma 5 width rule: the residual moment
// F2^{>k} <= F2, so an online F2 estimate yields a conservative
// (sufficient) sketch width without a ground-truth oracle — see
// core/self_tuning.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hash/pairwise.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Parameters: `groups` of `atoms_per_group` counters each.
struct AmsF2Params {
  size_t groups = 9;           ///< medians over this many group means
  size_t atoms_per_group = 16; ///< variance shrinks as 1/atoms
  uint64_t seed = 1;
};

/// The tug-of-war F2 estimator.
class AmsF2Sketch {
 public:
  /// Validates parameters and builds a zeroed sketch.
  static Result<AmsF2Sketch> Make(const AmsF2Params& params);

  /// Processes `weight` occurrences of `item` (turnstile supported).
  void Add(ItemId item, Count weight = 1) noexcept;

  /// Median-of-means estimate of F2.
  double Estimate() const;

  /// Counter-wise merge of a compatible sketch (sketching the union).
  Status Merge(const AmsF2Sketch& other);

  size_t SpaceBytes() const;

  /// Raw atom counters (row-major). Exposed for the merge-tree property
  /// test, which asserts merge order cannot change any counter.
  std::span<const int64_t> counters() const { return counters_; }

 private:
  AmsF2Sketch(const AmsF2Params& params);

  bool Compatible(const AmsF2Sketch& other) const;

  AmsF2Params params_;
  // One sign hash per atom. The CW family is pairwise independent; the AMS
  // variance bound formally needs 4-wise independence, so each atom
  // composes two independent CW signs evaluated on mixed keys — in
  // practice indistinguishable from 4-wise for hashed ids (validated
  // statistically in tests).
  std::vector<CarterWegmanHash> sign_a_;
  std::vector<CarterWegmanHash> sign_b_;
  std::vector<int64_t> counters_;
};

}  // namespace streamfreq
