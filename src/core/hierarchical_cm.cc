#include "core/hierarchical_cm.h"

#include <algorithm>

#include "core/dyadic.h"
#include "util/logging.h"

namespace streamfreq {

Result<HierarchicalCountMin> HierarchicalCountMin::Make(
    const HierarchicalParams& params) {
  if (params.bits == 0 || params.bits > 40) {
    return Status::InvalidArgument(
        "HierarchicalCountMin: bits must be in [1, 40]");
  }
  if (params.depth == 0 || params.width == 0) {
    return Status::InvalidArgument(
        "HierarchicalCountMin: depth and width must be positive");
  }
  return HierarchicalCountMin(params);
}

HierarchicalCountMin::HierarchicalCountMin(const HierarchicalParams& params)
    : params_(params),
      domain_mask_((params.bits >= 64 ? ~0ULL : (1ULL << params.bits) - 1)) {
  exact_.resize(params.bits);
  for (size_t level = 1; level <= params.bits; ++level) {
    if ((1ULL << level) <= params.width) {
      exact_[level - 1].assign(1ULL << level, 0);
      ++exact_level_count_;
    } else {
      CountMinParams p;
      p.depth = params.depth;
      p.width = params.width;
      p.seed = params.seed + 0x9E3779B9ULL * level;
      auto sketch = CountMin::Make(p);
      SFQ_CHECK_OK(sketch.status());
      levels_.push_back(std::move(*sketch));
    }
  }
}

void HierarchicalCountMin::Add(uint64_t key, Count weight) noexcept {
  SFQ_DCHECK((key & ~domain_mask_) == 0) << "key outside the domain";
  SFQ_DCHECK_GE(weight, 0);
  key &= domain_mask_;
  total_ += weight;
  const size_t bits = params_.bits;
  size_t sketch_index = 0;
  for (size_t level = 1; level <= bits; ++level) {
    const uint64_t prefix = key >> (bits - level);
    if (!exact_[level - 1].empty()) {
      exact_[level - 1][prefix] += weight;
    } else {
      levels_[sketch_index++].Add(prefix, weight);
    }
  }
}

Count HierarchicalCountMin::EstimateNode(size_t level,
                                         uint64_t prefix) const noexcept {
  if (!exact_[level - 1].empty()) return exact_[level - 1][prefix];
  return levels_[level - 1 - exact_level_count_].Estimate(prefix);
}

Count HierarchicalCountMin::EstimatePoint(uint64_t key) const noexcept {
  return EstimateNode(params_.bits, key & domain_mask_);
}

Result<Count> HierarchicalCountMin::EstimateRange(uint64_t lo,
                                                  uint64_t hi) const {
  if (lo > hi) {
    return Status::InvalidArgument("EstimateRange: lo > hi");
  }
  if (hi > domain_mask_) {
    return Status::OutOfRange("EstimateRange: hi outside the key domain");
  }
  Count sum = 0;
  ForEachDyadicBlock(lo, hi, params_.bits, [&](size_t level, uint64_t prefix) {
    sum += level == 0 ? total_ : EstimateNode(level, prefix);
  });
  return sum;
}

std::vector<HeavyHitter> HierarchicalCountMin::HeavyHitters(
    Count threshold) const {
  SFQ_DCHECK_GE(threshold, 1);
  std::vector<HeavyHitter> out;
  std::vector<uint64_t> frontier = {0, 1};
  for (size_t level = 1; level <= params_.bits; ++level) {
    std::vector<uint64_t> next;
    for (uint64_t prefix : frontier) {
      const Count est = EstimateNode(level, prefix);
      if (est < threshold) continue;
      if (level == params_.bits) {
        out.push_back({prefix, est});
      } else {
        next.push_back(prefix << 1);
        next.push_back((prefix << 1) | 1);
      }
    }
    if (level < params_.bits) frontier = std::move(next);
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  return out;
}

uint64_t HierarchicalCountMin::KeyAtRank(Count target) const {
  uint64_t prefix = 0;
  Count remaining = target;
  for (size_t level = 1; level <= params_.bits; ++level) {
    const uint64_t left = prefix << 1;
    const Count left_mass = EstimateNode(level, left);
    if (remaining < left_mass) {
      prefix = left;
    } else {
      remaining -= left_mass;
      prefix = left | 1;
    }
  }
  return prefix;
}

Count HierarchicalCountMin::RankOfKey(uint64_t key) const {
  key &= domain_mask_;
  if (key == 0) return 0;
  auto range = EstimateRange(0, key - 1);
  SFQ_DCHECK(range.ok());
  return range.ok() ? *range : 0;
}

Status HierarchicalCountMin::Merge(const HierarchicalCountMin& other) {
  if (params_.bits != other.params_.bits ||
      params_.seed != other.params_.seed ||
      params_.width != other.params_.width ||
      params_.depth != other.params_.depth) {
    return Status::InvalidArgument(
        "HierarchicalCountMin::Merge: incompatible structures");
  }
  for (size_t l = 0; l < exact_.size(); ++l) {
    for (size_t i = 0; i < exact_[l].size(); ++i) {
      exact_[l][i] += other.exact_[l][i];
    }
  }
  for (size_t i = 0; i < levels_.size(); ++i) {
    STREAMFREQ_RETURN_NOT_OK(levels_[i].Merge(other.levels_[i]));
  }
  total_ += other.total_;
  return Status::OK();
}

size_t HierarchicalCountMin::SpaceBytes() const {
  size_t bytes = sizeof(Count);
  for (const auto& level : exact_) bytes += level.size() * sizeof(Count);
  for (const CountMin& s : levels_) bytes += s.SpaceBytes();
  return bytes;
}

}  // namespace streamfreq
