#include "core/lossy_counting.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamfreq {

Result<LossyCounting> LossyCounting::Make(double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("LossyCounting: epsilon must be in (0, 1)");
  }
  return LossyCounting(epsilon);
}

LossyCounting::LossyCounting(double epsilon)
    : epsilon_(epsilon),
      bucket_width_(static_cast<Count>(std::ceil(1.0 / epsilon))) {}

std::string LossyCounting::Name() const {
  return "LossyCounting(eps=" + std::to_string(epsilon_) + ")";
}

void LossyCounting::AdvanceBucketsTo(Count n) {
  const Count target_bucket = (n - 1) / bucket_width_ + 1;
  if (target_bucket == current_bucket_) return;
  // Prune once with the highest crossed boundary; intermediate boundaries
  // prune a subset of what the final one prunes, so one sweep suffices.
  current_bucket_ = target_bucket;
  const Count boundary = current_bucket_ - 1;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.f + it->second.delta <= boundary) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void LossyCounting::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  n_ += weight;
  auto it = entries_.find(item);
  if (it != entries_.end()) {
    it->second.f += weight;
  } else {
    entries_.emplace(item, Entry{weight, current_bucket_ - 1});
  }
  AdvanceBucketsTo(n_);
}

Count LossyCounting::Estimate(ItemId item) const {
  auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second.f;
}

std::vector<ItemCount> LossyCounting::Candidates(size_t k) const {
  // Rank AND report f + delta, the tightest upper bound the summary knows
  // (keeps the candidate list sorted by its own reported counts; the
  // lower-bound view is available via Estimate()).
  std::vector<ItemCount> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    out.push_back({id, e.f + e.delta});
  }
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<ItemCount> LossyCounting::IcebergQuery(double threshold) const {
  const double cut = (threshold - epsilon_) * static_cast<double>(n_);
  std::vector<ItemCount> out;
  for (const auto& [id, e] : entries_) {
    if (static_cast<double>(e.f) >= cut) out.push_back({id, e.f});
  }
  std::sort(out.begin(), out.end(), [](const ItemCount& a, const ItemCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

size_t LossyCounting::SpaceBytes() const {
  return entries_.size() * (sizeof(ItemId) + sizeof(Entry) + sizeof(void*));
}

}  // namespace streamfreq
