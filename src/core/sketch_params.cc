#include "core/sketch_params.h"

#include <algorithm>
#include <cmath>

namespace streamfreq {

Result<SketchSizing> SizeForApproxTop(const ApproxTopSpec& spec) {
  if (spec.stream_length == 0 || spec.k == 0) {
    return Status::InvalidArgument("SizeForApproxTop: n and k must be positive");
  }
  if (!(spec.epsilon > 0.0) || spec.epsilon >= 1.0) {
    return Status::InvalidArgument("SizeForApproxTop: epsilon must be in (0, 1)");
  }
  if (!(spec.delta > 0.0) || spec.delta >= 1.0) {
    return Status::InvalidArgument("SizeForApproxTop: delta must be in (0, 1)");
  }
  if (!(spec.nk > 0.0)) {
    return Status::InvalidArgument("SizeForApproxTop: nk must be positive");
  }
  if (spec.residual_f2 < 0.0) {
    return Status::InvalidArgument("SizeForApproxTop: residual_f2 must be >= 0");
  }

  SketchSizing out;
  out.depth = static_cast<size_t>(std::max(
      1.0, std::ceil(std::log2(static_cast<double>(spec.stream_length) /
                               spec.delta))));
  const double collision_width =
      256.0 * spec.residual_f2 / ((spec.epsilon * spec.nk) * (spec.epsilon * spec.nk));
  out.width = static_cast<size_t>(
      std::max({8.0 * static_cast<double>(spec.k), collision_width, 1.0}));
  out.gamma = std::sqrt(spec.residual_f2 / static_cast<double>(out.width));
  return out;
}

size_t ZipfWidth(double z, size_t k, uint64_t universe) {
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(universe);
  double b;
  if (z < 0.5) {
    b = std::pow(md, 1.0 - 2.0 * z) * std::pow(kd, 2.0 * z);
  } else if (z == 0.5) {
    b = kd * std::log(md);
  } else {
    b = kd;
  }
  return static_cast<size_t>(std::max(1.0, std::ceil(b)));
}

size_t ZipfTrackedCount(double z, size_t k, double epsilon) {
  const double l =
      static_cast<double>(k) / std::pow(1.0 - epsilon, 1.0 / std::max(z, 1e-9));
  return std::max<size_t>(k + 1, static_cast<size_t>(std::ceil(l)));
}

double Table1SamplingSpace(double z, size_t k, uint64_t m) {
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(m);
  const double logk = std::max(1.0, std::log(kd));
  if (z < 1.0) {
    return md * std::pow(kd / md, z) * logk;
  }
  if (z == 1.0) {
    return kd * std::log(md) * logk;
  }
  return kd * std::pow(logk, 1.0 / z);
}

double Table1KpsSpace(double z, size_t k, uint64_t m) {
  // KPS keeps 1/theta counters with theta = n_k / n = f_k. For Zipf(z),
  // f_k = k^{-z} / H_{m,z}; the paper's table reports k^z * m^{1-z} for
  // z < 1, k^z * log m for z = 1, and k^z for z > 1 (H_{m,z} regimes).
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(m);
  if (z < 1.0) {
    return std::pow(kd, z) * std::pow(md, 1.0 - z);
  }
  if (z == 1.0) {
    return std::pow(kd, z) * std::log(md);
  }
  return std::pow(kd, z);
}

double Table1CountSketchSpace(double z, size_t k, uint64_t m, uint64_t n) {
  const double logn = std::max(1.0, std::log(static_cast<double>(n)));
  return static_cast<double>(ZipfWidth(z, k, m)) * logn;
}

}  // namespace streamfreq
