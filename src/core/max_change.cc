#include "core/max_change.h"

#include <algorithm>

#include "util/logging.h"

namespace streamfreq {

Result<MaxChangeDetector> MaxChangeDetector::Make(
    const CountSketchParams& sketch_params, size_t tracked) {
  if (tracked == 0) {
    return Status::InvalidArgument("MaxChangeDetector: tracked must be positive");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch sketch, CountSketch::Make(sketch_params));
  return MaxChangeDetector(std::move(sketch), tracked);
}

MaxChangeDetector::MaxChangeDetector(CountSketch sketch, size_t tracked)
    : sketch_(std::move(sketch)), capacity_(tracked) {
  members_.reserve(tracked + 1);
}

void MaxChangeDetector::SecondPass(int stream, ItemId item) {
  SFQ_DCHECK(first_pass_done_);
  SFQ_DCHECK(stream == 1 || stream == 2);
  auto it = members_.find(item);
  if (it == members_.end()) {
    const Count est = sketch_.Estimate(item);
    const Count nhat_abs = est < 0 ? -est : est;
    if (members_.size() < capacity_) {
      it = members_.emplace(item, Member{nhat_abs}).first;
      by_nhat_.insert({nhat_abs, item});
    } else {
      const auto min_it = by_nhat_.begin();
      if (nhat_abs <= min_it->first) return;  // below threshold: not tracked
      members_.erase(min_it->second);
      by_nhat_.erase(min_it);
      it = members_.emplace(item, Member{nhat_abs}).first;
      by_nhat_.insert({nhat_abs, item});
    }
  }
  if (stream == 1) {
    ++it->second.count_s1;
  } else {
    ++it->second.count_s2;
  }
}

std::vector<ChangeResult> MaxChangeDetector::TopChanges(size_t k) const {
  std::vector<ChangeResult> out;
  out.reserve(members_.size());
  for (const auto& [id, m] : members_) {
    out.push_back({id, m.count_s1, m.count_s2});
  }
  std::sort(out.begin(), out.end(), [](const ChangeResult& a, const ChangeResult& b) {
    if (a.AbsDelta() != b.AbsDelta()) return a.AbsDelta() > b.AbsDelta();
    return a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<ChangeResult>> MaxChangeDetector::Run(
    const CountSketchParams& sketch_params, size_t tracked, const Stream& s1,
    const Stream& s2, size_t k) {
  STREAMFREQ_ASSIGN_OR_RETURN(MaxChangeDetector det, Make(sketch_params, tracked));
  for (ItemId q : s1) det.ObserveS1(q);
  for (ItemId q : s2) det.ObserveS2(q);
  det.FinishFirstPass();
  for (ItemId q : s1) det.SecondPass(1, q);
  for (ItemId q : s2) det.SecondPass(2, q);
  return det.TopChanges(k);
}

size_t MaxChangeDetector::SpaceBytes() const {
  const size_t per_member =
      (sizeof(ItemId) + sizeof(Member) + sizeof(void*)) +
      (sizeof(std::pair<Count, ItemId>) + 3 * sizeof(void*));
  return sketch_.SpaceBytes() + members_.size() * per_member;
}

}  // namespace streamfreq
