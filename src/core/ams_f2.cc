#include "core/ams_f2.h"

#include <algorithm>

#include "hash/mixers.h"
#include "hash/random.h"

namespace streamfreq {

Result<AmsF2Sketch> AmsF2Sketch::Make(const AmsF2Params& params) {
  if (params.groups == 0 || params.atoms_per_group == 0) {
    return Status::InvalidArgument(
        "AmsF2Sketch: groups and atoms_per_group must be positive");
  }
  if (params.groups * params.atoms_per_group > (1u << 20)) {
    return Status::InvalidArgument("AmsF2Sketch: implausibly many atoms");
  }
  return AmsF2Sketch(params);
}

AmsF2Sketch::AmsF2Sketch(const AmsF2Params& params)
    : params_(params),
      counters_(params.groups * params.atoms_per_group, 0) {
  SplitMix64 seeder(SplitMix64(params.seed).Next() ^ 0xA3F2ULL);
  const size_t atoms = counters_.size();
  sign_a_.reserve(atoms);
  sign_b_.reserve(atoms);
  for (size_t i = 0; i < atoms; ++i) {
    sign_a_.emplace_back(seeder);
    sign_b_.emplace_back(seeder);
  }
}

void AmsF2Sketch::Add(ItemId item, Count weight) noexcept {
  const uint64_t mixed = Moremur64(item);
  for (size_t i = 0; i < counters_.size(); ++i) {
    // Product of two independent pairwise signs on decorrelated inputs.
    const int64_t sign = sign_a_[i].Sign(item) * sign_b_[i].Sign(mixed);
    counters_[i] += weight * sign;
  }
}

double AmsF2Sketch::Estimate() const {
  std::vector<double> means(params_.groups);
  for (size_t g = 0; g < params_.groups; ++g) {
    double sum = 0.0;
    for (size_t a = 0; a < params_.atoms_per_group; ++a) {
      const double c =
          static_cast<double>(counters_[g * params_.atoms_per_group + a]);
      sum += c * c;
    }
    means[g] = sum / static_cast<double>(params_.atoms_per_group);
  }
  const size_t mid = means.size() / 2;
  std::nth_element(means.begin(), means.begin() + mid, means.end());
  if (means.size() % 2 == 1) return means[mid];
  const double hi = means[mid];
  const double lo = *std::max_element(means.begin(), means.begin() + mid);
  return (lo + hi) / 2.0;
}

bool AmsF2Sketch::Compatible(const AmsF2Sketch& other) const {
  return params_.groups == other.params_.groups &&
         params_.atoms_per_group == other.params_.atoms_per_group &&
         params_.seed == other.params_.seed;
}

Status AmsF2Sketch::Merge(const AmsF2Sketch& other) {
  if (!Compatible(other)) {
    return Status::InvalidArgument("AmsF2Sketch::Merge: incompatible sketches");
  }
  for (size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  return Status::OK();
}

size_t AmsF2Sketch::SpaceBytes() const {
  return counters_.size() * (sizeof(int64_t) + 4 * sizeof(uint64_t));
}

}  // namespace streamfreq
