#include "core/relative_change.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamfreq {

Result<RelativeChangeDetector> RelativeChangeDetector::Make(
    const CountSketchParams& sketch_params, size_t tracked, double smoothing) {
  if (tracked == 0) {
    return Status::InvalidArgument(
        "RelativeChangeDetector: tracked must be positive");
  }
  if (!(smoothing > 0.0)) {
    return Status::InvalidArgument(
        "RelativeChangeDetector: smoothing must be positive");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch s1, CountSketch::Make(sketch_params));
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch s2, CountSketch::Make(sketch_params));
  return RelativeChangeDetector(std::move(s1), std::move(s2), tracked,
                                smoothing);
}

RelativeChangeDetector::RelativeChangeDetector(CountSketch s1, CountSketch s2,
                                               size_t tracked, double smoothing)
    : sketch1_(std::move(s1)),
      sketch2_(std::move(s2)),
      capacity_(tracked),
      smoothing_(smoothing) {
  members_.reserve(tracked + 1);
}

double RelativeChangeDetector::ScoreOf(ItemId item) const {
  // Negative estimates are sketch noise around zero; clamp at 0.
  const double a =
      std::max<double>(0.0, static_cast<double>(sketch1_.Estimate(item))) +
      smoothing_;
  const double b =
      std::max<double>(0.0, static_cast<double>(sketch2_.Estimate(item))) +
      smoothing_;
  return b > a ? b / a : a / b;
}

void RelativeChangeDetector::SecondPass(int stream, ItemId item) {
  SFQ_DCHECK(first_pass_done_);
  SFQ_DCHECK(stream == 1 || stream == 2);
  auto it = members_.find(item);
  if (it == members_.end()) {
    const double score = ScoreOf(item);
    if (members_.size() < capacity_) {
      it = members_.emplace(item, Member{score}).first;
      by_score_.insert({score, item});
    } else {
      const auto min_it = by_score_.begin();
      if (score <= min_it->first) return;
      members_.erase(min_it->second);
      by_score_.erase(min_it);
      it = members_.emplace(item, Member{score}).first;
      by_score_.insert({score, item});
    }
  }
  if (stream == 1) {
    ++it->second.count_s1;
  } else {
    ++it->second.count_s2;
  }
}

std::vector<RelativeChangeResult> RelativeChangeDetector::TopChanges(
    size_t k) const {
  std::vector<RelativeChangeResult> out;
  out.reserve(members_.size());
  for (const auto& [id, m] : members_) {
    out.push_back({id, m.count_s1, m.count_s2, m.score});
  }
  const double s = smoothing_;
  std::sort(out.begin(), out.end(),
            [s](const RelativeChangeResult& a, const RelativeChangeResult& b) {
              const double ra = a.ExactRatio(s), rb = b.ExactRatio(s);
              if (ra != rb) return ra > rb;
              return a.item < b.item;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<RelativeChangeResult>> RelativeChangeDetector::Run(
    const CountSketchParams& sketch_params, size_t tracked, double smoothing,
    const Stream& s1, const Stream& s2, size_t k) {
  STREAMFREQ_ASSIGN_OR_RETURN(
      RelativeChangeDetector det, Make(sketch_params, tracked, smoothing));
  for (ItemId q : s1) det.ObserveS1(q);
  for (ItemId q : s2) det.ObserveS2(q);
  det.FinishFirstPass();
  for (ItemId q : s1) det.SecondPass(1, q);
  for (ItemId q : s2) det.SecondPass(2, q);
  return det.TopChanges(k);
}

size_t RelativeChangeDetector::SpaceBytes() const {
  const size_t per_member =
      (sizeof(ItemId) + sizeof(Member) + sizeof(void*)) +
      (sizeof(std::pair<double, ItemId>) + 3 * sizeof(void*));
  return sketch1_.SpaceBytes() + sketch2_.SpaceBytes() +
         members_.size() * per_member;
}

}  // namespace streamfreq
