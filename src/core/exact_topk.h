// Exact top-k baseline: the "keep a counter for each distinct element"
// solution the paper's introduction rules out at stream scale.
//
// Provided as the reference point for the harness: zero error, unbounded
// space (O(distinct items)). Useful in benches to show exactly how much
// memory the sketches save, and in tests as an oracle with the
// StreamSummary interface.
#pragma once

#include <string>

#include "core/frequent.h"
#include "stream/exact_counter.h"

namespace streamfreq {

/// Exact counting behind the StreamSummary interface.
class ExactTopK final : public StreamSummary {
 public:
  ExactTopK() = default;

  std::string Name() const override { return "Exact"; }

  void Add(ItemId item, Count weight) override { counter_.Add(item, weight); }
  using StreamSummary::Add;

  Count Estimate(ItemId item) const override { return counter_.CountOf(item); }

  std::vector<ItemCount> Candidates(size_t k) const override {
    return counter_.TopK(k);
  }

  size_t SpaceBytes() const override {
    return counter_.Distinct() *
           (sizeof(ItemId) + sizeof(Count) + sizeof(void*));
  }

  const ExactCounter& counter() const { return counter_; }

 private:
  ExactCounter counter_;
};

}  // namespace streamfreq
