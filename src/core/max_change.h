// The 2-pass max-change algorithm (paper Section 4.2).
//
// Given streams S1 and S2, find the items maximizing |n_q(S2) - n_q(S1)|.
// Pass 1 builds a single Count-Sketch of the difference: each S1 arrival
// subtracts (h_i[q] -= s_i[q]), each S2 arrival adds. Pass 2 re-reads both
// streams; for each arrival q it computes nhat_q = ESTIMATE on the frozen
// difference sketch and maintains the set A of the l items with the largest
// |nhat_q|, keeping exact per-stream counts for members of A. Because the
// sketch is frozen in pass 2, an item's |nhat| is fixed, the admission
// threshold only rises, and an item can only be admitted at its first
// pass-2 occurrence — so exact counts for members are complete, as the
// paper observes ("once an item is removed it is never added back").
//
// Finally the k items with the largest exact |n_q(S2) - n_q(S1)| among A
// are reported. Lemma 5 applies verbatim with n_q replaced by the change
// magnitudes Delta_q.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/count_sketch.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// One reported change.
struct ChangeResult {
  ItemId item;
  Count count_s1;  ///< exact occurrences in S1 (over pass 2)
  Count count_s2;  ///< exact occurrences in S2 (over pass 2)

  /// The change n_q(S2) - n_q(S1).
  Count Delta() const { return count_s2 - count_s1; }
  Count AbsDelta() const { return Delta() < 0 ? -Delta() : Delta(); }
};

/// Two-pass max-change detector.
class MaxChangeDetector {
 public:
  /// Creates a detector whose candidate set holds `tracked` items (the
  /// paper's l) over a difference sketch with `sketch_params`.
  static Result<MaxChangeDetector> Make(const CountSketchParams& sketch_params,
                                        size_t tracked);

  /// Pass 1 update for an S1 arrival: sketch -= q.
  void ObserveS1(ItemId item, Count weight = 1) { sketch_.Add(item, -weight); }

  /// Pass 1 update for an S2 arrival: sketch += q.
  void ObserveS2(ItemId item, Count weight = 1) { sketch_.Add(item, weight); }

  /// Freezes the sketch; must be called between the passes (SecondPass
  /// aborts in debug builds when pass 1 is still open).
  void FinishFirstPass() { first_pass_done_ = true; }

  /// Pass 2 arrival from S1 (stream = 1) or S2 (stream = 2).
  void SecondPass(int stream, ItemId item);

  /// The k members of A with the largest exact |Delta|, descending.
  std::vector<ChangeResult> TopChanges(size_t k) const;

  /// Convenience driver: runs both passes over materialized streams and
  /// returns TopChanges(k).
  static Result<std::vector<ChangeResult>> Run(
      const CountSketchParams& sketch_params, size_t tracked, const Stream& s1,
      const Stream& s2, size_t k);

  /// The frozen difference sketch (valid after FinishFirstPass).
  const CountSketch& difference_sketch() const { return sketch_; }

  size_t SpaceBytes() const;

 private:
  MaxChangeDetector(CountSketch sketch, size_t tracked);

  struct Member {
    Count nhat_abs;  // |sketch estimate|, fixed during pass 2
    Count count_s1 = 0;
    Count count_s2 = 0;
  };

  CountSketch sketch_;
  size_t capacity_;
  bool first_pass_done_ = false;
  std::unordered_map<ItemId, Member> members_;
  std::set<std::pair<Count, ItemId>> by_nhat_;  // (|nhat|, item)
};

}  // namespace streamfreq
