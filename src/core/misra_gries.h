// The Frequent algorithm (Misra-Gries 1982), the deterministic counter
// algorithm the paper cites as Karp-Shenker-Papadimitriou (KPS) [14].
//
// Keeps at most `capacity` (item, counter) pairs. An arriving monitored
// item increments its counter; an arriving unmonitored item takes a free
// slot if one exists, otherwise every counter is decremented (the KPS
// "delete one of each" step). Guarantees, with c = capacity:
//   * every item with n_q > n / (c + 1) is monitored at the end, and
//   * counter(q) <= n_q <= counter(q) + n / (c + 1)   (underestimates).
// Solves CandidateTop with threshold selection theta = n_k / n (paper
// Section 4.1 / Table 1, "KPS" column), but not ApproxTop: low-frequency
// items can survive in the summary.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// Misra-Gries / Frequent / KPS summary.
class MisraGries final : public StreamSummary {
 public:
  /// Creates a summary holding at most `capacity` counters (capacity >= 1).
  /// For the theta-threshold guarantee of KPS, use capacity = ceil(1/theta).
  static Result<MisraGries> Make(size_t capacity);

  std::string Name() const override;

  /// Weighted arrival; weight must be >= 1 (cash-register model). Amortized
  /// O(1) expected time.
  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Batch arrival: aggregates duplicates, then applies one weighted Add
  /// per distinct item. Equivalent to a reordered ingest of the batch; the
  /// n/(c+1) guarantee is order-independent so it is preserved, but the
  /// summary state may differ from item-at-a-time ingestion.
  void BatchAdd(std::span<const ItemId> items) override;

  /// Lower-bound estimate: the counter when monitored, else 0.
  Count Estimate(ItemId item) const override;

  /// Monitored items by descending counter.
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Worst-case undercount of any estimate so far: total weight removed by
  /// decrement steps, an instance-specific tightening of n/(c+1).
  Count MaxError() const { return decremented_; }

  /// Merges another Misra-Gries summary (mergeable-summaries construction
  /// of Agarwal et al.): counters are added item-wise, then the combined
  /// set is reduced back to `capacity` entries by subtracting the
  /// (capacity+1)-st largest counter from everything and dropping
  /// non-positive results. The merged summary keeps the error guarantee
  /// (n1 + n2) / (capacity + 1) over the union stream. Requires equal
  /// capacities.
  Status Merge(const MisraGries& other);

  size_t capacity() const { return capacity_; }
  size_t SpaceBytes() const override;

 private:
  explicit MisraGries(size_t capacity);

  size_t capacity_;
  Count decremented_ = 0;  // per-item weight removed by decrements
  std::unordered_map<ItemId, Count> counters_;
};

}  // namespace streamfreq
