#include "core/stream_summary.h"

#include <algorithm>

#include "util/logging.h"

namespace streamfreq {

Result<StreamSummarySpaceSaving> StreamSummarySpaceSaving::Make(
    size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument(
        "StreamSummarySpaceSaving: capacity must be positive");
  }
  return StreamSummarySpaceSaving(capacity);
}

StreamSummarySpaceSaving::StreamSummarySpaceSaving(size_t capacity)
    : capacity_(capacity) {
  index_.reserve(capacity);
}

std::string StreamSummarySpaceSaving::Name() const {
  return "StreamSummarySS(c=" + std::to_string(capacity_) + ")";
}

void StreamSummarySpaceSaving::MoveToCount(
    std::list<Bucket>::iterator bucket_it,
    std::list<Entry>::iterator entry_it, Count new_count) {
  // Find (or create) the destination bucket at or after the source.
  auto dest = std::next(bucket_it);
  while (dest != buckets_.end() && dest->count < new_count) ++dest;
  if (dest == buckets_.end() || dest->count != new_count) {
    dest = buckets_.insert(dest, Bucket{new_count, {}});
  }
  // Splice the entry across (iterators stay valid under list splice).
  dest->entries.splice(dest->entries.begin(), bucket_it->entries, entry_it);
  entry_it->bucket = dest;
  if (bucket_it->entries.empty()) buckets_.erase(bucket_it);
}

void StreamSummarySpaceSaving::Add(ItemId item, Count weight) {
  SFQ_DCHECK_GE(weight, 1);
  auto idx = index_.find(item);
  if (idx != index_.end()) {
    auto entry_it = idx->second;
    auto bucket_it = entry_it->bucket;
    MoveToCount(bucket_it, entry_it, bucket_it->count + weight);
    return;
  }
  if (index_.size() < capacity_) {
    // Insert a fresh entry at count = weight; locate from the front.
    auto dest = buckets_.begin();
    while (dest != buckets_.end() && dest->count < weight) ++dest;
    if (dest == buckets_.end() || dest->count != weight) {
      dest = buckets_.insert(dest, Bucket{weight, {}});
    }
    dest->entries.push_front(Entry{item, 0, dest});
    index_[item] = dest->entries.begin();
    return;
  }
  // Replace a minimum-count victim.
  auto min_bucket = buckets_.begin();
  auto victim = min_bucket->entries.begin();
  const Count min_count = min_bucket->count;
  index_.erase(victim->item);
  victim->item = item;
  victim->error = min_count;
  index_[item] = victim;
  MoveToCount(min_bucket, victim, min_count + weight);
}

Count StreamSummarySpaceSaving::Estimate(ItemId item) const {
  auto idx = index_.find(item);
  if (idx != index_.end()) return idx->second->bucket->count;
  return MinCount();
}

Count StreamSummarySpaceSaving::ErrorOf(ItemId item) const {
  auto idx = index_.find(item);
  return idx == index_.end() ? 0 : idx->second->error;
}

Count StreamSummarySpaceSaving::MinCount() const {
  if (index_.size() < capacity_ || buckets_.empty()) return 0;
  return buckets_.front().count;
}

std::vector<ItemCount> StreamSummarySpaceSaving::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(std::min(k, index_.size()));
  for (auto bucket = buckets_.rbegin();
       bucket != buckets_.rend() && out.size() < k; ++bucket) {
    for (const Entry& e : bucket->entries) {
      if (out.size() >= k) break;
      out.push_back({e.item, bucket->count});
    }
  }
  return out;
}

size_t StreamSummarySpaceSaving::SpaceBytes() const {
  // Entry node + bucket share + hash index entry, per monitored item.
  return index_.size() *
         (sizeof(Entry) + 2 * sizeof(void*) +   // entry list node
          sizeof(Bucket) / 2 +                  // amortized bucket share
          sizeof(ItemId) + sizeof(void*) * 2);  // index entry
}

bool StreamSummarySpaceSaving::CheckInvariants() const {
  Count prev = -1;
  size_t entries = 0;
  for (auto bucket = buckets_.begin(); bucket != buckets_.end(); ++bucket) {
    if (bucket->count <= prev) return false;
    if (bucket->entries.empty()) return false;
    prev = bucket->count;
    for (auto it = bucket->entries.begin(); it != bucket->entries.end(); ++it) {
      if (it->bucket != bucket) return false;
      auto idx = index_.find(it->item);
      if (idx == index_.end() || idx->second != it) return false;
      ++entries;
    }
  }
  return entries == index_.size() && entries <= capacity_;
}

}  // namespace streamfreq
