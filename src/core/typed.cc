#include "core/typed.h"

namespace streamfreq {

Result<StringTopK> StringTopK::Make(const CountSketchParams& sketch_params,
                                    size_t tracked) {
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketchTopK tracker,
                              CountSketchTopK::Make(sketch_params, tracked));
  return StringTopK(std::move(tracker), sketch_params.seed ^ 0x57F17E5ULL);
}

StringTopK::StringTopK(CountSketchTopK tracker, uint64_t key_seed)
    : tracker_(std::move(tracker)), key_seed_(key_seed) {}

void StringTopK::Add(std::string_view key, Count weight) {
  const ItemId id = IdOf(key);
  const TrackerEvent event = tracker_.AddTracked(id, weight);
  if (event.inserted) {
    keys_.emplace(id, std::string(key));
    if (event.evicted != 0) keys_.erase(event.evicted);
  }
}

Count StringTopK::Estimate(std::string_view key) const {
  return tracker_.Estimate(IdOf(key));
}

std::vector<KeyCount> StringTopK::Candidates(size_t k) const {
  std::vector<KeyCount> out;
  for (const ItemCount& ic : tracker_.Candidates(k)) {
    auto it = keys_.find(ic.item);
    out.push_back({it == keys_.end() ? "<unknown>" : it->second, ic.count});
  }
  return out;
}

size_t StringTopK::SpaceBytes() const {
  size_t key_bytes = 0;
  for (const auto& [id, key] : keys_) {
    key_bytes += sizeof(ItemId) + sizeof(void*) + key.capacity();
  }
  return tracker_.SpaceBytes() + key_bytes;
}

}  // namespace streamfreq
