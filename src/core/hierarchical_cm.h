// Hierarchical Count-Min ("CMH"): the Count-Min-backed dyadic structure
// used for ranges, quantiles, and heavy-hitter recovery on insert-only
// streams.
//
// Same prefix-tree layout as core/hierarchical.h but with Count-Min
// estimates at every node, which are one-sided *upper bounds*. The
// practical consequences versus the Count-Sketch backing:
//   * heavy-hitter descent has NO false-negative pruning — an ancestor's
//     upper bound can never fall below a heavy descendant's true mass (in
//     the cash-register model), so recall is structural, not statistical;
//   * range sums and ranks are overestimates (biased up), so quantile
//     answers skew slightly low;
//   * the turnstile model is out of scope (Count-Min's min-estimate is
//     meaningless under deletions), so there is no Subtract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/count_min.h"
#include "core/hierarchical.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// The Count-Min dyadic structure.
class HierarchicalCountMin {
 public:
  /// Validates parameters and builds one zeroed structure. The `depth`
  /// and `width` of `params` size each level's Count-Min; conservative
  /// update is not used (it breaks node additivity across levels' use in
  /// merges).
  static Result<HierarchicalCountMin> Make(const HierarchicalParams& params);

  /// Adds `weight` >= 0 occurrences of `key`.
  void Add(uint64_t key, Count weight = 1) noexcept;

  /// Point upper bound for `key`.
  Count EstimatePoint(uint64_t key) const noexcept;

  /// Upper bound on the total weight of keys in [lo, hi] (inclusive).
  Result<Count> EstimateRange(uint64_t lo, uint64_t hi) const;

  /// All keys whose upper-bound estimate reaches `threshold`. No false
  /// negatives: every key with true count >= threshold is returned.
  std::vector<HeavyHitter> HeavyHitters(Count threshold) const;

  /// The key at estimated rank `target` (0-based).
  uint64_t KeyAtRank(Count target) const;

  /// Estimated rank of `key`: upper bound on the number of occurrences of
  /// keys strictly smaller than `key`.
  Count RankOfKey(uint64_t key) const;

  /// Exact total weight.
  Count TotalWeight() const { return total_; }

  /// Merges a compatible structure (sketching the union stream).
  Status Merge(const HierarchicalCountMin& other);

  size_t bits() const { return params_.bits; }
  size_t SpaceBytes() const;

 private:
  explicit HierarchicalCountMin(const HierarchicalParams& params);

  Count EstimateNode(size_t level, uint64_t prefix) const noexcept;

  HierarchicalParams params_;
  uint64_t domain_mask_;
  Count total_ = 0;
  std::vector<std::vector<Count>> exact_;
  size_t exact_level_count_ = 0;
  std::vector<CountMin> levels_;
};

}  // namespace streamfreq
