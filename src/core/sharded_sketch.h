// Sharded Count-Sketch for multi-threaded ingestion.
//
// The paper's additivity observation ("sketches for two streams can be
// directly added") is also the parallel-ingest recipe: give each thread its
// own sketch built from the same parameters and seed, then fold them. This
// wrapper owns the shards, hands out mutable references by shard id (each
// shard is single-writer; no atomics on the hot path), and produces the
// combined sketch on demand.
#pragma once

#include <cstddef>
#include <vector>

#include "core/count_sketch.h"
#include "util/result.h"

namespace streamfreq {

/// A fixed set of same-seed Count-Sketch shards.
class ShardedCountSketch {
 public:
  /// Builds `shards` compatible sketches.
  static Result<ShardedCountSketch> Make(const CountSketchParams& params,
                                         size_t shards);

  /// The shard for a worker to write into. Each shard must have at most
  /// one concurrent writer; distinct shards are safely concurrent (no
  /// shared mutable state).
  CountSketch& shard(size_t i) { return shards_[i]; }
  const CountSketch& shard(size_t i) const { return shards_[i]; }
  size_t shard_count() const { return shards_.size(); }

  /// Folds all shards into a fresh combined sketch. Linearity makes the
  /// result identical to single-threaded ingestion of the union stream.
  Result<CountSketch> Combine() const;

  size_t SpaceBytes() const;

 private:
  explicit ShardedCountSketch(std::vector<CountSketch> shards)
      : shards_(std::move(shards)) {}

  std::vector<CountSketch> shards_;
};

}  // namespace streamfreq
