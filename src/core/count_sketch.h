// The COUNT SKETCH data structure (Charikar, Chen, Farach-Colton).
//
// A t x b array of counters with, per row i, a pairwise-independent bucket
// hash h_i : O -> [b] and an independent pairwise-independent sign hash
// s_i : O -> {+1, -1}:
//
//   Add(q, w):     for each row i,  C[i][h_i(q)] += w * s_i(q)
//   Estimate(q):   median_i { C[i][h_i(q)] * s_i(q) }
//
// Guarantees (paper Lemmas 1-5, Theorem 1): each row estimate is unbiased
// with variance bounded by the colliding mass; with t = Theta(log(n/delta))
// the median is within 8 * gamma of the true count for every prefix of the
// stream, where gamma = sqrt(F2^{>k} / b). Sketches built with the same
// parameters and seed are compatible and form a group under Merge/Subtract,
// which is what enables the two-pass max-change algorithm (Section 4.2).
//
// Add and Estimate never fail and never allocate; fallible operations
// (construction, merging, serialization) return Status/Result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/counter_matrix.h"
#include "hash/batch_hash.h"
#include "hash/pairwise.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Which hash family backs the rows. The paper requires pairwise
/// independence, which kCarterWegman provides exactly; the others are
/// faster heuristic substitutes evaluated in the ablation bench (E11).
enum class HashFamily : uint8_t {
  kCarterWegman = 0,   ///< (a*x+b) mod (2^61-1): pairwise independent
  kMultiplyShift = 1,  ///< Dietzfelbinger multiply-shift: 2-universal
  kTabulation = 2,     ///< simple tabulation: 3-independent
};

/// How row estimates are combined. The paper argues for the median
/// (Section 3.2: the mean is destroyed by heavy-hitter collisions); the
/// mean is provided for the ablation.
enum class Estimator : uint8_t {
  kMedian = 0,
  kMean = 1,
};

/// Construction parameters.
struct CountSketchParams {
  size_t depth = 5;    ///< t: number of hash tables (rows)
  size_t width = 256;  ///< b: buckets (counters) per table
  uint64_t seed = 1;   ///< seeds all hash functions deterministically
  HashFamily family = HashFamily::kCarterWegman;
  Estimator estimator = Estimator::kMedian;
};

/// The Count-Sketch. Copyable; copies share no state.
class CountSketch {
 public:
  /// Validates parameters (depth and width must be positive) and builds a
  /// zeroed sketch with freshly seeded hash functions.
  static Result<CountSketch> Make(const CountSketchParams& params);

  /// ADD(C, q): processes `weight` occurrences of `item` (weight may be
  /// negative — turnstile model).
  void Add(ItemId item, Count weight = 1) noexcept;

  /// Batch ADD: processes `weight` occurrences of every item in `items`,
  /// with the final state exactly equal to item-at-a-time Add calls (the
  /// counters are a linear function of the multiset). Iterates row-major —
  /// one hash function and one cache-line-aligned counter stripe at a
  /// time — evaluating bucket and sign hashes 16 keys per iteration with
  /// the SIMD kernels in hash/batch_hash.h, then scattering the counter
  /// updates. The parallel ingestion fast path; bit-identical to the
  /// scalar path (tests/simd_equivalence_test.cc).
  void BatchAdd(std::span<const ItemId> items, Count weight = 1) noexcept;

  /// BatchAdd forced through the scalar reference kernels. The test and
  /// benchmark seam: simd_equivalence_test asserts BatchAdd == this ==
  /// an Add loop, and bench_throughput's scalar-baseline rows in
  /// BENCH_throughput.json are measured here.
  void BatchAddScalar(std::span<const ItemId> items,
                      Count weight = 1) noexcept;

  /// ESTIMATE(C, q): the median (or mean) over rows of C[i][h_i(q)]*s_i(q).
  /// Mean estimates round toward zero.
  Count Estimate(ItemId item) const noexcept;

  /// The per-row estimates C[i][h_i(q)]*s_i(q), in row order. Exposed for
  /// tests and the variance experiments (E2/E3).
  std::vector<Count> RowEstimates(ItemId item) const;

  /// A point estimate with an empirical uncertainty band: the median of
  /// the row estimates bracketed by their lower/upper quartiles. The
  /// quartile spread is a practical stand-in for the gamma error scale
  /// when the stream statistics are unknown (wide band = noisy estimate).
  struct EstimateInterval {
    Count estimate;
    Count lower;   ///< ~25th percentile of row estimates
    Count upper;   ///< ~75th percentile of row estimates
  };
  EstimateInterval EstimateWithSpread(ItemId item) const;

  /// Counter-wise addition: this += other. Requires compatibility (same
  /// depth, width, seed, family); returns InvalidArgument otherwise.
  Status Merge(const CountSketch& other);

  /// Counter-wise subtraction: this -= other. After subtracting the sketch
  /// of S1 from the sketch of S2, Estimate(q) approximates
  /// n_q(S2) - n_q(S1) — the max-change primitive.
  Status Subtract(const CountSketch& other);

  /// True iff `other` was built with identical parameters and seed, i.e.
  /// shares hash functions and may be merged/subtracted.
  bool CompatibleWith(const CountSketch& other) const;

  /// Serializes parameters + counters to `out` (appended).
  void SerializeTo(std::string* out) const;

  /// Reconstructs a sketch serialized by SerializeTo. Returns Corruption on
  /// truncated or malformed input.
  static Result<CountSketch> Deserialize(std::string_view data);

  /// Resets all counters to zero (hash functions are kept).
  void Clear() noexcept;

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  uint64_t seed() const { return params_.seed; }
  const CountSketchParams& params() const { return params_; }

  /// Bytes held: the counter array plus hash-function parameters.
  size_t SpaceBytes() const;

  /// Raw counter access for tests and diagnostics.
  int64_t CounterAt(size_t row, size_t bucket) const {
    return counters_.At(row, bucket);
  }

 private:
  explicit CountSketch(const CountSketchParams& params);

  /// Row hash evaluation: bucket index and sign for `item` in row i.
  struct BucketSign {
    uint64_t bucket;
    int64_t sign;
  };
  BucketSign Locate(size_t row, ItemId item) const noexcept;

  /// Row-major batch update over one hash family's function vectors,
  /// through the selected batch-hash backend.
  template <typename HashT>
  void BatchAddRows(const std::vector<HashT>& bucket,
                    const std::vector<HashT>& sign,
                    std::span<const ItemId> items, Count weight,
                    batch_hash::Backend backend) noexcept;

  void BatchAddDispatch(std::span<const ItemId> items, Count weight,
                        batch_hash::Backend backend) noexcept;

  CountSketchParams params_;
  size_t depth_;
  size_t width_;
  // Per-row hash functions; only the family selected in params_ is
  // populated.
  std::vector<CarterWegmanHash> cw_bucket_, cw_sign_;
  std::vector<MultiplyShiftHash> ms_bucket_, ms_sign_;
  std::vector<TabulationHash> tab_bucket_, tab_sign_;
  // depth_ x width_ logical counters in a cache-line-aligned, padded
  // row-major layout (see counter_matrix.h); serialization stays in
  // logical row-major order, so the wire format is unchanged.
  CounterMatrix counters_;
};

}  // namespace streamfreq
