// Common interface implemented by every frequent-items algorithm.
//
// The paper compares Count-Sketch against SAMPLING (and its Gibbons-Matias
// refinements) and the Karp-Shenker-Papadimitriou counter algorithm; the
// benchmark harness additionally runs the standard counter/sketch
// competitors. This interface is the harness contract they all satisfy.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stream/exact_counter.h"
#include "stream/types.h"

namespace streamfreq {

/// A one-pass summary of a stream that can estimate item counts and emit a
/// ranked candidate list of likely-frequent items.
class StreamSummary {
 public:
  virtual ~StreamSummary() = default;

  /// Short algorithm name for tables, e.g. "CountSketch(t=5,b=1024)".
  virtual std::string Name() const = 0;

  /// Processes `weight` occurrences of `item`. Counter-based algorithms
  /// require weight >= 1; sketches accept any weight (turnstile model).
  virtual void Add(ItemId item, Count weight) = 0;

  /// Processes one occurrence of `item`.
  void Add(ItemId item) { Add(item, 1); }

  /// Processes an entire materialized stream, one occurrence at a time.
  void AddAll(const Stream& stream) {
    for (ItemId q : stream) Add(q, 1);
  }

  /// Processes a batch of unit-weight arrivals. The default is equivalent
  /// to Add-ing each item in stream order; implementations whose guarantee
  /// is order-independent may override to aggregate duplicates and apply
  /// weighted updates (same guarantees, possibly different summary state —
  /// see each override). The parallel ingestion fast path.
  virtual void BatchAdd(std::span<const ItemId> items) {
    for (ItemId q : items) Add(q, 1);
  }

  /// Estimated count of `item`. Semantics vary by algorithm (Count-Sketch:
  /// unbiased median estimate; Count-Min / Space-Saving: upper bound;
  /// Misra-Gries: lower bound; sampling: scaled sample count) — each
  /// implementation documents its guarantee.
  virtual Count Estimate(ItemId item) const = 0;

  /// The algorithm's best candidates for the most frequent items, sorted by
  /// descending estimated count, at most `k` entries. May return fewer when
  /// the summary tracks fewer items.
  virtual std::vector<ItemCount> Candidates(size_t k) const = 0;

  /// Bytes of state held (counters, hash parameters, monitored-item table);
  /// the space the paper's Section 4 bounds refer to.
  virtual size_t SpaceBytes() const = 0;
};

}  // namespace streamfreq
