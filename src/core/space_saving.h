// Space-Saving (Metwally, Agrawal, El Abbadi 2005): the strongest
// counter-based competitor in the frequent-items literature.
//
// Maintains exactly `capacity` (item, count, error) triples. A monitored
// arrival increments its count. An unmonitored arrival replaces the
// minimum-count entry: the newcomer inherits count min+w with error = min.
// Guarantees, with c = capacity:
//   * count overestimates: n_q <= count(q) <= n_q + min_count,
//   * every item with n_q > n/c is monitored, and
//   * min_count <= n / c.
// Implemented over a binary min-heap with an item -> heap-slot index so
// increment and replace are O(log c); a doubly-linked "stream summary"
// yields O(1) for unit updates but the heap supports weighted updates
// uniformly (throughput difference is measured in E7).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// One monitored (item, count, error) triple, as exposed by Entries() and
/// consumed by FromEntries(). Serializing these — rather than replaying the
/// items as weighted Adds — preserves the error bounds, so GuaranteedAtLeast
/// keeps its lower-bound meaning across a save/restore cycle.
struct SpaceSavingEntry {
  ItemId item;
  Count count;
  Count error;
};

/// Space-Saving summary.
class SpaceSaving final : public StreamSummary {
 public:
  /// Creates a summary with exactly `capacity` counters (capacity >= 1).
  /// For the frequency threshold guarantee phi, use capacity = ceil(1/phi).
  static Result<SpaceSaving> Make(size_t capacity);

  std::string Name() const override;

  /// Weighted arrival; weight must be >= 1. O(log capacity).
  void Add(ItemId item, Count weight) override;
  using StreamSummary::Add;

  /// Batch arrival: aggregates duplicate items locally, then applies one
  /// weighted Add per distinct item. On skewed batches this collapses most
  /// heap operations into a handful of weighted updates. Equivalent to a
  /// reordered ingest of the batch, so all Space-Saving guarantees hold
  /// (they are order-independent), but the summary state may differ from
  /// item-at-a-time ingestion.
  void BatchAdd(std::span<const ItemId> items) override;

  /// Upper-bound estimate: the count when monitored, else the minimum count
  /// (the tightest upper bound Space-Saving can certify for any item).
  Count Estimate(ItemId item) const override;

  /// Monitored items by descending count.
  std::vector<ItemCount> Candidates(size_t k) const override;

  /// Guaranteed-frequent items: monitored entries whose count - error
  /// (a lower bound on the true count) is at least `threshold`.
  std::vector<ItemCount> GuaranteedAtLeast(Count threshold) const;

  /// The overestimation bound of `item` (0 when unmonitored): the count it
  /// inherited when it displaced another entry.
  Count ErrorOf(ItemId item) const;

  /// The smallest monitored count (0 while slots remain free).
  Count MinCount() const;

  /// Merges another Space-Saving summary over a disjoint stream
  /// (mergeable-summaries construction): for every item monitored by
  /// either side, the merged count/error add the other side's value when
  /// monitored there, else its MinCount (the tightest upper bound it can
  /// certify); the top `capacity` entries by count are kept. The merged
  /// counts remain upper bounds on union counts and count - error remains
  /// a lower bound. Requires equal capacities.
  Status Merge(const SpaceSaving& other);

  /// Every monitored triple in unspecified order (heap order). Pair with
  /// FromEntries for exact state round-trips (persistence, snapshots).
  std::vector<SpaceSavingEntry> Entries() const;

  /// Rebuilds a summary from previously captured Entries(). Rejects
  /// duplicates, more entries than `capacity`, zero counts, and
  /// count < error (each would silently corrupt the guarantees).
  static Result<SpaceSaving> FromEntries(
      size_t capacity, std::span<const SpaceSavingEntry> entries);

  size_t capacity() const { return capacity_; }
  size_t MonitoredCount() const { return heap_.size(); }
  size_t SpaceBytes() const override;

 private:
  explicit SpaceSaving(size_t capacity);

  struct Slot {
    ItemId item;
    Count count;
    Count error;
  };

  void SiftDown(size_t i);
  void SiftUp(size_t i);
  void SwapSlots(size_t i, size_t j);

  size_t capacity_;
  std::vector<Slot> heap_;                      // min-heap by count
  std::unordered_map<ItemId, size_t> position_; // item -> heap index
};

}  // namespace streamfreq
