// DGIM exponential histogram (Datar, Gionis, Indyk, Motwani): count the
// occurrences of an event within the last W stream positions using
// O(log^2 W) bits, with relative error at most 1/(2k) from bucket
// granularity.
//
// This is the standard sliding-window counting substrate; streamfreq uses
// it to keep windowed totals (e.g. the n that normalizes frequency
// thresholds phi*n over a window) next to the jumping-window sketch of
// core/windowed.h, which handles per-item counts.
//
// Buckets hold power-of-two event counts with timestamps of their most
// recent event; at most `k_per_size` buckets of each size are retained,
// merging the two oldest on overflow. A query sums all live buckets minus
// half the oldest (the canonical DGIM estimate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/result.h"

namespace streamfreq {

/// DGIM counter for one event type over a sliding window of W positions.
class DgimCounter {
 public:
  /// Creates a counter for window `window` (>= 1) keeping `k_per_size`
  /// buckets per size (>= 1; error <= 1/(2*k_per_size)).
  static Result<DgimCounter> Make(uint64_t window, size_t k_per_size = 2);

  /// Advances the stream by one position; `event` says whether the tracked
  /// event occurred at this position.
  void Observe(bool event);

  /// Estimated number of events among the last `window` positions.
  /// Relative error at most 1/(2*k_per_size) of the true count.
  uint64_t Estimate() const;

  /// Exact upper/lower bounds implied by the bucket structure.
  uint64_t UpperBound() const;
  uint64_t LowerBound() const;

  /// Total positions observed.
  uint64_t Position() const { return now_; }

  /// Number of live buckets (O(k log W)).
  size_t BucketCount() const { return buckets_.size(); }

  size_t SpaceBytes() const {
    return buckets_.size() * sizeof(Bucket) + sizeof(*this);
  }

 private:
  struct Bucket {
    uint64_t newest;  // position of the bucket's most recent event
    uint64_t size;    // number of events covered (a power of two)
  };

  DgimCounter(uint64_t window, size_t k_per_size)
      : window_(window), k_per_size_(k_per_size) {}

  void ExpireOld();

  uint64_t window_;
  size_t k_per_size_;
  uint64_t now_ = 0;
  // Buckets newest-first; sizes non-decreasing from front to back.
  std::deque<Bucket> buckets_;
};

}  // namespace streamfreq
