// Convenience facade for the phi-heavy-hitters question most deployments
// actually ask: "report every item exceeding a phi fraction of the
// traffic" (iceberg queries, elephant flows).
//
// Wraps Space-Saving with capacity 2/phi, which guarantees:
//   * no false negatives: every item with n_q > phi*n is reported, and
//   * bounded false positives: every reported item has n_q > (phi/2)*n
//     when reported from the guaranteed list, or is flagged as
//     "possible" otherwise.
// This two-tier answer (guaranteed / possible) mirrors how production
// heavy-hitter monitors expose uncertainty.
#pragma once

#include <cstddef>
#include <vector>

#include "core/space_saving.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// One reported heavy hitter.
struct PhiHeavyHitter {
  ItemId item;
  Count count_upper;  ///< Space-Saving upper bound
  Count count_lower;  ///< count_upper - error: guaranteed occurrences
  bool guaranteed;    ///< count_lower already clears the phi threshold
};

/// Reports items above a phi fraction of the stream.
class PhiHeavyHitters {
 public:
  /// Creates a monitor for threshold `phi` in (0, 1). Space is
  /// O(1/phi) counters.
  static Result<PhiHeavyHitters> Make(double phi);

  /// Processes `weight` occurrences of `item` (weight >= 1).
  void Add(ItemId item, Count weight = 1);

  /// Every item that MAY exceed phi * n, sorted by descending upper
  /// bound. Items whose guaranteed (lower-bound) count already exceeds
  /// the threshold have `guaranteed = true`; the rest are possible heavy
  /// hitters that a second pass could confirm. Never misses a true
  /// phi-heavy item.
  std::vector<PhiHeavyHitter> Report() const;

  /// Items whose guaranteed count exceeds phi * n (no false positives).
  std::vector<PhiHeavyHitter> GuaranteedOnly() const;

  double phi() const { return phi_; }
  Count StreamLength() const { return n_; }
  size_t SpaceBytes() const { return summary_.SpaceBytes(); }

 private:
  PhiHeavyHitters(double phi, SpaceSaving summary)
      : phi_(phi), summary_(std::move(summary)) {}

  double phi_;
  Count n_ = 0;
  SpaceSaving summary_;
};

}  // namespace streamfreq
