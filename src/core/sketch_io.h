// Checksummed on-disk persistence for Count-Sketches and other blobs.
//
// File format (little-endian):
//   u64 magic (e.g. "SFQSKF01" for sketch checkpoints)
//   u64 payload length
//   u32 masked CRC-32C of the payload
//   payload bytes
//
// The CRC catches torn writes and bit rot; the caller's decoder inside the
// payload additionally validates structure. Use these for checkpointing
// long-lived sketches or shipping them between nodes (the distributed-
// aggregation pattern the paper's additivity enables). The server's
// durability layer (src/server/wal.h, snapshotter.h) reuses the generic
// blob entry points so every durable artifact shares one write discipline.
//
// Crash consistency: writes land the bytes in `path + ".tmp"` and publish
// them with rename — atomic within a directory on POSIX — so a crash
// mid-save leaves the previous checkpoint intact, never a prefix. Reads
// treat every adversarial input as data, not UB: short reads, wrong magic,
// implausible lengths, trailing bytes, and checksum mismatches all come
// back as Corruption (see the corruption-matrix cases in
// tests/sketch_io_test.cc, exercised under ASan/UBSan by check.sh).
#pragma once

#include <cstdint>
#include <string>

#include "core/count_sketch.h"
#include "util/result.h"

namespace streamfreq {

/// Magic tag of sketch checkpoint files ("SFQSKF01").
constexpr uint64_t kSketchFileMagic = 0x5346515346303153ULL;

/// Writes `magic` + length + masked CRC-32C + `payload` to `path`
/// atomically: bytes land in `path + ".tmp"` and are published by rename,
/// so concurrent readers and crash recovery see either the old file or the
/// new one in full. Carries the `sketch_io.write` / `sketch_io.rename`
/// failpoints (including process-death mid-publish in crash-kills-process
/// mode — see util/failpoint.h).
Status WriteBlobFileAtomic(const std::string& path, uint64_t magic,
                           const std::string& payload);

/// Reads and verifies a file written by WriteBlobFileAtomic, returning the
/// payload bytes. Corruption (bad magic, bad CRC, truncation, trailing
/// bytes) is distinguished from filesystem errors. Carries the
/// `sketch_io.read` failpoint.
Result<std::string> ReadBlobFileVerified(const std::string& path,
                                         uint64_t magic);

/// Writes `sketch` to `path` atomically (kSketchFileMagic framing).
Status WriteSketchFile(const std::string& path, const CountSketch& sketch);

/// Reads a sketch written by WriteSketchFile. Corruption (bad magic, bad
/// CRC, truncation) is distinguished from filesystem errors.
Result<CountSketch> ReadSketchFile(const std::string& path);

}  // namespace streamfreq
