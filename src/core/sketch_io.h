// Checksummed on-disk persistence for Count-Sketches.
//
// File format (little-endian):
//   u64 magic "SFQSKF01"
//   u64 payload length
//   u32 masked CRC-32C of the payload
//   payload = CountSketch::SerializeTo bytes
//
// The CRC catches torn writes and bit rot; Deserialize inside the payload
// additionally validates structure. Use these for checkpointing long-lived
// sketches or shipping them between nodes (the distributed-aggregation
// pattern the paper's additivity enables).
#pragma once

#include <string>

#include "core/count_sketch.h"
#include "util/result.h"

namespace streamfreq {

/// Writes `sketch` to `path` atomically-ish (write then rename is left to
/// callers with stronger needs; this truncates in place).
Status WriteSketchFile(const std::string& path, const CountSketch& sketch);

/// Reads a sketch written by WriteSketchFile. Corruption (bad magic, bad
/// CRC, truncation) is distinguished from filesystem errors.
Result<CountSketch> ReadSketchFile(const std::string& path);

}  // namespace streamfreq
