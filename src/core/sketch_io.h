// Checksummed on-disk persistence for Count-Sketches.
//
// File format (little-endian):
//   u64 magic "SFQSKF01"
//   u64 payload length
//   u32 masked CRC-32C of the payload
//   payload = CountSketch::SerializeTo bytes
//
// The CRC catches torn writes and bit rot; Deserialize inside the payload
// additionally validates structure. Use these for checkpointing long-lived
// sketches or shipping them between nodes (the distributed-aggregation
// pattern the paper's additivity enables).
//
// Crash consistency: WriteSketchFile lands the bytes in `path + ".tmp"` and
// publishes them with rename — atomic within a directory on POSIX — so a
// crash mid-save leaves the previous checkpoint intact, never a prefix.
// ReadSketchFile treats every adversarial input as data, not UB: short
// reads, wrong magic, implausible lengths, trailing bytes, and checksum
// mismatches all come back as Corruption (see the corruption-matrix cases
// in tests/sketch_io_test.cc, exercised under ASan/UBSan by check.sh).
#pragma once

#include <string>

#include "core/count_sketch.h"
#include "util/result.h"

namespace streamfreq {

/// Writes `sketch` to `path` atomically: bytes land in `path + ".tmp"` and
/// are published by rename, so concurrent readers and crash recovery see
/// either the old file or the new one in full.
Status WriteSketchFile(const std::string& path, const CountSketch& sketch);

/// Reads a sketch written by WriteSketchFile. Corruption (bad magic, bad
/// CRC, truncation) is distinguished from filesystem errors.
Result<CountSketch> ReadSketchFile(const std::string& path);

}  // namespace streamfreq
