// Parameter selection: theory-to-practice mapping of the paper's analysis.
//
// Lemma 5 / Theorem 1 drive Count-Sketch sizing from the stream statistics
// (n, k, eps, delta, residual second moment, n_k); Section 4.1 specializes
// to Zipf(z) distributions; Table 1 gives the analytic space formulas this
// library's E1 benchmark compares empirically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/count_sketch.h"
#include "util/result.h"

namespace streamfreq {

/// Inputs to the Lemma 5 sizing rule.
struct ApproxTopSpec {
  uint64_t stream_length;  ///< n
  size_t k;                ///< top-k target
  double epsilon;          ///< ApproxTop slack (0, 1)
  double delta;            ///< failure probability (0, 1)
  double residual_f2;      ///< F2^{>k} = sum_{q'>k} n_{q'}^2
  double nk;               ///< n_k, count of the k-th most frequent item
};

/// Count-Sketch dimensions chosen per the paper, with the derived bound.
struct SketchSizing {
  size_t depth;   ///< t = Theta(log(n/delta))
  size_t width;   ///< b from Lemma 5 (constants per the paper)
  double gamma;   ///< sqrt(residual_f2 / width), the error scale
};

/// Applies Lemma 5 literally: t = ceil(log2(n/delta)),
/// b = max(8k, 256 * F2^{>k} / (eps * n_k)^2). The paper's constants are
/// worst-case Markov/Chernoff constants; practical deployments use smaller
/// widths (see the E2 benchmark), but this is the proven setting.
Result<SketchSizing> SizeForApproxTop(const ApproxTopSpec& spec);

/// Section 4.1 Zipf specialization: the width b (up to the paper's constant
/// factors, which we take as 1) for CandidateTop(S, k, O(k)) on Zipf(z)
/// over universe m:
///   z < 1/2 : b = m^{1-2z} * k^{2z}
///   z = 1/2 : b = k * log(m)
///   z > 1/2 : b = k
size_t ZipfWidth(double z, size_t k, uint64_t universe);

/// The paper's l for CandidateTop via ApproxTop on Zipf(z):
/// l = k / (1 - eps)^{1/z}, clamped to at least k + 1.
size_t ZipfTrackedCount(double z, size_t k, double epsilon);

/// Table 1 analytic space formulas (entries/counters, constants taken as 1,
/// delta folded into the log's argument as in the paper's table).
/// SAMPLING space is the expected number of distinct sampled items;
/// Count-Sketch space is b * log(n); KPS space is its 1/theta counters.
double Table1SamplingSpace(double z, size_t k, uint64_t m);
double Table1KpsSpace(double z, size_t k, uint64_t m);
double Table1CountSketchSpace(double z, size_t k, uint64_t m, uint64_t n);

}  // namespace streamfreq
