#include "core/count_min_topk.h"

#include <algorithm>

namespace streamfreq {

Result<CountMinTopK> CountMinTopK::Make(const CountMinParams& sketch_params,
                                        size_t tracked) {
  if (tracked == 0) {
    return Status::InvalidArgument("CountMinTopK: tracked must be positive");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountMin sketch, CountMin::Make(sketch_params));
  return CountMinTopK(std::move(sketch), tracked);
}

CountMinTopK::CountMinTopK(CountMin sketch, size_t tracked)
    : sketch_(std::move(sketch)), capacity_(tracked) {
  tracked_.reserve(tracked + 1);
}

std::string CountMinTopK::Name() const {
  return std::string("CountMinTopK(") +
         (sketch_.conservative() ? "CU," : "") +
         "d=" + std::to_string(sketch_.depth()) +
         ",w=" + std::to_string(sketch_.width()) +
         ",l=" + std::to_string(capacity_) + ")";
}

void CountMinTopK::Add(ItemId item, Count weight) {
  sketch_.Add(item, weight);
  auto it = tracked_.find(item);
  if (it != tracked_.end()) {
    by_count_.erase({it->second, item});
    it->second += weight;
    by_count_.insert({it->second, item});
    return;
  }
  const Count estimate = sketch_.Estimate(item);
  if (tracked_.size() < capacity_) {
    tracked_.emplace(item, estimate);
    by_count_.insert({estimate, item});
    return;
  }
  const auto min_it = by_count_.begin();
  if (estimate > min_it->first) {
    tracked_.erase(min_it->second);
    by_count_.erase(min_it);
    tracked_.emplace(item, estimate);
    by_count_.insert({estimate, item});
  }
}

Count CountMinTopK::Estimate(ItemId item) const {
  auto it = tracked_.find(item);
  if (it != tracked_.end()) return it->second;
  return sketch_.Estimate(item);
}

std::vector<ItemCount> CountMinTopK::Candidates(size_t k) const {
  std::vector<ItemCount> out;
  out.reserve(std::min(k, by_count_.size()));
  for (auto it = by_count_.rbegin(); it != by_count_.rend() && out.size() < k;
       ++it) {
    out.push_back({it->second, it->first});
  }
  return out;
}

size_t CountMinTopK::SpaceBytes() const {
  const size_t per_entry =
      (sizeof(ItemId) + sizeof(Count) + sizeof(void*)) +
      (sizeof(std::pair<Count, ItemId>) + 3 * sizeof(void*));
  return sketch_.SpaceBytes() + tracked_.size() * per_entry;
}

}  // namespace streamfreq
