// Dyadic range decomposition shared by the hierarchical sketches.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace streamfreq {

/// Invokes fn(level, prefix) for each block of the canonical dyadic cover
/// of [lo, hi] within a `bits`-bit domain, where level in [0, bits] is the
/// prefix length (level 0 = the whole domain) and prefix is the block's
/// `level`-bit prefix. Caller guarantees lo <= hi < 2^bits.
template <typename Fn>
void ForEachDyadicBlock(uint64_t lo, uint64_t hi, size_t bits, Fn&& fn) {
  uint64_t cursor = lo;
  while (true) {
    size_t block_bits =
        cursor == 0 ? bits : static_cast<size_t>(std::countr_zero(cursor));
    block_bits = std::min(block_bits, bits);
    while (block_bits > 0 &&
           (block_bits >= 64 || cursor + (1ULL << block_bits) - 1 > hi)) {
      --block_bits;
    }
    fn(bits - block_bits, cursor >> block_bits);
    const uint64_t block_end = cursor + (1ULL << block_bits) - 1;
    if (block_end >= hi) break;
    cursor = block_end + 1;
  }
}

}  // namespace streamfreq
