#include "server/service.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace streamfreq {

namespace {

// Bounds on per-tenant knobs: a hostile or confused client must not be able
// to ask one tenant for unbounded threads or candidate slots.
constexpr uint64_t kMaxTenantThreads = 16;
constexpr uint64_t kMaxTracked = 4096;
constexpr uint64_t kMaxBatchItems = uint64_t{1} << 20;

void AppendJsonKey(std::string* out, const char* key, uint64_t value) {
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

void AppendJsonBool(std::string* out, const char* key, bool value) {
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(value ? "true" : "false");
}

// Resolves the wire geometry: zero means the library default, so the wire
// never carries magic dimensions.
CountSketchParams ResolveParams(const TenantSpec& spec) {
  CountSketchParams params;
  if (spec.depth > 0) params.depth = static_cast<size_t>(spec.depth);
  if (spec.width > 0) params.width = static_cast<size_t>(spec.width);
  params.seed = spec.seed;
  return params;
}

IngestOptions ToIngestOptions(const TenantSpec& spec) {
  IngestOptions options;
  options.threads = static_cast<size_t>(spec.threads);
  options.batch_items = static_cast<size_t>(spec.batch_items);
  options.queue_batches = static_cast<size_t>(spec.queue_batches);
  options.publish_every_batches =
      static_cast<size_t>(spec.publish_every_batches);
  options.push_timeout_ms = spec.push_timeout_ms;
  options.overflow_policy = spec.policy;
  options.sample_keep_one_in = static_cast<size_t>(spec.sample_keep_one_in);
  return options;
}

// ValidTenantName admits "." and ".." (dots are legal name bytes); as
// directory names those escape the data_dir, so durable mode refuses them.
bool SafeDurableTenantName(const std::string& name) {
  return name != "." && name != "..";
}

}  // namespace

/// One tenant namespace. The ingestor pointer is set once at construction
/// and never reassigned (the ingestor itself is internally synchronized);
/// everything mutable sits behind the tenant mutex.
struct SketchService::Tenant {
  Tenant(TenantSpec spec_in, CountSketchParams params_in,
         std::unique_ptr<ParallelIngestor<CountSketch>> ingestor_in,
         std::unique_ptr<SpaceSaving> candidates_in,
         std::unique_ptr<TenantStore> store_in = nullptr,
         TenantRecovery recovery_in = {}, uint64_t base_ingested_in = 0)
      : spec(std::move(spec_in)),
        params(params_in),
        ingestor(std::move(ingestor_in)),
        store(std::move(store_in)),
        recovery(recovery_in),
        base_ingested(base_ingested_in) {
    MutexLock lock(mu);
    candidates = std::move(candidates_in);
  }

  const TenantSpec spec;
  const CountSketchParams params;  ///< resolved geometry (defaults applied)
  const std::unique_ptr<ParallelIngestor<CountSketch>> ingestor;
  /// Durability engine (journal + snapshots); null when the service has no
  /// data_dir. Internally synchronized.
  const std::unique_ptr<TenantStore> store;
  const TenantRecovery recovery;  ///< what startup recovery found
  /// Items already folded into the ingestor's recovered seed sketch; the
  /// ingestor's own items_ingested counts only post-recovery work, so the
  /// conservation law reads base_ingested + items_ingested.
  const uint64_t base_ingested;

  mutable Mutex mu;
  /// All-time heavy-hitter candidates; top-k scores them on the snapshot.
  std::unique_ptr<SpaceSaving> candidates SFQ_GUARDED_BY(mu);
  /// Marked snapshot for max-change (kMarkEpoch copies, kMaxChange
  /// subtracts — the paper's two-pass algorithm across live epochs).
  std::unique_ptr<CountSketch> marked SFQ_GUARDED_BY(mu);
  uint64_t marked_epoch SFQ_GUARDED_BY(mu) = 0;
  /// Serving cache backing the server.publish degraded path.
  const CountSketch* served SFQ_GUARDED_BY(mu) = nullptr;
  uint64_t served_epoch SFQ_GUARDED_BY(mu) = 0;
  /// Admission bookkeeping (see the header's conservation contract).
  uint64_t offered_items SFQ_GUARDED_BY(mu) = 0;
  uint64_t rejected_items SFQ_GUARDED_BY(mu) = 0;
  uint64_t rejected_requests SFQ_GUARDED_BY(mu) = 0;
  uint64_t queries SFQ_GUARDED_BY(mu) = 0;
  uint64_t stale_serves SFQ_GUARDED_BY(mu) = 0;
  uint64_t snapshot_failures SFQ_GUARDED_BY(mu) = 0;
  bool sealed SFQ_GUARDED_BY(mu) = false;

  /// The durable ledger + candidate triples, for the snapshotter.
  LedgerSample SampleLedger() SFQ_REQUIRES(mu) {
    LedgerSample sample;
    sample.rejected_items = rejected_items;
    sample.rejected_requests = rejected_requests;
    sample.queries = queries;
    sample.stale_serves = stale_serves;
    sample.sealed = sealed;
    sample.candidate_capacity = candidates->capacity();
    sample.candidates = candidates->Entries();
    return sample;
  }

  /// The snapshot a query answers from: refreshes the serving cache unless
  /// the server.publish failpoint holds it back (stale is fine, wrong
  /// never is — the cached pointer stays valid for the ingestor's
  /// lifetime).
  const CountSketch* Serving(uint64_t* epoch) SFQ_REQUIRES(mu) {
    if (const FailDecision fp = SFQ_FAILPOINT("server.publish");
        fp.action == FailAction::kError && served != nullptr) {
      ++stale_serves;
      *epoch = served_epoch;
      return served;
    }
    served = ingestor->Snapshot();
    served_epoch = ingestor->SnapshotEpoch();
    *epoch = served_epoch;
    return served;
  }
};

Response SketchService::Handle(const Request& request) {
  if (OpcodeNeedsTenant(request.op) && !ValidTenantName(request.tenant)) {
    return Response::FromStatus(Status::InvalidArgument(
        std::string(OpcodeName(request.op)) + ": missing or invalid tenant"));
  }
  switch (request.op) {
    case Opcode::kPing:
      return Response{};
    case Opcode::kCreateTenant:
      return CreateTenant(request);
    case Opcode::kDropTenant:
      return DropTenant(request);
    case Opcode::kStatsz:
    case Opcode::kShutdown:
      return Response::FromStatus(Status::Unimplemented(
          std::string(OpcodeName(request.op)) + ": server-level request"));
    default:
      break;
  }
  const std::shared_ptr<Tenant> tenant = Find(request.tenant);
  if (tenant == nullptr) {
    return Response::FromStatus(
        Status::NotFound("unknown tenant: " + request.tenant));
  }
  switch (request.op) {
    case Opcode::kIngest:
      return Ingest(*tenant, request);
    case Opcode::kSeal:
      return Seal(*tenant);
    case Opcode::kTopK:
      return TopK(*tenant, request);
    case Opcode::kEstimate:
      return Estimate(*tenant, request);
    case Opcode::kMarkEpoch:
      return MarkEpoch(*tenant);
    case Opcode::kMaxChange:
      return MaxChange(*tenant, request);
    case Opcode::kExport:
      return Export(*tenant);
    case Opcode::kRecoveryInfo:
      return RecoveryInfo(*tenant);
    default:
      return Response::FromStatus(Status::Internal(
          std::string("unhandled opcode: ") + OpcodeName(request.op)));
  }
}

Response SketchService::CreateTenant(const Request& request) {
  const TenantSpec& spec = request.spec;
  if (spec.threads == 0 || spec.threads > kMaxTenantThreads) {
    return Response::FromStatus(Status::InvalidArgument(
        "create: threads must be in [1, " +
        std::to_string(kMaxTenantThreads) + "]"));
  }
  if (spec.batch_items == 0 || spec.batch_items > kMaxBatchItems) {
    return Response::FromStatus(
        Status::InvalidArgument("create: batch_items out of range"));
  }
  if (spec.queue_batches == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("create: queue_batches must be >= 1"));
  }
  if (spec.tracked == 0 || spec.tracked > kMaxTracked) {
    return Response::FromStatus(Status::InvalidArgument(
        "create: tracked must be in [1, " + std::to_string(kMaxTracked) +
        "]"));
  }

  const CountSketchParams params = ResolveParams(spec);

  std::unique_ptr<TenantStore> store;
  if (durable()) {
    if (!SafeDurableTenantName(request.tenant)) {
      return Response::FromStatus(Status::InvalidArgument(
          "create: tenant name is not a safe directory name: " +
          request.tenant));
    }
    // Check the registry before touching the disk: a duplicate create must
    // not disturb the existing tenant's directory. (TenantStore::Create
    // independently refuses a directory that already holds a snapshot, so
    // the lock-free window between this check and the emplace below cannot
    // produce two stores over one directory.)
    if (Find(request.tenant) != nullptr) {
      return Response::FromStatus(
          Status::InvalidArgument("tenant already exists: " + request.tenant));
    }
    auto created = TenantStore::Create(
        options_.data_dir + "/" + request.tenant, spec, params,
        options_.fsync, options_.snapshot_every_items);
    if (!created.ok()) return Response::FromStatus(created.status());
    store = std::move(*created);
  }

  auto ingestor = ParallelIngestor<CountSketch>::Make(
      [params]() { return CountSketch::Make(params); }, ToIngestOptions(spec));
  if (!ingestor.ok()) return Response::FromStatus(ingestor.status());
  auto candidates = SpaceSaving::Make(static_cast<size_t>(spec.tracked));
  if (!candidates.ok()) return Response::FromStatus(candidates.status());

  auto tenant = std::make_shared<Tenant>(
      spec, params, std::move(*ingestor),
      std::make_unique<SpaceSaving>(std::move(*candidates)), std::move(store));

  MutexLock lock(mu_);
  const auto [it, inserted] = tenants_.emplace(request.tenant, tenant);
  if (!inserted) {
    // The losing ingestor drains its (empty) workers on destruction.
    return Response::FromStatus(
        Status::InvalidArgument("tenant already exists: " + request.tenant));
  }
  Response resp;
  resp.epoch = tenant->ingestor->SnapshotEpoch();
  return resp;
}

Response SketchService::DropTenant(const Request& request) {
  std::shared_ptr<Tenant> tenant;
  {
    MutexLock lock(mu_);
    const auto it = tenants_.find(request.tenant);
    if (it == tenants_.end()) {
      return Response::FromStatus(
          Status::NotFound("unknown tenant: " + request.tenant));
    }
    tenant = it->second;
    tenants_.erase(it);
  }
  // Drain outside the registry lock; in-flight handlers still hold valid
  // shared_ptrs and finish against the sealed ingestor.
  Result<CountSketch> merged = tenant->ingestor->Finish();
  if (tenant->store != nullptr) {
    // The tenant is gone from the registry; its durable state goes with it.
    // Best-effort: a directory that survives in full re-registers the
    // tenant on restart (drop-then-crash keeps the data), while a partial
    // leftover fails recovery loudly instead of resurrecting stale state.
    std::error_code ec;
    std::filesystem::remove_all(tenant->store->dir(), ec);
  }
  if (!merged.ok()) return Response::FromStatus(merged.status());
  return Response{};
}

Response SketchService::Ingest(Tenant& tenant, const Request& request) {
  {
    MutexLock lock(tenant.mu);
    tenant.offered_items += request.items.size();
    if (tenant.sealed) {
      tenant.rejected_items += request.items.size();
      ++tenant.rejected_requests;
      return Response::FromStatus(
          Status::InvalidArgument("ingest: tenant is sealed"));
    }
  }
  // WAL-first: the batch is journaled (and folded into the durable
  // accumulator) before the live ingestor sees it, so everything the
  // client can observe as acknowledged is recoverable. A journal failure
  // rejects the request before any live state changes, keeping the
  // conservation law exact on both sides of a crash.
  if (tenant.store != nullptr) {
    const Status journaled =
        tenant.store->Append(std::span<const ItemId>(request.items));
    if (!journaled.ok()) {
      MutexLock lock(tenant.mu);
      tenant.rejected_items += request.items.size();
      ++tenant.rejected_requests;
      return Response::FromStatus(journaled);
    }
  }
  const Status status =
      tenant.ingestor->Ingest(std::span<const ItemId>(request.items));
  {
    MutexLock lock(tenant.mu);
    if (!status.ok()) {
      tenant.rejected_items += request.items.size();
      ++tenant.rejected_requests;
      if (tenant.store != nullptr) {
        // Journaled but not applied live: recovery would replay a batch
        // the ledger counted as rejected. Poison the store so the
        // divergence is bounded at this request (shed/sample tenants —
        // the ones under the conservation contract — never take this
        // branch: their ingest path cannot fail mid-request).
        tenant.store->Poison();
      }
      return Response::FromStatus(status);
    }
    tenant.candidates->BatchAdd(std::span<const ItemId>(request.items));
  }
  if (tenant.store != nullptr && tenant.store->SnapshotDue()) {
    MaybeSnapshot(tenant);
  }
  Response resp;
  resp.value = static_cast<Count>(request.items.size());
  return resp;
}

Response SketchService::Seal(Tenant& tenant) {
  // Finish drains the queue and publishes the final fold; afterwards the
  // tenant serves read-only traffic from an exact snapshot.
  Result<CountSketch> merged = tenant.ingestor->Finish();
  uint64_t epoch;
  {
    MutexLock lock(tenant.mu);
    tenant.sealed = true;
    // Pin the serving cache to the final snapshot so post-seal queries are
    // exact even when server.publish withholds refreshes.
    tenant.served = tenant.ingestor->Snapshot();
    tenant.served_epoch = tenant.ingestor->SnapshotEpoch();
    epoch = tenant.served_epoch;
  }
  // Persist the sealed state so a post-seal restart recovers a read-only
  // tenant with its final ledger.
  if (tenant.store != nullptr) MaybeSnapshot(tenant);
  if (!merged.ok()) return Response::FromStatus(merged.status());
  Response resp;
  resp.epoch = epoch;
  return resp;
}

Response SketchService::TopK(Tenant& tenant, const Request& request) {
  if (request.k == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("topk: k must be >= 1"));
  }
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  // Score a wider candidate slate than k on the snapshot, then keep the
  // best k: Space-Saving's own counts are upper bounds with merge slack,
  // the sketch estimates are the paper's unbiased median.
  const size_t slate = static_cast<size_t>(request.k) * 3;
  std::vector<ItemCount> candidates = tenant.candidates->Candidates(slate);
  for (ItemCount& candidate : candidates) {
    candidate.count = snapshot->Estimate(candidate.item);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ItemCount& a, const ItemCount& b) {
                     return a.count > b.count;
                   });
  if (candidates.size() > request.k) {
    candidates.resize(static_cast<size_t>(request.k));
  }
  resp.entries = std::move(candidates);
  return resp;
}

Response SketchService::Estimate(Tenant& tenant, const Request& request) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  resp.value = snapshot->Estimate(request.item);
  return resp;
}

Response SketchService::MarkEpoch(Tenant& tenant) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  tenant.marked = std::make_unique<CountSketch>(*snapshot);
  tenant.marked_epoch = resp.epoch;
  return resp;
}

Response SketchService::MaxChange(Tenant& tenant, const Request& request) {
  if (request.k == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("maxchange: k must be >= 1"));
  }
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  if (tenant.marked == nullptr) {
    return Response::FromStatus(Status::InvalidArgument(
        "maxchange: no marked epoch (send mark first)"));
  }
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  // The paper's two-pass max-change via the group structure: subtract the
  // marked sketch from the current one and rank candidates by |delta|.
  CountSketch delta = *snapshot;
  const Status status = delta.Subtract(*tenant.marked);
  if (!status.ok()) return Response::FromStatus(status);
  const size_t slate = static_cast<size_t>(request.k) * 3;
  std::vector<ItemCount> candidates = tenant.candidates->Candidates(slate);
  for (ItemCount& candidate : candidates) {
    candidate.count = delta.Estimate(candidate.item);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ItemCount& a, const ItemCount& b) {
                     return std::llabs(a.count) > std::llabs(b.count);
                   });
  if (candidates.size() > request.k) {
    candidates.resize(static_cast<size_t>(request.k));
  }
  resp.entries = std::move(candidates);
  return resp;
}

Response SketchService::Export(Tenant& tenant) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  snapshot->SerializeTo(&resp.blob);
  return resp;
}

void SketchService::MaybeSnapshot(Tenant& tenant) {
  LedgerSample sample;
  {
    MutexLock lock(tenant.mu);
    sample = tenant.SampleLedger();
  }
  // Candidate triples and ledger are sampled under the tenant lock while
  // appends continue under the store lock, so a snapshot's candidates may
  // trail its sketch by the batches in flight — benign for an approximate
  // structure (replay re-adds everything past the snapshot seqno).
  const Status status = tenant.store->WriteSnapshot(sample);
  if (!status.ok()) {
    MutexLock lock(tenant.mu);
    ++tenant.snapshot_failures;
  }
}

Response SketchService::RecoveryInfo(Tenant& tenant) {
  if (tenant.store == nullptr) {
    return Response::FromStatus(Status::InvalidArgument(
        "recoveryinfo: tenant is not durable (no data dir)"));
  }
  std::string out = "{";
  AppendJsonBool(&out, "recovered", tenant.recovery.recovered);
  out += ",";
  AppendJsonKey(&out, "snapshot_seqno", tenant.recovery.snapshot_seqno);
  out += ",";
  AppendJsonKey(&out, "replayed_records", tenant.recovery.replayed_records);
  out += ",";
  AppendJsonKey(&out, "replayed_items", tenant.recovery.replayed_items);
  out += ",";
  AppendJsonKey(&out, "duplicates_skipped",
                tenant.recovery.duplicates_skipped);
  out += ",";
  AppendJsonBool(&out, "torn_tail", tenant.recovery.torn_tail);
  out += ",";
  AppendJsonKey(&out, "discarded_bytes", tenant.recovery.discarded_bytes);
  out += ",";
  AppendJsonKey(&out, "base_items", tenant.recovery.base_items);
  out += ",";
  AppendJsonKey(&out, "last_seqno", tenant.store->last_seqno());
  out += ",";
  AppendJsonKey(&out, "durable_items", tenant.store->durable_items());
  out += ",";
  AppendJsonKey(&out, "snapshots_written", tenant.store->snapshots_written());
  out += ",";
  AppendJsonBool(&out, "poisoned", tenant.store->poisoned());
  out += "}";
  Response resp;
  resp.blob = std::move(out);
  return resp;
}

Status SketchService::Recover() {
  if (!durable()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  if (ec) {
    return Status::IoError("recover: cannot create data dir: " +
                           options_.data_dir + ": " + ec.message());
  }
  std::filesystem::directory_iterator it(options_.data_dir, ec);
  if (ec) {
    return Status::IoError("recover: cannot list data dir: " +
                           options_.data_dir + ": " + ec.message());
  }
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!ValidTenantName(name) || !SafeDurableTenantName(name)) {
      MutexLock lock(mu_);
      recovery_failures_[name] = "not a valid tenant name";
      continue;
    }
    const Status recovered = RecoverTenant(name, entry.path().string());
    if (!recovered.ok()) {
      MutexLock lock(mu_);
      recovery_failures_[name] = recovered.ToString();
    }
  }
  return Status::OK();
}

Status SketchService::RecoverTenant(const std::string& name,
                                    const std::string& dir) {
  STREAMFREQ_ASSIGN_OR_RETURN(
      TenantStore::Opened opened,
      TenantStore::Open(dir, options_.fsync, options_.snapshot_every_items));
  const TenantSpec spec = opened.state.spec;
  const CountSketchParams params = opened.sketch.params();
  // Seed the ingestor's accumulator with the recovered sketch: linearity
  // makes (recovered state + replayed live stream) bit-identical to one
  // uninterrupted ingest of the same items.
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      [params]() { return CountSketch::Make(params); }, ToIngestOptions(spec),
      std::move(opened.sketch));
  if (!ingestor.ok()) return ingestor.status();

  auto tenant = std::make_shared<Tenant>(
      spec, params, std::move(*ingestor),
      std::make_unique<SpaceSaving>(std::move(opened.candidates)),
      std::move(opened.store), opened.recovery, opened.state.durable_items);
  {
    MutexLock lock(tenant->mu);
    // Derived ledger: everything durable counts as offered-and-ingested,
    // persisted rejections count as offered-and-rejected. Requests in
    // flight at the crash (offered, never journaled) are forgotten on BOTH
    // sides of the equation, so conservation holds by construction.
    tenant->offered_items =
        opened.state.rejected_items + opened.state.durable_items;
    tenant->rejected_items = opened.state.rejected_items;
    tenant->rejected_requests = opened.state.rejected_requests;
    tenant->queries = opened.state.queries;
    tenant->stale_serves = opened.state.stale_serves;
    tenant->sealed = opened.state.sealed;
    if (opened.state.sealed) {
      // A recovered sealed tenant serves read-only from its seed snapshot.
      tenant->served = tenant->ingestor->Snapshot();
      tenant->served_epoch = tenant->ingestor->SnapshotEpoch();
    }
  }
  MutexLock lock(mu_);
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

std::map<std::string, std::string> SketchService::recovery_failures() const {
  MutexLock lock(mu_);
  return recovery_failures_;
}

std::shared_ptr<SketchService::Tenant> SketchService::Find(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::string SketchService::TenantsJson() const {
  std::vector<std::pair<std::string, std::shared_ptr<Tenant>>> tenants;
  {
    MutexLock lock(mu_);
    tenants.assign(tenants_.begin(), tenants_.end());
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, tenant] : tenants) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{";
    const IngestStats stats = tenant->ingestor->Stats();
    out += "\"policy\":\"";
    out += PolicyName(tenant->spec.policy);
    out += "\",";
    AppendJsonKey(&out, "depth", tenant->params.depth);
    out += ",";
    AppendJsonKey(&out, "width", tenant->params.width);
    out += ",";
    AppendJsonKey(&out, "seed", tenant->params.seed);
    out += ",";
    AppendJsonKey(&out, "threads", tenant->spec.threads);
    out += ",";
    AppendJsonKey(&out, "epoch", tenant->ingestor->SnapshotEpoch());
    out += ",";
    AppendJsonKey(&out, "items_ingested", stats.items_ingested);
    out += ",";
    AppendJsonKey(&out, "dropped_items", stats.DroppedItems());
    out += ",";
    AppendJsonKey(&out, "shed_items", stats.shed_items);
    out += ",";
    AppendJsonKey(&out, "sampled_items_dropped", stats.sampled_items_dropped);
    out += ",";
    AppendJsonKey(&out, "abandoned_items", stats.abandoned_items);
    out += ",";
    AppendJsonKey(&out, "deadline_misses", stats.deadline_misses);
    out += ",";
    AppendJsonKey(&out, "worker_respawns", stats.worker_respawns);
    out += ",";
    AppendJsonKey(&out, "publish_failures", stats.publish_failures);
    out += ",";
    if (tenant->store != nullptr) {
      AppendJsonBool(&out, "durable", true);
      out += ",";
      AppendJsonKey(&out, "base_ingested", tenant->base_ingested);
      out += ",";
      AppendJsonKey(&out, "wal_seqno", tenant->store->last_seqno());
      out += ",";
      AppendJsonKey(&out, "durable_items", tenant->store->durable_items());
      out += ",";
      AppendJsonKey(&out, "snapshots_written",
                    tenant->store->snapshots_written());
      out += ",";
      AppendJsonBool(&out, "poisoned", tenant->store->poisoned());
      out += ",";
    }
    MutexLock lock(tenant->mu);
    AppendJsonKey(&out, "offered_items", tenant->offered_items);
    out += ",";
    AppendJsonKey(&out, "rejected_items", tenant->rejected_items);
    out += ",";
    AppendJsonKey(&out, "rejected_requests", tenant->rejected_requests);
    out += ",";
    AppendJsonKey(&out, "queries", tenant->queries);
    out += ",";
    AppendJsonKey(&out, "stale_serves", tenant->stale_serves);
    out += ",";
    AppendJsonKey(&out, "snapshot_failures", tenant->snapshot_failures);
    out += ",";
    out += "\"sealed\":";
    out += tenant->sealed ? "true" : "false";
    out += "}";
  }
  out += "}";
  return out;
}

void SketchService::SealAll() {
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    MutexLock lock(mu_);
    for (const auto& [name, tenant] : tenants_) tenants.push_back(tenant);
  }
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    const Response resp = Seal(*tenant);
    // Shutdown-path drain: an already-sealed tenant or a degraded drain is
    // fine here; the per-tenant counters carry the detail.
    (void)resp;
  }
}

size_t SketchService::TenantCount() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace streamfreq
