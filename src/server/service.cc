#include "server/service.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace streamfreq {

namespace {

// Bounds on per-tenant knobs: a hostile or confused client must not be able
// to ask one tenant for unbounded threads or candidate slots.
constexpr uint64_t kMaxTenantThreads = 16;
constexpr uint64_t kMaxTracked = 4096;
constexpr uint64_t kMaxBatchItems = uint64_t{1} << 20;

void AppendJsonKey(std::string* out, const char* key, uint64_t value) {
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

}  // namespace

/// One tenant namespace. The ingestor pointer is set once at construction
/// and never reassigned (the ingestor itself is internally synchronized);
/// everything mutable sits behind the tenant mutex.
struct SketchService::Tenant {
  Tenant(TenantSpec spec_in, CountSketchParams params_in,
         std::unique_ptr<ParallelIngestor<CountSketch>> ingestor_in,
         std::unique_ptr<SpaceSaving> candidates_in)
      : spec(std::move(spec_in)),
        params(params_in),
        ingestor(std::move(ingestor_in)) {
    MutexLock lock(mu);
    candidates = std::move(candidates_in);
  }

  const TenantSpec spec;
  const CountSketchParams params;  ///< resolved geometry (defaults applied)
  const std::unique_ptr<ParallelIngestor<CountSketch>> ingestor;

  mutable Mutex mu;
  /// All-time heavy-hitter candidates; top-k scores them on the snapshot.
  std::unique_ptr<SpaceSaving> candidates SFQ_GUARDED_BY(mu);
  /// Marked snapshot for max-change (kMarkEpoch copies, kMaxChange
  /// subtracts — the paper's two-pass algorithm across live epochs).
  std::unique_ptr<CountSketch> marked SFQ_GUARDED_BY(mu);
  uint64_t marked_epoch SFQ_GUARDED_BY(mu) = 0;
  /// Serving cache backing the server.publish degraded path.
  const CountSketch* served SFQ_GUARDED_BY(mu) = nullptr;
  uint64_t served_epoch SFQ_GUARDED_BY(mu) = 0;
  /// Admission bookkeeping (see the header's conservation contract).
  uint64_t offered_items SFQ_GUARDED_BY(mu) = 0;
  uint64_t rejected_items SFQ_GUARDED_BY(mu) = 0;
  uint64_t rejected_requests SFQ_GUARDED_BY(mu) = 0;
  uint64_t queries SFQ_GUARDED_BY(mu) = 0;
  uint64_t stale_serves SFQ_GUARDED_BY(mu) = 0;
  bool sealed SFQ_GUARDED_BY(mu) = false;

  /// The snapshot a query answers from: refreshes the serving cache unless
  /// the server.publish failpoint holds it back (stale is fine, wrong
  /// never is — the cached pointer stays valid for the ingestor's
  /// lifetime).
  const CountSketch* Serving(uint64_t* epoch) SFQ_REQUIRES(mu) {
    if (const FailDecision fp = SFQ_FAILPOINT("server.publish");
        fp.action == FailAction::kError && served != nullptr) {
      ++stale_serves;
      *epoch = served_epoch;
      return served;
    }
    served = ingestor->Snapshot();
    served_epoch = ingestor->SnapshotEpoch();
    *epoch = served_epoch;
    return served;
  }
};

Response SketchService::Handle(const Request& request) {
  if (OpcodeNeedsTenant(request.op) && !ValidTenantName(request.tenant)) {
    return Response::FromStatus(Status::InvalidArgument(
        std::string(OpcodeName(request.op)) + ": missing or invalid tenant"));
  }
  switch (request.op) {
    case Opcode::kPing:
      return Response{};
    case Opcode::kCreateTenant:
      return CreateTenant(request);
    case Opcode::kDropTenant:
      return DropTenant(request);
    case Opcode::kStatsz:
    case Opcode::kShutdown:
      return Response::FromStatus(Status::Unimplemented(
          std::string(OpcodeName(request.op)) + ": server-level request"));
    default:
      break;
  }
  const std::shared_ptr<Tenant> tenant = Find(request.tenant);
  if (tenant == nullptr) {
    return Response::FromStatus(
        Status::NotFound("unknown tenant: " + request.tenant));
  }
  switch (request.op) {
    case Opcode::kIngest:
      return Ingest(*tenant, request);
    case Opcode::kSeal:
      return Seal(*tenant);
    case Opcode::kTopK:
      return TopK(*tenant, request);
    case Opcode::kEstimate:
      return Estimate(*tenant, request);
    case Opcode::kMarkEpoch:
      return MarkEpoch(*tenant);
    case Opcode::kMaxChange:
      return MaxChange(*tenant, request);
    case Opcode::kExport:
      return Export(*tenant);
    default:
      return Response::FromStatus(Status::Internal(
          std::string("unhandled opcode: ") + OpcodeName(request.op)));
  }
}

Response SketchService::CreateTenant(const Request& request) {
  const TenantSpec& spec = request.spec;
  if (spec.threads == 0 || spec.threads > kMaxTenantThreads) {
    return Response::FromStatus(Status::InvalidArgument(
        "create: threads must be in [1, " +
        std::to_string(kMaxTenantThreads) + "]"));
  }
  if (spec.batch_items == 0 || spec.batch_items > kMaxBatchItems) {
    return Response::FromStatus(
        Status::InvalidArgument("create: batch_items out of range"));
  }
  if (spec.queue_batches == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("create: queue_batches must be >= 1"));
  }
  if (spec.tracked == 0 || spec.tracked > kMaxTracked) {
    return Response::FromStatus(Status::InvalidArgument(
        "create: tracked must be in [1, " + std::to_string(kMaxTracked) +
        "]"));
  }

  // Resolve geometry: zero means the library default, so the wire never
  // carries magic dimensions.
  CountSketchParams params;
  if (spec.depth > 0) params.depth = static_cast<size_t>(spec.depth);
  if (spec.width > 0) params.width = static_cast<size_t>(spec.width);
  params.seed = spec.seed;

  IngestOptions options;
  options.threads = static_cast<size_t>(spec.threads);
  options.batch_items = static_cast<size_t>(spec.batch_items);
  options.queue_batches = static_cast<size_t>(spec.queue_batches);
  options.publish_every_batches =
      static_cast<size_t>(spec.publish_every_batches);
  options.push_timeout_ms = spec.push_timeout_ms;
  options.overflow_policy = spec.policy;
  options.sample_keep_one_in = static_cast<size_t>(spec.sample_keep_one_in);

  auto ingestor = ParallelIngestor<CountSketch>::Make(
      [params]() { return CountSketch::Make(params); }, options);
  if (!ingestor.ok()) return Response::FromStatus(ingestor.status());
  auto candidates = SpaceSaving::Make(static_cast<size_t>(spec.tracked));
  if (!candidates.ok()) return Response::FromStatus(candidates.status());

  auto tenant = std::make_shared<Tenant>(
      spec, params, std::move(*ingestor),
      std::make_unique<SpaceSaving>(std::move(*candidates)));

  MutexLock lock(mu_);
  const auto [it, inserted] = tenants_.emplace(request.tenant, tenant);
  if (!inserted) {
    // The losing ingestor drains its (empty) workers on destruction.
    return Response::FromStatus(
        Status::InvalidArgument("tenant already exists: " + request.tenant));
  }
  Response resp;
  resp.epoch = tenant->ingestor->SnapshotEpoch();
  return resp;
}

Response SketchService::DropTenant(const Request& request) {
  std::shared_ptr<Tenant> tenant;
  {
    MutexLock lock(mu_);
    const auto it = tenants_.find(request.tenant);
    if (it == tenants_.end()) {
      return Response::FromStatus(
          Status::NotFound("unknown tenant: " + request.tenant));
    }
    tenant = it->second;
    tenants_.erase(it);
  }
  // Drain outside the registry lock; in-flight handlers still hold valid
  // shared_ptrs and finish against the sealed ingestor.
  Result<CountSketch> merged = tenant->ingestor->Finish();
  if (!merged.ok()) return Response::FromStatus(merged.status());
  return Response{};
}

Response SketchService::Ingest(Tenant& tenant, const Request& request) {
  {
    MutexLock lock(tenant.mu);
    tenant.offered_items += request.items.size();
    if (tenant.sealed) {
      tenant.rejected_items += request.items.size();
      ++tenant.rejected_requests;
      return Response::FromStatus(
          Status::InvalidArgument("ingest: tenant is sealed"));
    }
  }
  const Status status =
      tenant.ingestor->Ingest(std::span<const ItemId>(request.items));
  MutexLock lock(tenant.mu);
  if (!status.ok()) {
    tenant.rejected_items += request.items.size();
    ++tenant.rejected_requests;
    return Response::FromStatus(status);
  }
  tenant.candidates->BatchAdd(std::span<const ItemId>(request.items));
  Response resp;
  resp.value = static_cast<Count>(request.items.size());
  return resp;
}

Response SketchService::Seal(Tenant& tenant) {
  // Finish drains the queue and publishes the final fold; afterwards the
  // tenant serves read-only traffic from an exact snapshot.
  Result<CountSketch> merged = tenant.ingestor->Finish();
  MutexLock lock(tenant.mu);
  tenant.sealed = true;
  // Pin the serving cache to the final snapshot so post-seal queries are
  // exact even when server.publish withholds refreshes.
  tenant.served = tenant.ingestor->Snapshot();
  tenant.served_epoch = tenant.ingestor->SnapshotEpoch();
  if (!merged.ok()) return Response::FromStatus(merged.status());
  Response resp;
  resp.epoch = tenant.served_epoch;
  return resp;
}

Response SketchService::TopK(Tenant& tenant, const Request& request) {
  if (request.k == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("topk: k must be >= 1"));
  }
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  // Score a wider candidate slate than k on the snapshot, then keep the
  // best k: Space-Saving's own counts are upper bounds with merge slack,
  // the sketch estimates are the paper's unbiased median.
  const size_t slate = static_cast<size_t>(request.k) * 3;
  std::vector<ItemCount> candidates = tenant.candidates->Candidates(slate);
  for (ItemCount& candidate : candidates) {
    candidate.count = snapshot->Estimate(candidate.item);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ItemCount& a, const ItemCount& b) {
                     return a.count > b.count;
                   });
  if (candidates.size() > request.k) {
    candidates.resize(static_cast<size_t>(request.k));
  }
  resp.entries = std::move(candidates);
  return resp;
}

Response SketchService::Estimate(Tenant& tenant, const Request& request) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  resp.value = snapshot->Estimate(request.item);
  return resp;
}

Response SketchService::MarkEpoch(Tenant& tenant) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  tenant.marked = std::make_unique<CountSketch>(*snapshot);
  tenant.marked_epoch = resp.epoch;
  return resp;
}

Response SketchService::MaxChange(Tenant& tenant, const Request& request) {
  if (request.k == 0) {
    return Response::FromStatus(
        Status::InvalidArgument("maxchange: k must be >= 1"));
  }
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  if (tenant.marked == nullptr) {
    return Response::FromStatus(Status::InvalidArgument(
        "maxchange: no marked epoch (send mark first)"));
  }
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  // The paper's two-pass max-change via the group structure: subtract the
  // marked sketch from the current one and rank candidates by |delta|.
  CountSketch delta = *snapshot;
  const Status status = delta.Subtract(*tenant.marked);
  if (!status.ok()) return Response::FromStatus(status);
  const size_t slate = static_cast<size_t>(request.k) * 3;
  std::vector<ItemCount> candidates = tenant.candidates->Candidates(slate);
  for (ItemCount& candidate : candidates) {
    candidate.count = delta.Estimate(candidate.item);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ItemCount& a, const ItemCount& b) {
                     return std::llabs(a.count) > std::llabs(b.count);
                   });
  if (candidates.size() > request.k) {
    candidates.resize(static_cast<size_t>(request.k));
  }
  resp.entries = std::move(candidates);
  return resp;
}

Response SketchService::Export(Tenant& tenant) {
  MutexLock lock(tenant.mu);
  ++tenant.queries;
  Response resp;
  const CountSketch* snapshot = tenant.Serving(&resp.epoch);
  snapshot->SerializeTo(&resp.blob);
  return resp;
}

std::shared_ptr<SketchService::Tenant> SketchService::Find(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::string SketchService::TenantsJson() const {
  std::vector<std::pair<std::string, std::shared_ptr<Tenant>>> tenants;
  {
    MutexLock lock(mu_);
    tenants.assign(tenants_.begin(), tenants_.end());
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, tenant] : tenants) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{";
    const IngestStats stats = tenant->ingestor->Stats();
    out += "\"policy\":\"";
    out += PolicyName(tenant->spec.policy);
    out += "\",";
    AppendJsonKey(&out, "depth", tenant->params.depth);
    out += ",";
    AppendJsonKey(&out, "width", tenant->params.width);
    out += ",";
    AppendJsonKey(&out, "seed", tenant->params.seed);
    out += ",";
    AppendJsonKey(&out, "threads", tenant->spec.threads);
    out += ",";
    AppendJsonKey(&out, "epoch", tenant->ingestor->SnapshotEpoch());
    out += ",";
    AppendJsonKey(&out, "items_ingested", stats.items_ingested);
    out += ",";
    AppendJsonKey(&out, "dropped_items", stats.DroppedItems());
    out += ",";
    AppendJsonKey(&out, "shed_items", stats.shed_items);
    out += ",";
    AppendJsonKey(&out, "sampled_items_dropped", stats.sampled_items_dropped);
    out += ",";
    AppendJsonKey(&out, "abandoned_items", stats.abandoned_items);
    out += ",";
    AppendJsonKey(&out, "deadline_misses", stats.deadline_misses);
    out += ",";
    AppendJsonKey(&out, "worker_respawns", stats.worker_respawns);
    out += ",";
    AppendJsonKey(&out, "publish_failures", stats.publish_failures);
    out += ",";
    MutexLock lock(tenant->mu);
    AppendJsonKey(&out, "offered_items", tenant->offered_items);
    out += ",";
    AppendJsonKey(&out, "rejected_items", tenant->rejected_items);
    out += ",";
    AppendJsonKey(&out, "rejected_requests", tenant->rejected_requests);
    out += ",";
    AppendJsonKey(&out, "queries", tenant->queries);
    out += ",";
    AppendJsonKey(&out, "stale_serves", tenant->stale_serves);
    out += ",";
    out += "\"sealed\":";
    out += tenant->sealed ? "true" : "false";
    out += "}";
  }
  out += "}";
  return out;
}

void SketchService::SealAll() {
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    MutexLock lock(mu_);
    for (const auto& [name, tenant] : tenants_) tenants.push_back(tenant);
  }
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    const Response resp = Seal(*tenant);
    // Shutdown-path drain: an already-sealed tenant or a degraded drain is
    // fine here; the per-tenant counters carry the detail.
    (void)resp;
  }
}

size_t SketchService::TenantCount() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace streamfreq
