#include "server/server.h"

#include <sys/socket.h>

#include <utility>

#include "server/protocol.h"
#include "util/failpoint.h"

namespace streamfreq {

Result<std::unique_ptr<SfqServer>> SfqServer::Start(
    const ServerOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("serve: socket_path is required");
  }
  auto server = std::unique_ptr<SfqServer>(new SfqServer(options));
  // Recover before binding: a data-dir-level failure (unreadable root,
  // undecodable directory) refuses to serve rather than serving amnesia.
  // Per-tenant failures land in recovery_failures() and keep only that
  // tenant offline.
  STREAMFREQ_RETURN_NOT_OK(server->service_.Recover());
  STREAMFREQ_ASSIGN_OR_RETURN(OwnedFd listener,
                              ListenUnix(options.socket_path,
                                         options.backlog));
  server->listener_ = std::move(listener);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

SfqServer::SfqServer(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      started_(std::chrono::steady_clock::now()) {}

SfqServer::~SfqServer() {
  RequestStop();
  Stop();
}

void SfqServer::Wait() {
  {
    MutexLock lock(mu_);
    while (!stop_requested_) stop_cv_.Wait(mu_);
  }
  Stop();
}

void SfqServer::RequestStop() {
  MutexLock lock(mu_);
  stop_requested_ = true;
  stop_cv_.NotifyAll();
}

ServerStats SfqServer::Stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.accept_faults = accept_faults_.load(std::memory_order_relaxed);
  stats.read_faults = read_faults_.load(std::memory_order_relaxed);
  stats.write_faults = write_faults_.load(std::memory_order_relaxed);
  return stats;
}

void SfqServer::AcceptLoop() {
  for (;;) {
    Result<OwnedFd> conn = AcceptConn(listener_);
    if (!conn.ok()) {
      // Severed listener (shutdown path) or a fatal accept error. Either
      // way the server cannot serve new connections; make sure Wait()
      // wakes instead of hanging on a silently dead listener.
      RequestStop();
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (const FailDecision fp = SFQ_FAILPOINT("server.accept");
        fp.action == FailAction::kError) {
      // Drop the just-accepted connection on the floor: the client sees
      // an immediate EOF, exactly like an overloaded accept queue.
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(*conn);
    Connection* raw = connection.get();
    {
      MutexLock lock(mu_);
      if (stop_requested_) break;  // drop the connection; we are closing
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
    Reap(/*all=*/false);
  }
}

void SfqServer::HandleConnection(Connection* conn) {
  const int fd = conn->fd.get();
  for (;;) {
    if (const FailDecision fp = SFQ_FAILPOINT("server.read");
        fp.action == FailAction::kError) {
      // Simulated read-side network failure: sever at a frame boundary.
      read_faults_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Result<std::string> payload = RecvFrame(fd);
    if (!payload.ok()) {
      if (!payload.status().IsNotFound()) {
        // Damaged framing: after a bad header or checksum the stream may
        // not be frame-aligned anymore, so answer (best effort) and close.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        std::string out;
        Response::FromStatus(payload.status()).EncodeTo(&out);
        const Status sent = SendFrame(fd, out);
        (void)sent;  // the connection is being torn down regardless
      }
      break;
    }

    Response response;
    bool close_after = false;
    Result<Request> request = Request::Decode(*payload);
    if (!request.ok()) {
      // CRC-valid frame, undecodable payload: the client sent a bad
      // request but framing is still synced — answer and keep serving.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      response = Response::FromStatus(request.status());
    } else {
      requests_.fetch_add(1, std::memory_order_relaxed);
      switch (request->op) {
        case Opcode::kStatsz:
          response.blob = StatszJson();
          break;
        case Opcode::kShutdown:
          close_after = true;
          break;
        default:
          response = service_.Handle(*request);
          break;
      }
    }

    if (const FailDecision fp = SFQ_FAILPOINT("server.write");
        fp.action == FailAction::kError) {
      // Sever before the ack leaves: the request may already be applied,
      // which is exactly the ambiguity reconciliation must tolerate.
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    std::string out;
    response.EncodeTo(&out);
    if (const Status sent = SendFrame(fd, out); !sent.ok()) break;
    if (close_after) {
      RequestStop();
      break;
    }
  }
  // Sever now so the peer sees EOF immediately — the fd itself stays open
  // until Reap destroys the Connection (closing here would race Stop's
  // ::shutdown against kernel fd reuse).
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void SfqServer::Reap(bool all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        const auto next = std::next(it);
        finished.splice(finished.end(), connections_, it);
        it = next;
      } else {
        ++it;
      }
    }
  }
  // Join outside mu_: a handler may be blocked in RequestStop.
  for (const std::unique_ptr<Connection>& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void SfqServer::Stop() {
  // Serialize whole teardowns (Wait and the destructor may race); the
  // second caller blocks until the first has fully joined everything.
  MutexLock stop_lock(stop_mu_);
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    stop_cv_.NotifyAll();
  }
  // Sever the listener so the accept thread unblocks, and join it BEFORE
  // severing connections — after the join no new connection can appear.
  ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd.get(), SHUT_RDWR);
      }
    }
  }
  Reap(/*all=*/true);
  listener_.Reset();
  // Drain every tenant so the post-shutdown stats are exact.
  service_.SealAll();
}

std::string SfqServer::StatszJson() const {
  const ServerStats stats = Stats();
  const uint64_t uptime_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  std::string out = "{\"server\":{";
  out += "\"uptime_ms\":" + std::to_string(uptime_ms);
  out += ",\"tenants\":" + std::to_string(service_.TenantCount());
  out += ",\"connections_accepted\":" +
         std::to_string(stats.connections_accepted);
  out += ",\"requests\":" + std::to_string(stats.requests);
  out += ",\"protocol_errors\":" + std::to_string(stats.protocol_errors);
  out += ",\"accept_faults\":" + std::to_string(stats.accept_faults);
  out += ",\"read_faults\":" + std::to_string(stats.read_faults);
  out += ",\"write_faults\":" + std::to_string(stats.write_faults);
  out += ",\"durable\":";
  out += service_.durable() ? "true" : "false";
  out += ",\"recovery_failures\":" +
         std::to_string(service_.recovery_failures().size());
  out += "},\"tenants\":" + service_.TenantsJson();
  out += "}";
  return out;
}

}  // namespace streamfreq
