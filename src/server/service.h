// SketchService: the tenant registry behind `sfq serve`.
//
// Each tenant is an independent sketch namespace: a ParallelIngestor over a
// CountSketch (the paper's linear sketch, so concurrent sharded ingest is
// bit-identical to sequential) plus a Space-Saving candidate set that turns
// the sketch's point estimates into top-k answers — the paper's
// sketch-plus-tracked-heap pattern, with the all-time heavy hitters as the
// candidate pool. Queries are snapshot-isolated: they read the tenant's
// latest epoch-published merged sketch (SnapshotCell) and never block
// ingest.
//
// Admission control is the PR-4 overflow machinery, selected per tenant at
// creation: kBlock (backpressure, loud overload), kShed (drop whole
// batches, counted), kSample (downsample, counted). The per-tenant
// counters exposed through TenantsJson() satisfy, for shed/sample tenants
// (whose ingest path never fails mid-request),
//
//   offered_items - rejected_items == items_ingested + DroppedItems()
//
// once the tenant is sealed — the server-side half of the chaos harness's
// mass reconciliation. For kBlock tenants with a push timeout, a failed
// ingest may have been partially applied at batch granularity (the
// ingestor's request model); the offered/rejected counters keep that
// window visible instead of papering over it.
//
// Thread model: the registry map is guarded by mu_; each tenant has its
// own mutex for candidate/bookkeeping state, while sketch ingest and
// snapshot reads go through the ingestor's own synchronization. Handlers
// hold shared_ptr<Tenant>, so DropTenant never races a request into freed
// memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "concurrent/parallel_ingestor.h"
#include "core/count_sketch.h"
#include "core/space_saving.h"
#include "server/protocol.h"
#include "server/snapshotter.h"
#include "server/wal.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// Durability configuration. An empty data_dir runs the service exactly as
/// before this layer existed: no journal, no snapshots, no recovery.
struct ServiceOptions {
  /// Root directory for per-tenant durable state (one subdirectory per
  /// tenant). Empty = in-memory only.
  std::string data_dir;
  /// When journal appends are forced to stable storage.
  WalFsync fsync = WalFsync::kAlways;
  /// Snapshot (and truncate the journal) after this many journaled items.
  /// 0 snapshots only at create/seal/recovery boundaries.
  uint64_t snapshot_every_items = uint64_t{1} << 16;
};

class SketchService {
 public:
  SketchService() = default;
  explicit SketchService(ServiceOptions options)
      : options_(std::move(options)) {}
  ~SketchService() = default;

  SketchService(const SketchService&) = delete;
  SketchService& operator=(const SketchService&) = delete;

  /// Dispatches one decoded request. Tenant-level failures (unknown tenant,
  /// sealed tenant, admission rejections) come back as error Responses, not
  /// as transport errors. kStatsz and kShutdown are server-level concerns
  /// and return Unimplemented here.
  Response Handle(const Request& request);

  /// Per-tenant stats as a JSON object keyed by tenant name (the "tenants"
  /// section of /statsz). Tenant names are charset-restricted at creation,
  /// so no escaping is needed.
  std::string TenantsJson() const;

  /// Seals every tenant (drains workers, publishes final snapshots).
  /// Called on server shutdown so the final statsz numbers are exact.
  void SealAll();

  /// Number of registered tenants.
  size_t TenantCount() const;

  /// Recovers every tenant directory under data_dir (no-op when the
  /// service is not durable). Call once, before serving: loads the latest
  /// snapshot, replays the journal tail with duplicate dedup, and seeds the
  /// in-memory tenant — derived ledger, sketch, candidates, sealed flag —
  /// so the conservation law holds across the crash. A tenant whose state
  /// cannot be recovered is reported in recovery_failures(), never
  /// silently re-created.
  Status Recover() SFQ_EXCLUDES(mu_);

  /// Tenants that failed recovery, name -> error detail.
  std::map<std::string, std::string> recovery_failures() const
      SFQ_EXCLUDES(mu_);

  /// True when tenants persist under a data directory.
  bool durable() const { return !options_.data_dir.empty(); }

 private:
  struct Tenant;

  Response CreateTenant(const Request& request);
  Response DropTenant(const Request& request);
  Response Ingest(Tenant& tenant, const Request& request);
  Response Seal(Tenant& tenant);
  Response TopK(Tenant& tenant, const Request& request);
  Response Estimate(Tenant& tenant, const Request& request);
  Response MarkEpoch(Tenant& tenant);
  Response MaxChange(Tenant& tenant, const Request& request);
  Response Export(Tenant& tenant);
  Response RecoveryInfo(Tenant& tenant);

  Status RecoverTenant(const std::string& name, const std::string& dir)
      SFQ_EXCLUDES(mu_);
  /// Captures the durable ledger + candidate triples, then publishes a
  /// snapshot through the tenant's store. Failures degrade (counted in
  /// snapshot_failures), they never fail the triggering request.
  void MaybeSnapshot(Tenant& tenant);

  std::shared_ptr<Tenant> Find(const std::string& name) const
      SFQ_EXCLUDES(mu_);

  const ServiceOptions options_;

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_ SFQ_GUARDED_BY(mu_);
  std::map<std::string, std::string> recovery_failures_ SFQ_GUARDED_BY(mu_);
};

}  // namespace streamfreq
