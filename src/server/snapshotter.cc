#include "server/snapshotter.h"

#include <filesystem>
#include <utility>

#include "core/sketch_io.h"
#include "util/bytes.h"
#include "util/failpoint.h"

namespace streamfreq {

namespace {

constexpr char kSnapshotFile[] = "snapshot.sfs";
constexpr char kJournalFile[] = "journal.sfw";

}  // namespace

std::string TenantStore::SnapshotPath(const std::string& dir) {
  return dir + "/" + kSnapshotFile;
}

std::string TenantStore::JournalPath(const std::string& dir) {
  return dir + "/" + kJournalFile;
}

Status WriteTenantSnapshot(const std::string& path,
                           const TenantSnapshot& snap) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU64(kSnapshotVersion);
  snap.spec.EncodeTo(w);
  w.PutU64(snap.wal_seqno);
  w.PutU64(snap.durable_items);
  w.PutU64(snap.rejected_items);
  w.PutU64(snap.rejected_requests);
  w.PutU64(snap.queries);
  w.PutU64(snap.stale_serves);
  w.PutU64(snap.sealed ? 1 : 0);
  w.PutU64(snap.candidate_capacity);
  w.PutU64(snap.candidates.size());
  for (const SpaceSavingEntry& e : snap.candidates) {
    w.PutU64(e.item);
    w.PutI64(e.count);
    w.PutI64(e.error);
  }
  w.PutString(snap.sketch_blob);

  if (const FailDecision fp = SFQ_FAILPOINT("snapshot.publish"); fp) {
    MaybeDieAtFailpoint(fp);  // power cut before the commit rename
    if (fp.action == FailAction::kError) {
      return Status::IoError("injected failure: snapshot.publish: " + path);
    }
  }
  return WriteBlobFileAtomic(path, kSnapshotMagic, payload);
}

Result<TenantSnapshot> ReadTenantSnapshot(const std::string& path) {
  STREAMFREQ_ASSIGN_OR_RETURN(const std::string payload,
                              ReadBlobFileVerified(path, kSnapshotMagic));
  ByteReader r(payload);
  TenantSnapshot snap;
  uint64_t version;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&version));
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unknown version: " + path);
  }
  STREAMFREQ_RETURN_NOT_OK(snap.spec.DecodeFrom(r));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.wal_seqno));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.durable_items));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.rejected_items));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.rejected_requests));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.queries));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.stale_serves));
  uint64_t sealed;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&sealed));
  if (sealed > 1) {
    return Status::Corruption("snapshot: sealed flag not boolean: " + path);
  }
  snap.sealed = sealed == 1;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&snap.candidate_capacity));
  uint64_t count;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&count));
  // Entry count checked against the bytes actually present BEFORE any
  // allocation (sketch_io discipline), and against the declared capacity.
  if (count > snap.candidate_capacity || count * 24 > r.remaining()) {
    return Status::Corruption("snapshot: candidate count mismatch: " + path);
  }
  snap.candidates.resize(static_cast<size_t>(count));
  for (SpaceSavingEntry& e : snap.candidates) {
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&e.item));
    int64_t v;
    STREAMFREQ_RETURN_NOT_OK(r.GetI64(&v));
    e.count = static_cast<Count>(v);
    STREAMFREQ_RETURN_NOT_OK(r.GetI64(&v));
    e.error = static_cast<Count>(v);
  }
  STREAMFREQ_RETURN_NOT_OK(r.GetString(&snap.sketch_blob));
  if (r.remaining() != 0) {
    return Status::Corruption("snapshot: trailing bytes: " + path);
  }
  return snap;
}

TenantStore::TenantStore(std::string dir, TenantSpec spec, CountSketch exact,
                         WalWriter wal, uint64_t snapshot_every_items)
    : dir_(std::move(dir)),
      spec_(std::move(spec)),
      snapshot_every_items_(snapshot_every_items),
      exact_(std::move(exact)),
      wal_(std::move(wal)) {}

Result<std::unique_ptr<TenantStore>> TenantStore::Create(
    std::string dir, const TenantSpec& spec, const CountSketchParams& params,
    WalFsync fsync, uint64_t snapshot_every_items) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("tenant store: cannot create dir: " + dir + ": " +
                           ec.message());
  }
  if (std::filesystem::exists(SnapshotPath(dir))) {
    return Status::InvalidArgument(
        "tenant store: directory already holds a snapshot: " + dir);
  }

  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch exact, CountSketch::Make(params));
  TenantSnapshot snap;
  snap.spec = spec;
  snap.candidate_capacity = spec.tracked;
  exact.SerializeTo(&snap.sketch_blob);
  // The initial snapshot lands before any ingest is acknowledged, so a
  // journal can never exist without its base state: WAL-without-snapshot
  // at recovery is corruption, not a fresh tenant.
  STREAMFREQ_RETURN_NOT_OK(WriteTenantSnapshot(SnapshotPath(dir), snap));
  STREAMFREQ_ASSIGN_OR_RETURN(WalWriter wal,
                              WalWriter::Open(JournalPath(dir), fsync));
  return std::unique_ptr<TenantStore>(
      new TenantStore(std::move(dir), spec, std::move(exact), std::move(wal),
                      snapshot_every_items));
}

Result<TenantStore::Opened> TenantStore::Open(std::string dir, WalFsync fsync,
                                              uint64_t snapshot_every_items) {
  STREAMFREQ_ASSIGN_OR_RETURN(TenantSnapshot snap,
                              ReadTenantSnapshot(SnapshotPath(dir)));
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch sketch,
                              CountSketch::Deserialize(snap.sketch_blob));
  STREAMFREQ_ASSIGN_OR_RETURN(
      SpaceSaving candidates,
      SpaceSaving::FromEntries(
          static_cast<size_t>(snap.candidate_capacity),
          std::span<const SpaceSavingEntry>(snap.candidates)));

  TenantRecovery recovery;
  recovery.recovered = true;
  recovery.snapshot_seqno = snap.wal_seqno;
  uint64_t replayed_items = 0;
  STREAMFREQ_ASSIGN_OR_RETURN(
      const WalReplayStats replay,
      ReplayWal(JournalPath(dir), snap.wal_seqno,
                [&](uint64_t /*seqno*/, std::span<const ItemId> items) {
                  sketch.BatchAdd(items);
                  candidates.BatchAdd(items);
                  replayed_items += items.size();
                  return Status::OK();
                }));
  recovery.replayed_records = replay.records_applied;
  recovery.replayed_items = replayed_items;
  recovery.duplicates_skipped = replay.duplicates_skipped;
  recovery.torn_tail = replay.torn_tail;
  recovery.discarded_bytes = replay.discarded_bytes;

  // Fold the replayed tail into a fresh snapshot and truncate the journal
  // right away: appending after a torn tail would put new records behind
  // bytes replay refuses to cross.
  snap.wal_seqno = replay.last_seqno;
  snap.durable_items += replayed_items;
  snap.candidates = candidates.Entries();
  snap.sketch_blob.clear();
  sketch.SerializeTo(&snap.sketch_blob);
  recovery.base_items = snap.durable_items;
  STREAMFREQ_RETURN_NOT_OK(WriteTenantSnapshot(SnapshotPath(dir), snap));
  STREAMFREQ_ASSIGN_OR_RETURN(WalWriter wal,
                              WalWriter::Open(JournalPath(dir), fsync));
  STREAMFREQ_RETURN_NOT_OK(wal.Truncate());

  Opened opened{
      std::unique_ptr<TenantStore>(
          new TenantStore(std::move(dir), snap.spec, sketch, std::move(wal),
                          snapshot_every_items)),
      std::move(snap), std::move(sketch), std::move(candidates), recovery};
  MutexLock lock(opened.store->mu_);
  opened.store->seqno_ = replay.last_seqno;
  opened.store->durable_items_ = opened.state.durable_items;
  return opened;
}

Status TenantStore::Append(std::span<const ItemId> items) {
  MutexLock lock(mu_);
  if (poisoned_) {
    return Status::IoError("tenant store poisoned (journal untrusted): " +
                           dir_);
  }
  const uint64_t next = seqno_ + 1;
  const Status status = wal_.Append(next, items);
  if (!status.ok()) {
    // Partial bytes may have reached the journal; nothing after them could
    // be replayed, so the store stops accepting appends.
    poisoned_ = true;
    return status;
  }
  seqno_ = next;
  exact_.BatchAdd(items);
  durable_items_ += items.size();
  items_since_snapshot_ += items.size();
  return Status::OK();
}

bool TenantStore::SnapshotDue() const {
  MutexLock lock(mu_);
  return !poisoned_ && snapshot_every_items_ > 0 &&
         items_since_snapshot_ >= snapshot_every_items_;
}

Status TenantStore::WriteSnapshot(const LedgerSample& ledger) {
  MutexLock lock(mu_);
  TenantSnapshot snap;
  snap.spec = spec_;
  snap.wal_seqno = seqno_;
  snap.durable_items = durable_items_;
  snap.rejected_items = ledger.rejected_items;
  snap.rejected_requests = ledger.rejected_requests;
  snap.queries = ledger.queries;
  snap.stale_serves = ledger.stale_serves;
  snap.sealed = ledger.sealed;
  snap.candidate_capacity = ledger.candidate_capacity;
  snap.candidates = ledger.candidates;
  exact_.SerializeTo(&snap.sketch_blob);
  // A failed publish is benign: the journal still covers everything past
  // the previous snapshot, so recovery is unaffected.
  STREAMFREQ_RETURN_NOT_OK(WriteTenantSnapshot(SnapshotPath(dir_), snap));
  ++snapshots_written_;
  const Status truncated = wal_.Truncate();
  if (!truncated.ok()) {
    // The snapshot is live but the journal may still hold pre-snapshot
    // records; replay would dedup those, but an unwritable journal cannot
    // accept new appends.
    poisoned_ = true;
    return truncated;
  }
  items_since_snapshot_ = 0;
  return Status::OK();
}

void TenantStore::Poison() {
  MutexLock lock(mu_);
  poisoned_ = true;
}

uint64_t TenantStore::last_seqno() const {
  MutexLock lock(mu_);
  return seqno_;
}

uint64_t TenantStore::durable_items() const {
  MutexLock lock(mu_);
  return durable_items_;
}

bool TenantStore::poisoned() const {
  MutexLock lock(mu_);
  return poisoned_;
}

uint64_t TenantStore::snapshots_written() const {
  MutexLock lock(mu_);
  return snapshots_written_;
}

}  // namespace streamfreq
