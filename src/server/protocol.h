// Wire protocol for `sfq serve`: length-prefixed binary frames over local
// sockets.
//
// A frame reuses the sketch_io header discipline byte for byte in spirit:
//
//   u64 magic      kFrameMagic ("SFQRPC01")
//   u64 length     payload bytes that follow (bounded by kMaxPayloadBytes)
//   u32 crc        masked CRC-32C of the payload (crc32c::Mask)
//   [payload]
//
// so a truncated, torn, or bit-flipped frame is detected before any field
// of the payload is trusted. Payloads are ByteWriter/ByteReader encodings
// of Request/Response; every variable-length field is length-prefixed and
// length-checked against the bytes actually present BEFORE allocation, and
// trailing bytes after the last field are corruption — the decoder accepts
// exactly the encodings the encoder produces (the corruption-matrix test
// in tests/server_protocol_test.cc walks every truncation boundary).
//
// Every opcode lives in ONE registry table (kOpcodeTable in protocol.cc,
// exposed via OpcodeTable()); call sites use the Opcode enumerators and
// the lookup helpers, never raw numbers — sfq-lint's server-opcode rule
// enforces both directions (every enumerator registered, no numeric
// Opcode casts outside the registry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "concurrent/parallel_ingestor.h"
#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// Every request type the server understands. Values are the wire encoding;
/// append-only (renumbering is a protocol break).
enum class Opcode : uint8_t {
  kPing = 0,          ///< liveness probe, no tenant
  kCreateTenant = 1,  ///< register a tenant namespace with a TenantSpec
  kDropTenant = 2,    ///< drain and delete a tenant
  kIngest = 3,        ///< append a batch of items to a tenant's stream
  kSeal = 4,          ///< drain the tenant's ingestor; tenant becomes read-only
  kTopK = 5,          ///< top-k candidates scored on the latest snapshot
  kEstimate = 6,      ///< point estimate of one item
  kMarkEpoch = 7,     ///< remember the current snapshot for max-change
  kMaxChange = 8,     ///< top-k |delta| since the marked snapshot
  kExport = 9,        ///< serialized sketch snapshot (sketch_io payload)
  kStatsz = 10,       ///< JSON server + per-tenant stats (no tenant needed)
  kShutdown = 11,     ///< stop the server after responding
  kRecoveryInfo = 12, ///< JSON recovery report for one durable tenant
};

/// Number of registered opcodes; enumerators are dense in [0, kOpcodeCount).
inline constexpr size_t kOpcodeCount = 13;

/// One row of the opcode registry.
struct OpcodeInfo {
  Opcode op;
  const char* name;   ///< stable lowercase name (CLI --op, logs, statsz)
  bool needs_tenant;  ///< server rejects the request without a valid tenant
};

/// The single registry table, kOpcodeCount rows in enumerator order.
std::span<const OpcodeInfo> OpcodeTable();

/// Registry lookups. Raw values and names that are not registered are
/// InvalidArgument — the decoder never fabricates an Opcode outside the
/// table.
const char* OpcodeName(Opcode op);
Result<Opcode> LookupOpcode(uint64_t raw);
Result<Opcode> OpcodeFromName(std::string_view name);
bool OpcodeNeedsTenant(Opcode op);

/// Frame header geometry (mirrors sketch_io).
inline constexpr uint64_t kFrameMagic = 0x3130435052514653ULL;  // "SFQRPC01"
inline constexpr size_t kFrameHeaderSize = 20;  // u64 magic + u64 len + u32 crc
/// Hard bound on one frame's payload; a header declaring more is corrupt
/// (and nothing is allocated for it).
inline constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 26;

/// Wraps `payload` in a checksummed frame.
std::string EncodeFrame(std::string_view payload);

/// Validates a complete in-memory frame and extracts its payload. Any
/// truncation, magic mismatch, oversized length, trailing bytes, or CRC
/// mismatch is Corruption.
Status DecodeFrame(std::string_view frame, std::string* payload);

/// Streaming-path halves of DecodeFrame, used by the socket layer (read 20
/// bytes, learn the payload length, read the payload, verify):
/// ParseFrameHeader validates magic + bound and returns the payload length
/// and the masked CRC the payload must match.
Status ParseFrameHeader(std::string_view header, uint64_t* payload_len,
                        uint32_t* masked_crc);
Status VerifyFramePayload(std::string_view payload, uint32_t masked_crc);

/// Per-tenant configuration carried by kCreateTenant: sketch geometry plus
/// the PR-4 overflow policies as admission control. Zero depth/width means
/// "library default" (CountSketchParams defaults) so the wire carries no
/// magic geometry.
struct TenantSpec {
  uint64_t depth = 0;   ///< sketch rows; 0 = CountSketchParams default
  uint64_t width = 0;   ///< sketch columns; 0 = CountSketchParams default
  uint64_t seed = 1;    ///< hash seed; tenants with equal (geometry, seed) merge
  uint64_t threads = 2;               ///< ingest worker threads
  uint64_t batch_items = 1024;        ///< ingest sharding granularity
  uint64_t queue_batches = 64;        ///< in-flight bound (backpressure depth)
  uint64_t publish_every_batches = 1; ///< snapshot freshness cadence
  /// Admission control: 0 blocks producers indefinitely (loud overload);
  /// > 0 arms `policy` after this many milliseconds of queue-full.
  uint64_t push_timeout_ms = 0;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  uint64_t sample_keep_one_in = 8;    ///< kSample keep rate
  uint64_t tracked = 64;              ///< top-k candidate slots (Space-Saving)

  /// Fixed-layout wire codec (11 u64 fields, enumerator order). Shared by
  /// the Request codec and the durable snapshot format so a spec always
  /// round-trips identically on the wire and on disk.
  void EncodeTo(ByteWriter& w) const;
  Status DecodeFrom(ByteReader& r);

  friend bool operator==(const TenantSpec&, const TenantSpec&) = default;
};

/// OverflowPolicy wire + name mapping (statsz, CLI flags).
uint64_t PolicyToWire(OverflowPolicy policy);
Result<OverflowPolicy> PolicyFromWire(uint64_t raw);
const char* PolicyName(OverflowPolicy policy);
Result<OverflowPolicy> PolicyFromName(std::string_view name);

/// Tenant names are `[A-Za-z0-9_.-]`, 1..64 bytes: safe to embed in statsz
/// JSON and file names without escaping.
bool ValidTenantName(std::string_view name);

/// One request frame. Every field is always encoded (fixed layout; the
/// per-opcode cost is dominated by `items` anyway), so decode is uniform
/// and the corruption matrix covers every opcode with one walk.
struct Request {
  Opcode op = Opcode::kPing;
  std::string tenant;          ///< empty for opcodes with needs_tenant=false
  TenantSpec spec;             ///< kCreateTenant
  uint64_t k = 0;              ///< kTopK / kMaxChange result size
  ItemId item = 0;             ///< kEstimate probe
  std::vector<ItemId> items;   ///< kIngest batch

  void EncodeTo(std::string* out) const;
  static Result<Request> Decode(std::string_view payload);

  friend bool operator==(const Request&, const Request&) = default;
};

/// One response frame. `code` is the StatusCode of the outcome; OK
/// responses carry the opcode-specific results (`value`, `entries`,
/// `blob`) plus the snapshot epoch that answered a query.
struct Response {
  uint64_t code = 0;               ///< StatusCode as wire integer
  std::string message;             ///< error detail; empty on OK
  uint64_t epoch = 0;              ///< snapshot epoch behind a query answer
  Count value = 0;                 ///< kEstimate result
  std::vector<ItemCount> entries;  ///< kTopK / kMaxChange results
  std::string blob;                ///< kExport sketch bytes / kStatsz JSON

  bool ok() const { return code == 0; }
  /// Reconstructs the Status the server reported.
  Status ToStatus() const;
  /// Builds an error (or empty-OK) response from a Status.
  static Response FromStatus(const Status& status);

  void EncodeTo(std::string* out) const;
  static Result<Response> Decode(std::string_view payload);

  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace streamfreq
