#include "server/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <iterator>
#include <vector>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace streamfreq {

const char* WalFsyncName(WalFsync fsync) {
  switch (fsync) {
    case WalFsync::kAlways:
      return "always";
    case WalFsync::kNever:
      return "never";
    case WalFsync::kBatch:
      return "batch";
  }
  return "unknown";
}

Result<WalFsync> WalFsyncFromName(std::string_view name) {
  if (name == "always") return WalFsync::kAlways;
  if (name == "never") return WalFsync::kNever;
  if (name == "batch") return WalFsync::kBatch;
  return Status::InvalidArgument("wal: unknown fsync policy: " +
                                 std::string(name));
}

Result<WalWriter> WalWriter::Open(std::string path, WalFsync fsync) {
  WalWriter writer(std::move(path), fsync);
  STREAMFREQ_RETURN_NOT_OK(writer.OpenStreams(/*truncate=*/false));
  return writer;
}

Status WalWriter::OpenStreams(bool truncate) {
  if (out_.is_open()) out_.close();
  out_.clear();
  sync_fd_.Reset();
  const std::ios::openmode mode =
      std::ios::binary | (truncate ? std::ios::trunc : std::ios::app);
  out_.open(path_, mode);
  if (!out_) return Status::IoError("wal: cannot open for append: " + path_);
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("wal: cannot open sync descriptor: " + path_);
  }
  sync_fd_ = OwnedFd(fd);
  fsyncs_ = 0;
  unsynced_appends_ = 0;
  return Status::OK();
}

Status WalWriter::Append(uint64_t seqno, std::span<const ItemId> items) {
  std::string payload;
  ByteWriter pw(&payload);
  pw.PutU64(seqno);
  pw.PutU64(items.size());
  for (const ItemId id : items) pw.PutU64(id);

  std::string record;
  record.reserve(kWalRecordHeaderSize + payload.size());
  ByteWriter w(&record);
  w.PutU64(kWalMagic);
  w.PutU64(payload.size());
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  w.PutBytes(&crc, sizeof(crc));
  record += payload;

  if (const FailDecision fp = SFQ_FAILPOINT("wal.append"); fp) {
    MaybeDieAtFailpoint(fp);  // power cut before the record lands
    if (fp.action == FailAction::kTorn) {
      // Power-cut semantics: a prefix of the record reaches the file. The
      // store must treat the journal as poisoned afterwards; replay stops
      // at this torn tail.
      size_t keep = fp.param == 0 ? record.size() / 2 : fp.param;
      keep = keep < record.size() ? keep : record.size();
      out_.write(record.data(), static_cast<std::streamsize>(keep));
      out_.flush();
    }
    return Status::IoError("injected failure: wal.append: " + path_);
  }

  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) return Status::IoError("wal: append failed: " + path_);
  ++unsynced_appends_;

  const bool barrier =
      fsync_ == WalFsync::kAlways ||
      (fsync_ == WalFsync::kBatch && unsynced_appends_ >= kWalBatchFsyncEvery);
  if (barrier) return Fsync();
  return Status::OK();
}

Status WalWriter::Fsync() {
  if (const FailDecision fp = SFQ_FAILPOINT("wal.fsync"); fp) {
    // Death here is the interesting case: every unsynced record — one
    // under kAlways, up to kWalBatchFsyncEvery under kBatch — is in the
    // page cache (a SIGKILL preserves it) but was never forced to disk.
    MaybeDieAtFailpoint(fp);
    if (fp.action == FailAction::kError) {
      return Status::IoError("injected failure: wal.fsync: " + path_);
    }
  }
  if (::fsync(sync_fd_.get()) != 0) {
    return Status::IoError("wal: fsync failed: " + path_);
  }
  ++fsyncs_;
  unsynced_appends_ = 0;
  return Status::OK();
}

Status WalWriter::Truncate() { return OpenStreams(/*truncate=*/true); }

Result<WalReplayStats> ReplayWal(const std::string& path, uint64_t base_seqno,
                                 const WalReplayFn& apply) {
  WalReplayStats stats;
  stats.last_seqno = base_seqno;

  std::ifstream in(path, std::ios::binary);
  if (!in) return stats;  // no journal = nothing past the snapshot

  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  size_t off = 0;
  std::vector<ItemId> scratch;
  while (off < data.size()) {
    // Frame validation mirrors the protocol reader: any truncation, magic
    // mismatch, implausible length, or checksum failure ends the intact
    // prefix — everything from here on is the torn tail.
    if (data.size() - off < kWalRecordHeaderSize) break;
    uint64_t magic, payload_len;
    uint32_t stored_crc;
    std::memcpy(&magic, data.data() + off, 8);
    std::memcpy(&payload_len, data.data() + off + 8, 8);
    std::memcpy(&stored_crc, data.data() + off + 16, 4);
    if (magic != kWalMagic) break;
    if (payload_len > kWalMaxPayloadBytes) break;
    if (data.size() - off - kWalRecordHeaderSize < payload_len) break;
    const std::string_view payload(data.data() + off + kWalRecordHeaderSize,
                                   static_cast<size_t>(payload_len));
    if (crc32c::Unmask(stored_crc) !=
        crc32c::Value(payload.data(), payload.size())) {
      break;
    }

    // A CRC-valid record with a malformed payload is not a torn write —
    // the checksum vouches these bytes were written whole. Fail loudly.
    ByteReader r(payload);
    uint64_t seqno, count;
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&seqno));
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&count));
    if (count * 8 != r.remaining()) {
      return Status::Corruption("wal: record item count mismatch: " + path);
    }

    const size_t record_size =
        kWalRecordHeaderSize + static_cast<size_t>(payload_len);
    if (seqno <= base_seqno) {
      // The snapshot already covers this batch (crash between snapshot
      // publish and journal truncation): skip, exactly-once.
      ++stats.duplicates_skipped;
    } else {
      if (seqno != stats.last_seqno + 1) {
        return Status::Corruption("wal: sequence gap at record " +
                                  std::to_string(seqno) + ": " + path);
      }
      scratch.resize(static_cast<size_t>(count));
      for (ItemId& id : scratch) {
        STREAMFREQ_RETURN_NOT_OK(r.GetU64(&id));
      }
      STREAMFREQ_RETURN_NOT_OK(
          apply(seqno, std::span<const ItemId>(scratch)));
      ++stats.records_applied;
      stats.last_seqno = seqno;
    }
    stats.valid_bytes += record_size;
    off += record_size;
  }
  if (off < data.size()) {
    stats.torn_tail = true;
    stats.discarded_bytes = data.size() - off;
  }
  return stats;
}

}  // namespace streamfreq
