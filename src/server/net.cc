#include "server/net.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "server/protocol.h"
#include "util/macros.h"

namespace streamfreq {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<OwnedFd> MakeUnixSocket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
  return OwnedFd(fd);
}

Status FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

/// send(2) until done, retrying EINTR. MSG_NOSIGNAL turns a peer hangup
/// into EPIPE instead of a process-killing SIGPIPE — both server and
/// client treat it as an ordinary IoError.
Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// read(2) until `len` bytes arrive. `*got` reports progress so callers can
/// tell EOF-at-boundary from EOF-mid-object.
Status ReadAll(int fd, char* data, size_t len, size_t* got) {
  *got = 0;
  while (*got < len) {
    const ssize_t n = ::read(fd, data + *got, len - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read");
    }
    if (n == 0) return Status::OK();  // EOF; *got says how far we came
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  STREAMFREQ_RETURN_NOT_OK(FillAddr(path, &addr));
  STREAMFREQ_ASSIGN_OR_RETURN(OwnedFd fd, MakeUnixSocket());
  // A socket file left by a dead server would make bind fail forever;
  // unlink is safe because a live listener would have been found by the
  // connect-based health checks callers do first.
  std::remove(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind(" + path + ")");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen(" + path + ")");
  }
  return fd;
}

Result<OwnedFd> AcceptConn(const OwnedFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return OwnedFd(fd);
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

Result<OwnedFd> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  STREAMFREQ_RETURN_NOT_OK(FillAddr(path, &addr));
  STREAMFREQ_ASSIGN_OR_RETURN(OwnedFd fd, MakeUnixSocket());
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return ErrnoStatus("connect(" + path + ")");
  }
  return fd;
}

Status SendFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds bound");
  }
  const std::string frame = EncodeFrame(payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<std::string> RecvFrame(int fd) {
  char header[kFrameHeaderSize];
  size_t got = 0;
  STREAMFREQ_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header), &got));
  if (got == 0) return Status::NotFound("connection closed");
  if (got < sizeof(header)) {
    return Status::Corruption("connection closed inside a frame header");
  }
  uint64_t payload_len;
  uint32_t masked_crc;
  STREAMFREQ_RETURN_NOT_OK(ParseFrameHeader(
      std::string_view(header, sizeof(header)), &payload_len, &masked_crc));
  std::string payload(static_cast<size_t>(payload_len), '\0');
  if (payload_len > 0) {
    STREAMFREQ_RETURN_NOT_OK(ReadAll(fd, payload.data(), payload.size(), &got));
    if (got < payload.size()) {
      return Status::Corruption("connection closed inside a frame payload");
    }
  }
  STREAMFREQ_RETURN_NOT_OK(VerifyFramePayload(payload, masked_crc));
  return payload;
}

}  // namespace streamfreq
