#include "server/protocol.h"

#include <cstring>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/macros.h"

namespace streamfreq {

namespace {

// THE opcode registry: the only place where opcode values, names, and
// dispatch attributes live. sfq-lint's server-opcode rule checks that every
// Opcode enumerator appears here and that no other file conjures an Opcode
// from a raw number.
constexpr OpcodeInfo kOpcodeTable[kOpcodeCount] = {
    {Opcode::kPing, "ping", false},
    {Opcode::kCreateTenant, "create", true},
    {Opcode::kDropTenant, "drop", true},
    {Opcode::kIngest, "ingest", true},
    {Opcode::kSeal, "seal", true},
    {Opcode::kTopK, "topk", true},
    {Opcode::kEstimate, "estimate", true},
    {Opcode::kMarkEpoch, "mark", true},
    {Opcode::kMaxChange, "maxchange", true},
    {Opcode::kExport, "export", true},
    {Opcode::kStatsz, "statsz", false},
    {Opcode::kShutdown, "shutdown", false},
    {Opcode::kRecoveryInfo, "recoveryinfo", true},
};

// Longest message / blob a response decoder will accept; both are bounded
// by the frame payload bound anyway, this just keeps hostile lengths from
// round-tripping through size arithmetic.
constexpr size_t kMaxMessageBytes = 1 << 16;
constexpr size_t kMaxTenantBytes = 64;

}  // namespace

std::span<const OpcodeInfo> OpcodeTable() {
  return std::span<const OpcodeInfo>(kOpcodeTable, kOpcodeCount);
}

const char* OpcodeName(Opcode op) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    if (info.op == op) return info.name;
  }
  return "unknown";
}

Result<Opcode> LookupOpcode(uint64_t raw) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    if (static_cast<uint64_t>(info.op) == raw) return info.op;
  }
  return Status::InvalidArgument("protocol: unknown opcode " +
                                 std::to_string(raw));
}

Result<Opcode> OpcodeFromName(std::string_view name) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    if (info.name == name) return info.op;
  }
  return Status::InvalidArgument("protocol: unknown op name: " +
                                 std::string(name));
}

bool OpcodeNeedsTenant(Opcode op) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    if (info.op == op) return info.needs_tenant;
  }
  return true;  // unregistered values never reach dispatch; fail closed
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  ByteWriter w(&frame);
  w.PutU64(kFrameMagic);
  w.PutU64(payload.size());
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  w.PutBytes(&crc, sizeof(crc));
  w.PutBytes(payload.data(), payload.size());
  return frame;
}

Status ParseFrameHeader(std::string_view header, uint64_t* payload_len,
                        uint32_t* masked_crc) {
  if (header.size() != kFrameHeaderSize) {
    return Status::Corruption("frame header truncated");
  }
  uint64_t magic;
  std::memcpy(&magic, header.data(), 8);
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  std::memcpy(payload_len, header.data() + 8, 8);
  if (*payload_len > kMaxPayloadBytes) {
    return Status::Corruption("frame payload length exceeds bound");
  }
  std::memcpy(masked_crc, header.data() + 16, 4);
  return Status::OK();
}

Status VerifyFramePayload(std::string_view payload, uint32_t masked_crc) {
  const uint32_t actual =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  if (actual != masked_crc) {
    return Status::Corruption("frame payload checksum mismatch");
  }
  return Status::OK();
}

Status DecodeFrame(std::string_view frame, std::string* payload) {
  if (frame.size() < kFrameHeaderSize) {
    return Status::Corruption("frame shorter than header");
  }
  uint64_t payload_len;
  uint32_t masked_crc;
  STREAMFREQ_RETURN_NOT_OK(ParseFrameHeader(frame.substr(0, kFrameHeaderSize),
                                            &payload_len, &masked_crc));
  const std::string_view body = frame.substr(kFrameHeaderSize);
  if (body.size() != payload_len) {
    return Status::Corruption("frame payload length mismatch");
  }
  STREAMFREQ_RETURN_NOT_OK(VerifyFramePayload(body, masked_crc));
  payload->assign(body.data(), body.size());
  return Status::OK();
}

uint64_t PolicyToWire(OverflowPolicy policy) {
  return static_cast<uint64_t>(policy);
}

Result<OverflowPolicy> PolicyFromWire(uint64_t raw) {
  switch (raw) {
    case static_cast<uint64_t>(OverflowPolicy::kBlock):
      return OverflowPolicy::kBlock;
    case static_cast<uint64_t>(OverflowPolicy::kShed):
      return OverflowPolicy::kShed;
    case static_cast<uint64_t>(OverflowPolicy::kSample):
      return OverflowPolicy::kSample;
    default:
      return Status::InvalidArgument("protocol: unknown overflow policy " +
                                     std::to_string(raw));
  }
}

const char* PolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kShed:
      return "shed";
    case OverflowPolicy::kSample:
      return "sample";
  }
  return "unknown";
}

Result<OverflowPolicy> PolicyFromName(std::string_view name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "shed") return OverflowPolicy::kShed;
  if (name == "sample") return OverflowPolicy::kSample;
  return Status::InvalidArgument("protocol: unknown overflow policy: " +
                                 std::string(name));
}

bool ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > kMaxTenantBytes) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void TenantSpec::EncodeTo(ByteWriter& w) const {
  w.PutU64(depth);
  w.PutU64(width);
  w.PutU64(seed);
  w.PutU64(threads);
  w.PutU64(batch_items);
  w.PutU64(queue_batches);
  w.PutU64(publish_every_batches);
  w.PutU64(push_timeout_ms);
  w.PutU64(PolicyToWire(policy));
  w.PutU64(sample_keep_one_in);
  w.PutU64(tracked);
}

Status TenantSpec::DecodeFrom(ByteReader& r) {
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&depth));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&width));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&seed));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&threads));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&batch_items));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&queue_batches));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&publish_every_batches));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&push_timeout_ms));
  uint64_t raw_policy;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&raw_policy));
  STREAMFREQ_ASSIGN_OR_RETURN(policy, PolicyFromWire(raw_policy));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&sample_keep_one_in));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&tracked));
  return Status::OK();
}

void Request::EncodeTo(std::string* out) const {
  ByteWriter w(out);
  w.PutU64(static_cast<uint64_t>(op));
  w.PutString(tenant);
  spec.EncodeTo(w);
  w.PutU64(k);
  w.PutU64(item);
  w.PutU64(items.size());
  for (const ItemId id : items) w.PutU64(id);
}

Result<Request> Request::Decode(std::string_view payload) {
  ByteReader r(payload);
  Request req;
  uint64_t raw_op;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&raw_op));
  // An unknown opcode in a checksummed frame is a protocol-version mismatch
  // rather than wire damage; surface it as such.
  STREAMFREQ_ASSIGN_OR_RETURN(req.op, LookupOpcode(raw_op));
  STREAMFREQ_RETURN_NOT_OK(r.GetString(&req.tenant, kMaxTenantBytes));
  // Like an unknown opcode: the frame checksum already vouched for the
  // bytes, so a bad name is a misbehaving client, not wire damage.
  if (!req.tenant.empty() && !ValidTenantName(req.tenant)) {
    return Status::InvalidArgument("request: malformed tenant name");
  }
  STREAMFREQ_RETURN_NOT_OK(req.spec.DecodeFrom(r));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&req.k));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&req.item));
  uint64_t count;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&count));
  // Items are the final field: the declared count must consume the rest of
  // the payload exactly. Checked before the reserve so a corrupt count
  // cannot trigger a giant allocation.
  if (count * 8 != r.remaining() || count > kMaxPayloadBytes / 8) {
    return Status::Corruption("request: item count does not match payload");
  }
  req.items.resize(static_cast<size_t>(count));
  for (ItemId& id : req.items) {
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&id));
  }
  return req;
}

Status Response::ToStatus() const {
  if (code == 0) return Status::OK();
  return Status(static_cast<StatusCode>(static_cast<int8_t>(code)),
                message.empty() ? "server error" : message);
}

Response Response::FromStatus(const Status& status) {
  Response resp;
  resp.code = static_cast<uint64_t>(status.code());
  resp.message = status.message();
  return resp;
}

void Response::EncodeTo(std::string* out) const {
  ByteWriter w(out);
  w.PutU64(code);
  w.PutString(message);
  w.PutU64(epoch);
  w.PutI64(value);
  w.PutU64(entries.size());
  for (const ItemCount& entry : entries) {
    w.PutU64(entry.item);
    w.PutI64(entry.count);
  }
  w.PutString(blob);
}

Result<Response> Response::Decode(std::string_view payload) {
  ByteReader r(payload);
  Response resp;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&resp.code));
  if (resp.code > static_cast<uint64_t>(StatusCode::kInternal)) {
    return Status::Corruption("response: unknown status code");
  }
  STREAMFREQ_RETURN_NOT_OK(r.GetString(&resp.message, kMaxMessageBytes));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&resp.epoch));
  STREAMFREQ_RETURN_NOT_OK(r.GetI64(&resp.value));
  uint64_t count;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&count));
  if (count > r.remaining() / 16) {
    return Status::Corruption("response: entry count exceeds payload");
  }
  resp.entries.resize(static_cast<size_t>(count));
  for (ItemCount& entry : resp.entries) {
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&entry.item));
    STREAMFREQ_RETURN_NOT_OK(r.GetI64(&entry.count));
  }
  STREAMFREQ_RETURN_NOT_OK(r.GetString(&resp.blob));
  if (r.remaining() != 0) {
    return Status::Corruption("response: trailing bytes after last field");
  }
  return resp;
}

}  // namespace streamfreq
