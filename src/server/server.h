// SfqServer: the long-lived daemon behind `sfq serve`.
//
// One accept thread plus one handler thread per connection (local sockets,
// tens of clients — the thread-per-connection model keeps every blocking
// point visible to TSan and the failpoint schedules). Handlers decode one
// Request frame at a time, dispatch to the shared SketchService, and write
// one Response frame back; all sketch-level concurrency lives in the
// service and the per-tenant ingestors.
//
// Failure discipline per connection:
//   - A clean EOF between frames ends the conversation.
//   - A corrupt frame (bad magic/length/CRC, mid-frame hangup) gets a
//     best-effort error Response, then the connection closes — the byte
//     stream can no longer be trusted to be frame-aligned.
//   - A CRC-valid frame whose payload fails to decode (unknown opcode,
//     malformed fields) gets an error Response and the connection stays
//     open: framing is still synced, the client just sent a bad request.
//   - Chaos sites: `server.accept` drops a just-accepted connection,
//     `server.read`/`server.write` sever the connection at a frame
//     boundary (the client observes EOF — possibly after the server
//     already applied the request, which is why reconciliation trusts
//     server-side counters, not client acks), `server.publish` (in the
//     service) withholds snapshot refreshes.
//
// Shutdown: a kShutdown request (or RequestStop) wakes Wait(); Stop()
// closes the listener, severs live connections, joins every thread, and
// seals all tenants so final stats are exact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "server/net.h"
#include "server/service.h"
#include "util/mutex.h"
#include "util/result.h"

namespace streamfreq {

/// Server configuration.
struct ServerOptions {
  std::string socket_path;  ///< unix-domain socket to listen on (required)
  int backlog = 64;         ///< listen(2) backlog
  /// Durability knobs (data_dir, fsync policy, snapshot cadence); an empty
  /// data_dir serves in-memory tenants exactly as before.
  ServiceOptions service;
};

/// Monotonic counters for the /statsz "server" section.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests = 0;
  uint64_t protocol_errors = 0;  ///< corrupt frames / undecodable payloads
  uint64_t accept_faults = 0;    ///< server.accept fired
  uint64_t read_faults = 0;      ///< server.read fired
  uint64_t write_faults = 0;     ///< server.write fired
};

class SfqServer {
 public:
  /// Recovers durable tenants (when a data_dir is configured), then binds
  /// the socket and starts the accept thread. The server is serving when
  /// this returns — recovery completes before the socket exists, so any
  /// client that can connect observes fully recovered state.
  static Result<std::unique_ptr<SfqServer>> Start(const ServerOptions& options);

  ~SfqServer();

  SfqServer(const SfqServer&) = delete;
  SfqServer& operator=(const SfqServer&) = delete;

  /// Blocks until a kShutdown request (or RequestStop) arrives, then tears
  /// the server down. Returns after every thread is joined.
  void Wait();

  /// Asynchronously asks the server to stop (idempotent, thread-safe).
  void RequestStop();

  /// Current counter values (relaxed reads; exact after Wait returns).
  ServerStats Stats() const;

  /// The tenant registry (exposed for in-process tests and the chaos
  /// harness, which reconcile server-side accounting directly).
  SketchService& service() { return service_; }

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  /// One live (or finished, awaiting reap) connection.
  struct Connection {
    OwnedFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  explicit SfqServer(ServerOptions options);

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// Joins handler threads that have finished on their own; called from
  /// the accept loop so a long-lived server does not accumulate dead
  /// threads, and from Stop with `all` to join the stragglers.
  void Reap(bool all);
  void Stop();
  std::string StatszJson() const;

  const ServerOptions options_;
  // NOLINTNEXTLINE(sfq-unguarded-member): set once before the accept thread starts; Stop only touches it after joining that thread
  OwnedFd listener_;
  // NOLINTNEXTLINE(sfq-unguarded-member): internally synchronized (per-tenant locks inside SketchService)
  SketchService service_;
  const std::chrono::steady_clock::time_point started_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> accept_faults_{0};
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_faults_{0};

  /// Serializes Stop() bodies (Wait and the destructor can race). Ordering:
  /// stop_mu_ is always taken before mu_, never the other way.
  Mutex stop_mu_;

  mutable Mutex mu_ SFQ_ACQUIRED_AFTER(stop_mu_);
  CondVar stop_cv_;
  bool stop_requested_ SFQ_GUARDED_BY(mu_) = false;
  bool stopped_ SFQ_GUARDED_BY(mu_) = false;
  std::list<std::unique_ptr<Connection>> connections_ SFQ_GUARDED_BY(mu_);

  std::thread accept_thread_;
};

}  // namespace streamfreq
