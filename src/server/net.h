// Minimal RAII wrappers over local (AF_UNIX) stream sockets plus framed
// send/receive, shared by the server, the client library, and the load
// driver.
//
// Local sockets keep the serving story kernel-arbitrated (real
// backpressure, real partial reads/writes — everything the corruption and
// chaos batteries need) without opening a network surface; the protocol
// itself is transport-agnostic, so a TCP listener is a second Listen*
// function away.
//
// All calls handle EINTR and short reads/writes; RecvFrame distinguishes a
// clean EOF at a frame boundary (NotFound, connection over) from
// truncation inside a frame (Corruption) and from damaged headers or
// checksums (Corruption via the protocol validators).
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// An owned file descriptor: closes on destruction, move-only.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes now (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain socket at `path`, replacing a stale
/// socket file from a previous run. Paths are limited by the platform's
/// sun_path (about 100 bytes).
Result<OwnedFd> ListenUnix(const std::string& path, int backlog = 64);

/// Accepts one connection. IoError on a closed/failed listener.
Result<OwnedFd> AcceptConn(const OwnedFd& listener);

/// Connects to the unix-domain socket at `path`.
Result<OwnedFd> ConnectUnix(const std::string& path);

/// Writes one checksummed frame (header + payload), looping over partial
/// writes. InvalidArgument when the payload exceeds kMaxPayloadBytes.
Status SendFrame(int fd, std::string_view payload);

/// Reads one frame and returns its payload. NotFound on EOF before any
/// header byte (the peer hung up cleanly between frames); Corruption on
/// mid-frame truncation, bad magic/length, or checksum mismatch; IoError
/// on socket errors.
Result<std::string> RecvFrame(int fd);

}  // namespace streamfreq
