// Per-tenant append-only write-ahead journal for `sfq serve`.
//
// A journal file is a sequence of self-delimiting records, each framed with
// the SFQRPC01 header discipline (magic + length + masked CRC-32C):
//
//   u64 magic        kWalMagic ("SFQWAL01")
//   u64 length       payload bytes that follow
//   u32 crc          masked CRC-32C of the payload
//   payload          u64 seqno | u64 item count | count x u64 items
//
// Sequence numbers are assigned by the service, start at 1, and increase by
// exactly 1 per accepted ingest batch; the tenant snapshot records the
// highest sequence number it covers, so replay can skip already-applied
// records (duplicate dedup) and recovery is exactly-once.
//
// Torn-tail tolerance: a crash mid-append leaves a prefix of the final
// record on disk. Replay verifies each record's frame before applying it
// and stops at the first truncated or corrupt one — the torn tail is the
// un-acknowledged batch in flight at the crash, which the at-most-once
// client contract already treats as ambiguous. A record that fails its CRC
// *before* a valid record would mean silent reordering, so replay never
// skips over damage: everything after the first bad byte is discarded and
// reported.
//
// Durability knob: WalFsync::kAlways fsyncs after every append (a crashed
// *machine* loses nothing that was acknowledged); kNever leaves flushing to
// the page cache (a crashed *process* still loses nothing, since the bytes
// survive in the kernel); kBatch fsyncs every kWalBatchFsyncEvery-th append
// — the middle ground, with an ack-durability window of at most
// kWalBatchFsyncEvery - 1 acknowledged records against a machine crash and
// still zero against a process crash. The chaos kill-restart campaign runs
// all three (process kills preserve the page cache, so acked <= offered
// must hold for every policy); the arithmetic window itself is asserted at
// the WalWriter level in tests/server_recovery_test.cc.
//
// Lint note: writes go through std::ofstream (the blocking-under-lock rule
// whitelists method-call writes); the separate descriptor exists only for
// fsync(2), which is not a blocking-listed call.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>

#include "server/net.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Magic tag of journal records ("SFQWAL01").
inline constexpr uint64_t kWalMagic = 0x31304C4157514653ULL;
/// u64 magic + u64 length + u32 crc, byte-compatible with the frame header.
inline constexpr size_t kWalRecordHeaderSize = 20;
/// Hard bound on one record's payload (mirrors the protocol frame bound).
inline constexpr uint64_t kWalMaxPayloadBytes = uint64_t{1} << 26;

/// When appends are forced to stable storage.
enum class WalFsync : uint8_t {
  kAlways = 0,  ///< fsync after every append (survives machine crash)
  kNever = 1,   ///< page-cache only (survives process crash)
  kBatch = 2,   ///< fsync every kWalBatchFsyncEvery appends (bounded window)
};

/// Batch-fsync cadence: under WalFsync::kBatch an fsync lands on every
/// N-th append, so at most N-1 acknowledged records sit in the page cache.
inline constexpr uint64_t kWalBatchFsyncEvery = 8;

const char* WalFsyncName(WalFsync fsync);
Result<WalFsync> WalFsyncFromName(std::string_view name);

/// What replay found in a journal. `last_seqno` is the highest sequence
/// number applied or skipped (== the base when the journal adds nothing).
struct WalReplayStats {
  uint64_t records_applied = 0;
  uint64_t duplicates_skipped = 0;  ///< records at or below the base seqno
  uint64_t last_seqno = 0;
  uint64_t valid_bytes = 0;      ///< bytes of intact records
  uint64_t discarded_bytes = 0;  ///< bytes after the first damaged record
  bool torn_tail = false;        ///< replay stopped before end of file
};

/// Append-only journal writer. Not internally synchronized — the owning
/// TenantStore serializes appends under its own mutex.
class WalWriter {
 public:
  /// Opens (creating if absent) the journal at `path` for appending.
  static Result<WalWriter> Open(std::string path, WalFsync fsync);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record and (under kAlways) forces it to disk. On failure
  /// the journal tail is untrusted: the caller must stop appending (the
  /// service poisons the tenant store). Carries the `wal.append` and
  /// `wal.fsync` failpoints, including process death mid-append.
  Status Append(uint64_t seqno, std::span<const ItemId> items);

  /// Discards every record (called after a snapshot publish made them
  /// redundant) and reopens for appending.
  Status Truncate();

  const std::string& path() const { return path_; }

  /// fsync(2) calls issued since Open/Truncate. Under kBatch this is
  /// floor(appends / kWalBatchFsyncEvery) — the cadence the recovery test
  /// asserts.
  uint64_t fsyncs() const { return fsyncs_; }

  /// Appends not yet covered by an fsync — the ack-durability window a
  /// machine crash could lose (always 0 under kAlways).
  uint64_t unsynced_appends() const { return unsynced_appends_; }

 private:
  WalWriter(std::string path, WalFsync fsync) noexcept
      : path_(std::move(path)), fsync_(fsync) {}

  Status OpenStreams(bool truncate);
  Status Fsync();

  std::string path_;
  WalFsync fsync_;
  std::ofstream out_;
  OwnedFd sync_fd_;  ///< separate descriptor for fsync(2) only
  uint64_t fsyncs_ = 0;
  uint64_t unsynced_appends_ = 0;
};

/// Applies one journal record during recovery.
using WalReplayFn =
    std::function<Status(uint64_t seqno, std::span<const ItemId> items)>;

/// Replays the journal at `path`, invoking `apply` for every intact record
/// with seqno > `base_seqno` (records at or below the base are duplicates
/// the snapshot already covers). A missing file is an empty journal. A
/// sequence gap or regression beyond the base means the file cannot be the
/// suffix of the snapshot's history and fails with Corruption; a damaged or
/// truncated tail stops replay and is reported via the stats.
Result<WalReplayStats> ReplayWal(const std::string& path, uint64_t base_seqno,
                                 const WalReplayFn& apply);

}  // namespace streamfreq
