// SfqClient: the client library for `sfq serve`, shared by the CLI
// (`sfq client`), the load driver (bench/bench_serve.cc), and the test
// battery.
//
// One client wraps one connection and is NOT thread-safe: concurrent
// callers each open their own client (connections are cheap on local
// sockets, and one-outstanding-request-per-connection keeps latency
// attribution honest in the load driver).
//
// Every RPC is one Request frame out, one Response frame back. Transport
// and framing failures surface as the transport's Status (IoError /
// Corruption / NotFound-on-EOF); server-side failures arrive as error
// Responses and surface as the server's Status. A client that hits a
// transport error should reconnect — the server may have applied the
// request even when the ack never arrived (see docs/SERVER.md on
// reconciliation).
//
// Optional retry (RetryOptions, off by default): Connect and Ingest can
// retry transport-layer failures with exponential backoff and
// deterministic jitter (seeded splitmix64, so a failing run replays
// exactly). Only failures of the round trip itself are retried; a
// server-side error Response is a definitive answer and is never retried.
// Caveat: an Ingest retry is at-least-once — the server may have applied
// the chunk before severing the ack, so a retried chunk can double-count.
// Workloads that reconcile exact counters (the chaos harness) keep
// retries off and trust server-side accounting instead.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "server/net.h"
#include "server/protocol.h"
#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// Client-side retry policy. Off by default (retries == 0).
struct RetryOptions {
  uint32_t retries = 0;      ///< extra attempts after the first failure
  uint64_t backoff_ms = 50;  ///< base backoff; doubles per attempt (capped)
  uint64_t seed = 1;         ///< jitter stream seed (deterministic replay)
};

class SfqClient {
 public:
  /// Connects to a server's unix-domain socket, retrying per `retry`
  /// (a just-restarted server whose socket is not yet bound is the
  /// intended customer).
  static Result<SfqClient> Connect(const std::string& socket_path,
                                   const RetryOptions& retry = {});

  SfqClient(SfqClient&&) = default;
  SfqClient& operator=(SfqClient&&) = default;

  /// Raw round trip: send `request`, receive the Response. The returned
  /// Response may itself carry an error code (server-side failure).
  Result<Response> Call(const Request& request);

  /// Round trip that also converts a server-side error into its Status.
  Result<Response> CallChecked(const Request& request);

  // Typed wrappers (all one round trip; see protocol.h for semantics).
  Status Ping();
  Status CreateTenant(const std::string& tenant, const TenantSpec& spec);
  Status DropTenant(const std::string& tenant);
  /// Appends items to the tenant's stream. Batches larger than one frame's
  /// bound are split across multiple requests.
  Status Ingest(const std::string& tenant, std::span<const ItemId> items);
  /// Seals the tenant (drains ingest; read-only afterwards). Returns the
  /// final snapshot epoch.
  Result<uint64_t> Seal(const std::string& tenant);
  Result<std::vector<ItemCount>> TopK(const std::string& tenant, uint64_t k,
                                      uint64_t* epoch = nullptr);
  Result<Count> Estimate(const std::string& tenant, ItemId item,
                         uint64_t* epoch = nullptr);
  /// Remembers the tenant's current snapshot; returns the marked epoch.
  Result<uint64_t> MarkEpoch(const std::string& tenant);
  /// Top-k |delta| since the marked epoch; entry counts are signed deltas.
  Result<std::vector<ItemCount>> MaxChange(const std::string& tenant,
                                           uint64_t k);
  /// Deserialized copy of the tenant's current snapshot sketch.
  Result<CountSketch> Export(const std::string& tenant,
                             uint64_t* epoch = nullptr);
  /// Startup-recovery details for a tenant, as a JSON blob (empty-ish when
  /// the tenant was freshly created rather than recovered).
  Result<std::string> RecoveryInfo(const std::string& tenant);
  /// The server's /statsz JSON document.
  Result<std::string> Statsz();
  /// Asks the server to shut down (acknowledged before teardown starts).
  Status Shutdown();

 private:
  explicit SfqClient(OwnedFd fd) : fd_(std::move(fd)) {}

  /// One ingest chunk with transport-level retry (reconnect + resend).
  Status IngestChunk(const Request& request);
  /// Sleeps the backoff for `attempt` and advances the jitter stream.
  void BackoffSleep(uint32_t attempt);

  OwnedFd fd_;
  std::string socket_path_;  ///< empty when retry is off (no reconnects)
  RetryOptions retry_;
  uint64_t jitter_state_ = 0;
};

}  // namespace streamfreq
