// SfqClient: the client library for `sfq serve`, shared by the CLI
// (`sfq client`), the load driver (bench/bench_serve.cc), and the test
// battery.
//
// One client wraps one connection and is NOT thread-safe: concurrent
// callers each open their own client (connections are cheap on local
// sockets, and one-outstanding-request-per-connection keeps latency
// attribution honest in the load driver).
//
// Every RPC is one Request frame out, one Response frame back. Transport
// and framing failures surface as the transport's Status (IoError /
// Corruption / NotFound-on-EOF); server-side failures arrive as error
// Responses and surface as the server's Status. A client that hits a
// transport error should reconnect — the server may have applied the
// request even when the ack never arrived (see docs/SERVER.md on
// reconciliation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "server/net.h"
#include "server/protocol.h"
#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

class SfqClient {
 public:
  /// Connects to a server's unix-domain socket.
  static Result<SfqClient> Connect(const std::string& socket_path);

  SfqClient(SfqClient&&) = default;
  SfqClient& operator=(SfqClient&&) = default;

  /// Raw round trip: send `request`, receive the Response. The returned
  /// Response may itself carry an error code (server-side failure).
  Result<Response> Call(const Request& request);

  /// Round trip that also converts a server-side error into its Status.
  Result<Response> CallChecked(const Request& request);

  // Typed wrappers (all one round trip; see protocol.h for semantics).
  Status Ping();
  Status CreateTenant(const std::string& tenant, const TenantSpec& spec);
  Status DropTenant(const std::string& tenant);
  /// Appends items to the tenant's stream. Batches larger than one frame's
  /// bound are split across multiple requests.
  Status Ingest(const std::string& tenant, std::span<const ItemId> items);
  /// Seals the tenant (drains ingest; read-only afterwards). Returns the
  /// final snapshot epoch.
  Result<uint64_t> Seal(const std::string& tenant);
  Result<std::vector<ItemCount>> TopK(const std::string& tenant, uint64_t k,
                                      uint64_t* epoch = nullptr);
  Result<Count> Estimate(const std::string& tenant, ItemId item,
                         uint64_t* epoch = nullptr);
  /// Remembers the tenant's current snapshot; returns the marked epoch.
  Result<uint64_t> MarkEpoch(const std::string& tenant);
  /// Top-k |delta| since the marked epoch; entry counts are signed deltas.
  Result<std::vector<ItemCount>> MaxChange(const std::string& tenant,
                                           uint64_t k);
  /// Deserialized copy of the tenant's current snapshot sketch.
  Result<CountSketch> Export(const std::string& tenant,
                             uint64_t* epoch = nullptr);
  /// The server's /statsz JSON document.
  Result<std::string> Statsz();
  /// Asks the server to shut down (acknowledged before teardown starts).
  Status Shutdown();

 private:
  explicit SfqClient(OwnedFd fd) : fd_(std::move(fd)) {}

  OwnedFd fd_;
};

}  // namespace streamfreq
