// Durable tenant state for `sfq serve`: epoch snapshots + the TenantStore
// that pairs them with the write-ahead journal (server/wal.h).
//
// A snapshot is ONE file ("SFQSNP01" through the sketch_io atomic
// write-temp-then-rename path) carrying everything a tenant needs to come
// back: the TenantSpec, the journal sequence number the state covers, the
// durable ledger counters, the Space-Saving candidate triples, and the
// serialized Count-Sketch. One rename is one commit point — there is no
// window where a sketch and its manifest can disagree.
//
// Snapshot payload (little-endian, inside the blob-file framing):
//
//   u64 version (kSnapshotVersion)
//   TenantSpec               11 u64 fields (TenantSpec::EncodeTo)
//   u64 wal_seqno            highest journal record folded in
//   u64 durable_items        items covered (== sum of record sizes 1..seqno)
//   u64 rejected_items | u64 rejected_requests | u64 queries |
//   u64 stale_serves | u64 sealed(0/1)
//   u64 candidate_capacity | u64 candidate count |
//     count x (u64 item, i64 count, i64 error)
//   string sketch            CountSketch::SerializeTo bytes (u64 len prefix)
//
// Recovery protocol (TenantStore::Open): read the snapshot, rebuild the
// exact sketch and candidates, replay the journal tail with duplicate
// dedup (records <= wal_seqno were already folded in — the crash window
// between snapshot publish and journal truncation), then immediately
// re-snapshot and truncate so a torn journal tail can never precede new
// appends. The WAL-before-ingest ordering in the service makes the durable
// state a prefix-closed superset of everything acknowledged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "core/space_saving.h"
#include "server/protocol.h"
#include "server/wal.h"
#include "util/mutex.h"
#include "util/result.h"

namespace streamfreq {

/// Magic tag of tenant snapshot files ("SFQSNP01").
inline constexpr uint64_t kSnapshotMagic = 0x3130504E53515153ULL;
inline constexpr uint64_t kSnapshotVersion = 1;

/// Everything one snapshot file carries.
struct TenantSnapshot {
  TenantSpec spec;
  uint64_t wal_seqno = 0;
  uint64_t durable_items = 0;
  uint64_t rejected_items = 0;
  uint64_t rejected_requests = 0;
  uint64_t queries = 0;
  uint64_t stale_serves = 0;
  bool sealed = false;
  uint64_t candidate_capacity = 0;
  std::vector<SpaceSavingEntry> candidates;
  std::string sketch_blob;  ///< CountSketch::SerializeTo bytes
};

/// Encodes and writes `snap` atomically. Carries the `snapshot.publish`
/// failpoint (error, process death) in front of the sketch_io write path.
Status WriteTenantSnapshot(const std::string& path,
                           const TenantSnapshot& snap);

/// Reads and fully validates a snapshot file (framing CRC via sketch_io,
/// then field-by-field decode with trailing-byte rejection).
Result<TenantSnapshot> ReadTenantSnapshot(const std::string& path);

/// Ledger + candidate sample the service captures under the tenant mutex
/// and hands to WriteSnapshot.
struct LedgerSample {
  uint64_t rejected_items = 0;
  uint64_t rejected_requests = 0;
  uint64_t queries = 0;
  uint64_t stale_serves = 0;
  bool sealed = false;
  uint64_t candidate_capacity = 0;
  std::vector<SpaceSavingEntry> candidates;
};

/// What startup recovery found for one tenant (kRecoveryInfo surfaces it).
struct TenantRecovery {
  bool recovered = false;  ///< state came from disk, not a fresh create
  uint64_t snapshot_seqno = 0;
  uint64_t replayed_records = 0;
  uint64_t replayed_items = 0;
  uint64_t duplicates_skipped = 0;
  bool torn_tail = false;
  uint64_t discarded_bytes = 0;
  uint64_t base_items = 0;  ///< durable items after replay
};

/// One tenant's durability engine: owns the journal writer, the exact
/// durable accumulator (a Count-Sketch updated synchronously with every
/// append, so a snapshot never has to quiesce the async ingestor), and the
/// snapshot cadence. Thread-safe; the service calls Append outside its own
/// tenant lock.
class TenantStore {
 public:
  /// Creates a fresh tenant directory: writes the initial snapshot
  /// (seqno 0, empty sketch) BEFORE any ingest is acknowledged, then opens
  /// the journal. A directory that already has a snapshot is refused.
  static Result<std::unique_ptr<TenantStore>> Create(
      std::string dir, const TenantSpec& spec, const CountSketchParams& params,
      WalFsync fsync, uint64_t snapshot_every_items);

  /// Recovery result: the store plus the state the service seeds its
  /// in-memory tenant from.
  struct Opened {
    std::unique_ptr<TenantStore> store;
    TenantSnapshot state;       ///< ledger/spec fields post-replay
    CountSketch sketch;         ///< snapshot sketch + replayed journal tail
    SpaceSaving candidates;     ///< restored + replayed
    TenantRecovery recovery;
  };

  /// Recovers a tenant directory: snapshot load, journal replay with dedup,
  /// then re-snapshot + truncate (see the file comment). Any missing or
  /// corrupt snapshot fails — a journal without its snapshot has no base
  /// state and silent re-creation would hide data loss.
  static Result<Opened> Open(std::string dir, WalFsync fsync,
                             uint64_t snapshot_every_items);

  /// Journals one accepted batch (assigning the next sequence number) and
  /// folds it into the durable accumulator. On failure the store is
  /// poisoned: the journal tail can no longer be trusted, so every later
  /// append is refused and the service rejects the tenant's ingests.
  Status Append(std::span<const ItemId> items) SFQ_EXCLUDES(mu_);

  /// True when enough items accumulated since the last snapshot.
  bool SnapshotDue() const SFQ_EXCLUDES(mu_);

  /// Publishes a snapshot of the durable state + `ledger`, then truncates
  /// the journal. A failed write leaves the journal intact (recovery still
  /// works from the previous snapshot); a failed truncation poisons the
  /// store.
  Status WriteSnapshot(const LedgerSample& ledger) SFQ_EXCLUDES(mu_);

  /// Marks the store unusable (the service calls this when a journaled
  /// batch failed to apply live, so durable and live state diverged).
  void Poison() SFQ_EXCLUDES(mu_);

  uint64_t last_seqno() const SFQ_EXCLUDES(mu_);
  uint64_t durable_items() const SFQ_EXCLUDES(mu_);
  bool poisoned() const SFQ_EXCLUDES(mu_);
  uint64_t snapshots_written() const SFQ_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

  /// Paths inside a tenant directory.
  static std::string SnapshotPath(const std::string& dir);
  static std::string JournalPath(const std::string& dir);

 private:
  TenantStore(std::string dir, TenantSpec spec, CountSketch exact,
              WalWriter wal, uint64_t snapshot_every_items);

  const std::string dir_;
  const TenantSpec spec_;
  const uint64_t snapshot_every_items_;

  mutable Mutex mu_;
  CountSketch exact_ SFQ_GUARDED_BY(mu_);
  WalWriter wal_ SFQ_GUARDED_BY(mu_);
  uint64_t seqno_ SFQ_GUARDED_BY(mu_) = 0;
  uint64_t durable_items_ SFQ_GUARDED_BY(mu_) = 0;
  uint64_t items_since_snapshot_ SFQ_GUARDED_BY(mu_) = 0;
  uint64_t snapshots_written_ SFQ_GUARDED_BY(mu_) = 0;
  bool poisoned_ SFQ_GUARDED_BY(mu_) = false;
};

}  // namespace streamfreq
