#include "server/client.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"

namespace streamfreq {

namespace {

// Items per ingest request: frames stay well under kMaxPayloadBytes and
// the server applies each request atomically enough for per-request acks
// to be meaningful.
constexpr size_t kIngestChunkItems = 1 << 16;

}  // namespace

Result<SfqClient> SfqClient::Connect(const std::string& socket_path) {
  STREAMFREQ_ASSIGN_OR_RETURN(OwnedFd fd, ConnectUnix(socket_path));
  return SfqClient(std::move(fd));
}

Result<Response> SfqClient::Call(const Request& request) {
  std::string payload;
  request.EncodeTo(&payload);
  STREAMFREQ_RETURN_NOT_OK(SendFrame(fd_.get(), payload));
  STREAMFREQ_ASSIGN_OR_RETURN(std::string reply, RecvFrame(fd_.get()));
  return Response::Decode(reply);
}

Result<Response> SfqClient::CallChecked(const Request& request) {
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, Call(request));
  STREAMFREQ_RETURN_NOT_OK(response.ToStatus());
  return response;
}

Status SfqClient::Ping() {
  Request request;
  request.op = Opcode::kPing;
  return CallChecked(request).status();
}

Status SfqClient::CreateTenant(const std::string& tenant,
                               const TenantSpec& spec) {
  Request request;
  request.op = Opcode::kCreateTenant;
  request.tenant = tenant;
  request.spec = spec;
  return CallChecked(request).status();
}

Status SfqClient::DropTenant(const std::string& tenant) {
  Request request;
  request.op = Opcode::kDropTenant;
  request.tenant = tenant;
  return CallChecked(request).status();
}

Status SfqClient::Ingest(const std::string& tenant,
                         std::span<const ItemId> items) {
  while (!items.empty()) {
    const size_t take = std::min(items.size(), kIngestChunkItems);
    Request request;
    request.op = Opcode::kIngest;
    request.tenant = tenant;
    request.items.assign(items.begin(), items.begin() + take);
    STREAMFREQ_RETURN_NOT_OK(CallChecked(request).status());
    items = items.subspan(take);
  }
  return Status::OK();
}

Result<uint64_t> SfqClient::Seal(const std::string& tenant) {
  Request request;
  request.op = Opcode::kSeal;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return response.epoch;
}

Result<std::vector<ItemCount>> SfqClient::TopK(const std::string& tenant,
                                               uint64_t k, uint64_t* epoch) {
  Request request;
  request.op = Opcode::kTopK;
  request.tenant = tenant;
  request.k = k;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return std::move(response.entries);
}

Result<Count> SfqClient::Estimate(const std::string& tenant, ItemId item,
                                  uint64_t* epoch) {
  Request request;
  request.op = Opcode::kEstimate;
  request.tenant = tenant;
  request.item = item;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return response.value;
}

Result<uint64_t> SfqClient::MarkEpoch(const std::string& tenant) {
  Request request;
  request.op = Opcode::kMarkEpoch;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return response.epoch;
}

Result<std::vector<ItemCount>> SfqClient::MaxChange(const std::string& tenant,
                                                    uint64_t k) {
  Request request;
  request.op = Opcode::kMaxChange;
  request.tenant = tenant;
  request.k = k;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return std::move(response.entries);
}

Result<CountSketch> SfqClient::Export(const std::string& tenant,
                                      uint64_t* epoch) {
  Request request;
  request.op = Opcode::kExport;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return CountSketch::Deserialize(response.blob);
}

Result<std::string> SfqClient::Statsz() {
  Request request;
  request.op = Opcode::kStatsz;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return std::move(response.blob);
}

Status SfqClient::Shutdown() {
  Request request;
  request.op = Opcode::kShutdown;
  return CallChecked(request).status();
}

}  // namespace streamfreq
