#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/macros.h"

namespace streamfreq {

namespace {

// Items per ingest request: frames stay well under kMaxPayloadBytes and
// the server applies each request atomically enough for per-request acks
// to be meaningful.
constexpr size_t kIngestChunkItems = 1 << 16;

// splitmix64: the jitter stream. Seeded, so a failing run replays exactly.
uint64_t NextJitter(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Result<SfqClient> SfqClient::Connect(const std::string& socket_path,
                                     const RetryOptions& retry) {
  uint64_t jitter_state = retry.seed;
  for (uint32_t attempt = 0;; ++attempt) {
    Result<OwnedFd> fd = ConnectUnix(socket_path);
    if (fd.ok()) {
      SfqClient client(std::move(*fd));
      client.retry_ = retry;
      client.jitter_state_ = jitter_state;
      // Remember the path only when retry is on: it is what arms the
      // reconnect-and-resend path inside Ingest.
      if (retry.retries > 0) client.socket_path_ = socket_path;
      return client;
    }
    if (attempt >= retry.retries) return fd.status();
    const uint64_t cap_ms = retry.backoff_ms
                            << std::min<uint32_t>(attempt, 6);
    const uint64_t half = cap_ms / 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        half + (cap_ms == 0 ? 0 : NextJitter(&jitter_state) % (half + 1))));
  }
}

void SfqClient::BackoffSleep(uint32_t attempt) {
  const uint64_t cap_ms = retry_.backoff_ms << std::min<uint32_t>(attempt, 6);
  const uint64_t half = cap_ms / 2;
  std::this_thread::sleep_for(std::chrono::milliseconds(
      half + (cap_ms == 0 ? 0 : NextJitter(&jitter_state_) % (half + 1))));
}

Result<Response> SfqClient::Call(const Request& request) {
  std::string payload;
  request.EncodeTo(&payload);
  STREAMFREQ_RETURN_NOT_OK(SendFrame(fd_.get(), payload));
  STREAMFREQ_ASSIGN_OR_RETURN(std::string reply, RecvFrame(fd_.get()));
  return Response::Decode(reply);
}

Result<Response> SfqClient::CallChecked(const Request& request) {
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, Call(request));
  STREAMFREQ_RETURN_NOT_OK(response.ToStatus());
  return response;
}

Status SfqClient::Ping() {
  Request request;
  request.op = Opcode::kPing;
  return CallChecked(request).status();
}

Status SfqClient::CreateTenant(const std::string& tenant,
                               const TenantSpec& spec) {
  Request request;
  request.op = Opcode::kCreateTenant;
  request.tenant = tenant;
  request.spec = spec;
  return CallChecked(request).status();
}

Status SfqClient::DropTenant(const std::string& tenant) {
  Request request;
  request.op = Opcode::kDropTenant;
  request.tenant = tenant;
  return CallChecked(request).status();
}

Status SfqClient::Ingest(const std::string& tenant,
                         std::span<const ItemId> items) {
  while (!items.empty()) {
    const size_t take = std::min(items.size(), kIngestChunkItems);
    Request request;
    request.op = Opcode::kIngest;
    request.tenant = tenant;
    request.items.assign(items.begin(), items.begin() + take);
    STREAMFREQ_RETURN_NOT_OK(IngestChunk(request));
    items = items.subspan(take);
  }
  return Status::OK();
}

Status SfqClient::IngestChunk(const Request& request) {
  for (uint32_t attempt = 0;; ++attempt) {
    Result<Response> response = Call(request);
    // A decodable Response is a definitive server answer — success or a
    // server-side rejection — and is never retried. Only a failed round
    // trip (send/recv/framing) goes around again.
    if (response.ok()) return response->ToStatus();
    if (socket_path_.empty() || attempt >= retry_.retries) {
      return response.status();
    }
    BackoffSleep(attempt);
    // The old connection is dead after a transport error; reconnect. On
    // failure the stale fd stays and the next Call fails fast, burning
    // another attempt.
    Result<OwnedFd> fd = ConnectUnix(socket_path_);
    if (fd.ok()) fd_ = std::move(*fd);
  }
}

Result<uint64_t> SfqClient::Seal(const std::string& tenant) {
  Request request;
  request.op = Opcode::kSeal;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return response.epoch;
}

Result<std::vector<ItemCount>> SfqClient::TopK(const std::string& tenant,
                                               uint64_t k, uint64_t* epoch) {
  Request request;
  request.op = Opcode::kTopK;
  request.tenant = tenant;
  request.k = k;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return std::move(response.entries);
}

Result<Count> SfqClient::Estimate(const std::string& tenant, ItemId item,
                                  uint64_t* epoch) {
  Request request;
  request.op = Opcode::kEstimate;
  request.tenant = tenant;
  request.item = item;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return response.value;
}

Result<uint64_t> SfqClient::MarkEpoch(const std::string& tenant) {
  Request request;
  request.op = Opcode::kMarkEpoch;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return response.epoch;
}

Result<std::vector<ItemCount>> SfqClient::MaxChange(const std::string& tenant,
                                                    uint64_t k) {
  Request request;
  request.op = Opcode::kMaxChange;
  request.tenant = tenant;
  request.k = k;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return std::move(response.entries);
}

Result<CountSketch> SfqClient::Export(const std::string& tenant,
                                      uint64_t* epoch) {
  Request request;
  request.op = Opcode::kExport;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  if (epoch != nullptr) *epoch = response.epoch;
  return CountSketch::Deserialize(response.blob);
}

Result<std::string> SfqClient::RecoveryInfo(const std::string& tenant) {
  Request request;
  request.op = Opcode::kRecoveryInfo;
  request.tenant = tenant;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return std::move(response.blob);
}

Result<std::string> SfqClient::Statsz() {
  Request request;
  request.op = Opcode::kStatsz;
  STREAMFREQ_ASSIGN_OR_RETURN(Response response, CallChecked(request));
  return std::move(response.blob);
}

Status SfqClient::Shutdown() {
  Request request;
  request.op = Opcode::kShutdown;
  return CallChecked(request).status();
}

}  // namespace streamfreq
