#include "verify/chaos.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "concurrent/parallel_ingestor.h"
#include "core/count_sketch.h"
#include "core/sketch_io.h"
#include "dist/merge_tree.h"
#include "dist/tree.h"
#include "hash/random.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "stream/types.h"
#include "stream/zipf.h"
#include "util/failpoint.h"
#include "util/macros.h"
#include "verify/checkers.h"
#include "verify/oracle.h"
#include "verify/program.h"

namespace streamfreq {

namespace {

constexpr uint64_t kProgramSalt = 0xC4A05C4A05ULL;
constexpr uint64_t kScheduleSalt = 0x5C4EDC4EDULL;
constexpr uint64_t kMix = 0x9E3779B97F4A7C15ULL;

/// The input multiset minus the recorded spill, in input order. Order is
/// irrelevant to the oracle (it counts), so any linearization works.
Stream EffectiveStream(const Stream& stream, const std::vector<ItemId>& spill) {
  if (spill.empty()) return stream;
  std::map<ItemId, uint64_t> dropped;
  for (const ItemId id : spill) ++dropped[id];
  Stream effective;
  effective.reserve(stream.size() - spill.size());
  for (const ItemId id : stream) {
    const auto it = dropped.find(id);
    if (it != dropped.end() && it->second > 0) {
      --it->second;
      continue;
    }
    effective.push_back(id);
  }
  return effective;
}

struct IterationResult {
  ChaosOutcome outcome = ChaosOutcome::kVerified;
  std::string detail;
  IngestStats stats;
  uint64_t fires = 0;
  bool io_attempted = false;
  bool io_faulted = false;
};

Result<IterationResult> RunIteration(const ChaosOptions& options,
                                     const std::string& io_dir,
                                     uint64_t index) {
  const FuzzProgram program =
      ProgramFromSeed(options.seed ^ kProgramSalt, index);
  STREAMFREQ_ASSIGN_OR_RETURN(Stream stream, MaterializeStream(program));

  // Size the sketch for the full stream (what a production deployment
  // would provision for); degraded runs are judged later against what
  // actually arrived.
  const Oracle full_oracle(stream);
  const VerifySetup sizing = MakeVerifySetup(
      program.k, program.epsilon, program.width_scale, program.seed,
      full_oracle);
  STREAMFREQ_ASSIGN_OR_RETURN(VerifySketchPlan plan,
                              PlanVerifyCountSketch(sizing));

  const std::string schedule =
      options.failpoints.empty()
          ? ChaosScheduleForIteration(options.seed, index)
          : options.failpoints;
  ScopedFailpoints failpoints(schedule,
                              options.seed ^ ((index + 1) * kMix));
  STREAMFREQ_RETURN_NOT_OK(failpoints.status());

  Xoshiro256 rng(options.seed ^ ((index + 7) * kMix));
  IngestOptions ingest;
  ingest.threads = 2 + static_cast<size_t>(rng.UniformBelow(2));
  ingest.batch_items = size_t{256} << rng.UniformBelow(3);
  ingest.queue_batches = 4;
  ingest.push_timeout_ms = 5;
  ingest.overflow_policy = rng.UniformBelow(2) == 0 ? OverflowPolicy::kShed
                                                    : OverflowPolicy::kSample;
  ingest.sample_keep_one_in = 4;
  ingest.record_shed = true;

  IterationResult result;
  auto finish_fires = [&result] {
    result.fires = FailpointRegistry::Global().TotalFires();
  };

  const auto factory = [&plan]() { return CountSketch::Make(plan.params); };
  auto ingestor =
      ParallelIngestor<CountSketch>::Make(factory, ingest);
  if (!ingestor.ok()) {
    result.outcome = ChaosOutcome::kCleanError;
    result.detail = ingestor.status().ToString();
    finish_fires();
    return result;
  }
  const Status ingest_status =
      (*ingestor)->Ingest(std::span<const ItemId>(stream));
  Result<CountSketch> merged = (*ingestor)->Finish();
  result.stats = (*ingestor)->Stats();
  const std::vector<ItemId> spill = (*ingestor)->SpilledItems();

  if (!ingest_status.ok() || !merged.ok()) {
    result.outcome = ChaosOutcome::kCleanError;
    result.detail =
        (!ingest_status.ok() ? ingest_status : merged.status()).ToString();
    finish_fires();
    return result;
  }

  // Conservation: every offered item is either in a sketch or accounted
  // dropped, and the recorded spill is exactly the dropped mass.
  if (result.stats.items_ingested + result.stats.DroppedItems() !=
          stream.size() ||
      spill.size() != result.stats.DroppedItems()) {
    result.outcome = ChaosOutcome::kGuaranteeFailure;
    result.detail = "mass accounting broken: offered " +
                    std::to_string(stream.size()) + ", ingested " +
                    std::to_string(result.stats.items_ingested) +
                    ", dropped " +
                    std::to_string(result.stats.DroppedItems()) +
                    ", spill " + std::to_string(spill.size());
    finish_fires();
    return result;
  }

  // Guarantee check against the effective stream: the bounds widen by
  // exactly the shed mass, nothing more.
  const Stream effective = EffectiveStream(stream, spill);
  if (!effective.empty()) {
    const Oracle effective_oracle(effective);
    const VerifySetup check_setup = MakeVerifySetup(
        program.k, program.epsilon, program.width_scale, program.seed,
        effective_oracle);
    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        *merged, effective_oracle, check_setup, plan.lemma_width);
    if (!violations.empty()) {
      result.outcome = ChaosOutcome::kGuaranteeFailure;
      result.detail = violations.front().guarantee + std::string(": ") +
                      violations.front().detail;
      finish_fires();
      return result;
    }
  }

  // Round-trip the surviving sketch through persistence with the
  // sketch_io.* failpoints still armed: outcomes are a clean Status or a
  // loaded sketch whose estimates match the in-memory one exactly.
  if (options.exercise_io) {
    result.io_attempted = true;
    const std::string path =
        io_dir + "/sfq_chaos_" + std::to_string(options.seed) + "_" +
        std::to_string(index) + ".skf";
    const Status write_status = WriteSketchFile(path, *merged);
    if (!write_status.ok()) {
      result.io_faulted = true;
    } else {
      Result<CountSketch> loaded = ReadSketchFile(path);
      if (!loaded.ok()) {
        result.io_faulted = true;
      } else {
        for (const ItemId q : sizing.probes) {
          if (loaded->Estimate(q) != merged->Estimate(q)) {
            result.outcome = ChaosOutcome::kGuaranteeFailure;
            result.detail =
                "persistence round trip changed the estimate of item " +
                std::to_string(q);
            break;
          }
        }
      }
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }

  finish_fires();
  return result;
}

// ---------------------------------------------------------------------------
// Server campaign (`sfq chaos --server`): the same contract, but the fault
// surface is a real SfqServer behind real client connections.
// ---------------------------------------------------------------------------

// Any of these on a request means the connection died under us (the server
// severed it at a failpoint, or accept dropped it). In this harness every
// tenant exists before ingest starts, so NotFound can only be net.cc's
// "connection closed".
bool IsSever(const Status& status) {
  return status.IsNotFound() || status.IsCorruption() || status.IsIoError();
}

// Pulls `"field":<integer>` out of one tenant's flat object inside the
// TenantsJson()/statsz JSON.
int64_t TenantJsonField(const std::string& json, const std::string& tenant,
                        const std::string& field) {
  const size_t tenant_at = json.find("\"" + tenant + "\":{");
  if (tenant_at == std::string::npos) return -1;
  const size_t scope_end = json.find('}', tenant_at);
  const size_t field_at = json.find("\"" + field + "\":", tenant_at);
  if (field_at == std::string::npos || field_at > scope_end) return -1;
  return std::strtoll(json.c_str() + field_at + field.size() + 3, nullptr,
                      10);
}

struct ServerIterationResult {
  ChaosOutcome outcome = ChaosOutcome::kVerified;
  std::string detail;
  uint64_t fires = 0;
  uint64_t requests = 0;
  uint64_t severs = 0;
  uint64_t stale_serves = 0;
  uint64_t dropped_items = 0;
  uint64_t worker_respawns = 0;
  uint64_t restarts = 0;         ///< daemon relaunches (restart campaign)
  uint64_t deaths = 0;           ///< failpoint exits + real SIGKILLs
  uint64_t recoveries = 0;       ///< relaunches reporting recovered state
  uint64_t identity_checks = 0;  ///< bit-identity verified this iteration
};

// One tenant's client-side ingest state: its own connection (SfqClient is
// single-threaded by contract) plus the ack ledger the reconciliation
// checks against.
struct TenantDriver {
  std::string name;
  std::unique_ptr<SfqClient> client;
  uint64_t acked_items = 0;
  uint64_t last_epoch = 0;
};

// (Re)connects a driver. Connect only fails if the listener is gone —
// which no schedule in this campaign does on purpose, so that IS a dead
// server and the caller turns it into a guarantee failure.
Status Reconnect(const std::string& socket_path, TenantDriver* driver) {
  auto client = SfqClient::Connect(socket_path);
  STREAMFREQ_RETURN_NOT_OK(client.status());
  driver->client = std::make_unique<SfqClient>(std::move(*client));
  return Status::OK();
}

Result<ServerIterationResult> RunServerIteration(const ChaosOptions& options,
                                                 const std::string& io_dir,
                                                 uint64_t index) {
  ServerIterationResult result;
  const auto fail = [&result](std::string detail) {
    result.outcome = ChaosOutcome::kGuaranteeFailure;
    result.detail = std::move(detail);
    return result;
  };

  // Seeded workload: one zipf stream, every tenant receives all of it.
  Xoshiro256 rng(options.seed ^ ((index + 3) * kMix));
  const size_t n = 16384 + static_cast<size_t>(rng.UniformBelow(16384));
  auto gen = ZipfGenerator::Make(2000, 1.0, options.seed ^ (index * kMix));
  STREAMFREQ_RETURN_NOT_OK(gen.status());
  const Stream stream = gen->Take(n);
  const Oracle oracle(stream);
  const VerifySetup setup = MakeVerifySetup(
      /*k=*/10, /*epsilon=*/0.2, /*width_scale=*/1.0,
      options.seed ^ ((index + 11) * kMix), oracle);
  STREAMFREQ_ASSIGN_OR_RETURN(VerifySketchPlan plan,
                              PlanVerifyCountSketch(setup));

  ServerOptions server_options;
  server_options.socket_path = io_dir + "/sfq_chaos_srv_" +
                               std::to_string(options.seed) + "_" +
                               std::to_string(index) + ".sock";
  auto server = SfqServer::Start(server_options);
  if (!server.ok()) {
    result.outcome = ChaosOutcome::kCleanError;
    result.detail = server.status().ToString();
    return result;
  }

  TenantSpec spec;
  spec.depth = plan.params.depth;
  spec.width = plan.params.width;
  spec.seed = plan.params.seed;
  spec.threads = 2;
  spec.batch_items = 512;
  spec.queue_batches = 4;
  spec.push_timeout_ms = 2;
  spec.tracked = 256;
  std::vector<TenantDriver> drivers;
  {
    TenantDriver shed;
    shed.name = "shed";
    drivers.push_back(std::move(shed));
    TenantDriver sample;
    sample.name = "sample";
    drivers.push_back(std::move(sample));
  }

  const std::string schedule =
      options.failpoints.empty()
          ? ServerChaosScheduleForIteration(options.seed, index)
          : options.failpoints;

  {
    ScopedFailpoints failpoints(schedule,
                                options.seed ^ ((index + 1) * kMix));
    STREAMFREQ_RETURN_NOT_OK(failpoints.status());

    // Tenant creation must survive severs: a create can be applied and
    // then severed before the ack, so "already exists" on the retry is
    // success.
    for (TenantDriver& driver : drivers) {
      TenantSpec tenant_spec = spec;
      tenant_spec.policy = driver.name == "shed" ? OverflowPolicy::kShed
                                                 : OverflowPolicy::kSample;
      bool created = false;
      for (int attempt = 0; attempt < 16 && !created; ++attempt) {
        const Status conn = Reconnect(server_options.socket_path, &driver);
        if (!conn.ok()) {
          return fail("server died during create: " + conn.ToString());
        }
        const Status status =
            driver.client->CreateTenant(driver.name, tenant_spec);
        if (status.ok() ||
            (status.IsInvalidArgument() &&
             status.message().find("already exists") != std::string::npos)) {
          created = true;
        } else if (IsSever(status)) {
          ++result.severs;
        } else {
          return fail("create failed: " + status.ToString());
        }
      }
      if (!created) return fail("create never succeeded through the faults");
    }

    // Ingest in chunks, at most once each: after a sever the client cannot
    // know whether the chunk was applied (server.write) or lost before the
    // read (server.read), so it moves on and reconciliation trusts the
    // server-side ledger, never the ack count.
    constexpr size_t kChunkItems = 1024;
    for (TenantDriver& driver : drivers) {
      size_t chunk_index = 0;
      for (size_t begin = 0; begin < stream.size();
           begin += kChunkItems, ++chunk_index) {
        const size_t len = std::min(kChunkItems, stream.size() - begin);
        const std::span<const ItemId> chunk(stream.data() + begin, len);
        const Status status = driver.client->Ingest(driver.name, chunk);
        if (status.ok()) {
          driver.acked_items += len;
        } else if (IsSever(status)) {
          ++result.severs;
          const Status conn = Reconnect(server_options.socket_path, &driver);
          if (!conn.ok()) {
            return fail("server died mid-ingest: " + conn.ToString());
          }
        } else {
          // Admission control speaking (e.g. a kBlock timeout): an
          // explicit rejection, counted server-side as rejected_items.
          ++result.severs;
        }
        // Interleave snapshot reads so server.publish staleness is
        // actually exercised; epochs must never move backwards.
        if (chunk_index % 8 == 7) {
          uint64_t epoch = 0;
          auto top = driver.client->TopK(driver.name, 5, &epoch);
          if (top.ok()) {
            if (epoch < driver.last_epoch) {
              return fail("epoch went backwards on " + driver.name);
            }
            driver.last_epoch = epoch;
          } else if (IsSever(top.status())) {
            ++result.severs;
            const Status conn =
                Reconnect(server_options.socket_path, &driver);
            if (!conn.ok()) {
              return fail("server died mid-query: " + conn.ToString());
            }
          } else {
            return fail("query failed: " + top.status().ToString());
          }
        }
      }
    }

    // Seal in-process (the harness owns the server), then reconcile the
    // per-tenant ledgers while the faults are still armed — the numbers
    // must already be exact.
    (*server)->service().SealAll();
    const std::string tenants_json = (*server)->service().TenantsJson();
    for (TenantDriver& driver : drivers) {
      const int64_t offered =
          TenantJsonField(tenants_json, driver.name, "offered_items");
      const int64_t rejected =
          TenantJsonField(tenants_json, driver.name, "rejected_items");
      const int64_t ingested =
          TenantJsonField(tenants_json, driver.name, "items_ingested");
      const int64_t dropped =
          TenantJsonField(tenants_json, driver.name, "dropped_items");
      const int64_t respawns =
          TenantJsonField(tenants_json, driver.name, "worker_respawns");
      const int64_t stale =
          TenantJsonField(tenants_json, driver.name, "stale_serves");
      if (offered < 0 || rejected < 0 || ingested < 0 || dropped < 0) {
        return fail("tenant " + driver.name + " missing from statsz: " +
                    tenants_json);
      }
      result.dropped_items += static_cast<uint64_t>(dropped);
      result.worker_respawns += static_cast<uint64_t>(respawns);
      result.stale_serves += static_cast<uint64_t>(stale);
      if (offered - rejected != ingested + dropped) {
        return fail("conservation broken on " + driver.name + ": offered " +
                    std::to_string(offered) + " - rejected " +
                    std::to_string(rejected) + " != ingested " +
                    std::to_string(ingested) + " + dropped " +
                    std::to_string(dropped));
      }
      if (static_cast<int64_t>(driver.acked_items) > offered) {
        return fail("acks exceed offers on " + driver.name + ": acked " +
                    std::to_string(driver.acked_items) + ", offered " +
                    std::to_string(offered));
      }
      if (offered > static_cast<int64_t>(stream.size())) {
        return fail("offers exceed the stream on " + driver.name);
      }
    }
    result.fires = FailpointRegistry::Global().TotalFires();
  }  // failpoints disarm here; the server itself is still up

  // Fault-free epilogue: sealed tenants must answer, and when nothing made
  // the applied multiset ambiguous the served sketch must be bit-identical
  // to a sequential reference and clean under the Lemma 4/5 check.
  const std::string tenants_json = (*server)->service().TenantsJson();
  auto epilogue = SfqClient::Connect(server_options.socket_path);
  if (!epilogue.ok()) {
    return fail("server dead after disarm: " + epilogue.status().ToString());
  }
  for (TenantDriver& driver : drivers) {
    uint64_t epoch = 0;
    auto top = epilogue->TopK(driver.name, 10, &epoch);
    if (!top.ok()) {
      return fail("sealed " + driver.name +
                  " stopped answering: " + top.status().ToString());
    }
    if (epoch < driver.last_epoch) {
      return fail("sealed epoch went backwards on " + driver.name);
    }
    const int64_t offered =
        TenantJsonField(tenants_json, driver.name, "offered_items");
    const int64_t rejected =
        TenantJsonField(tenants_json, driver.name, "rejected_items");
    const int64_t dropped =
        TenantJsonField(tenants_json, driver.name, "dropped_items");
    const bool unambiguous = offered == static_cast<int64_t>(stream.size()) &&
                             rejected == 0 && dropped == 0;
    if (!unambiguous) continue;
    auto exported = epilogue->Export(driver.name);
    if (!exported.ok()) {
      return fail("export failed on " + driver.name + ": " +
                  exported.status().ToString());
    }
    auto reference = CountSketch::Make(plan.params);
    STREAMFREQ_RETURN_NOT_OK(reference.status());
    for (const ItemId q : stream) reference->Add(q, 1);
    std::string exported_bytes;
    std::string reference_bytes;
    exported->SerializeTo(&exported_bytes);
    reference->SerializeTo(&reference_bytes);
    if (exported_bytes != reference_bytes) {
      return fail("served sketch is not bit-identical to the sequential "
                  "reference on " + driver.name);
    }
    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        *exported, oracle, setup, plan.lemma_width);
    if (!violations.empty()) {
      return fail(violations.front().guarantee + std::string(": ") +
                  violations.front().detail);
    }
  }

  result.requests = (*server)->Stats().requests;
  (*server)->RequestStop();
  server->reset();
  std::remove(server_options.socket_path.c_str());
  return result;
}

// ---------------------------------------------------------------------------
// Kill-restart campaign (`sfq chaos --server-restart`): a real, durable
// `sfq serve` process that keeps dying — at armed failpoints (crash ==
// std::_Exit at the site) and under real SIGKILLs — and must keep coming
// back with its ledger intact.
// ---------------------------------------------------------------------------

/// One forked `sfq serve` child.
struct ChildServer {
  pid_t pid = -1;
  int last_wstatus = 0;

  /// Non-blocking liveness probe; reaps the child when it has exited and
  /// remembers how it died (for diagnostics on unexpected deaths).
  bool Alive() {
    if (pid < 0) return false;
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
      pid = -1;
      last_wstatus = wstatus;
      return false;
    }
    return true;
  }

  std::string DeathReason() const {
    if (WIFEXITED(last_wstatus)) {
      return "exit status " + std::to_string(WEXITSTATUS(last_wstatus));
    }
    if (WIFSIGNALED(last_wstatus)) {
      return "signal " + std::to_string(WTERMSIG(last_wstatus));
    }
    return "unknown wait status " + std::to_string(last_wstatus);
  }

  /// SIGKILL + reap (no-op when already gone).
  void Kill() {
    if (pid < 0) return;
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    pid = -1;
  }
};

/// Forks and execs `binary serve --socket ... --data-dir ...`. An empty
/// failpoint spec launches a clean (recovery-only) server. Child output is
/// routed to /dev/null so campaign output stays readable.
pid_t SpawnServe(const std::string& binary, const std::string& socket_path,
                 const std::string& data_dir, const std::string& failpoints,
                 uint64_t seed, const std::string& fsync_policy = "always") {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::close(devnull);
  }
  std::vector<std::string> args = {binary,        "serve",
                                   "--socket",    socket_path,
                                   "--data-dir",  data_dir,
                                   "--snapshot-every", "2048",
                                   "--fsync",     fsync_policy,
                                   "--seed",      std::to_string(seed)};
  if (!failpoints.empty()) {
    args.push_back("--failpoints");
    args.push_back(failpoints);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  std::_Exit(127);
}

/// Polls until the socket accepts a connection. A child that dies before
/// binding is an error — the caller decides whether that death was an armed
/// crash (relaunch) or a bug (fail the iteration).
Result<SfqClient> WaitReady(const std::string& socket_path,
                            ChildServer* child) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    auto client = SfqClient::Connect(socket_path);
    if (client.ok()) return client;
    if (!child->Alive()) {
      return Status::IoError("server process died before becoming ready (" +
                             child->DeathReason() + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::IoError("server never became ready on " + socket_path);
}

Result<ServerIterationResult> RunServerRestartIteration(
    const ChaosOptions& options, const std::string& io_dir, uint64_t index) {
  ServerIterationResult result;
  const auto fail = [&result](std::string detail) {
    result.outcome = ChaosOutcome::kGuaranteeFailure;
    result.detail = std::move(detail);
    return result;
  };

  // Seeded workload, sized so one iteration (including a couple of process
  // restarts) stays well under a second.
  Xoshiro256 rng(options.seed ^ ((index + 13) * kMix));
  const size_t n = 4096 + static_cast<size_t>(rng.UniformBelow(4096));
  auto gen = ZipfGenerator::Make(2000, 1.0,
                                 options.seed ^ ((index + 17) * kMix));
  STREAMFREQ_RETURN_NOT_OK(gen.status());
  const Stream stream = gen->Take(n);
  const Oracle oracle(stream);
  const VerifySetup setup = MakeVerifySetup(
      /*k=*/10, /*epsilon=*/0.2, /*width_scale=*/1.0,
      options.seed ^ ((index + 19) * kMix), oracle);
  STREAMFREQ_ASSIGN_OR_RETURN(VerifySketchPlan plan,
                              PlanVerifyCountSketch(setup));

  const std::string base = io_dir + "/sfq_chaos_rst_" +
                           std::to_string(options.seed) + "_" +
                           std::to_string(index);
  const std::string data_dir = base + ".data";
  const std::string socket_path = base + ".sock";
  std::error_code ec;
  std::filesystem::remove_all(data_dir, ec);
  std::remove(socket_path.c_str());

  const std::string schedule =
      options.failpoints.empty()
          ? ServerRestartScheduleForIteration(options.seed, index)
          : options.failpoints;

  // Rotate the WAL durability policy across iterations. Process kills (the
  // only death this campaign inflicts) preserve the page cache, so acked <=
  // offered must hold under every policy — including kBatch, whose bounded
  // ack-durability window only matters against a machine crash.
  const char* kFsyncPolicies[] = {"always", "never", "batch"};
  const std::string fsync_policy = kFsyncPolicies[rng.UniformBelow(3)];

  ChildServer child;
  // Masked to 63 bits: the CLI seed flag parses as a signed integer.
  child.pid = SpawnServe(options.server_binary, socket_path, data_dir,
                         schedule,
                         (options.seed ^ ((index + 1) * kMix)) >> 1,
                         fsync_policy);
  if (child.pid < 0) return Status::Internal("chaos: fork failed");

  const std::string tenant = "dur";
  uint64_t acked_items = 0;
  uint64_t last_epoch = 0;

  // Relaunches the daemon WITHOUT failpoints over the same data dir, waits
  // for it, and records what recovery reported. Epochs reset with the
  // process, so the monotonicity baseline resets too.
  auto relaunch = [&]() -> Result<SfqClient> {
    ++result.deaths;
    ++result.restarts;
    std::remove(socket_path.c_str());
    child.pid = SpawnServe(options.server_binary, socket_path, data_dir,
                           /*failpoints=*/"", 0, fsync_policy);
    if (child.pid < 0) return Status::Internal("chaos: fork failed");
    STREAMFREQ_ASSIGN_OR_RETURN(SfqClient client,
                                WaitReady(socket_path, &child));
    last_epoch = 0;
    // A crash before the create was applied leaves no tenant — that is
    // the correct recovery of an unacknowledged create, not an error.
    auto info = client.RecoveryInfo(tenant);
    if (info.ok() && info->find("\"recovered\":true") != std::string::npos) {
      ++result.recoveries;
    }
    return client;
  };

  // After a sever: the child may be mid-exit (connection already dropped,
  // process not yet reapable), so poll liveness and the socket together
  // instead of trusting one snapshot of either.
  auto reconnect = [&]() -> Result<SfqClient> {
    for (int attempt = 0; attempt < 400; ++attempt) {
      if (!child.Alive()) return relaunch();
      auto conn = SfqClient::Connect(socket_path);
      if (conn.ok()) return conn;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Status::IoError("server alive but unreachable on " + socket_path);
  };

  auto ready = WaitReady(socket_path, &child);
  if (!ready.ok()) {
    // Fresh dir, no tenants: nothing can fire before the bind, so a death
    // here is a bug, not an armed crash.
    child.Kill();
    return fail("server never came up: " + ready.status().ToString());
  }
  SfqClient client = std::move(*ready);

  // Create the durable tenant, surviving severs and armed crashes; a
  // create applied before the ack was lost answers "already exists" on the
  // retry, which is success.
  TenantSpec spec;
  spec.depth = plan.params.depth;
  spec.width = plan.params.width;
  spec.seed = plan.params.seed;
  spec.threads = 2;
  spec.batch_items = 512;
  spec.queue_batches = 4;
  spec.push_timeout_ms = 2;
  spec.policy = OverflowPolicy::kShed;
  spec.tracked = 256;
  bool created = false;
  for (int attempt = 0; attempt < 16 && !created; ++attempt) {
    const Status status = client.CreateTenant(tenant, spec);
    if (status.ok() ||
        (status.IsInvalidArgument() &&
         status.message().find("already exists") != std::string::npos)) {
      created = true;
    } else if (IsSever(status)) {
      ++result.severs;
      auto next = reconnect();
      if (!next.ok()) {
        return fail("reconnect failed during create: " +
                    next.status().ToString());
      }
      client = std::move(*next);
    } else {
      return fail("create failed: " + status.ToString());
    }
  }
  if (!created) return fail("create never succeeded through the faults");

  // At-most-once ingest: a severed chunk is never resent (retrying could
  // double-count an applied-but-unacked batch); reconciliation trusts the
  // server ledger. One randomized chunk boundary also takes a REAL SIGKILL
  // (50% of iterations), on top of whatever the armed schedule does.
  constexpr size_t kChunkItems = 512;
  const size_t total_chunks = (stream.size() + kChunkItems - 1) / kChunkItems;
  const uint64_t kill_at = rng.UniformBelow(total_chunks * 2);
  size_t chunk_index = 0;
  for (size_t begin = 0; begin < stream.size();
       begin += kChunkItems, ++chunk_index) {
    if (chunk_index == kill_at && child.Alive()) {
      child.Kill();
      auto next = relaunch();
      if (!next.ok()) {
        return fail("relaunch failed after SIGKILL: " +
                    next.status().ToString());
      }
      client = std::move(*next);
    }
    const size_t len = std::min(kChunkItems, stream.size() - begin);
    const std::span<const ItemId> chunk(stream.data() + begin, len);
    const Status status = client.Ingest(tenant, chunk);
    if (status.ok()) {
      acked_items += len;
    } else if (IsSever(status)) {
      ++result.severs;
      auto next = reconnect();
      if (!next.ok()) {
        return fail("reconnect failed mid-ingest: " +
                    next.status().ToString());
      }
      client = std::move(*next);
    }
    // else: an explicit server-side rejection (admission control or a
    // poisoned journal) — accounted in rejected_items, move on.

    if (chunk_index % 4 == 3) {
      uint64_t epoch = 0;
      auto top = client.TopK(tenant, 5, &epoch);
      if (top.ok()) {
        if (epoch < last_epoch) {
          return fail("epoch went backwards within one server process");
        }
        last_epoch = epoch;
      } else if (IsSever(top.status())) {
        ++result.severs;
        auto next = reconnect();
        if (!next.ok()) {
          return fail("reconnect failed mid-query: " +
                      next.status().ToString());
        }
        client = std::move(*next);
      } else {
        return fail("query failed: " + top.status().ToString());
      }
    }
  }

  // Seal + reconcile, surviving the schedule (the first process may still
  // be alive with benign faults armed).
  bool sealed = false;
  std::string statsz;
  for (int attempt = 0; attempt < 16 && !sealed; ++attempt) {
    auto epoch = client.Seal(tenant);
    if (epoch.ok()) {
      auto stats = client.Statsz();
      if (stats.ok()) {
        statsz = std::move(*stats);
        sealed = true;
        break;
      }
    }
    const Status bad = epoch.ok() ? Status::IoError("statsz severed")
                                  : epoch.status();
    if (!IsSever(bad)) return fail("seal failed: " + bad.ToString());
    ++result.severs;
    auto next = reconnect();
    if (!next.ok()) {
      return fail("reconnect failed during seal: " + next.status().ToString());
    }
    client = std::move(*next);
  }
  if (!sealed) return fail("seal never succeeded through the faults");

  // Conservation across every crash: the recovered prefix sits in
  // base_ingested, the post-recovery live ingest in items_ingested.
  const int64_t offered = TenantJsonField(statsz, tenant, "offered_items");
  const int64_t rejected = TenantJsonField(statsz, tenant, "rejected_items");
  const int64_t ingested = TenantJsonField(statsz, tenant, "items_ingested");
  const int64_t dropped = TenantJsonField(statsz, tenant, "dropped_items");
  const int64_t base_ingested =
      TenantJsonField(statsz, tenant, "base_ingested");
  const int64_t stale = TenantJsonField(statsz, tenant, "stale_serves");
  if (offered < 0 || rejected < 0 || ingested < 0 || dropped < 0 ||
      base_ingested < 0) {
    return fail("tenant missing from statsz: " + statsz);
  }
  result.dropped_items += static_cast<uint64_t>(dropped);
  if (stale > 0) result.stale_serves += static_cast<uint64_t>(stale);
  if (offered - rejected != base_ingested + ingested + dropped) {
    return fail("conservation broken across restarts: offered " +
                std::to_string(offered) + " - rejected " +
                std::to_string(rejected) + " != base " +
                std::to_string(base_ingested) + " + ingested " +
                std::to_string(ingested) + " + dropped " +
                std::to_string(dropped));
  }
  // fsync=always: every acked batch was journaled to stable storage before
  // the ack, so no crash can make acks exceed the durable offer.
  if (static_cast<int64_t>(acked_items) > offered) {
    return fail("acked items exceed recovered offers: acked " +
                std::to_string(acked_items) + ", offered " +
                std::to_string(offered));
  }
  if (offered > static_cast<int64_t>(stream.size())) {
    return fail("offers exceed the stream (duplicated replay?): offered " +
                std::to_string(offered) + ", sent " +
                std::to_string(stream.size()));
  }

  // Loss-free iterations (every chunk applied exactly once, nothing shed)
  // must serve a sketch bit-identical to the uninterrupted sequential run —
  // Count-Sketch linearity makes recovery exact, not approximate.
  if (offered == static_cast<int64_t>(stream.size()) && rejected == 0 &&
      dropped == 0) {
    // The schedule can still sever the connection (or crash the daemon)
    // between the seal ack and this export; the seal snapshot is already
    // durable at that point, so reconnect and re-ask the recovered server.
    auto exported = client.Export(tenant);
    for (int attempt = 0;
         attempt < 16 && !exported.ok() && IsSever(exported.status());
         ++attempt) {
      ++result.severs;
      auto next = reconnect();
      if (!next.ok()) {
        return fail("reconnect failed during export: " +
                    next.status().ToString());
      }
      client = std::move(*next);
      exported = client.Export(tenant);
    }
    if (!exported.ok()) {
      return fail("export failed after seal: " +
                  exported.status().ToString());
    }
    auto reference = CountSketch::Make(plan.params);
    STREAMFREQ_RETURN_NOT_OK(reference.status());
    for (const ItemId q : stream) reference->Add(q, 1);
    std::string exported_bytes;
    std::string reference_bytes;
    exported->SerializeTo(&exported_bytes);
    reference->SerializeTo(&reference_bytes);
    if (exported_bytes != reference_bytes) {
      return fail("recovered sketch is not bit-identical to the sequential "
                  "reference");
    }
    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        *exported, oracle, setup, plan.lemma_width);
    if (!violations.empty()) {
      return fail(violations.front().guarantee + std::string(": ") +
                  violations.front().detail);
    }
    ++result.identity_checks;
  }

  result.requests = static_cast<uint64_t>(
      std::max<int64_t>(0, TenantJsonField(statsz, "server", "requests")));

  // Teardown: ask nicely, then make sure.
  const Status bye = client.Shutdown();
  (void)bye;
  for (int i = 0; i < 400 && child.Alive(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  child.Kill();
  std::filesystem::remove_all(data_dir, ec);
  std::remove(socket_path.c_str());
  return result;
}

}  // namespace

std::string ChaosScheduleForIteration(uint64_t seed, uint64_t index) {
  Xoshiro256 rng(seed ^ kScheduleSalt ^ ((index + 1) * kMix));
  const auto chance = [&rng](uint64_t percent) {
    return rng.UniformBelow(100) < percent;
  };
  std::vector<std::string> clauses;
  // Crash clauses ALWAYS carry a fire budget: an unbounded always-crash
  // worker would requeue and respawn forever.
  if (chance(35)) {
    clauses.push_back("ingestor.worker_batch=crash*" +
                      std::to_string(1 + rng.UniformBelow(3)));
  } else if (chance(25)) {
    clauses.push_back("ingestor.worker_batch=stall:1@0.02");
  }
  if (chance(20)) clauses.push_back("batch_queue.push=error@0.02");
  if (chance(20)) clauses.push_back("batch_queue.pop=stall:1@0.02");
  if (chance(25)) clauses.push_back("ingestor.publish=error@0.5");
  if (chance(30)) {
    clauses.push_back(std::string("sketch_io.write=") +
                      (chance(50) ? "torn*1" : "error*1"));
  }
  if (chance(20)) clauses.push_back("sketch_io.rename=error*1");
  if (chance(30)) {
    clauses.push_back(std::string("sketch_io.read=") +
                      (chance(50) ? "bitflip*1" : "error*1"));
  }
  if (clauses.empty()) clauses.push_back("ingestor.worker_batch=crash*1");

  std::string spec;
  for (const std::string& clause : clauses) {
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  return spec;
}

Result<ChaosReport> RunChaosCampaign(const ChaosOptions& options) {
  if (options.iterations == 0) {
    return Status::InvalidArgument("chaos: iterations must be >= 1");
  }
  std::string io_dir = options.io_dir;
  if (io_dir.empty()) {
    std::error_code ec;
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IoError("chaos: no temp directory: " + ec.message());
    io_dir = tmp.string();
  }

  ChaosReport report;
  for (uint64_t index = 0; index < options.iterations; ++index) {
    STREAMFREQ_ASSIGN_OR_RETURN(IterationResult iteration,
                                RunIteration(options, io_dir, index));
    ++report.iterations;
    report.fault_fires += iteration.fires;
    if (iteration.fires > 0) ++report.faulted_iterations;
    report.worker_respawns += iteration.stats.worker_respawns;
    report.dropped_items += iteration.stats.DroppedItems();
    if (iteration.io_attempted) ++report.io_round_trips;
    if (iteration.io_faulted) ++report.io_faults;
    switch (iteration.outcome) {
      case ChaosOutcome::kVerified:
        ++report.verified;
        break;
      case ChaosOutcome::kCleanError:
        ++report.clean_errors;
        break;
      case ChaosOutcome::kGuaranteeFailure: {
        ++report.guarantee_failures;
        ChaosFailure failure;
        failure.index = index;
        failure.program =
            FormatProgram(ProgramFromSeed(options.seed ^ kProgramSalt, index));
        failure.schedule = options.failpoints.empty()
                               ? ChaosScheduleForIteration(options.seed, index)
                               : options.failpoints;
        failure.detail = iteration.detail;
        report.failures.push_back(std::move(failure));
        break;
      }
    }
  }
  return report;
}

std::string ServerChaosScheduleForIteration(uint64_t seed, uint64_t index) {
  Xoshiro256 rng(seed ^ kScheduleSalt ^ ((index + 5) * kMix));
  const auto chance = [&rng](uint64_t percent) {
    return rng.UniformBelow(100) < percent;
  };
  std::vector<std::string> clauses;
  // Connection-level faults: each severs one conversation; the drivers
  // reconnect and reconciliation trusts the server-side ledger.
  if (chance(40)) clauses.push_back("server.accept=error@0.1");
  if (chance(40)) clauses.push_back("server.read=error@0.03");
  if (chance(40)) clauses.push_back("server.write=error@0.03");
  // Staleness: snapshot refreshes withheld on a coin flip.
  if (chance(40)) clauses.push_back("server.publish=error@0.5");
  // Back-pressure behind the protocol: stalled queues arm the tenants'
  // shed/sample admission control, crashed workers force respawns.
  if (chance(25)) {
    clauses.push_back("ingestor.worker_batch=crash*" +
                      std::to_string(1 + rng.UniformBelow(2)));
  }
  if (chance(20)) clauses.push_back("batch_queue.pop=stall:1@0.02");
  if (chance(20)) clauses.push_back("ingestor.publish=error@0.5");
  if (clauses.empty()) clauses.push_back("server.write=error@0.05");

  std::string spec;
  for (const std::string& clause : clauses) {
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  return spec;
}

Result<ChaosReport> RunServerChaosCampaign(const ChaosOptions& options) {
  if (options.iterations == 0) {
    return Status::InvalidArgument("chaos: iterations must be >= 1");
  }
  std::string io_dir = options.io_dir;
  if (io_dir.empty()) {
    std::error_code ec;
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IoError("chaos: no temp directory: " + ec.message());
    io_dir = tmp.string();
  }

  ChaosReport report;
  for (uint64_t index = 0; index < options.iterations; ++index) {
    STREAMFREQ_ASSIGN_OR_RETURN(ServerIterationResult iteration,
                                RunServerIteration(options, io_dir, index));
    ++report.iterations;
    report.fault_fires += iteration.fires;
    if (iteration.fires > 0) ++report.faulted_iterations;
    report.worker_respawns += iteration.worker_respawns;
    report.dropped_items += iteration.dropped_items;
    report.server_requests += iteration.requests;
    report.server_severs += iteration.severs;
    report.stale_serves += iteration.stale_serves;
    switch (iteration.outcome) {
      case ChaosOutcome::kVerified:
        ++report.verified;
        break;
      case ChaosOutcome::kCleanError:
        ++report.clean_errors;
        break;
      case ChaosOutcome::kGuaranteeFailure: {
        ++report.guarantee_failures;
        ChaosFailure failure;
        failure.index = index;
        failure.schedule =
            options.failpoints.empty()
                ? ServerChaosScheduleForIteration(options.seed, index)
                : options.failpoints;
        failure.detail = iteration.detail;
        report.failures.push_back(std::move(failure));
        break;
      }
    }
  }
  return report;
}

std::string ServerRestartScheduleForIteration(uint64_t seed, uint64_t index) {
  Xoshiro256 rng(seed ^ kScheduleSalt ^ ((index + 9) * kMix));
  const auto chance = [&rng](uint64_t percent) {
    return rng.UniformBelow(100) < percent;
  };
  // Exactly one process-death clause, probability-throttled and *1-budgeted
  // (each iteration dies at most once at a failpoint; the real SIGKILL in
  // the driver is on top). Each site leaves a different on-disk shape:
  //   wal.append       death before the record hits the journal
  //   wal.fsync        record written but not yet forced (page cache)
  //   snapshot.publish death before the snapshot's commit rename
  //   sketch_io.write  death mid-blob-write (temp file only)
  //   sketch_io.rename temp fully written, rename never happened
  static constexpr const char* kDeathSites[] = {
      "wal.append", "wal.fsync", "snapshot.publish", "sketch_io.write",
      "sketch_io.rename"};
  const char* death = kDeathSites[rng.UniformBelow(5)];
  std::vector<std::string> clauses;
  clauses.push_back(std::string(death) + "=crash@0.08*1");
  // Benign companions: severed acks (the applied-but-unacked ambiguity)
  // and, when the death site leaves wal.append free, one torn journal
  // record — which poisons the store into loud rejections, not corruption.
  if (chance(25)) clauses.push_back("server.write=error@0.02");
  if (chance(15) && std::string(death) != "wal.append") {
    clauses.push_back("wal.append=torn@0.05*1");
  }

  std::string spec;
  for (const std::string& clause : clauses) {
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  return spec;
}

std::string TreeChaosScheduleForIteration(uint64_t seed, uint64_t index) {
  Xoshiro256 rng(seed ^ kScheduleSalt ^ ((index + 13) * kMix));
  const auto chance = [&rng](uint64_t percent) {
    return rng.UniformBelow(100) < percent;
  };
  std::vector<std::string> clauses;
  // Admission faults at the leaves: rejected batches and recorded sheds —
  // the mass the conservation ledger must carry up the tree.
  if (chance(30)) {
    clauses.push_back("dist.ingest=error@0.05");
  } else if (chance(25)) {
    clauses.push_back("dist.ingest=torn@0.05");
  }
  // Uplink frame faults: severed, torn, or bit-flipped in flight. Torn and
  // flipped frames must die at the CRC and count as severs, never as
  // applied garbage.
  if (chance(35)) {
    clauses.push_back("dist.ship=error@0.08");
  } else if (chance(25)) {
    clauses.push_back("dist.ship=torn@0.06");
  } else if (chance(20)) {
    clauses.push_back("dist.ship=bitflip@0.05");
  }
  // Dropped deliveries re-ack the OLD seqno; lost acks force verbatim
  // resends — both must dedup exactly.
  if (chance(30)) clauses.push_back("dist.deliver=error@0.08");
  if (chance(35)) clauses.push_back("dist.ack=error@0.1");
  // Node loss ALWAYS carries a budget: an unbounded crash clause would
  // eventually kill every node and leave nothing to assert.
  if (chance(30)) {
    clauses.push_back("dist.node=crash@0.02*" +
                      std::to_string(1 + rng.UniformBelow(2)));
  }
  if (clauses.empty()) clauses.push_back("dist.ack=error@0.1");

  std::string spec;
  for (const std::string& clause : clauses) {
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  return spec;
}

namespace {

struct TreeIterationResult {
  ChaosOutcome outcome = ChaosOutcome::kVerified;
  std::string detail;
  MergeTreeStats stats;
  uint64_t fires = 0;
  uint64_t dropped_items = 0;
  bool identity_checked = false;
};

Result<TreeIterationResult> RunTreeIteration(const ChaosOptions& options,
                                             uint64_t index) {
  const FuzzProgram program =
      ProgramFromSeed(options.seed ^ kProgramSalt, index);
  STREAMFREQ_ASSIGN_OR_RETURN(Stream stream, MaterializeStream(program));

  // Size the sketch for the full stream; degraded runs are judged against
  // the covered (effective) stream, same discipline as RunIteration.
  const Oracle full_oracle(stream);
  const VerifySetup sizing = MakeVerifySetup(
      program.k, program.epsilon, program.width_scale, program.seed,
      full_oracle);
  STREAMFREQ_ASSIGN_OR_RETURN(VerifySketchPlan plan,
                              PlanVerifyCountSketch(sizing));

  // Randomized topology: flat star, balanced, or ragged random tree over
  // fanout 1..8 and depth 1..4.
  Xoshiro256 rng(options.seed ^ ((index + 11) * kMix));
  const uint64_t workers = 2 + rng.UniformBelow(7);
  Result<TreeTopology> topo_result = [&]() -> Result<TreeTopology> {
    const uint64_t shape = rng.UniformBelow(3);
    if (shape == 0) return BuildBalancedTree(workers, 0);  // flat star
    if (shape == 1) return BuildBalancedTree(workers, 2 + rng.UniformBelow(3));
    return BuildRandomTree(workers, 1 + rng.UniformBelow(8),
                           1 + rng.UniformBelow(4), &rng);
  }();
  STREAMFREQ_RETURN_NOT_OK(topo_result.status());
  const TreeTopology& topo = *topo_result;

  const size_t tracked = std::max<size_t>(16, 2 * program.k);
  Result<MergeTreeSim> sim_result =
      MergeTreeSim::Make(*topo_result, plan.params, tracked);
  STREAMFREQ_RETURN_NOT_OK(sim_result.status());
  MergeTreeSim& sim = *sim_result;

  const std::string schedule =
      options.failpoints.empty()
          ? TreeChaosScheduleForIteration(options.seed, index)
          : options.failpoints;
  ScopedFailpoints failpoints(schedule,
                              options.seed ^ ((index + 1) * kMix));
  STREAMFREQ_RETURN_NOT_OK(failpoints.status());

  TreeIterationResult result;
  auto finish = [&result, &sim] {
    result.stats = sim.stats();
    result.fires = FailpointRegistry::Global().TotalFires();
    const DistLedger root = sim.root_ledger();
    result.dropped_items = root.rejected + root.dropped;
  };
  auto fail = [&](std::string detail) {
    result.outcome = ChaosOutcome::kGuaranteeFailure;
    result.detail = std::move(detail);
    finish();
    return result;
  };

  // Stripe the stream across the leaves in contiguous slices, then offer
  // interleaved batches with shipping rounds mixed in — deltas are in
  // flight while other leaves are still ingesting.
  const uint64_t leaves = topo.leaves.size();
  const uint64_t slice = (stream.size() + leaves - 1) / leaves;
  std::vector<uint64_t> offsets(leaves, 0);
  const uint64_t batch = 128 + rng.UniformBelow(4) * 128;
  const uint64_t epoch_at = rng.UniformBelow(stream.size() + 1);
  uint64_t offered_so_far = 0;
  bool epoch_marked = false;
  bool exhausted = false;
  while (!exhausted) {
    exhausted = true;
    for (uint64_t li = 0; li < leaves; ++li) {
      const uint64_t begin = li * slice;
      const uint64_t end = std::min<uint64_t>(begin + slice, stream.size());
      const uint64_t len = end > begin ? end - begin : 0;
      if (offsets[li] >= len) continue;
      exhausted = false;
      const uint64_t leaf = topo.leaves[li];
      const uint64_t n = std::min<uint64_t>(batch, len - offsets[li]);
      if (!sim.alive(leaf)) {
        offsets[li] = len;  // a dead leaf's remaining slice is never offered
        continue;
      }
      const Status offer = sim.Offer(
          leaf, std::span<const ItemId>(stream.data() + begin + offsets[li],
                                        n));
      offsets[li] += n;
      offered_so_far += n;
      if (!offer.ok() && !offer.IsNotFound()) {
        result.outcome = ChaosOutcome::kCleanError;
        result.detail = offer.ToString();
        finish();
        return result;
      }
      if (!epoch_marked && offered_so_far >= epoch_at) {
        sim.MarkEpoch();
        epoch_marked = true;
      }
    }
    if (rng.UniformBelow(2) == 0) {
      const Result<bool> round = sim.ShipRound();
      if (!round.ok()) return fail("ship round: " + round.status().ToString());
    }
  }
  sim.Seal();
  const Status drained = sim.Drain(64 + 8 * topo.max_depth());
  if (!drained.ok()) return fail("drain: " + drained.ToString());

  // Exercise the root query surface (crash = failure; values are checked
  // below through the guarantee machinery).
  (void)sim.ApproxTop(program.k);
  const Result<std::vector<ItemCount>> change = sim.MaxChange(program.k);
  if (!change.ok()) return fail("max-change: " + change.status().ToString());

  // Law 1+2: conservation and composition at every node, and bit-identity
  // of every node's sketch against its covered-prefix reference.
  if (const Status invariants = sim.CheckInvariants(); !invariants.ok()) {
    return fail(invariants.ToString());
  }

  // Guarantee check over the effective (covered) stream: bounds widen by
  // exactly the composed shed mass.
  Stream effective;
  for (const CoverageEntry& cov : sim.RootCovered()) {
    const std::vector<ItemId>& items = sim.LeafIngested(cov.leaf_id);
    effective.insert(effective.end(), items.begin(),
                     items.begin() + static_cast<ptrdiff_t>(cov.count));
  }
  if (!effective.empty()) {
    const Oracle effective_oracle(effective);
    const VerifySetup check_setup = MakeVerifySetup(
        program.k, program.epsilon, program.width_scale, program.seed,
        effective_oracle);
    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        sim.root_sketch(), effective_oracle, check_setup, plan.lemma_width);
    if (!violations.empty()) {
      return fail(violations.front().guarantee + std::string(": ") +
                  violations.front().detail);
    }
  }

  // Loss-free runs must be bit-identical to a flat one-shot Merge of all
  // leaf sketches over the full stream.
  const DistLedger root_ledger = sim.root_ledger();
  const bool loss_free = root_ledger.offered == stream.size() &&
                         root_ledger.rejected == 0 &&
                         root_ledger.dropped == 0 &&
                         root_ledger.ingested == stream.size();
  if (loss_free) {
    Result<CountSketch> flat = CountSketch::Make(plan.params);
    STREAMFREQ_RETURN_NOT_OK(flat.status());
    for (uint64_t leaf : topo.leaves) {
      Result<CountSketch> leaf_sketch = CountSketch::Make(plan.params);
      STREAMFREQ_RETURN_NOT_OK(leaf_sketch.status());
      leaf_sketch->BatchAdd(
          std::span<const ItemId>(sim.LeafIngested(leaf)));
      STREAMFREQ_RETURN_NOT_OK(flat->Merge(*leaf_sketch));
    }
    std::string want, got;
    flat->SerializeTo(&want);
    sim.root_sketch().SerializeTo(&got);
    if (want != got) {
      return fail("loss-free root sketch differs from flat one-shot merge");
    }
    result.identity_checked = true;
  }

  finish();
  return result;
}

}  // namespace

Result<ChaosReport> RunTreeChaosCampaign(const ChaosOptions& options) {
  if (options.iterations == 0) {
    return Status::InvalidArgument("chaos: iterations must be >= 1");
  }
  ChaosReport report;
  for (uint64_t index = 0; index < options.iterations; ++index) {
    STREAMFREQ_ASSIGN_OR_RETURN(TreeIterationResult iteration,
                                RunTreeIteration(options, index));
    ++report.iterations;
    report.fault_fires += iteration.fires;
    if (iteration.fires > 0) ++report.faulted_iterations;
    report.dropped_items += iteration.dropped_items;
    report.deltas_shipped += iteration.stats.deltas_shipped;
    report.delta_dedups += iteration.stats.delta_dedups;
    report.severed_links += iteration.stats.severed_links;
    report.nodes_lost += iteration.stats.nodes_lost;
    if (iteration.identity_checked) ++report.identity_checks;
    switch (iteration.outcome) {
      case ChaosOutcome::kVerified:
        ++report.verified;
        break;
      case ChaosOutcome::kCleanError:
        ++report.clean_errors;
        break;
      case ChaosOutcome::kGuaranteeFailure: {
        ++report.guarantee_failures;
        ChaosFailure failure;
        failure.index = index;
        failure.program =
            FormatProgram(ProgramFromSeed(options.seed ^ kProgramSalt, index));
        failure.schedule =
            options.failpoints.empty()
                ? TreeChaosScheduleForIteration(options.seed, index)
                : options.failpoints;
        failure.detail = iteration.detail;
        report.failures.push_back(std::move(failure));
        break;
      }
    }
  }
  return report;
}

Result<ChaosReport> RunServerRestartCampaign(const ChaosOptions& options) {
  if (options.iterations == 0) {
    return Status::InvalidArgument("chaos: iterations must be >= 1");
  }
  if (options.server_binary.empty()) {
    return Status::InvalidArgument(
        "chaos: --server-restart needs the sfq binary path");
  }
  std::string io_dir = options.io_dir;
  if (io_dir.empty()) {
    std::error_code ec;
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IoError("chaos: no temp directory: " + ec.message());
    io_dir = tmp.string();
  }

  ChaosReport report;
  for (uint64_t index = 0; index < options.iterations; ++index) {
    STREAMFREQ_ASSIGN_OR_RETURN(
        ServerIterationResult iteration,
        RunServerRestartIteration(options, io_dir, index));
    ++report.iterations;
    if (iteration.deaths > 0) ++report.faulted_iterations;
    report.dropped_items += iteration.dropped_items;
    report.server_requests += iteration.requests;
    report.server_severs += iteration.severs;
    report.stale_serves += iteration.stale_serves;
    report.server_restarts += iteration.restarts;
    report.crash_kills += iteration.deaths;
    report.recoveries += iteration.recoveries;
    report.identity_checks += iteration.identity_checks;
    switch (iteration.outcome) {
      case ChaosOutcome::kVerified:
        ++report.verified;
        break;
      case ChaosOutcome::kCleanError:
        ++report.clean_errors;
        break;
      case ChaosOutcome::kGuaranteeFailure: {
        ++report.guarantee_failures;
        ChaosFailure failure;
        failure.index = index;
        failure.schedule =
            options.failpoints.empty()
                ? ServerRestartScheduleForIteration(options.seed, index)
                : options.failpoints;
        failure.detail = iteration.detail;
        report.failures.push_back(std::move(failure));
        break;
      }
    }
  }
  return report;
}

}  // namespace streamfreq
