#include "verify/chaos.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/parallel_ingestor.h"
#include "core/count_sketch.h"
#include "core/sketch_io.h"
#include "hash/random.h"
#include "stream/types.h"
#include "util/failpoint.h"
#include "util/macros.h"
#include "verify/checkers.h"
#include "verify/oracle.h"
#include "verify/program.h"

namespace streamfreq {

namespace {

constexpr uint64_t kProgramSalt = 0xC4A05C4A05ULL;
constexpr uint64_t kScheduleSalt = 0x5C4EDC4EDULL;
constexpr uint64_t kMix = 0x9E3779B97F4A7C15ULL;

/// The input multiset minus the recorded spill, in input order. Order is
/// irrelevant to the oracle (it counts), so any linearization works.
Stream EffectiveStream(const Stream& stream, const std::vector<ItemId>& spill) {
  if (spill.empty()) return stream;
  std::map<ItemId, uint64_t> dropped;
  for (const ItemId id : spill) ++dropped[id];
  Stream effective;
  effective.reserve(stream.size() - spill.size());
  for (const ItemId id : stream) {
    const auto it = dropped.find(id);
    if (it != dropped.end() && it->second > 0) {
      --it->second;
      continue;
    }
    effective.push_back(id);
  }
  return effective;
}

struct IterationResult {
  ChaosOutcome outcome = ChaosOutcome::kVerified;
  std::string detail;
  IngestStats stats;
  uint64_t fires = 0;
  bool io_attempted = false;
  bool io_faulted = false;
};

Result<IterationResult> RunIteration(const ChaosOptions& options,
                                     const std::string& io_dir,
                                     uint64_t index) {
  const FuzzProgram program =
      ProgramFromSeed(options.seed ^ kProgramSalt, index);
  STREAMFREQ_ASSIGN_OR_RETURN(Stream stream, MaterializeStream(program));

  // Size the sketch for the full stream (what a production deployment
  // would provision for); degraded runs are judged later against what
  // actually arrived.
  const Oracle full_oracle(stream);
  const VerifySetup sizing = MakeVerifySetup(
      program.k, program.epsilon, program.width_scale, program.seed,
      full_oracle);
  STREAMFREQ_ASSIGN_OR_RETURN(VerifySketchPlan plan,
                              PlanVerifyCountSketch(sizing));

  const std::string schedule =
      options.failpoints.empty()
          ? ChaosScheduleForIteration(options.seed, index)
          : options.failpoints;
  ScopedFailpoints failpoints(schedule,
                              options.seed ^ ((index + 1) * kMix));
  STREAMFREQ_RETURN_NOT_OK(failpoints.status());

  Xoshiro256 rng(options.seed ^ ((index + 7) * kMix));
  IngestOptions ingest;
  ingest.threads = 2 + static_cast<size_t>(rng.UniformBelow(2));
  ingest.batch_items = size_t{256} << rng.UniformBelow(3);
  ingest.queue_batches = 4;
  ingest.push_timeout_ms = 5;
  ingest.overflow_policy = rng.UniformBelow(2) == 0 ? OverflowPolicy::kShed
                                                    : OverflowPolicy::kSample;
  ingest.sample_keep_one_in = 4;
  ingest.record_shed = true;

  IterationResult result;
  auto finish_fires = [&result] {
    result.fires = FailpointRegistry::Global().TotalFires();
  };

  const auto factory = [&plan]() { return CountSketch::Make(plan.params); };
  auto ingestor =
      ParallelIngestor<CountSketch>::Make(factory, ingest);
  if (!ingestor.ok()) {
    result.outcome = ChaosOutcome::kCleanError;
    result.detail = ingestor.status().ToString();
    finish_fires();
    return result;
  }
  const Status ingest_status =
      (*ingestor)->Ingest(std::span<const ItemId>(stream));
  Result<CountSketch> merged = (*ingestor)->Finish();
  result.stats = (*ingestor)->Stats();
  const std::vector<ItemId> spill = (*ingestor)->SpilledItems();

  if (!ingest_status.ok() || !merged.ok()) {
    result.outcome = ChaosOutcome::kCleanError;
    result.detail =
        (!ingest_status.ok() ? ingest_status : merged.status()).ToString();
    finish_fires();
    return result;
  }

  // Conservation: every offered item is either in a sketch or accounted
  // dropped, and the recorded spill is exactly the dropped mass.
  if (result.stats.items_ingested + result.stats.DroppedItems() !=
          stream.size() ||
      spill.size() != result.stats.DroppedItems()) {
    result.outcome = ChaosOutcome::kGuaranteeFailure;
    result.detail = "mass accounting broken: offered " +
                    std::to_string(stream.size()) + ", ingested " +
                    std::to_string(result.stats.items_ingested) +
                    ", dropped " +
                    std::to_string(result.stats.DroppedItems()) +
                    ", spill " + std::to_string(spill.size());
    finish_fires();
    return result;
  }

  // Guarantee check against the effective stream: the bounds widen by
  // exactly the shed mass, nothing more.
  const Stream effective = EffectiveStream(stream, spill);
  if (!effective.empty()) {
    const Oracle effective_oracle(effective);
    const VerifySetup check_setup = MakeVerifySetup(
        program.k, program.epsilon, program.width_scale, program.seed,
        effective_oracle);
    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        *merged, effective_oracle, check_setup, plan.lemma_width);
    if (!violations.empty()) {
      result.outcome = ChaosOutcome::kGuaranteeFailure;
      result.detail = violations.front().guarantee + std::string(": ") +
                      violations.front().detail;
      finish_fires();
      return result;
    }
  }

  // Round-trip the surviving sketch through persistence with the
  // sketch_io.* failpoints still armed: outcomes are a clean Status or a
  // loaded sketch whose estimates match the in-memory one exactly.
  if (options.exercise_io) {
    result.io_attempted = true;
    const std::string path =
        io_dir + "/sfq_chaos_" + std::to_string(options.seed) + "_" +
        std::to_string(index) + ".skf";
    const Status write_status = WriteSketchFile(path, *merged);
    if (!write_status.ok()) {
      result.io_faulted = true;
    } else {
      Result<CountSketch> loaded = ReadSketchFile(path);
      if (!loaded.ok()) {
        result.io_faulted = true;
      } else {
        for (const ItemId q : sizing.probes) {
          if (loaded->Estimate(q) != merged->Estimate(q)) {
            result.outcome = ChaosOutcome::kGuaranteeFailure;
            result.detail =
                "persistence round trip changed the estimate of item " +
                std::to_string(q);
            break;
          }
        }
      }
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }

  finish_fires();
  return result;
}

}  // namespace

std::string ChaosScheduleForIteration(uint64_t seed, uint64_t index) {
  Xoshiro256 rng(seed ^ kScheduleSalt ^ ((index + 1) * kMix));
  const auto chance = [&rng](uint64_t percent) {
    return rng.UniformBelow(100) < percent;
  };
  std::vector<std::string> clauses;
  // Crash clauses ALWAYS carry a fire budget: an unbounded always-crash
  // worker would requeue and respawn forever.
  if (chance(35)) {
    clauses.push_back("ingestor.worker_batch=crash*" +
                      std::to_string(1 + rng.UniformBelow(3)));
  } else if (chance(25)) {
    clauses.push_back("ingestor.worker_batch=stall:1@0.02");
  }
  if (chance(20)) clauses.push_back("batch_queue.push=error@0.02");
  if (chance(20)) clauses.push_back("batch_queue.pop=stall:1@0.02");
  if (chance(25)) clauses.push_back("ingestor.publish=error@0.5");
  if (chance(30)) {
    clauses.push_back(std::string("sketch_io.write=") +
                      (chance(50) ? "torn*1" : "error*1"));
  }
  if (chance(20)) clauses.push_back("sketch_io.rename=error*1");
  if (chance(30)) {
    clauses.push_back(std::string("sketch_io.read=") +
                      (chance(50) ? "bitflip*1" : "error*1"));
  }
  if (clauses.empty()) clauses.push_back("ingestor.worker_batch=crash*1");

  std::string spec;
  for (const std::string& clause : clauses) {
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  return spec;
}

Result<ChaosReport> RunChaosCampaign(const ChaosOptions& options) {
  if (options.iterations == 0) {
    return Status::InvalidArgument("chaos: iterations must be >= 1");
  }
  std::string io_dir = options.io_dir;
  if (io_dir.empty()) {
    std::error_code ec;
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IoError("chaos: no temp directory: " + ec.message());
    io_dir = tmp.string();
  }

  ChaosReport report;
  for (uint64_t index = 0; index < options.iterations; ++index) {
    STREAMFREQ_ASSIGN_OR_RETURN(IterationResult iteration,
                                RunIteration(options, io_dir, index));
    ++report.iterations;
    report.fault_fires += iteration.fires;
    if (iteration.fires > 0) ++report.faulted_iterations;
    report.worker_respawns += iteration.stats.worker_respawns;
    report.dropped_items += iteration.stats.DroppedItems();
    if (iteration.io_attempted) ++report.io_round_trips;
    if (iteration.io_faulted) ++report.io_faults;
    switch (iteration.outcome) {
      case ChaosOutcome::kVerified:
        ++report.verified;
        break;
      case ChaosOutcome::kCleanError:
        ++report.clean_errors;
        break;
      case ChaosOutcome::kGuaranteeFailure: {
        ++report.guarantee_failures;
        ChaosFailure failure;
        failure.index = index;
        failure.program =
            FormatProgram(ProgramFromSeed(options.seed ^ kProgramSalt, index));
        failure.schedule = options.failpoints.empty()
                               ? ChaosScheduleForIteration(options.seed, index)
                               : options.failpoints;
        failure.detail = iteration.detail;
        report.failures.push_back(std::move(failure));
        break;
      }
    }
  }
  return report;
}

}  // namespace streamfreq
