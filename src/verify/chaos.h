// Chaos harness: fuzz programs replayed under randomized fault injection.
//
// Each iteration takes one seeded FuzzProgram (the same grammar `sfq
// verify` replays), arms a bounded failpoint schedule, and pushes the
// stream through the degraded ParallelIngestor (shed/sample overflow
// policies with the spill recorded). The invariant under test is the
// robustness contract of the whole pipeline:
//
//   every iteration ends in a clean error Status, or in a sketch that
//   passes its GuaranteeChecker against the *effective* stream — the
//   items that actually reached a worker, i.e. the input multiset minus
//   the recorded shed mass. Nothing crashes, nothing silently lies.
//
// Checking against the effective stream is what "widen the bounds by
// exactly the shed mass" means operationally: the oracle, probes, and
// residual-F2 term are recomputed from the surviving items, so a degraded
// run is held to the same Lemma 4/5 bound as a clean one over the stream
// it really saw. IngestStats conservation (offered == ingested + dropped)
// is asserted on every iteration as well.
//
// Schedules are deterministic in (seed, iteration): crash clauses always
// carry a *N budget — an unbounded always-crash schedule would respawn
// forever — and stall parameters stay in the low milliseconds. A saved
// sketch is also round-tripped through sketch_io under the I/O failpoints
// when `exercise_io` is set.
//
// Entry points: `sfq chaos` (scripts/check.sh runs a 200-iteration quick
// profile; the nightly campaign runs longer) and tests/chaos_test.cc.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace streamfreq {

/// Campaign configuration.
struct ChaosOptions {
  uint64_t seed = 1;          ///< master seed for programs + schedules
  uint64_t iterations = 200;  ///< fuzz programs to replay under faults
  /// Failpoint spec applied to every iteration. Empty = derive a fresh
  /// bounded schedule from (seed, iteration). Beware unbounded crash
  /// clauses here: `...=crash` with no *N budget respawns forever.
  std::string failpoints;
  /// Also save/load each surviving sketch through sketch_io (exercising
  /// the sketch_io.* failpoints) in `io_dir`.
  bool exercise_io = true;
  /// Directory for round-trip files; empty = the system temp directory.
  std::string io_dir;
  /// Path to the `sfq` binary, required by the kill-restart campaign
  /// (`sfq chaos --server-restart` passes its own image).
  std::string server_binary;
};

/// What one iteration ended as.
enum class ChaosOutcome : uint8_t {
  kVerified,         ///< sketch passed its guarantee check
  kCleanError,       ///< a Status surfaced (the acceptable failure mode)
  kGuaranteeFailure, ///< sketch exists but violates its bounds — a bug
};

/// A failed iteration, kept for reproduction.
struct ChaosFailure {
  uint64_t index = 0;
  std::string program;   ///< replay line for `sfq verify --program`
  std::string schedule;  ///< the failpoint spec that was armed
  std::string detail;    ///< first violation / accounting mismatch
};

/// Campaign totals. The campaign "passes" iff guarantee_failures == 0.
struct ChaosReport {
  uint64_t iterations = 0;
  uint64_t verified = 0;
  uint64_t clean_errors = 0;
  uint64_t guarantee_failures = 0;
  uint64_t fault_fires = 0;       ///< failpoint activations across the run
  uint64_t faulted_iterations = 0;  ///< iterations where >= 1 fault fired
  uint64_t worker_respawns = 0;
  uint64_t dropped_items = 0;     ///< shed + sampled-away + abandoned mass
  uint64_t io_round_trips = 0;    ///< sketch_io round trips attempted
  uint64_t io_faults = 0;         ///< round trips that failed cleanly
  uint64_t server_requests = 0;   ///< requests processed (server campaign)
  uint64_t server_severs = 0;     ///< client-visible connection severs
  uint64_t stale_serves = 0;      ///< queries served a withheld snapshot
  uint64_t server_restarts = 0;   ///< daemon relaunches (restart campaign)
  uint64_t crash_kills = 0;       ///< process deaths: failpoint or SIGKILL
  uint64_t recoveries = 0;        ///< relaunches that reported recovered state
  uint64_t identity_checks = 0;   ///< loss-free runs verified bit-identical
  uint64_t deltas_shipped = 0;    ///< tree campaign: frames sent (+resends)
  uint64_t delta_dedups = 0;      ///< tree campaign: re-deliveries skipped
  uint64_t severed_links = 0;     ///< tree campaign: frames lost in flight
  uint64_t nodes_lost = 0;        ///< tree campaign: permanent node deaths
  std::vector<ChaosFailure> failures;  ///< guarantee failures only

  bool Passed() const { return guarantee_failures == 0; }
};

/// The deterministic per-iteration failpoint schedule used when
/// ChaosOptions::failpoints is empty. Exposed so tests can assert the
/// schedules are bounded and reproducible.
std::string ChaosScheduleForIteration(uint64_t seed, uint64_t index);

/// Runs the campaign. Status errors here are harness-level problems
/// (e.g. an unmaterializable program), not injected faults — those are
/// tallied in the report.
Result<ChaosReport> RunChaosCampaign(const ChaosOptions& options);

/// The deterministic schedule for the server campaign: the four server.*
/// sites plus ingestor back-pressure faults, all probability-bounded.
std::string ServerChaosScheduleForIteration(uint64_t seed, uint64_t index);

/// The server campaign (`sfq chaos --server`): each iteration boots an
/// in-process SfqServer on a socket under io_dir, pushes a seeded stream
/// into shed- and sample-policy tenants through real client connections
/// while server.accept/read/write/publish faults sever connections and
/// withhold snapshots, then seals and reconciles. The invariant:
///
///   per tenant, offered - rejected == items_ingested + dropped (the
///   admission-control conservation law), client-acked items never exceed
///   server-offered items (write faults make acks an undercount, never an
///   overcount), query epochs never move backwards, and when no fault
///   created ambiguity the exported sketch is bit-identical to a
///   sequential reference and passes the Lemma 4/5 check.
///
/// A severed connection is the expected fault surface, not a failure;
/// the campaign fails only on broken accounting, epoch regression, a dead
/// server, or a bad surviving sketch.
Result<ChaosReport> RunServerChaosCampaign(const ChaosOptions& options);

/// The deterministic schedule for the kill-restart campaign: exactly one
/// process-death clause (probability-throttled, *1-budgeted) drawn from the
/// durability sites — journal append/fsync, snapshot publish, blob
/// write/rename — each of which leaves a different on-disk shape behind,
/// plus optional benign companions (severed writes, a torn journal record).
std::string ServerRestartScheduleForIteration(uint64_t seed, uint64_t index);

/// The kill-restart campaign (`sfq chaos --server-restart`): each iteration
/// forks a real `sfq serve --data-dir` process with a crash failpoint
/// schedule armed (crash = std::_Exit at the site, a faithful power-cut for
/// everything except the page cache), drives a durable tenant through
/// at-most-once ingest chunks, and — whenever the daemon dies at a
/// failpoint or is SIGKILLed at a randomized chunk boundary — relaunches it
/// clean and continues against the recovered state. The invariant:
///
///   after recovery, offered - rejected == base_ingested + items_ingested
///   + dropped (the conservation law, with the recovered prefix in
///   base_ingested), client-acked items never exceed server-offered items
///   (fsync=always makes every acked batch durable), epochs are monotone
///   within each server process, and when no batch was lost in flight the
///   exported sketch is bit-identical to a sequential reference and clean
///   under the Lemma 4/5 check.
///
/// Requires ChaosOptions::server_binary. A dead server that cannot be
/// relaunched, broken accounting, or a bad surviving sketch fails the
/// iteration; process deaths themselves are the point.
Result<ChaosReport> RunServerRestartCampaign(const ChaosOptions& options);

/// The deterministic schedule for the merge-tree campaign: the five dist.*
/// sites (docs/ROBUSTNESS.md) — admission faults, severed/torn/bit-flipped
/// uplink frames, dropped deliveries, lost acks — plus node-loss crash
/// clauses that ALWAYS carry a *N budget so most of the tree stays alive.
std::string TreeChaosScheduleForIteration(uint64_t seed, uint64_t index);

/// The merge-tree campaign (`sfq chaos --tree`): each iteration builds a
/// randomized topology (flat star, balanced, or ragged random tree) over a
/// seeded fuzz-program stream striped across the leaves, then drives
/// ingest and delta shipping (src/dist/merge_tree.h) under the dist.*
/// failpoint schedule. The invariant:
///
///   every iteration ends in a clean error Status, or in a root sketch
///   that is bit-identical to the sketch of exactly the covered prefix of
///   every leaf stream AND passes the Lemma 4/5 check against the oracle
///   of that covered (effective) stream — the bounds widen by exactly the
///   composed shed mass, nothing more. The conservation ledger
///   (offered − rejected == ingested + dropped) must hold at every node
///   and compose hop by hop, re-delivered deltas must dedup exactly, and
///   loss-free runs must be bit-identical to a flat one-shot Merge of all
///   leaf sketches.
Result<ChaosReport> RunTreeChaosCampaign(const ChaosOptions& options);

}  // namespace streamfreq
