#include "verify/fuzz.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"
#include "verify/checkers.h"
#include "verify/oracle.h"

namespace streamfreq {

Result<ProgramResult> FuzzDriver::RunProgram(const FuzzProgram& program) const {
  STREAMFREQ_ASSIGN_OR_RETURN(Stream stream, MaterializeStream(program));
  const Oracle oracle(stream);
  const VerifySetup setup = MakeVerifySetup(
      program.k, program.epsilon, program.width_scale, program.seed, oracle);
  ProgramResult result;
  for (const auto& checker : DefaultCheckers()) {
    if (!options_.algorithm_filter.empty() &&
        options_.algorithm_filter != checker->Name()) {
      continue;
    }
    if (!checker->Supports(program.mutation)) continue;
    STREAMFREQ_ASSIGN_OR_RETURN(BuildOutcome built,
                                checker->Build(stream, setup,
                                               program.mutation));
    ++result.checks;
    ++result.checks_by_algorithm[checker->Name()];
    for (Violation& v : built.equivalence_violations) {
      result.violations.push_back(std::move(v));
    }
    std::vector<Violation> found =
        checker->Check(*built.summary, oracle, setup, built.context);
    for (Violation& v : found) result.violations.push_back(std::move(v));
  }
  return result;
}

FuzzProgram FuzzDriver::Shrink(const FuzzProgram& failing) const {
  // A candidate counts against the budget whether or not it keeps failing;
  // a shrink that can't make progress terminates quickly.
  FuzzProgram current = failing;
  size_t budget = options_.shrink_budget;
  const auto still_fails = [&](const FuzzProgram& candidate) {
    if (budget == 0) return false;
    --budget;
    Result<ProgramResult> r = RunProgram(candidate);
    return r.ok() && !r.ValueOrDie().violations.empty();
  };
  bool progressed = true;
  while (progressed && budget > 0) {
    progressed = false;
    if (current.mutation != Mutation::kSequential) {
      FuzzProgram candidate = current;
      candidate.mutation = Mutation::kSequential;
      if (still_fails(candidate)) {
        current = candidate;
        progressed = true;
        continue;
      }
    }
    if (current.n > 1000) {
      FuzzProgram candidate = current;
      candidate.n = std::max<uint64_t>(1000, candidate.n / 2);
      if (still_fails(candidate)) {
        current = candidate;
        progressed = true;
        continue;
      }
    }
    if (current.universe > 128) {
      FuzzProgram candidate = current;
      candidate.universe = std::max<uint64_t>(128, candidate.universe / 2);
      if (still_fails(candidate)) {
        current = candidate;
        progressed = true;
        continue;
      }
    }
    if (current.k > 2) {
      FuzzProgram candidate = current;
      candidate.k = std::max<size_t>(2, candidate.k / 2);
      if (still_fails(candidate)) {
        current = candidate;
        progressed = true;
        continue;
      }
    }
  }
  return current;
}

Result<FuzzReport> FuzzDriver::Run() const {
  FuzzReport report;
  for (size_t i = 0; i < options_.iterations; ++i) {
    FuzzProgram program = ProgramFromSeed(options_.seed, i);
    program.width_scale = options_.width_scale;
    STREAMFREQ_ASSIGN_OR_RETURN(ProgramResult result, RunProgram(program));
    ++report.programs;
    report.checks += result.checks;
    for (const auto& [name, count] : result.checks_by_algorithm) {
      report.checks_by_algorithm[name] += count;
    }
    report.violations += result.violations.size();
    for (const Violation& v : result.violations) {
      ++report.violations_by_algorithm[v.algorithm];
    }
    if (!result.violations.empty()) {
      FuzzFailure failure;
      failure.program = program;
      failure.minimal = options_.shrink ? Shrink(program) : program;
      if (failure.minimal.n != program.n ||
          failure.minimal.universe != program.universe ||
          failure.minimal.k != program.k ||
          failure.minimal.mutation != program.mutation) {
        Result<ProgramResult> minimal_result = RunProgram(failure.minimal);
        if (minimal_result.ok()) {
          failure.violations =
              std::move(minimal_result.ValueOrDie().violations);
        }
      }
      if (failure.violations.empty()) {
        failure.violations = std::move(result.violations);
      }
      report.failures.push_back(std::move(failure));
      if (report.failures.size() >= options_.max_failures) break;
    }
  }
  return report;
}

}  // namespace streamfreq
