// Seeded fuzz driver: generates workload programs, runs every guarantee
// checker, aggregates violations, and shrinks failures to minimal
// replayable reproducers.
//
// Determinism contract: Run() with the same FuzzOptions always executes the
// same programs against the same sketches and returns the same report, so a
// CI failure replays locally with `sfq verify --seed=<seed>` and any single
// failing program replays with `sfq verify --program "<line>"`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "verify/program.h"
#include "verify/violation.h"

namespace streamfreq {

/// Knobs of one fuzz campaign.
struct FuzzOptions {
  uint64_t seed = 42;
  size_t iterations = 200;
  /// When non-empty, only the checker with this exact name runs.
  std::string algorithm_filter;
  /// Width multiplier applied to every program (1.0 = Lemma 5 sizing;
  /// below 1.0 deliberately undersizes to demonstrate oracle firing).
  double width_scale = 1.0;
  /// Shrink failing programs to minimal reproducers.
  bool shrink = true;
  /// Maximum re-runs spent shrinking one failure.
  size_t shrink_budget = 48;
  /// Stop the campaign after this many distinct failing programs.
  size_t max_failures = 8;
};

/// Outcome of one program run across the (filtered) checker registry.
struct ProgramResult {
  std::vector<Violation> violations;
  size_t checks = 0;  ///< checkers that actually ran
  std::map<std::string, size_t> checks_by_algorithm;
};

/// One failing program, before and after shrinking.
struct FuzzFailure {
  FuzzProgram program;   ///< as generated
  FuzzProgram minimal;   ///< after shrinking (== program when disabled)
  std::vector<Violation> violations;  ///< violations of the minimal program
};

/// Aggregate of a whole campaign.
struct FuzzReport {
  size_t programs = 0;
  size_t checks = 0;
  size_t violations = 0;
  std::map<std::string, size_t> checks_by_algorithm;
  std::map<std::string, size_t> violations_by_algorithm;
  std::vector<FuzzFailure> failures;

  bool Pass() const { return violations == 0; }
};

/// Runs seeded fuzz campaigns over the DefaultCheckers() registry.
class FuzzDriver {
 public:
  explicit FuzzDriver(FuzzOptions options) : options_(std::move(options)) {}

  /// Materializes one program's stream and runs every supporting checker.
  Result<ProgramResult> RunProgram(const FuzzProgram& program) const;

  /// Greedy shrink: repeatedly tries simplifications (mutation -> seq,
  /// halve n / universe / k) that keep the program failing, bounded by
  /// shrink_budget re-runs. Returns the smallest still-failing program.
  FuzzProgram Shrink(const FuzzProgram& failing) const;

  /// The full campaign: `iterations` programs derived from `seed`.
  Result<FuzzReport> Run() const;

  const FuzzOptions& options() const { return options_; }

 private:
  FuzzOptions options_;
};

}  // namespace streamfreq
