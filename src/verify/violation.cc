#include "verify/violation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace streamfreq {

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.algorithm << "/" << v.guarantee << ": " << v.detail
     << " (observed=" << v.observed << ", bound=" << v.bound;
  if (v.item != 0) os << ", item=" << v.item;
  os << ")";
  return os.str();
}

double MedianFailureProbability(size_t depth, double row_failure_p) {
  if (depth == 0) return 1.0;
  const double p = std::clamp(row_failure_p, 0.0, 1.0);
  const size_t need = (depth + 1) / 2;  // rows that must fail to move the median
  double total = 0.0;
  for (size_t j = need; j <= depth; ++j) {
    double binom = 1.0;  // C(depth, j), built incrementally to stay finite
    for (size_t i = 0; i < j; ++i) {
      binom *= static_cast<double>(depth - i) / static_cast<double>(i + 1);
    }
    total += binom * std::pow(p, static_cast<double>(j)) *
             std::pow(1.0 - p, static_cast<double>(depth - j));
  }
  return std::min(1.0, total);
}

size_t AllowedViolations(size_t probes, double per_item_p) {
  const double p = std::clamp(per_item_p, 0.0, 1.0);
  const double mean = static_cast<double>(probes) * p;
  return static_cast<size_t>(std::ceil(mean + 4.0 * std::sqrt(mean) + 4.0));
}

}  // namespace streamfreq
