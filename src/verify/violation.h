// Structured guarantee-violation reports for the verification harness.
//
// Every checker in src/verify/checkers.h turns one of the paper's theorems
// into executable code; when a summary breaks its contract the checker
// returns Violations instead of asserting, so the fuzz driver can count,
// aggregate, shrink, and replay them (and `sfq verify` can export them as a
// JSON trajectory).
//
// Deterministic guarantees (Misra-Gries n/(c+1), Space-Saving brackets,
// Lossy Counting eps*n, Count-Min's one-sided overestimate) are checked
// with zero tolerance. Probabilistic guarantees (Count-Sketch's 8*gamma
// per-item error) hold per item only with high probability, so those
// checkers bound the *number* of offending probe items by a Chernoff-style
// allowance derived from the theorem's per-item failure probability —
// AllowedViolations below.
#pragma once

#include <cstddef>
#include <string>

#include "stream/types.h"

namespace streamfreq {

/// One broken contract, attributable to an algorithm and replayable via the
/// fuzz program that produced it (the driver attaches the program line).
struct Violation {
  std::string algorithm;  ///< checker name, e.g. "count-sketch"
  std::string guarantee;  ///< short contract id, e.g. "one-sided-overestimate"
  std::string detail;     ///< human-readable explanation with numbers
  ItemId item = 0;        ///< first offending item, when item-attributable
  double observed = 0.0;  ///< measured quantity (error, violation count, ...)
  double bound = 0.0;     ///< what the theorem allowed
};

/// "algorithm/guarantee: detail (observed=..., bound=..., item=...)".
std::string FormatViolation(const Violation& v);

/// Probability that a median over `depth` independent row estimates fails
/// when each row individually fails with probability `row_failure_p`: the
/// binomial upper tail P[#bad rows >= ceil(depth/2)]. This is the exact
/// Chernoff-style quantity behind the paper's t = Theta(log(n/delta)) depth
/// choice (Lemmas 1-4).
double MedianFailureProbability(size_t depth, double row_failure_p);

/// How many of `probes` checked items may violate a per-item bound that
/// fails with probability at most `per_item_p` before the checker reports a
/// Violation: mean + 4*sqrt(mean) + 4. The slack keeps seeded CI fuzz runs
/// deterministic-in-practice while still catching systematically mis-sized
/// sketches, whose violation counts exceed any constant-sigma band.
size_t AllowedViolations(size_t probes, double per_item_p);

}  // namespace streamfreq
