#include "verify/checkers.h"

#include <algorithm>
#include <cmath>
#include <concepts>
#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "concurrent/parallel_ingestor.h"
#include "core/count_min.h"
#include "core/count_sketch.h"
#include "core/lossy_counting.h"
#include "core/misra_gries.h"
#include "core/sketch_params.h"
#include "core/space_saving.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "hash/random.h"
#include "util/macros.h"

namespace streamfreq {

VerifySetup MakeVerifySetup(size_t k, double epsilon, double width_scale,
                            uint64_t seed, const Oracle& oracle) {
  VerifySetup s;
  s.k = std::max<size_t>(1, std::min(k, oracle.Distinct()));
  s.epsilon = epsilon;
  s.width_scale = width_scale;
  s.seed = seed;
  s.n = oracle.n();
  s.distinct = oracle.Distinct();
  s.nk = static_cast<double>(oracle.counts().NthCount(s.k));
  s.residual_f2 = oracle.counts().ResidualF2(s.k);
  s.probes = oracle.ProbeItems(s.k, /*sample=*/64, /*absent=*/8, seed);
  return s;
}

namespace {

Violation MakeViolation(const char* algorithm, const char* guarantee,
                        std::string detail, ItemId item, double observed,
                        double bound) {
  Violation v;
  v.algorithm = algorithm;
  v.guarantee = guarantee;
  v.detail = std::move(detail);
  v.item = item;
  v.observed = observed;
  v.bound = bound;
  return v;
}

/// Deterministic Fisher-Yates shuffle (std::shuffle's output is
/// implementation-defined; replayability requires our own).
void ShuffleStream(Stream* stream, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (size_t i = stream->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformBelow(i));
    std::swap((*stream)[i - 1], (*stream)[j]);
  }
}

/// Presents a raw sketch (CountSketch / CountMin) behind the StreamSummary
/// interface so one Check path serves real sketches and test fakes alike.
template <typename SketchT>
class RawSketchSummary final : public StreamSummary {
 public:
  RawSketchSummary(SketchT sketch, std::string name)
      : sketch_(std::move(sketch)), name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  void Add(ItemId item, Count weight) override { sketch_.Add(item, weight); }
  using StreamSummary::Add;
  Count Estimate(ItemId item) const override { return sketch_.Estimate(item); }
  std::vector<ItemCount> Candidates(size_t) const override { return {}; }
  size_t SpaceBytes() const override { return sketch_.SpaceBytes(); }
  const SketchT& sketch() const { return sketch_; }

 private:
  SketchT sketch_;
  std::string name_;
};

/// Lemma 5 sizing for this run, with the practical clamps the checkers
/// compensate for. `lemma_width` keeps the unclamped value so the ApproxTop
/// checker can tell whether the theorem's premise is actually met.
struct SketchPlan {
  CountSketchParams params;
  size_t lemma_width = 0;
};

Result<SketchPlan> PlanCountSketch(const VerifySetup& setup) {
  ApproxTopSpec spec;
  spec.stream_length = static_cast<uint64_t>(setup.n);
  spec.k = setup.k;
  spec.epsilon = setup.epsilon;
  spec.delta = setup.delta;
  spec.residual_f2 = setup.residual_f2;
  spec.nk = setup.nk;
  STREAMFREQ_ASSIGN_OR_RETURN(SketchSizing sizing, SizeForApproxTop(spec));
  SketchPlan plan;
  plan.lemma_width = sizing.width;
  plan.params.depth = std::clamp<size_t>(sizing.depth, 4, 16);
  const double scaled =
      std::round(static_cast<double>(sizing.width) * setup.width_scale);
  plan.params.width =
      static_cast<size_t>(std::clamp(scaled, 8.0, 65536.0));
  plan.params.seed = setup.seed ^ 0xC0F3C0F3ULL;
  return plan;
}

/// Ingests `stream` into a sketch built by `make`, applying `mutation`.
/// Capabilities (Merge, SerializeTo) are detected at compile time; asking
/// for a mutation the type cannot perform is Unimplemented (the driver
/// filters those via Supports()).
template <typename SketchT>
Result<SketchT> IngestMutated(const std::function<Result<SketchT>()>& make,
                              const Stream& stream, Mutation mutation,
                              uint64_t shuffle_seed) {
  constexpr bool kHasMerge = requires(SketchT& a, const SketchT& b) {
    { a.Merge(b) } -> std::same_as<Status>;
  };
  constexpr bool kHasSerialize = requires(const SketchT& s, std::string* out) {
    s.SerializeTo(out);
    { SketchT::Deserialize(std::string_view{}) } -> std::same_as<Result<SketchT>>;
  };
  switch (mutation) {
    case Mutation::kSequential: {
      STREAMFREQ_ASSIGN_OR_RETURN(SketchT s, make());
      for (ItemId q : stream) s.Add(q, 1);
      return s;
    }
    case Mutation::kPermuted: {
      STREAMFREQ_ASSIGN_OR_RETURN(SketchT s, make());
      Stream shuffled = stream;
      ShuffleStream(&shuffled, shuffle_seed);
      for (ItemId q : shuffled) s.Add(q, 1);
      return s;
    }
    case Mutation::kBatched: {
      STREAMFREQ_ASSIGN_OR_RETURN(SketchT s, make());
      const size_t cut = stream.size() / 3;  // deliberately uneven spans
      s.BatchAdd(std::span<const ItemId>(stream.data(), cut));
      s.BatchAdd(
          std::span<const ItemId>(stream.data() + cut, stream.size() - cut));
      return s;
    }
    case Mutation::kBatchedScalar: {
      // Same spans as kBatched, forced through the scalar reference
      // kernels: together the two mutations differentially anchor the
      // SIMD-vectorized BatchAdd against the scalar path.
      constexpr bool kHasBatchScalar =
          requires(SketchT& s, std::span<const ItemId> span) {
            s.BatchAddScalar(span, Count{1});
          };
      if constexpr (kHasBatchScalar) {
        STREAMFREQ_ASSIGN_OR_RETURN(SketchT s, make());
        const size_t cut = stream.size() / 3;
        s.BatchAddScalar(std::span<const ItemId>(stream.data(), cut));
        s.BatchAddScalar(
            std::span<const ItemId>(stream.data() + cut, stream.size() - cut));
        return s;
      } else {
        return Status::Unimplemented("IngestMutated: type has no BatchAddScalar");
      }
    }
    case Mutation::kSplitMerge: {
      if constexpr (kHasMerge) {
        STREAMFREQ_ASSIGN_OR_RETURN(SketchT a, make());
        STREAMFREQ_ASSIGN_OR_RETURN(SketchT b, make());
        const size_t half = stream.size() / 2;
        for (size_t i = 0; i < half; ++i) a.Add(stream[i], 1);
        for (size_t i = half; i < stream.size(); ++i) b.Add(stream[i], 1);
        STREAMFREQ_RETURN_NOT_OK(a.Merge(b));
        return a;
      } else {
        return Status::Unimplemented("IngestMutated: type has no Merge");
      }
    }
    case Mutation::kSerializeMidStream: {
      if constexpr (kHasSerialize) {
        STREAMFREQ_ASSIGN_OR_RETURN(SketchT s, make());
        const size_t half = stream.size() / 2;
        for (size_t i = 0; i < half; ++i) s.Add(stream[i], 1);
        std::string blob;
        s.SerializeTo(&blob);
        STREAMFREQ_ASSIGN_OR_RETURN(SketchT restored,
                                    SketchT::Deserialize(blob));
        for (size_t i = half; i < stream.size(); ++i) restored.Add(stream[i], 1);
        return restored;
      } else {
        return Status::Unimplemented("IngestMutated: type has no SerializeTo");
      }
    }
    case Mutation::kParallel: {
      if constexpr (kHasMerge) {
        IngestOptions options;
        options.threads = 3;
        options.batch_items = 512;
        options.queue_batches = 16;
        options.publish_every_batches = 0;  // one final fold: minimal slack
        return ParallelIngest<SketchT>(std::span<const ItemId>(stream), make,
                                       options);
      } else {
        return Status::Unimplemented("IngestMutated: type has no Merge");
      }
    }
  }
  return Status::Internal("IngestMutated: unknown mutation");
}

/// Exact probe-estimate comparison between a mutated build and the
/// sequential reference — the metamorphic relation linear sketches promise.
template <typename SketchT>
void CompareSketchProbes(const char* algorithm, Mutation mutation,
                         const SketchT& got, const SketchT& want,
                         const std::vector<ItemId>& probes,
                         std::vector<Violation>* out) {
  for (ItemId q : probes) {
    const Count g = got.Estimate(q);
    const Count w = want.Estimate(q);
    if (g != w) {
      std::ostringstream detail;
      detail << MutationName(mutation)
             << " ingest disagrees with sequential ingest";
      out->push_back(MakeViolation(algorithm, "metamorphic-equivalence",
                                   detail.str(), q, static_cast<double>(g),
                                   static_cast<double>(w)));
      if (out->size() >= 8) return;  // cap the noise; one is already fatal
    }
  }
}

std::string DescribeCount(const char* what, Count est, Count truth) {
  std::ostringstream os;
  os << what << ": estimate " << est << " vs exact " << truth;
  return os.str();
}

// ---------------------------------------------------------------------------
// Count-Sketch: Lemma 4/5 per-item error |est - n_q| <= 8 * gamma.
// ---------------------------------------------------------------------------

class CountSketchChecker final : public GuaranteeChecker {
 public:
  const char* Name() const override { return "count-sketch"; }

  bool Supports(Mutation) const override { return true; }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    STREAMFREQ_ASSIGN_OR_RETURN(SketchPlan plan, PlanCountSketch(setup));
    const std::function<Result<CountSketch>()> make = [&plan]() {
      return CountSketch::Make(plan.params);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        CountSketch sketch,
        IngestMutated<CountSketch>(make, stream, mutation,
                                   setup.seed ^ 0x5F5F5F5FULL));
    BuildOutcome out;
    out.context.sketch_depth = plan.params.depth;
    out.context.sketch_width = plan.params.width;
    out.context.lemma_width = plan.lemma_width;
    if (mutation != Mutation::kSequential) {
      // Linearity promise: any ingestion order/partition yields the exact
      // same counters, hence the exact same estimates.
      STREAMFREQ_ASSIGN_OR_RETURN(
          CountSketch reference,
          IngestMutated<CountSketch>(make, stream, Mutation::kSequential, 0));
      CompareSketchProbes(Name(), mutation, sketch, reference, setup.probes,
                          &out.equivalence_violations);
    }
    out.summary = std::make_unique<RawSketchSummary<CountSketch>>(
        std::move(sketch), "CountSketch(verify)");
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    const size_t width = std::max<size_t>(1, context.sketch_width);
    const double gamma =
        std::sqrt(setup.residual_f2 / static_cast<double>(width));
    const double bound = 8.0 * gamma;
    // Per-row failure: Chebyshev at 8*gamma (1/64) plus the probability of
    // colliding with a top-k item, whose mass is excluded from gamma.
    const double p0 =
        std::min(0.45, 1.0 / 64.0 + static_cast<double>(setup.k) /
                                        static_cast<double>(width));
    const double p_median =
        MedianFailureProbability(context.sketch_depth, p0);
    const size_t allowed = AllowedViolations(setup.probes.size(), p_median);
    size_t violating = 0;
    ItemId first_item = 0;
    double first_error = 0.0;
    for (ItemId q : setup.probes) {
      const double err = std::abs(static_cast<double>(summary.Estimate(q)) -
                                  static_cast<double>(oracle.CountOf(q)));
      if (err > bound) {
        if (violating == 0) {
          first_item = q;
          first_error = err;
        }
        ++violating;
      }
    }
    if (violating > allowed) {
      std::ostringstream detail;
      detail << violating << " of " << setup.probes.size()
             << " probes exceed 8*gamma=" << bound
             << " (first error=" << first_error
             << "); Chernoff allowance is " << allowed;
      out.push_back(MakeViolation(Name(), "per-item-error-8gamma",
                                  detail.str(), first_item,
                                  static_cast<double>(violating),
                                  static_cast<double>(allowed)));
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// ApproxTop: the paper's output contract (Theorem 1) at Lemma 5 sizing.
// ---------------------------------------------------------------------------

class ApproxTopChecker final : public GuaranteeChecker {
 public:
  const char* Name() const override { return "approx-top"; }

  bool Supports(Mutation m) const override {
    // The tracker has no Merge/SerializeTo; its guarantee is per-arrival.
    return m == Mutation::kSequential || m == Mutation::kPermuted ||
           m == Mutation::kBatched;
  }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    STREAMFREQ_ASSIGN_OR_RETURN(SketchPlan plan, PlanCountSketch(setup));
    const size_t tracked = std::max<size_t>(setup.k + 1, 2 * setup.k);
    const std::function<Result<CountSketchTopK>()> make = [&plan, tracked]() {
      return CountSketchTopK::Make(plan.params, tracked);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        CountSketchTopK tracker,
        IngestMutated<CountSketchTopK>(make, stream, mutation,
                                       setup.seed ^ 0xA99A0AAULL));
    BuildOutcome out;
    out.context.sketch_depth = plan.params.depth;
    out.context.sketch_width = plan.params.width;
    out.context.lemma_width = plan.lemma_width;
    out.context.reordered = mutation == Mutation::kPermuted;
    out.summary = std::make_unique<CountSketchTopK>(std::move(tracker));
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    // The theorem's premise is width >= the Lemma 5 bound. When the width
    // was clamped below it (huge low-skew widths), the premise is unmet and
    // there is nothing to enforce — EXCEPT when the run deliberately
    // undersizes via width_scale < 1, which is the demo that the oracle
    // catches broken contracts.
    const bool premise_met = context.lemma_width > 0 &&
                             context.sketch_width >= context.lemma_width &&
                             setup.width_scale >= 1.0;
    const bool deliberate_missize = setup.width_scale < 1.0;
    if (!premise_met && !deliberate_missize) return out;
    const ApproxTopVerdict verdict = CheckApproxTop(
        summary.Candidates(setup.k), oracle.counts(), setup.k, setup.epsilon);
    if (verdict.violations_low > 0) {
      std::ostringstream detail;
      detail << verdict.violations_low << " candidate(s) below (1-eps)*n_k = "
             << (1.0 - setup.epsilon) * setup.nk;
      out.push_back(MakeViolation(Name(), "candidate-below-floor",
                                  detail.str(), 0,
                                  static_cast<double>(verdict.violations_low),
                                  0.0));
    }
    if (verdict.violations_missing > 0) {
      std::ostringstream detail;
      detail << verdict.violations_missing
             << " item(s) with n_i >= (1+eps)*n_k = "
             << (1.0 + setup.epsilon) * setup.nk << " missing from output";
      out.push_back(MakeViolation(
          Name(), "heavy-item-missing", detail.str(), 0,
          static_cast<double>(verdict.violations_missing), 0.0));
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Count-Min (plain and conservative-update): one-sided overestimates.
// ---------------------------------------------------------------------------

class CountMinChecker final : public GuaranteeChecker {
 public:
  explicit CountMinChecker(bool conservative) : conservative_(conservative) {}

  const char* Name() const override {
    return conservative_ ? "count-min-cu" : "count-min";
  }

  bool Supports(Mutation m) const override {
    // CountMin has Merge but no serialization; the conservative-update
    // variant additionally refuses Merge (its counters are not linear).
    if (m == Mutation::kSerializeMidStream) return false;
    if (conservative_ &&
        (m == Mutation::kSplitMerge || m == Mutation::kParallel)) {
      return false;
    }
    return true;
  }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    STREAMFREQ_ASSIGN_OR_RETURN(SketchPlan plan, PlanCountSketch(setup));
    CountMinParams params;
    params.depth = plan.params.depth;
    params.width = plan.params.width;
    params.seed = setup.seed ^ 0xC417317ULL;
    params.conservative = conservative_;
    const std::function<Result<CountMin>()> make = [params]() {
      return CountMin::Make(params);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        CountMin sketch, IngestMutated<CountMin>(make, stream, mutation,
                                                 setup.seed ^ 0xCE11ULL));
    BuildOutcome out;
    out.context.sketch_depth = params.depth;
    out.context.sketch_width = params.width;
    out.context.merged = mutation == Mutation::kSplitMerge ||
                         mutation == Mutation::kParallel;
    out.context.reordered = mutation == Mutation::kPermuted;
    // The plain sketch is linear: every supported mutation must reproduce
    // the sequential state exactly. Conservative update is order-dependent,
    // but its BatchAdd documents an exact in-order fallback.
    const bool exact_relation = !conservative_ ||
                                mutation == Mutation::kBatched ||
                                mutation == Mutation::kBatchedScalar;
    if (mutation != Mutation::kSequential && exact_relation) {
      STREAMFREQ_ASSIGN_OR_RETURN(
          CountMin reference,
          IngestMutated<CountMin>(make, stream, Mutation::kSequential, 0));
      CompareSketchProbes(Name(), mutation, sketch, reference, setup.probes,
                          &out.equivalence_violations);
    }
    out.summary = std::make_unique<RawSketchSummary<CountMin>>(
        std::move(sketch),
        conservative_ ? "CountMinCU(verify)" : "CountMin(verify)");
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    const size_t width = std::max<size_t>(1, context.sketch_width);
    // est <= true + e*n/width holds per item w.p. 1 - e^-depth (Markov per
    // row at e times the expected collision mass, all rows must fail).
    const double over_bound = std::exp(1.0) * static_cast<double>(setup.n) /
                              static_cast<double>(width);
    const double p_item = std::min(
        0.45, std::exp(-static_cast<double>(context.sketch_depth)));
    const size_t allowed = AllowedViolations(setup.probes.size(), p_item);
    size_t overestimating = 0;
    ItemId first_item = 0;
    for (ItemId q : setup.probes) {
      const Count est = summary.Estimate(q);
      const Count truth = oracle.CountOf(q);
      if (est < truth) {
        // Deterministic: the min over rows can never lose occurrences.
        out.push_back(MakeViolation(
            Name(), "one-sided-overestimate",
            DescribeCount("estimate fell below the true count", est, truth),
            q, static_cast<double>(est), static_cast<double>(truth)));
        return out;
      }
      if (static_cast<double>(est - truth) > over_bound) {
        if (overestimating == 0) first_item = q;
        ++overestimating;
      }
    }
    if (overestimating > allowed) {
      std::ostringstream detail;
      detail << overestimating << " of " << setup.probes.size()
             << " probes exceed true + e*n/b = true + " << over_bound
             << "; Chernoff allowance is " << allowed;
      out.push_back(MakeViolation(Name(), "overestimate-bound", detail.str(),
                                  first_item,
                                  static_cast<double>(overestimating),
                                  static_cast<double>(allowed)));
    }
    return out;
  }

 private:
  bool conservative_;
};

// ---------------------------------------------------------------------------
// Misra-Gries: deterministic n/(c+1) undercount bounds.
// ---------------------------------------------------------------------------

class MisraGriesChecker final : public GuaranteeChecker {
 public:
  const char* Name() const override { return "misra-gries"; }

  bool Supports(Mutation m) const override {
    // Counter summaries have no scalar/SIMD split (no BatchAddScalar).
    return m != Mutation::kSerializeMidStream &&
           m != Mutation::kBatchedScalar;
  }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    const size_t capacity = std::max<size_t>(2 * setup.k, 8);
    const std::function<Result<MisraGries>()> make = [capacity]() {
      return MisraGries::Make(capacity);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        MisraGries summary,
        IngestMutated<MisraGries>(make, stream, mutation,
                                  setup.seed ^ 0x316B1ULL));
    BuildOutcome out;
    out.context.counter_capacity = capacity;
    out.context.merged = mutation == Mutation::kSplitMerge ||
                         mutation == Mutation::kParallel;
    out.context.reordered = mutation == Mutation::kPermuted ||
                            mutation == Mutation::kBatched ||
                            out.context.merged;
    out.summary = std::make_unique<MisraGries>(std::move(summary));
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    const auto* mg = dynamic_cast<const MisraGries*>(&summary);
    const size_t capacity =
        mg != nullptr ? mg->capacity() : context.counter_capacity;
    if (capacity == 0) return out;  // nothing checkable without a capacity
    const double nd = static_cast<double>(setup.n);
    const double error_bound = nd / static_cast<double>(capacity + 1);
    if (mg != nullptr &&
        static_cast<double>(mg->MaxError()) > error_bound) {
      std::ostringstream detail;
      detail << "MaxError() " << mg->MaxError() << " exceeds n/(c+1) = "
             << error_bound;
      out.push_back(MakeViolation(Name(), "max-error-bound", detail.str(), 0,
                                  static_cast<double>(mg->MaxError()),
                                  error_bound));
    }
    for (ItemId q : setup.probes) {
      const Count est = summary.Estimate(q);
      const Count truth = oracle.CountOf(q);
      if (est > truth) {
        out.push_back(MakeViolation(
            Name(), "underestimate-only",
            DescribeCount("counter exceeds the true count", est, truth), q,
            static_cast<double>(est), static_cast<double>(truth)));
        break;
      }
      const double undercount = static_cast<double>(truth - est);
      if (undercount > error_bound) {
        std::ostringstream detail;
        detail << "undercount " << undercount << " exceeds n/(c+1) = "
               << error_bound;
        out.push_back(MakeViolation(Name(), "undercount-bound", detail.str(),
                                    q, undercount, error_bound));
        break;
      }
      if (mg != nullptr &&
          undercount > static_cast<double>(mg->MaxError())) {
        std::ostringstream detail;
        detail << "undercount " << undercount
               << " exceeds the instance bound MaxError() = "
               << mg->MaxError();
        out.push_back(MakeViolation(Name(), "instance-error-bound",
                                    detail.str(), q, undercount,
                                    static_cast<double>(mg->MaxError())));
        break;
      }
      if (static_cast<double>(truth) > error_bound && est == 0) {
        std::ostringstream detail;
        detail << "item with n_q " << truth << " > n/(c+1) = " << error_bound
               << " is not monitored";
        out.push_back(MakeViolation(Name(), "heavy-item-monitored",
                                    detail.str(), q,
                                    static_cast<double>(truth), error_bound));
        break;
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Space-Saving: overestimate brackets and the n/c minimum-count bound.
// ---------------------------------------------------------------------------

class SpaceSavingChecker final : public GuaranteeChecker {
 public:
  const char* Name() const override { return "space-saving"; }

  bool Supports(Mutation m) const override {
    // Counter summaries have no scalar/SIMD split (no BatchAddScalar).
    return m != Mutation::kSerializeMidStream &&
           m != Mutation::kBatchedScalar;
  }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    const size_t capacity = std::max<size_t>(2 * setup.k, 8);
    const std::function<Result<SpaceSaving>()> make = [capacity]() {
      return SpaceSaving::Make(capacity);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        SpaceSaving summary,
        IngestMutated<SpaceSaving>(make, stream, mutation,
                                   setup.seed ^ 0x57AC3ULL));
    BuildOutcome out;
    out.context.counter_capacity = capacity;
    out.context.merged = mutation == Mutation::kSplitMerge ||
                         mutation == Mutation::kParallel;
    out.context.reordered = mutation == Mutation::kPermuted ||
                            mutation == Mutation::kBatched ||
                            out.context.merged;
    out.summary = std::make_unique<SpaceSaving>(std::move(summary));
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    const auto* ss = dynamic_cast<const SpaceSaving*>(&summary);
    const size_t capacity =
        ss != nullptr ? ss->capacity() : context.counter_capacity;
    const Count min_count = ss != nullptr ? ss->MinCount() : 0;
    // min_count <= n/c: the monitored counts sum to exactly n (each arrival
    // adds its weight once), so the minimum of c of them is at most n/c.
    // Merging adds the other side's MinCount into entries, which breaks the
    // sum-to-n argument — skip the bound for merged summaries.
    if (ss != nullptr && !context.merged && capacity > 0) {
      const double bound =
          static_cast<double>(setup.n) / static_cast<double>(capacity);
      if (static_cast<double>(min_count) > bound) {
        std::ostringstream detail;
        detail << "MinCount() " << min_count << " exceeds n/c = " << bound;
        out.push_back(MakeViolation(Name(), "min-count-bound", detail.str(),
                                    0, static_cast<double>(min_count),
                                    bound));
      }
    }
    for (ItemId q : setup.probes) {
      const Count est = summary.Estimate(q);
      const Count truth = oracle.CountOf(q);
      if (est < truth) {
        out.push_back(MakeViolation(
            Name(), "overestimate-only",
            DescribeCount("estimate fell below the true count", est, truth),
            q, static_cast<double>(est), static_cast<double>(truth)));
        break;
      }
      // est <= true + MinCount: the inherited error of a monitored entry
      // never exceeds the final minimum. Merged errors may exceed the
      // merged MinCount, so this bracket is unmerged-only.
      if (ss != nullptr && !context.merged && est > truth + min_count) {
        std::ostringstream detail;
        detail << "estimate " << est << " exceeds true + MinCount = "
               << truth + min_count;
        out.push_back(MakeViolation(Name(), "overestimate-bracket",
                                    detail.str(), q, static_cast<double>(est),
                                    static_cast<double>(truth + min_count)));
        break;
      }
    }
    // count - error is a certified lower bound for every monitored item,
    // merged or not (the merge adds matching upper/lower slack).
    if (ss != nullptr) {
      for (const ItemCount& entry : ss->Candidates(capacity)) {
        const Count truth = oracle.CountOf(entry.item);
        const Count lower = entry.count - ss->ErrorOf(entry.item);
        if (lower > truth) {
          std::ostringstream detail;
          detail << "certified lower bound count - error = " << lower
                 << " exceeds the true count " << truth;
          out.push_back(MakeViolation(Name(), "certified-lower-bound",
                                      detail.str(), entry.item,
                                      static_cast<double>(lower),
                                      static_cast<double>(truth)));
          break;
        }
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Lossy Counting: eps-deficient underestimates.
// ---------------------------------------------------------------------------

class LossyCountingChecker final : public GuaranteeChecker {
 public:
  const char* Name() const override { return "lossy-counting"; }

  bool Supports(Mutation m) const override {
    // No Merge, no serialization; BatchAdd is the in-order default.
    return m == Mutation::kSequential || m == Mutation::kPermuted ||
           m == Mutation::kBatched;
  }

  Result<BuildOutcome> Build(const Stream& stream, const VerifySetup& setup,
                             Mutation mutation) const override {
    const double eps_lc =
        std::clamp(setup.epsilon / 4.0, 1e-6, 0.5);
    const std::function<Result<LossyCounting>()> make = [eps_lc]() {
      return LossyCounting::Make(eps_lc);
    };
    STREAMFREQ_ASSIGN_OR_RETURN(
        LossyCounting summary,
        IngestMutated<LossyCounting>(make, stream, mutation,
                                     setup.seed ^ 0x10557ULL));
    BuildOutcome out;
    out.context.lossy_epsilon = eps_lc;
    out.context.reordered = mutation == Mutation::kPermuted;
    out.summary = std::make_unique<LossyCounting>(std::move(summary));
    return out;
  }

  std::vector<Violation> Check(const StreamSummary& summary,
                               const Oracle& oracle, const VerifySetup& setup,
                               const CheckContext& context) const override {
    std::vector<Violation> out;
    const auto* lc = dynamic_cast<const LossyCounting*>(&summary);
    const double eps_lc =
        lc != nullptr ? lc->epsilon() : context.lossy_epsilon;
    if (!(eps_lc > 0.0)) return out;
    // +1 absorbs the ceil(1/eps) bucket-width rounding.
    const double bound = eps_lc * static_cast<double>(setup.n) + 1.0;
    for (ItemId q : setup.probes) {
      const Count est = summary.Estimate(q);
      const Count truth = oracle.CountOf(q);
      if (est > truth) {
        out.push_back(MakeViolation(
            Name(), "underestimate-only",
            DescribeCount("stored f exceeds the true count", est, truth), q,
            static_cast<double>(est), static_cast<double>(truth)));
        break;
      }
      const double undercount = static_cast<double>(truth - est);
      if (undercount > bound) {
        std::ostringstream detail;
        detail << "undercount " << undercount << " exceeds eps*n = " << bound;
        out.push_back(MakeViolation(Name(), "eps-deficiency", detail.str(), q,
                                    undercount, bound));
        break;
      }
    }
    return out;
  }
};

}  // namespace

Result<VerifySketchPlan> PlanVerifyCountSketch(const VerifySetup& setup) {
  STREAMFREQ_ASSIGN_OR_RETURN(SketchPlan plan, PlanCountSketch(setup));
  VerifySketchPlan out;
  out.params = plan.params;
  out.lemma_width = plan.lemma_width;
  return out;
}

std::vector<Violation> CheckCountSketchAgainstOracle(const CountSketch& sketch,
                                                     const Oracle& oracle,
                                                     const VerifySetup& setup,
                                                     size_t lemma_width) {
  const CountSketchChecker checker;
  CheckContext context;
  context.sketch_depth = sketch.depth();
  context.sketch_width = sketch.width();
  context.lemma_width = lemma_width;
  const RawSketchSummary<CountSketch> summary(sketch, "CountSketch(chaos)");
  return checker.Check(summary, oracle, setup, context);
}

const std::vector<std::unique_ptr<GuaranteeChecker>>& DefaultCheckers() {
  static const std::vector<std::unique_ptr<GuaranteeChecker>>* kCheckers =
      [] {
        auto* checkers = new std::vector<std::unique_ptr<GuaranteeChecker>>();
        checkers->push_back(std::make_unique<CountSketchChecker>());
        checkers->push_back(std::make_unique<ApproxTopChecker>());
        checkers->push_back(std::make_unique<CountMinChecker>(false));
        checkers->push_back(std::make_unique<CountMinChecker>(true));
        checkers->push_back(std::make_unique<MisraGriesChecker>());
        checkers->push_back(std::make_unique<SpaceSavingChecker>());
        checkers->push_back(std::make_unique<LossyCountingChecker>());
        return checkers;
      }();
  return *kCheckers;
}

}  // namespace streamfreq
