// Guarantee checkers: the paper's theorems as executable oracles.
//
// Each GuaranteeChecker owns one algorithm: it knows how to BUILD a summary
// from a fuzz program's stream under a metamorphic mutation, and how to
// CHECK the built summary against the exact oracle. Build and Check are
// separate so tests can feed Check a deliberately broken StreamSummary and
// prove each guarantee actually fires (a checker that never fires verifies
// nothing).
//
// Contract table (see docs/VERIFICATION.md for the full derivations):
//   count-sketch    |est - n_q| <= 8*gamma, gamma = sqrt(F2^{>k}/b); the
//                   number of offending probes is bounded by the Chernoff
//                   allowance from the median failure probability (Lemma 4).
//                   Also: mutated ingest must be bit-equal to sequential.
//   approx-top      ApproxTop(S, k, eps) output contract (Theorem 1) when
//                   the sketch is sized per Lemma 5.
//   count-min       true <= est (always); est <= true + e*n/b w.p. 1-e^-t.
//   count-min-cu    same bounds (conservative update only tightens).
//   misra-gries     est <= true; true - est <= n/(c+1); MaxError() instance
//                   bound; every item with n_q > n/(c+1) is monitored.
//   space-saving    true <= est; est <= true + MinCount; count - error is a
//                   lower bound; MinCount <= n/c (unmerged).
//   lossy-counting  est <= true; true - est <= eps_lc * n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/count_sketch.h"
#include "core/frequent.h"
#include "stream/types.h"
#include "util/result.h"
#include "verify/oracle.h"
#include "verify/program.h"
#include "verify/violation.h"

namespace streamfreq {

/// Everything a checker needs about one verification run: the guarantee
/// parameters and the oracle-derived stream statistics.
struct VerifySetup {
  size_t k = 10;             ///< top-k target (clamped to distinct items)
  double epsilon = 0.2;      ///< ApproxTop slack
  double delta = 0.02;       ///< sketch failure probability for Lemma 5
  double width_scale = 1.0;  ///< sketch width multiplier vs Lemma 5
  uint64_t seed = 1;
  Count n = 0;               ///< stream length
  size_t distinct = 0;
  double nk = 0.0;           ///< exact n_k
  double residual_f2 = 0.0;  ///< exact F2^{>k}
  /// Items whose estimates are compared against exact counts: true top-2k,
  /// a strided tail sample, and a few never-seen ids.
  std::vector<ItemId> probes;
};

/// Derives the setup (statistics + probe set) from the exact oracle.
VerifySetup MakeVerifySetup(size_t k, double epsilon, double width_scale,
                            uint64_t seed, const Oracle& oracle);

/// How the summary under check was built — which bounds apply.
struct CheckContext {
  bool merged = false;     ///< built by Merge of partial summaries
  bool reordered = false;  ///< ingested in a different order than the stream
  size_t sketch_depth = 0;
  size_t sketch_width = 0;
  /// The unclamped Lemma 5 width. When sketch_width was clamped below it,
  /// the ApproxTop premise is unmet and its checker stands down (unless the
  /// run deliberately undersizes via width_scale < 1).
  size_t lemma_width = 0;
  size_t counter_capacity = 0;  ///< c for MG / Space-Saving
  double lossy_epsilon = 0.0;   ///< eps_lc for Lossy Counting
};

/// A built summary plus how it was built. `equivalence_violations` carries
/// metamorphic mismatches found during the build itself (a linear sketch
/// whose mutated ingest disagrees with sequential ingest).
struct BuildOutcome {
  std::unique_ptr<StreamSummary> summary;
  CheckContext context;
  std::vector<Violation> equivalence_violations;
};

/// One algorithm's executable guarantee.
class GuaranteeChecker {
 public:
  virtual ~GuaranteeChecker() = default;

  /// Stable checker name, e.g. "count-sketch".
  virtual const char* Name() const = 0;

  /// Whether this algorithm supports ingesting under `m` (e.g. summaries
  /// without Merge cannot do split-merge).
  virtual bool Supports(Mutation m) const = 0;

  /// Builds the summary from `stream` under `mutation`, verifying the
  /// metamorphic relation where the algorithm promises exact equivalence.
  virtual Result<BuildOutcome> Build(const Stream& stream,
                                     const VerifySetup& setup,
                                     Mutation mutation) const = 0;

  /// Checks `summary` against the oracle. Extra state of the concrete type
  /// (MaxError, MinCount, ...) is reached via dynamic_cast when available,
  /// so interface-level bounds still apply to any StreamSummary (including
  /// the deliberately broken fakes in tests).
  virtual std::vector<Violation> Check(const StreamSummary& summary,
                                       const Oracle& oracle,
                                       const VerifySetup& setup,
                                       const CheckContext& context) const = 0;
};

/// The registry of all checkers, one per algorithm, in a stable order.
const std::vector<std::unique_ptr<GuaranteeChecker>>& DefaultCheckers();

/// Lemma 5 sizing for `setup`, with the practical clamps the checkers
/// compensate for (depth 4..16, width 8..65536). `lemma_width` preserves
/// the unclamped theorem width. Exposed for builders outside the checker
/// registry — the chaos harness sizes its sketches with this so degraded
/// runs are judged against the same bounds as clean ones.
struct VerifySketchPlan {
  CountSketchParams params;
  size_t lemma_width = 0;
};
Result<VerifySketchPlan> PlanVerifyCountSketch(const VerifySetup& setup);

/// Runs the count-sketch guarantee check (Lemma 4/5 per-item error with the
/// Chernoff allowance) against a sketch built elsewhere — the chaos
/// harness's path for sketches that survived fault injection. `oracle` and
/// `setup` must describe the *effective* stream (what actually reached the
/// sketch), so shed mass widens the bounds by exactly the dropped amount.
std::vector<Violation> CheckCountSketchAgainstOracle(const CountSketch& sketch,
                                                     const Oracle& oracle,
                                                     const VerifySetup& setup,
                                                     size_t lemma_width);

}  // namespace streamfreq
