#include "verify/program.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "hash/random.h"
#include "stream/adversarial.h"
#include "stream/flow_traffic.h"
#include "stream/zipf.h"
#include "util/macros.h"
#include "util/status.h"

namespace streamfreq {
namespace {

constexpr std::array<const char*, 4> kKindNames = {"zipf", "uniform", "flows",
                                                  "adversarial"};
constexpr std::array<const char*, kMutationCount> kMutationNames = {
    "seq",           "permute",  "batch",       "split-merge",
    "serialize-mid", "parallel", "batch-scalar"};

// Doubles are printed at round-trip precision so that a shrunk program line
// replays the exact failing run.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Status ParseUint(std::string_view key, const std::string& text,
                 uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("program: bad integer for '" +
                                   std::string(key) + "': " + text);
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ParseDouble(std::string_view key, const std::string& text,
                   double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("program: bad number for '" +
                                   std::string(key) + "': " + text);
  }
  *out = v;
  return Status::OK();
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  return kKindNames[static_cast<size_t>(kind)];
}

const char* MutationName(Mutation m) {
  return kMutationNames[static_cast<size_t>(m)];
}

std::string FormatProgram(const FuzzProgram& p) {
  std::ostringstream os;
  os << "kind=" << WorkloadKindName(p.kind) << " n=" << p.n
     << " m=" << p.universe << " z=" << FormatDouble(p.z)
     << " alpha=" << FormatDouble(p.alpha) << " k=" << p.k
     << " eps=" << FormatDouble(p.epsilon)
     << " wscale=" << FormatDouble(p.width_scale)
     << " mut=" << MutationName(p.mutation) << " seed=" << p.seed;
  return os.str();
}

Result<FuzzProgram> ParseProgram(const std::string& text) {
  FuzzProgram p;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("program: token without '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      const auto* it =
          std::find_if(kKindNames.begin(), kKindNames.end(),
                       [&](const char* name) { return value == name; });
      if (it == kKindNames.end()) {
        return Status::InvalidArgument("program: unknown kind: " + value);
      }
      p.kind = static_cast<WorkloadKind>(it - kKindNames.begin());
    } else if (key == "mut") {
      const auto* it =
          std::find_if(kMutationNames.begin(), kMutationNames.end(),
                       [&](const char* name) { return value == name; });
      if (it == kMutationNames.end()) {
        return Status::InvalidArgument("program: unknown mutation: " + value);
      }
      p.mutation = static_cast<Mutation>(it - kMutationNames.begin());
    } else if (key == "n") {
      STREAMFREQ_RETURN_NOT_OK(ParseUint(key, value, &p.n));
    } else if (key == "m") {
      STREAMFREQ_RETURN_NOT_OK(ParseUint(key, value, &p.universe));
    } else if (key == "k") {
      uint64_t k = 0;
      STREAMFREQ_RETURN_NOT_OK(ParseUint(key, value, &k));
      p.k = static_cast<size_t>(k);
    } else if (key == "seed") {
      STREAMFREQ_RETURN_NOT_OK(ParseUint(key, value, &p.seed));
    } else if (key == "z") {
      STREAMFREQ_RETURN_NOT_OK(ParseDouble(key, value, &p.z));
    } else if (key == "alpha") {
      STREAMFREQ_RETURN_NOT_OK(ParseDouble(key, value, &p.alpha));
    } else if (key == "eps") {
      STREAMFREQ_RETURN_NOT_OK(ParseDouble(key, value, &p.epsilon));
    } else if (key == "wscale") {
      STREAMFREQ_RETURN_NOT_OK(ParseDouble(key, value, &p.width_scale));
    } else {
      return Status::InvalidArgument("program: unknown key: " + key);
    }
  }
  if (p.n == 0) return Status::InvalidArgument("program: n must be > 0");
  if (p.k == 0) return Status::InvalidArgument("program: k must be > 0");
  if (p.universe == 0) {
    return Status::InvalidArgument("program: m must be > 0");
  }
  if (!(p.epsilon > 0.0 && p.epsilon < 1.0)) {
    return Status::InvalidArgument("program: eps must be in (0, 1)");
  }
  if (!(p.width_scale > 0.0)) {
    return Status::InvalidArgument("program: wscale must be > 0");
  }
  if (p.z < 0.0) return Status::InvalidArgument("program: z must be >= 0");
  if (p.alpha <= 1.0) {
    return Status::InvalidArgument("program: alpha must be > 1");
  }
  return p;
}

Result<Stream> MaterializeStream(const FuzzProgram& p) {
  switch (p.kind) {
    case WorkloadKind::kZipf: {
      STREAMFREQ_ASSIGN_OR_RETURN(ZipfGenerator gen,
                                  ZipfGenerator::Make(p.universe, p.z, p.seed));
      return gen.Take(p.n);
    }
    case WorkloadKind::kUniform: {
      STREAMFREQ_ASSIGN_OR_RETURN(UniformGenerator gen,
                                  UniformGenerator::Make(p.universe, p.seed));
      return gen.Take(p.n);
    }
    case WorkloadKind::kFlows: {
      FlowTrafficSpec spec;
      spec.pareto_alpha = p.alpha;
      spec.concurrent_flows = std::max<uint64_t>(8, p.universe / 16);
      spec.max_flow_packets = std::max<uint64_t>(16, p.n / 4);
      spec.seed = p.seed;
      STREAMFREQ_ASSIGN_OR_RETURN(FlowTrafficGenerator gen,
                                  FlowTrafficGenerator::Make(spec));
      return gen.Take(p.n);
    }
    case WorkloadKind::kAdversarial: {
      // A boundary-case instance sized to roughly n items total: k head
      // items plus 2k shadows one occurrence behind, over a thin tail.
      AdversarialSpec spec;
      spec.k = p.k;
      spec.shadows = 2 * p.k;
      spec.head_count =
          std::max<uint64_t>(8, p.n / (8 * std::max<uint64_t>(1, p.k)));
      spec.gap = 1;
      spec.tail_count = 3;
      const uint64_t head_total = (spec.k + spec.shadows) * spec.head_count;
      const uint64_t remaining = p.n > head_total ? p.n - head_total : 0;
      spec.tail_items = std::max<uint64_t>(1, remaining / spec.tail_count);
      spec.seed = p.seed;
      return MakeAdversarialStream(spec);
    }
  }
  return Status::InvalidArgument("program: unknown workload kind");
}

FuzzProgram ProgramFromSeed(uint64_t master_seed, uint64_t index) {
  SplitMix64 sm(master_seed ^ SplitMix64(index * 0x9E3779B97F4A7C15ULL + 1)
                                  .Next());
  FuzzProgram p;
  const uint64_t kind_roll = sm.Next() % 10;
  if (kind_roll < 4) {
    p.kind = WorkloadKind::kZipf;
  } else if (kind_roll < 6) {
    p.kind = WorkloadKind::kUniform;
  } else if (kind_roll < 8) {
    p.kind = WorkloadKind::kFlows;
  } else {
    p.kind = WorkloadKind::kAdversarial;
  }
  p.n = 2000ULL << (sm.Next() % 5);       // 2k .. 32k items
  p.universe = 256ULL << (sm.Next() % 7);  // 256 .. 16k distinct
  p.z = 0.4 + 0.1 * static_cast<double>(sm.Next() % 12);      // 0.4 .. 1.5
  p.alpha = 1.05 + 0.05 * static_cast<double>(sm.Next() % 18);  // 1.05 .. 1.9
  constexpr std::array<size_t, 3> kChoicesK = {5, 10, 20};
  p.k = kChoicesK[sm.Next() % kChoicesK.size()];
  constexpr std::array<double, 3> kChoicesEps = {0.1, 0.2, 0.3};
  p.epsilon = kChoicesEps[sm.Next() % kChoicesEps.size()];
  p.width_scale = 1.0;
  p.mutation = static_cast<Mutation>(sm.Next() % kMutationCount);
  p.seed = sm.Next() | 1;
  return p;
}

}  // namespace streamfreq
