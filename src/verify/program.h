// Fuzz program grammar: one seeded, replayable verification workload.
//
// A FuzzProgram fully determines a verification run — the stream (kind +
// distribution parameters + seed), the guarantee parameters (k, epsilon),
// the sketch sizing knob (width_scale, 1.0 = the Lemma 5 proven setting;
// below 1.0 deliberately undersizes every sketch to demonstrate that the
// oracle catches broken contracts), and one metamorphic mutation describing
// HOW the stream is ingested. Programs round-trip through a single
// `key=value ...` text line so a failing run shrinks to a reproducer the
// user replays with `sfq verify --program "..."`.
//
// Mutations encode the metamorphic relations the library promises:
//   seq           item-at-a-time ingestion in stream order (the baseline)
//   permute       a seeded permutation of the stream — linear sketches must
//                 be bit-identical; counter summaries keep their guarantees
//                 (they are order-independent) but may change state
//   batch         BatchAdd over two uneven spans — exact for linear
//                 sketches, reorder-equivalent for counter summaries;
//                 exercises the SIMD-vectorized kernels (the default
//                 BatchAdd backend)
//   batch-scalar  BatchAddScalar over the same spans — the scalar
//                 reference kernels; with `batch` this differentially
//                 anchors the vectorized hot path inside `sfq verify`
//   split-merge   two halves ingested separately, then Merge — exact for
//                 linear sketches, guarantee-preserving for MG/SS
//   serialize-mid serialize + deserialize at the half-way point, then keep
//                 ingesting — must be invisible
//   parallel      ParallelIngest across 3 worker threads — exact for
//                 linear sketches by additivity (the paper's observation)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// Which generator materializes the stream.
enum class WorkloadKind : uint8_t { kZipf, kUniform, kFlows, kAdversarial };

/// How the stream is ingested (the metamorphic relation under test).
enum class Mutation : uint8_t {
  kSequential,
  kPermuted,
  kBatched,
  kSplitMerge,
  kSerializeMidStream,
  kParallel,
  kBatchedScalar,
};

inline constexpr size_t kMutationCount = 7;

/// One complete, deterministic verification workload.
struct FuzzProgram {
  WorkloadKind kind = WorkloadKind::kZipf;
  uint64_t n = 20000;        ///< stream length
  uint64_t universe = 4096;  ///< m (zipf/uniform)
  double z = 1.1;            ///< zipf skew
  double alpha = 1.2;        ///< pareto shape (flows)
  size_t k = 10;             ///< top-k target of the guarantees
  double epsilon = 0.2;      ///< ApproxTop slack
  double width_scale = 1.0;  ///< sketch width multiplier vs Lemma 5
  Mutation mutation = Mutation::kSequential;
  uint64_t seed = 1;         ///< seeds generator, shuffles, and hashes
};

/// Stable names used by the text form ("zipf", "permute", ...).
const char* WorkloadKindName(WorkloadKind kind);
const char* MutationName(Mutation m);

/// Renders the replayable one-line text form. Doubles use max precision so
/// Format -> Parse -> Format is a fixed point.
std::string FormatProgram(const FuzzProgram& program);

/// Parses a line produced by FormatProgram (order-insensitive key=value
/// tokens). Unknown keys and malformed values are InvalidArgument.
Result<FuzzProgram> ParseProgram(const std::string& text);

/// Materializes the program's stream deterministically.
Result<Stream> MaterializeStream(const FuzzProgram& program);

/// The `index`-th program of the seeded fuzz sequence for `master_seed`:
/// a deterministic mix of workload kinds, sizes, skews, guarantee
/// parameters, and mutations. width_scale is left at 1.0 — the driver
/// applies its own override.
FuzzProgram ProgramFromSeed(uint64_t master_seed, uint64_t index);

}  // namespace streamfreq
