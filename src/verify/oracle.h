// Ground-truth oracle for differential verification.
//
// Wraps the exact counter (the memory-intensive referee the paper rules out
// at stream scale) and derives everything the guarantee checkers need: the
// true top-k, n_k, the residual second moment behind gamma, and a
// deterministic probe set — the items whose estimates get compared against
// their exact counts on every fuzz iteration.
#pragma once

#include <cstddef>
#include <vector>

#include "stream/exact_counter.h"
#include "stream/types.h"

namespace streamfreq {

/// Exact ground truth over one materialized stream.
class Oracle {
 public:
  /// Counts every item of `stream` exactly.
  explicit Oracle(const Stream& stream);

  /// The underlying exact counter (n_q, TopK, NthCount, ResidualF2, ...).
  const ExactCounter& counts() const { return counter_; }

  /// Total stream length n (cached).
  Count n() const { return n_; }

  /// Distinct items seen.
  size_t Distinct() const { return counter_.Distinct(); }

  /// Exact count of `item`; 0 when never seen.
  Count CountOf(ItemId item) const { return counter_.CountOf(item); }

  /// The true top-k (deterministic tie-break by ascending id).
  std::vector<ItemCount> TopK(size_t k) const { return counter_.TopK(k); }

  /// Deterministic probe set: the true top-2k (where the guarantees bite),
  /// an even-strided sample of up to `sample` of the remaining distinct
  /// items (the tail, where sketch noise lives), and `absent` ids never
  /// seen in the stream (estimates of absent items are pure collision
  /// noise). Stable for a fixed (k, sample, absent, seed).
  std::vector<ItemId> ProbeItems(size_t k, size_t sample, size_t absent,
                                 uint64_t seed) const;

 private:
  ExactCounter counter_;
  Count n_ = 0;
};

}  // namespace streamfreq
