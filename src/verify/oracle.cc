#include "verify/oracle.h"

#include <algorithm>

#include "hash/random.h"

namespace streamfreq {

Oracle::Oracle(const Stream& stream) {
  counter_.AddAll(stream);
  n_ = counter_.TotalCount();
}

std::vector<ItemId> Oracle::ProbeItems(size_t k, size_t sample, size_t absent,
                                       uint64_t seed) const {
  std::vector<ItemId> probes;
  const std::vector<ItemCount> sorted = counter_.SortedByCount();
  const size_t head = std::min(sorted.size(), 2 * std::max<size_t>(1, k));
  probes.reserve(head + sample + absent);
  for (size_t i = 0; i < head; ++i) probes.push_back(sorted[i].item);
  if (sorted.size() > head && sample > 0) {
    const size_t step = std::max<size_t>(1, (sorted.size() - head) / sample);
    size_t taken = 0;
    for (size_t i = head; i < sorted.size() && taken < sample; i += step) {
      probes.push_back(sorted[i].item);
      ++taken;
    }
  }
  SplitMix64 sm(seed ^ 0xAB5E17ULL);
  for (size_t added = 0; added < absent;) {
    const ItemId q = sm.Next() | 1;  // id 0 is reserved
    if (counter_.CountOf(q) == 0) {
      probes.push_back(q);
      ++added;
    }
  }
  return probes;
}

}  // namespace streamfreq
