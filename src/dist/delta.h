// Sketch-delta shipping for the distributed merge tree.
//
// The paper's merge/subtract group structure is what makes delta shipping
// exact: a worker's delta is `current sketch − last-acked base` (via
// CountSketch::Subtract), so the sum of every delta a parent APPLIES equals
// the sketch of exactly the covered prefix of each leaf stream — bit for
// bit, no matter how many links sever or how often frames are re-delivered.
//
// Wire form (inside the standard SFQRPC01 CRC frame, see
// src/server/protocol.h):
//
//   u64 magic      kDeltaMagic ("SFQDLT01")
//   u64 node_id    sender
//   u64 seqno      1-based, +1 per shipped delta (WAL discipline, PR-9)
//   u64 flags      bit0 = final, bit1 = epoch mark
//   4×u64 ledger   offered / rejected / ingested / dropped INCREMENT
//   u64 n_covered  + n pairs (leaf_id, covered prefix count), absolute
//   u64 n_cands    + n candidate ItemIds, absolute (replace, not merge)
//   str  sketch    CountSketch::SerializeTo blob of the delta (may be empty)
//
// Every variable-length field is length-checked before allocation and
// trailing bytes are Corruption — the decoder accepts exactly what the
// encoder produces (tests/dist_delta_test.cc walks every truncation
// boundary, mirroring the server protocol corruption matrix).
//
// Dedup discipline (identical to WAL replay, src/server/wal.cc):
//   seqno <= last applied  → duplicate: skip, re-ack `last`
//   seqno == last + 1      → apply, ack
//   seqno >  last + 1      → gap: Corruption (a delta was lost in order —
//                            impossible under the resend-verbatim channel,
//                            so it means a torn/forged frame got through)
//
// Acks are cumulative: a parent ALWAYS answers with the last seqno it has
// applied for that child, so a worker needs no timeout bookkeeping — it
// resends its single pending delta verbatim until the ack covers it, then
// folds the pending delta into its acked base. At-most-once apply plus
// at-least-once delivery = exactly-once accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/count_sketch.h"
#include "stream/types.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// Magic for delta payloads ("SFQDLT01", little-endian). Deltas ride the
/// same CRC-framed transport as server RPCs but are a distinct payload
/// namespace — a delta frame handed to the server decoder (or vice versa)
/// fails on the first eight bytes.
inline constexpr uint64_t kDeltaMagic = 0x3130544C44514653ULL;

/// Degraded-mass conservation ledger. The law `offered - rejected ==
/// ingested + dropped` must hold for every node and COMPOSE across the
/// tree: an interior node's ledger is the sum of its children's applied
/// increments plus its own (docs/DISTRIBUTED.md).
struct DistLedger {
  uint64_t offered = 0;   ///< items presented for admission
  uint64_t rejected = 0;  ///< refused whole (dist.ingest=error)
  uint64_t ingested = 0;  ///< admitted into the sketch
  uint64_t dropped = 0;   ///< admitted then shed (dist.ingest=torn)

  bool ConservationHolds() const {
    return offered - rejected == ingested + dropped;
  }

  DistLedger& operator+=(const DistLedger& o) {
    offered += o.offered;
    rejected += o.rejected;
    ingested += o.ingested;
    dropped += o.dropped;
    return *this;
  }

  /// Component-wise difference; valid only against a snapshot of this
  /// ledger's own past (counters are monotone).
  DistLedger Minus(const DistLedger& base) const {
    return DistLedger{offered - base.offered, rejected - base.rejected,
                      ingested - base.ingested, dropped - base.dropped};
  }

  bool operator==(const DistLedger& o) const {
    return offered == o.offered && rejected == o.rejected &&
           ingested == o.ingested && dropped == o.dropped;
  }
};

/// Per-leaf coverage watermark: how many items of leaf `leaf_id`'s ingested
/// stream the sender's sketch accounts for. Absolute, monotone.
struct CoverageEntry {
  uint64_t leaf_id = 0;
  uint64_t count = 0;

  bool operator==(const CoverageEntry& o) const {
    return leaf_id == o.leaf_id && count == o.count;
  }
};

/// One shipped delta. `sketch_blob` may be empty (a pure ledger/coverage
/// advance, e.g. every admitted item was shed); candidates and coverage are
/// absolute snapshots so re-delivery is idempotent.
struct DeltaPayload {
  uint64_t node_id = 0;
  uint64_t seqno = 0;
  bool final_flag = false;  ///< sender is done; no further deltas follow
  bool epoch_mark = false;  ///< root should MarkEpoch after applying
  DistLedger ledger;        ///< increment since the sender's acked base
  std::vector<CoverageEntry> covered;
  std::vector<ItemId> candidates;
  std::string sketch_blob;
};

/// Ack payload magic ("SFQDAK01", little-endian).
inline constexpr uint64_t kAckMagic = 0x31304B4144514653ULL;

/// Encodes a delta payload (the bytes inside the CRC frame).
std::string EncodeDelta(const DeltaPayload& delta);

/// Decodes and validates; trailing bytes, bad magic, or truncated fields
/// are Corruption.
Result<DeltaPayload> DecodeDelta(std::string_view payload);

/// Cumulative ack: the receiver's last applied seqno for this link.
std::string EncodeAck(uint64_t last_applied);
Result<uint64_t> DecodeAck(std::string_view payload);

/// Sender half of the delta channel. Owns the last-ACKED base sketch and at
/// most one pending (shipped, unacked) delta; the pending encoding is
/// stored and resent VERBATIM so re-delivery after a severed link is
/// bit-identical, which is what makes receiver-side dedup exact.
class DeltaChannel {
 public:
  DeltaChannel(uint64_t node_id, CountSketch base)
      : node_id_(node_id), base_(std::move(base)) {}

  /// Builds (or returns the still-pending) delta against `current`. Returns
  /// std::nullopt when there is nothing new to ship and no pending delta.
  /// `current` must stay a superset of the acked base (monotone ledger,
  /// coverage, and sketch — the caller only ever Adds/Merges into it). A
  /// `final_flag` delta is shipped once and latched on ack; repeat calls
  /// with no new mass then go quiet.
  Result<std::optional<std::string>> Ship(
      const CountSketch& current, const DistLedger& ledger,
      const std::vector<CoverageEntry>& covered,
      const std::vector<ItemId>& candidates, bool final_flag);

  /// Processes a cumulative ack carrying the receiver's last applied seqno.
  /// Folds the pending delta into the acked base when covered.
  Status Acked(uint64_t last_applied_seqno);

  /// True when a Ship(current, ledger, ..., final_flag) call would return
  /// std::nullopt — nothing pending and nothing new.
  bool NothingToShip(const DistLedger& ledger, bool final_flag) const {
    return !pending_.has_value() && ledger == base_ledger_ &&
           (!final_flag || final_acked_);
  }

  bool has_pending() const { return pending_.has_value(); }
  uint64_t next_seqno() const { return shipped_seqno_ + 1; }
  uint64_t acked_seqno() const { return acked_seqno_; }
  const CountSketch& base() const { return base_; }
  const DistLedger& base_ledger() const { return base_ledger_; }

 private:
  struct Pending {
    uint64_t seqno = 0;
    std::string encoded;      ///< resent verbatim
    CountSketch delta;        ///< folded into base_ on ack
    DistLedger ledger_after;  ///< sender totals the delta advances to
    bool final_flag = false;
  };

  uint64_t node_id_;
  CountSketch base_;          ///< sketch the receiver has acked
  DistLedger base_ledger_;    ///< ledger totals the receiver has acked
  uint64_t shipped_seqno_ = 0;
  uint64_t acked_seqno_ = 0;
  bool final_acked_ = false;
  std::optional<Pending> pending_;
};

/// Receiver half: per-child WAL-style dedup state.
class DeltaReceiver {
 public:
  /// Classifies `seqno` against the last applied one. On OK, `*duplicate`
  /// says whether to skip (true) or apply (false); gaps are Corruption.
  /// Call Applied() after a successful apply.
  Status Classify(uint64_t seqno, bool* duplicate) const;

  void Applied(uint64_t seqno) { last_applied_ = seqno; }
  uint64_t last_applied() const { return last_applied_; }
  uint64_t duplicates() const { return duplicates_; }
  void CountDuplicate() { ++duplicates_; }

 private:
  uint64_t last_applied_ = 0;
  uint64_t duplicates_ = 0;
};

}  // namespace streamfreq
