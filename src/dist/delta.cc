#include "dist/delta.h"

#include <utility>

#include "util/bytes.h"

namespace streamfreq {
namespace {

// Flag bits in the wire `flags` word. Append-only.
constexpr uint64_t kFlagFinal = 1ULL << 0;
constexpr uint64_t kFlagEpochMark = 1ULL << 1;
constexpr uint64_t kKnownFlags = kFlagFinal | kFlagEpochMark;

// Sanity bounds so a corrupt count cannot drive a giant resize. Both are
// far above anything the tree ships (coverage has one entry per leaf,
// candidates are a top-k union).
constexpr uint64_t kMaxCoverageEntries = 1ULL << 20;
constexpr uint64_t kMaxCandidates = 1ULL << 20;

}  // namespace

std::string EncodeDelta(const DeltaPayload& delta) {
  std::string out;
  ByteWriter w(&out);
  w.PutU64(kDeltaMagic);
  w.PutU64(delta.node_id);
  w.PutU64(delta.seqno);
  uint64_t flags = 0;
  if (delta.final_flag) flags |= kFlagFinal;
  if (delta.epoch_mark) flags |= kFlagEpochMark;
  w.PutU64(flags);
  w.PutU64(delta.ledger.offered);
  w.PutU64(delta.ledger.rejected);
  w.PutU64(delta.ledger.ingested);
  w.PutU64(delta.ledger.dropped);
  w.PutU64(delta.covered.size());
  for (const CoverageEntry& c : delta.covered) {
    w.PutU64(c.leaf_id);
    w.PutU64(c.count);
  }
  w.PutU64(delta.candidates.size());
  for (ItemId id : delta.candidates) w.PutU64(id);
  w.PutString(delta.sketch_blob);
  return out;
}

Result<DeltaPayload> DecodeDelta(std::string_view payload) {
  ByteReader r(payload);
  uint64_t magic = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&magic));
  if (magic != kDeltaMagic) {
    return Status::Corruption("delta payload magic mismatch");
  }
  DeltaPayload delta;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.node_id));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.seqno));
  if (delta.seqno == 0) {
    return Status::Corruption("delta seqno 0 (seqnos are 1-based)");
  }
  uint64_t flags = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&flags));
  if ((flags & ~kKnownFlags) != 0) {
    return Status::Corruption("delta carries unknown flag bits");
  }
  delta.final_flag = (flags & kFlagFinal) != 0;
  delta.epoch_mark = (flags & kFlagEpochMark) != 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.ledger.offered));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.ledger.rejected));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.ledger.ingested));
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&delta.ledger.dropped));
  if (!delta.ledger.ConservationHolds()) {
    return Status::Corruption("delta ledger increment violates conservation");
  }
  uint64_t n_covered = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&n_covered));
  if (n_covered > kMaxCoverageEntries || n_covered * 16 > r.remaining()) {
    return Status::Corruption("delta coverage count exceeds payload");
  }
  delta.covered.reserve(static_cast<size_t>(n_covered));
  for (uint64_t i = 0; i < n_covered; ++i) {
    CoverageEntry c;
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&c.leaf_id));
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&c.count));
    delta.covered.push_back(c);
  }
  uint64_t n_cands = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&n_cands));
  if (n_cands > kMaxCandidates || n_cands * 8 > r.remaining()) {
    return Status::Corruption("delta candidate count exceeds payload");
  }
  delta.candidates.reserve(static_cast<size_t>(n_cands));
  for (uint64_t i = 0; i < n_cands; ++i) {
    uint64_t id = 0;
    STREAMFREQ_RETURN_NOT_OK(r.GetU64(&id));
    delta.candidates.push_back(id);
  }
  STREAMFREQ_RETURN_NOT_OK(r.GetString(&delta.sketch_blob, r.remaining()));
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after delta payload");
  }
  return delta;
}

std::string EncodeAck(uint64_t last_applied) {
  std::string out;
  ByteWriter w(&out);
  w.PutU64(kAckMagic);
  w.PutU64(last_applied);
  return out;
}

Result<uint64_t> DecodeAck(std::string_view payload) {
  ByteReader r(payload);
  uint64_t magic = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&magic));
  if (magic != kAckMagic) {
    return Status::Corruption("ack payload magic mismatch");
  }
  uint64_t last = 0;
  STREAMFREQ_RETURN_NOT_OK(r.GetU64(&last));
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after ack payload");
  }
  return last;
}

Result<std::optional<std::string>> DeltaChannel::Ship(
    const CountSketch& current, const DistLedger& ledger,
    const std::vector<CoverageEntry>& covered,
    const std::vector<ItemId>& candidates, bool final_flag) {
  if (pending_.has_value()) {
    // At most one delta in flight: resend the exact bytes until acked.
    return std::optional<std::string>(pending_->encoded);
  }
  if (NothingToShip(ledger, final_flag)) {
    return std::optional<std::string>();  // nothing new to ship
  }
  const DistLedger inc = ledger.Minus(base_ledger_);
  CountSketch delta_sketch = current;
  STREAMFREQ_RETURN_NOT_OK(delta_sketch.Subtract(base_));

  DeltaPayload payload;
  payload.node_id = node_id_;
  payload.seqno = shipped_seqno_ + 1;
  payload.final_flag = final_flag;
  payload.ledger = inc;
  payload.covered = covered;
  payload.candidates = candidates;
  delta_sketch.SerializeTo(&payload.sketch_blob);

  shipped_seqno_ = payload.seqno;
  pending_ = Pending{payload.seqno, EncodeDelta(payload),
                     std::move(delta_sketch), ledger, final_flag};
  return std::optional<std::string>(pending_->encoded);
}

Status DeltaChannel::Acked(uint64_t last_applied_seqno) {
  if (last_applied_seqno > shipped_seqno_) {
    return Status::Corruption("ack for a delta that was never shipped");
  }
  if (last_applied_seqno < acked_seqno_) {
    return Status::Corruption("ack moved backwards");
  }
  acked_seqno_ = last_applied_seqno;
  if (pending_.has_value() && pending_->seqno <= last_applied_seqno) {
    STREAMFREQ_RETURN_NOT_OK(base_.Merge(pending_->delta));
    base_ledger_ = pending_->ledger_after;
    if (pending_->final_flag) final_acked_ = true;
    pending_.reset();
  }
  return Status::OK();
}

Status DeltaReceiver::Classify(uint64_t seqno, bool* duplicate) const {
  if (seqno == 0) {
    return Status::Corruption("delta seqno 0 (seqnos are 1-based)");
  }
  if (seqno <= last_applied_) {
    *duplicate = true;  // WAL discipline: seqno <= base is a re-delivery
    return Status::OK();
  }
  if (seqno != last_applied_ + 1) {
    return Status::Corruption("delta seqno gap: expected " +
                              std::to_string(last_applied_ + 1) + ", got " +
                              std::to_string(seqno));
  }
  *duplicate = false;
  return Status::OK();
}

}  // namespace streamfreq
