#include "dist/aggregate.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/space_saving.h"
#include "server/net.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

constexpr uint64_t kStreamSalt = 0x9E3779B97F4A7C15ULL;

std::string SocketPath(const std::string& dir, uint64_t node) {
  return dir + "/node-" + std::to_string(node) + ".sock";
}

// Shared node-side aggregation state: the same fields MergeTreeSim keeps
// per node, minus the failpoints (the sim owns fault injection; this is
// the straight-line deployment of the identical wire protocol).
struct NodeState {
  explicit NodeState(CountSketch zero) : acc(std::move(zero)) {}

  CountSketch acc;
  DistLedger own;
  std::map<uint64_t, DistLedger> child_ledgers;
  std::map<uint64_t, uint64_t> covered;
  std::map<uint64_t, std::vector<ItemId>> child_candidates;
  std::map<uint64_t, DeltaReceiver> receivers;
  uint64_t deltas_applied = 0;
  uint64_t delta_dedups = 0;

  DistLedger Total() const {
    DistLedger t = own;
    for (const auto& [child, ledger] : child_ledgers) t += ledger;
    return t;
  }

  std::vector<CoverageEntry> CoveredSnapshot() const {
    std::vector<CoverageEntry> out;
    out.reserve(covered.size());
    for (const auto& [leaf, count] : covered) {
      out.push_back(CoverageEntry{leaf, count});
    }
    return out;
  }

  std::vector<ItemId> CandidateUnion() const {
    std::set<ItemId> ids;
    for (const auto& [child, cands] : child_candidates) {
      ids.insert(cands.begin(), cands.end());
    }
    return std::vector<ItemId>(ids.begin(), ids.end());
  }

  /// Applies one decoded delta from `child` (or dedups it) and returns the
  /// cumulative ack seqno.
  Result<uint64_t> Apply(uint64_t child, const DeltaPayload& delta) {
    DeltaReceiver& recv = receivers[child];
    bool duplicate = false;
    STREAMFREQ_RETURN_NOT_OK(recv.Classify(delta.seqno, &duplicate));
    if (duplicate) {
      recv.CountDuplicate();
      ++delta_dedups;
      return recv.last_applied();
    }
    STREAMFREQ_ASSIGN_OR_RETURN(CountSketch delta_sketch,
                                CountSketch::Deserialize(delta.sketch_blob));
    STREAMFREQ_RETURN_NOT_OK(acc.Merge(delta_sketch));
    child_ledgers[child] += delta.ledger;
    for (const CoverageEntry& c : delta.covered) {
      uint64_t& cur = covered[c.leaf_id];
      if (c.count < cur) {
        return Status::Corruption("coverage watermark moved backwards");
      }
      cur = c.count;
    }
    child_candidates[child] = delta.candidates;
    recv.Applied(delta.seqno);
    ++deltas_applied;
    return recv.last_applied();
  }
};

/// Blocking ship of one delta (if there is one) over `up_fd`, waiting for
/// and folding the cumulative ack.
Status ShipAndAck(DeltaChannel* channel, int up_fd, const CountSketch& acc,
                  const DistLedger& ledger,
                  const std::vector<CoverageEntry>& covered,
                  const std::vector<ItemId>& candidates, bool final_flag) {
  STREAMFREQ_ASSIGN_OR_RETURN(
      std::optional<std::string> payload,
      channel->Ship(acc, ledger, covered, candidates, final_flag));
  if (!payload.has_value()) return Status::OK();
  STREAMFREQ_RETURN_NOT_OK(SendFrame(up_fd, *payload));
  STREAMFREQ_ASSIGN_OR_RETURN(std::string ack_frame, RecvFrame(up_fd));
  STREAMFREQ_ASSIGN_OR_RETURN(uint64_t ack, DecodeAck(ack_frame));
  return channel->Acked(ack);
}

/// Leaf worker: ingest the seeded substream in delta_every chunks, shipping
/// after each, final flag on the last.
Status RunWorker(const AggregateOptions& options, const TreeTopology& topo,
                 uint64_t node, uint64_t leaf_index) {
  STREAMFREQ_ASSIGN_OR_RETURN(std::vector<ItemId> items,
                              WorkerStreamItems(options, leaf_index));
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch acc,
                              CountSketch::Make(options.params));
  STREAMFREQ_ASSIGN_OR_RETURN(SpaceSaving tracker,
                              SpaceSaving::Make(options.tracked));
  DeltaChannel channel(node, acc);  // acc is still zero: the empty base
  STREAMFREQ_ASSIGN_OR_RETURN(
      OwnedFd up, ConnectUnix(SocketPath(options.socket_dir,
                                         topo.parent[node])));
  DistLedger ledger;
  const uint64_t step = std::max<uint64_t>(1, options.delta_every);
  for (uint64_t off = 0; off < items.size() || off == 0;) {
    const uint64_t n =
        std::min<uint64_t>(step, items.size() - off);
    const std::span<const ItemId> chunk(items.data() + off, n);
    acc.BatchAdd(chunk);
    tracker.BatchAdd(chunk);
    ledger.offered += n;
    ledger.ingested += n;
    off += n;
    std::vector<CoverageEntry> cov = {CoverageEntry{node, off}};
    std::vector<ItemId> cands;
    for (const ItemCount& c : tracker.Candidates(options.tracked)) {
      cands.push_back(c.item);
    }
    std::sort(cands.begin(), cands.end());
    STREAMFREQ_RETURN_NOT_OK(ShipAndAck(&channel, up.get(), acc, ledger, cov,
                                        cands, /*final=*/off >= items.size()));
    if (off >= items.size()) break;
  }
  return Status::OK();
}

/// Interior relay (and, with up_fd < 0, the root): accept every child,
/// apply/ack their deltas, forward upward after each apply, tear down when
/// every child hung up after its final delta.
Status RunRelay(const AggregateOptions& options, const TreeTopology& topo,
                uint64_t node, OwnedFd listener, NodeState* state) {
  const std::vector<uint64_t>& children = topo.children[node];
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch zero,
                              CountSketch::Make(options.params));
  DeltaChannel channel(node, zero);
  OwnedFd up;
  if (node != 0) {
    STREAMFREQ_ASSIGN_OR_RETURN(
        up, ConnectUnix(SocketPath(options.socket_dir, topo.parent[node])));
  }
  std::vector<OwnedFd> conns;
  conns.reserve(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    STREAMFREQ_ASSIGN_OR_RETURN(OwnedFd conn, AcceptConn(listener));
    conns.push_back(std::move(conn));
  }
  size_t open = conns.size();
  std::vector<bool> closed(conns.size(), false);
  while (open > 0) {
    std::vector<pollfd> fds;
    std::vector<size_t> index;
    for (size_t i = 0; i < conns.size(); ++i) {
      if (closed[i]) continue;
      fds.push_back(pollfd{conns[i].get(), POLLIN, 0});
      index.push_back(i);
    }
    int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll failed on relay node");
    }
    for (size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const size_t i = index[f];
      Result<std::string> frame = RecvFrame(conns[i].get());
      if (!frame.ok()) {
        if (frame.status().IsNotFound()) {
          closed[i] = true;  // clean EOF after the child's final ack
          --open;
          continue;
        }
        return frame.status();
      }
      STREAMFREQ_ASSIGN_OR_RETURN(DeltaPayload delta, DecodeDelta(*frame));
      STREAMFREQ_ASSIGN_OR_RETURN(uint64_t ack,
                                  state->Apply(delta.node_id, delta));
      STREAMFREQ_RETURN_NOT_OK(SendFrame(conns[i].get(), EncodeAck(ack)));
      if (node != 0) {
        STREAMFREQ_RETURN_NOT_OK(
            ShipAndAck(&channel, up.get(), state->acc, state->Total(),
                       state->CoveredSnapshot(), state->CandidateUnion(),
                       /*final=*/false));
      }
    }
  }
  if (node != 0) {
    STREAMFREQ_RETURN_NOT_OK(
        ShipAndAck(&channel, up.get(), state->acc, state->Total(),
                   state->CoveredSnapshot(), state->CandidateUnion(),
                   /*final=*/true));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ItemId>> WorkerStreamItems(const AggregateOptions& options,
                                              uint64_t leaf_index) {
  auto gen =
      ZipfGenerator::Make(options.universe, options.zipf_z,
                          options.seed ^ ((leaf_index + 1) * kStreamSalt));
  if (!gen.ok()) return gen.status();
  return gen->Take(options.items);
}

Result<AggregateReport> RunAggregate(const AggregateOptions& options) {
  if (options.socket_dir.empty()) {
    return Status::InvalidArgument("aggregate needs a socket directory");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(
      TreeTopology topo, BuildBalancedTree(options.workers, options.fanout));
  // Leaf index (stream assignment) per leaf node id.
  std::map<uint64_t, uint64_t> leaf_index;
  for (uint64_t i = 0; i < topo.leaves.size(); ++i) {
    leaf_index[topo.leaves[i]] = i;
  }
  // Every listener exists before the first fork: a child can never race
  // its parent's bind.
  std::map<uint64_t, OwnedFd> listeners;
  for (uint64_t u = 0; u < topo.size(); ++u) {
    if (topo.is_leaf(u)) continue;
    STREAMFREQ_ASSIGN_OR_RETURN(
        OwnedFd fd, ListenUnix(SocketPath(options.socket_dir, u)));
    listeners[u] = std::move(fd);
  }
  std::vector<pid_t> pids;
  for (uint64_t u = 1; u < topo.size(); ++u) {
    const pid_t pid = ::fork();
    if (pid < 0) return Status::IoError("fork failed");
    if (pid == 0) {
      // Child: keep only this node's listener; drop the rest.
      Status s;
      if (topo.is_leaf(u)) {
        listeners.clear();
        s = RunWorker(options, topo, u, leaf_index[u]);
      } else {
        OwnedFd mine = std::move(listeners[u]);
        listeners.clear();
        auto zero = CountSketch::Make(options.params);
        if (!zero.ok()) std::_Exit(3);
        NodeState state(std::move(*zero));
        s = RunRelay(options, topo, u, std::move(mine), &state);
      }
      std::_Exit(s.ok() ? 0 : 3);
    }
    pids.push_back(pid);
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch zero,
                              CountSketch::Make(options.params));
  NodeState root(std::move(zero));
  Status root_status = RunRelay(options, topo, 0, std::move(listeners[0]),
                                &root);
  listeners.clear();
  bool child_failed = false;
  for (pid_t pid : pids) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) != pid ||
        !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      child_failed = true;
    }
  }
  for (uint64_t u = 0; u < topo.size(); ++u) {
    if (!topo.is_leaf(u)) {
      ::unlink(SocketPath(options.socket_dir, u).c_str());
    }
  }
  STREAMFREQ_RETURN_NOT_OK(root_status);
  if (child_failed) {
    return Status::Internal("an aggregate worker or relay exited non-zero");
  }
  AggregateReport report;
  report.nodes = topo.size();
  report.depth = topo.max_depth();
  report.leaves = topo.leaves.size();
  report.ledger = root.Total();
  report.covered = root.CoveredSnapshot();
  report.deltas_applied = root.deltas_applied;
  report.delta_dedups = root.delta_dedups;
  std::vector<ItemId> cands = root.CandidateUnion();
  report.topk.reserve(cands.size());
  for (ItemId id : cands) {
    report.topk.push_back(ItemCount{id, root.acc.Estimate(id)});
  }
  std::sort(report.topk.begin(), report.topk.end(),
            [](const ItemCount& a, const ItemCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.item < b.item;
            });
  if (report.topk.size() > options.topk) report.topk.resize(options.topk);
  if (!report.ledger.ConservationHolds()) {
    return Status::Internal("root ledger violates conservation");
  }
  return report;
}

}  // namespace streamfreq
