#include "dist/tree.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace streamfreq {

uint64_t TreeTopology::max_depth() const {
  uint64_t m = 0;
  for (uint64_t d : depth) m = std::max(m, d);
  return m;
}

std::vector<uint64_t> TreeTopology::BottomUpOrder() const {
  std::vector<uint64_t> order(size());
  for (uint64_t i = 0; i < size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](uint64_t a, uint64_t b) {
    return depth[a] > depth[b];
  });
  return order;
}

Result<TreeTopology> TopologyFromParents(std::vector<uint64_t> parent) {
  if (parent.empty()) {
    return Status::InvalidArgument("topology needs at least one node");
  }
  if (parent[0] != 0) {
    return Status::InvalidArgument("node 0 must be the root");
  }
  TreeTopology topo;
  topo.parent = std::move(parent);
  const size_t n = topo.parent.size();
  topo.children.resize(n);
  topo.depth.assign(n, 0);
  for (uint64_t i = 1; i < n; ++i) {
    // Parents have lower ids, so one ascending pass settles every depth and
    // no cycle can form.
    if (topo.parent[i] >= i) {
      return Status::InvalidArgument("node parent must have a lower id");
    }
    topo.children[topo.parent[i]].push_back(i);
    topo.depth[i] = topo.depth[topo.parent[i]] + 1;
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (topo.children[i].empty()) topo.leaves.push_back(i);
  }
  if (n > 1 && topo.children[0].empty()) {
    return Status::InvalidArgument("root has no children in multi-node tree");
  }
  return topo;
}

Result<TreeTopology> BuildBalancedTree(uint64_t workers, uint64_t fanout) {
  if (workers == 0) {
    return Status::InvalidArgument("merge tree needs at least one worker");
  }
  if (fanout == 0 || fanout >= workers) {
    // Flat star: leaves 1..workers under the root.
    std::vector<uint64_t> parent(workers + 1, 0);
    return TopologyFromParents(std::move(parent));
  }
  if (fanout == 1) {
    return Status::InvalidArgument(
        "balanced fanout 1 cannot hold more than one worker");
  }
  // Level sizes bottom-up: leaves at the deepest level, each interior
  // level ceil(next / fanout) wide. size[i-1] <= size[i] <= size[i-1] *
  // fanout, so round-robin attachment gives every interior node between 1
  // and `fanout` children — no childless interior nodes, no overflow.
  std::vector<uint64_t> sizes = {workers};
  while (sizes.back() > fanout) {
    sizes.push_back((sizes.back() + fanout - 1) / fanout);
  }
  std::reverse(sizes.begin(), sizes.end());  // top-down, root level omitted
  std::vector<uint64_t> parent = {0};
  std::vector<uint64_t> frontier = {0};
  for (uint64_t level_size : sizes) {
    std::vector<uint64_t> next;
    next.reserve(level_size);
    for (uint64_t i = 0; i < level_size; ++i) {
      parent.push_back(frontier[i % frontier.size()]);
      next.push_back(parent.size() - 1);
    }
    frontier = std::move(next);
  }
  return TopologyFromParents(std::move(parent));
}

Result<TreeTopology> BuildRandomTree(uint64_t workers, uint64_t max_fanout,
                                     uint64_t max_depth, Xoshiro256* rng) {
  if (workers == 0) {
    return Status::InvalidArgument("merge tree needs at least one worker");
  }
  if (max_fanout == 0 || max_depth == 0) {
    return Status::InvalidArgument("max_fanout and max_depth must be >= 1");
  }
  // A random population of interior nodes (each hung under an earlier
  // interior node within the depth budget), then each worker leaf picks a
  // random interior attachment point. Ragged by construction.
  std::vector<uint64_t> parent = {0};
  std::vector<uint64_t> depth = {0};
  std::vector<uint64_t> interior = {0};  // ids eligible to take children
  const uint64_t extra_interior =
      max_depth <= 1 ? 0 : rng->UniformBelow(workers + 1);
  for (uint64_t i = 0; i < extra_interior; ++i) {
    // Attachment must leave room for a leaf below (depth < max_depth - 1).
    std::vector<uint64_t> eligible;
    for (uint64_t node : interior) {
      if (depth[node] + 1 < max_depth) eligible.push_back(node);
    }
    if (eligible.empty()) break;
    const uint64_t p = eligible[rng->UniformBelow(eligible.size())];
    parent.push_back(p);
    depth.push_back(depth[p] + 1);
    interior.push_back(parent.size() - 1);
  }
  // Leaves: random interior parent, respecting the fanout cap when
  // possible (the root is always a legal fallback so attachment cannot
  // fail; fanout then overflows the cap rather than orphaning a worker).
  std::vector<uint64_t> load(parent.size(), 0);
  for (uint64_t w = 0; w < workers; ++w) {
    std::vector<uint64_t> eligible;
    for (uint64_t node : interior) {
      if (load[node] < max_fanout) eligible.push_back(node);
    }
    const uint64_t p = eligible.empty()
                           ? interior[rng->UniformBelow(interior.size())]
                           : eligible[rng->UniformBelow(eligible.size())];
    parent.push_back(p);
    ++load[p];
  }
  // Interior nodes that ended up childless become leaves of the shipped
  // topology — that is fine (they simply cover zero stream), but prune
  // them anyway so `leaves` means "ingesting worker" to every caller.
  // Prune iteratively: removing one childless interior node can expose
  // another.
  while (true) {
    const uint64_t first_leaf = parent.size() - workers;
    std::vector<uint64_t> child_count(parent.size(), 0);
    for (uint64_t i = 1; i < parent.size(); ++i) ++child_count[parent[i]];
    uint64_t victim = 0;
    for (uint64_t i = 1; i < first_leaf; ++i) {
      if (child_count[i] == 0) {
        victim = i;
        break;
      }
    }
    if (victim == 0) break;
    std::vector<uint64_t> remapped;
    remapped.reserve(parent.size() - 1);
    for (uint64_t i = 0; i < parent.size(); ++i) {
      if (i == victim) continue;
      uint64_t p = parent[i];
      remapped.push_back(p > victim ? p - 1 : p);
    }
    parent = std::move(remapped);
  }
  return TopologyFromParents(std::move(parent));
}

}  // namespace streamfreq
