#include "dist/merge_tree.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>

#include "server/protocol.h"
#include "util/failpoint.h"

namespace streamfreq {

MergeTreeSim::MergeTreeSim(TreeTopology topo, CountSketch zero, size_t tracked)
    : topo_(std::move(topo)),
      params_(zero.params()),
      tracked_(tracked),
      epoch_(zero),
      bottom_up_(topo_.BottomUpOrder()) {
  nodes_.reserve(topo_.size());
  for (uint64_t u = 0; u < topo_.size(); ++u) {
    nodes_.emplace_back(zero);
    if (u != 0) nodes_[u].up.emplace(u, zero);
  }
}

Result<MergeTreeSim> MergeTreeSim::Make(TreeTopology topology,
                                        const CountSketchParams& params,
                                        size_t tracked) {
  if (tracked == 0) {
    return Status::InvalidArgument("tracked candidate capacity must be >= 1");
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch zero, CountSketch::Make(params));
  MergeTreeSim sim(std::move(topology), std::move(zero), tracked);
  for (uint64_t leaf : sim.topo_.leaves) {
    STREAMFREQ_ASSIGN_OR_RETURN(SpaceSaving tracker,
                                SpaceSaving::Make(tracked));
    sim.nodes_[leaf].tracker.emplace(std::move(tracker));
  }
  return sim;
}

Status MergeTreeSim::Offer(uint64_t node, std::span<const ItemId> batch) {
  if (node >= nodes_.size() || !topo_.is_leaf(node)) {
    return Status::InvalidArgument("Offer target is not a leaf");
  }
  Node& n = nodes_[node];
  if (!n.alive) {
    return Status::NotFound("leaf is dead");  // never enters any ledger
  }
  if (n.final_local) {
    return Status::InvalidArgument("leaf is sealed");
  }
  size_t keep = batch.size();
  const FailDecision fp = SFQ_FAILPOINT("dist.ingest");
  if (fp.action == FailAction::kCrash) {
    // The leaf dies at the admission gate; the batch was never offered.
    n.alive = false;
    ++stats_.nodes_lost;
    return Status::NotFound("leaf died at admission");
  }
  n.own.offered += batch.size();
  if (fp.action == FailAction::kError) {
    // Whole-batch rejection: refused mass, accounted but never sketched.
    n.own.rejected += batch.size();
    ++stats_.batches_rejected;
    return Status::OK();
  }
  if (fp.action == FailAction::kTorn) {
    // Recorded shed: a prefix is admitted, the suffix is dropped — the
    // ledger says exactly how much (param = items kept, 0 = half).
    keep = fp.param != 0 ? std::min<size_t>(fp.param, batch.size())
                         : batch.size() / 2;
    n.own.dropped += batch.size() - keep;
    ++stats_.batches_torn;
  }
  const std::span<const ItemId> admitted = batch.first(keep);
  n.own.ingested += admitted.size();
  n.acc.BatchAdd(admitted);
  n.tracker->BatchAdd(admitted);
  n.ingested_items.insert(n.ingested_items.end(), admitted.begin(),
                          admitted.end());
  n.covered[node] = n.ingested_items.size();
  return Status::OK();
}

void MergeTreeSim::Seal() {
  for (uint64_t leaf : topo_.leaves) {
    if (nodes_[leaf].alive) nodes_[leaf].final_local = true;
  }
}

DistLedger MergeTreeSim::TotalLedger(uint64_t node) const {
  DistLedger total = nodes_[node].own;
  for (const auto& [child, ledger] : nodes_[node].child_ledgers) {
    total += ledger;
  }
  return total;
}

std::vector<CoverageEntry> MergeTreeSim::CoveredSnapshot(uint64_t node) const {
  std::vector<CoverageEntry> out;
  out.reserve(nodes_[node].covered.size());
  for (const auto& [leaf, count] : nodes_[node].covered) {
    out.push_back(CoverageEntry{leaf, count});
  }
  return out;
}

std::vector<ItemId> MergeTreeSim::CandidateUnion(uint64_t node) const {
  std::set<ItemId> ids;
  const Node& n = nodes_[node];
  if (n.tracker.has_value()) {
    for (const ItemCount& c : n.tracker->Candidates(tracked_)) {
      ids.insert(c.item);
    }
  }
  for (const auto& [child, cands] : n.child_candidates) {
    ids.insert(cands.begin(), cands.end());
  }
  return std::vector<ItemId>(ids.begin(), ids.end());
}

bool MergeTreeSim::FinalReady(uint64_t node) const {
  const Node& n = nodes_[node];
  if (topo_.is_leaf(node)) return n.final_local;
  for (uint64_t child : topo_.children[node]) {
    if (!nodes_[child].alive) continue;  // a dead child will never report
    auto it = n.child_final.find(child);
    if (it == n.child_final.end() || !it->second) return false;
  }
  return true;
}

Result<std::optional<uint64_t>> MergeTreeSim::Deliver(uint64_t parent,
                                                      uint64_t child,
                                                      const std::string& frame,
                                                      bool* applied) {
  *applied = false;
  std::string payload;
  if (Status s = DecodeFrame(frame, &payload); !s.ok()) {
    // A tampered frame MUST be caught here (CRC/length); anything else
    // reaching this path is a transport bug.
    if (s.IsCorruption()) return std::optional<uint64_t>();
    return s;
  }
  STREAMFREQ_ASSIGN_OR_RETURN(DeltaPayload delta, DecodeDelta(payload));
  if (delta.node_id != child) {
    return Status::Internal("delta sender id does not match link");
  }
  Node& p = nodes_[parent];
  DeltaReceiver& recv = p.receivers[child];
  if (const FailDecision fp = SFQ_FAILPOINT("dist.deliver"); fp) {
    // Parent drops a valid delta before applying but still answers with
    // its OLD cumulative ack — the sender must resend.
    ++stats_.dropped_deliveries;
    return std::optional<uint64_t>(recv.last_applied());
  }
  bool duplicate = false;
  STREAMFREQ_RETURN_NOT_OK(recv.Classify(delta.seqno, &duplicate));
  if (duplicate) {
    recv.CountDuplicate();
    ++stats_.delta_dedups;
    return std::optional<uint64_t>(recv.last_applied());
  }
  STREAMFREQ_ASSIGN_OR_RETURN(CountSketch delta_sketch,
                              CountSketch::Deserialize(delta.sketch_blob));
  STREAMFREQ_RETURN_NOT_OK(p.acc.Merge(delta_sketch));
  p.child_ledgers[child] += delta.ledger;
  for (const CoverageEntry& c : delta.covered) {
    uint64_t& cur = p.covered[c.leaf_id];
    if (c.count < cur) {
      return Status::Internal("coverage watermark moved backwards");
    }
    cur = c.count;
  }
  p.child_candidates[child] = delta.candidates;
  if (delta.final_flag) p.child_final[child] = true;
  recv.Applied(delta.seqno);
  ++stats_.deltas_applied;
  *applied = true;
  return std::optional<uint64_t>(recv.last_applied());
}

Result<bool> MergeTreeSim::ShipRound() {
  bool progress = false;
  for (uint64_t u : bottom_up_) {
    if (u == 0) continue;
    Node& n = nodes_[u];
    if (!n.alive) continue;
    if (SFQ_FAILPOINT("dist.node").action == FailAction::kCrash) {
      // Permanent node loss: unacked and unshipped mass below this point
      // never reaches the root; its absence shows up in the coverage map,
      // not as silent error.
      n.alive = false;
      ++stats_.nodes_lost;
      continue;
    }
    STREAMFREQ_ASSIGN_OR_RETURN(
        std::optional<std::string> payload,
        n.up->Ship(n.acc, TotalLedger(u), CoveredSnapshot(u),
                   CandidateUnion(u), FinalReady(u)));
    if (!payload.has_value()) continue;
    ++stats_.deltas_shipped;
    const uint64_t parent = topo_.parent[u];
    if (!nodes_[parent].alive) {
      ++stats_.severed_links;
      continue;
    }
    std::string frame = EncodeFrame(*payload);
    if (const FailDecision fp = SFQ_FAILPOINT("dist.ship"); fp) {
      if (fp.action == FailAction::kError ||
          fp.action == FailAction::kCrash) {
        ++stats_.severed_links;  // frame never arrives
        continue;
      }
      if (fp.action == FailAction::kTorn) {
        const size_t kept = fp.param != 0
                                ? std::min<size_t>(fp.param, frame.size())
                                : frame.size() / 2;
        frame.resize(kept);
      } else if (fp.action == FailAction::kBitFlip) {
        const size_t bit = fp.param % (frame.size() * 8);
        frame[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));
      }
    }
    bool applied = false;
    STREAMFREQ_ASSIGN_OR_RETURN(std::optional<uint64_t> ack,
                                Deliver(parent, u, frame, &applied));
    progress = progress || applied;
    if (!ack.has_value()) {
      ++stats_.severed_links;  // torn/bit-flipped frame caught by the CRC
      continue;
    }
    if (SFQ_FAILPOINT("dist.ack")) {
      ++stats_.lost_acks;  // sender never sees it; resend next round
      continue;
    }
    STREAMFREQ_RETURN_NOT_OK(n.up->Acked(*ack));
  }
  return progress;
}

bool MergeTreeSim::Quiescent() const {
  for (uint64_t u = 1; u < nodes_.size(); ++u) {
    const Node& n = nodes_[u];
    if (!n.alive || !nodes_[topo_.parent[u]].alive) continue;
    if (!n.up->NothingToShip(TotalLedger(u), FinalReady(u))) return false;
  }
  return true;
}

Status MergeTreeSim::Drain(uint64_t max_rounds) {
  for (uint64_t r = 0; r < max_rounds; ++r) {
    if (Quiescent()) return Status::OK();
    STREAMFREQ_RETURN_NOT_OK(ShipRound().status());
  }
  return Status::OK();  // bounded effort; loss is visible in coverage
}

std::vector<CoverageEntry> MergeTreeSim::RootCovered() const {
  return CoveredSnapshot(0);
}

namespace {

// Scores `ids` on `score`, descending, ties toward smaller ids.
std::vector<ItemCount> RankCandidates(const std::vector<ItemId>& ids,
                                      const CountSketch& score, size_t k,
                                      bool absolute) {
  std::vector<ItemCount> out;
  out.reserve(ids.size());
  for (ItemId id : ids) {
    out.push_back(ItemCount{id, score.Estimate(id)});
  }
  std::sort(out.begin(), out.end(),
            [absolute](const ItemCount& a, const ItemCount& b) {
              const int64_t ka = absolute ? std::llabs(a.count) : a.count;
              const int64_t kb = absolute ? std::llabs(b.count) : b.count;
              if (ka != kb) return ka > kb;
              return a.item < b.item;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace

std::vector<ItemCount> MergeTreeSim::ApproxTop(size_t k) const {
  return RankCandidates(CandidateUnion(0), nodes_[0].acc, k,
                        /*absolute=*/false);
}

Result<std::vector<ItemCount>> MergeTreeSim::MaxChange(size_t k) const {
  CountSketch diff = nodes_[0].acc;
  STREAMFREQ_RETURN_NOT_OK(diff.Subtract(epoch_));
  return RankCandidates(CandidateUnion(0), diff, k, /*absolute=*/true);
}

Status MergeTreeSim::CheckInvariants() const {
  for (uint64_t u = 0; u < nodes_.size(); ++u) {
    const Node& n = nodes_[u];
    if (!n.own.ConservationHolds()) {
      return Status::Internal("node " + std::to_string(u) +
                              ": own ledger violates conservation");
    }
    const DistLedger total = TotalLedger(u);
    if (!total.ConservationHolds()) {
      return Status::Internal("node " + std::to_string(u) +
                              ": composed ledger violates conservation");
    }
    // At-most-once accounting: what u has applied from each child never
    // exceeds what that child has produced so far.
    for (const auto& [child, applied] : n.child_ledgers) {
      if (!applied.ConservationHolds()) {
        return Status::Internal("node " + std::to_string(u) + " child " +
                                std::to_string(child) +
                                ": applied ledger violates conservation");
      }
      const DistLedger produced = TotalLedger(child);
      if (applied.offered > produced.offered ||
          applied.rejected > produced.rejected ||
          applied.ingested > produced.ingested ||
          applied.dropped > produced.dropped) {
        return Status::Internal("node " + std::to_string(u) +
                                " accounted more than child " +
                                std::to_string(child) + " produced");
      }
    }
    // Covered mass equals the composed ingested count at every node.
    uint64_t covered_sum = 0;
    for (const auto& [leaf, count] : n.covered) covered_sum += count;
    if (covered_sum != total.ingested) {
      return Status::Internal(
          "node " + std::to_string(u) + ": covered mass " +
          std::to_string(covered_sum) + " != composed ingested " +
          std::to_string(total.ingested));
    }
    // Sketch bit-identity: the accumulated sketch equals the sketch of
    // exactly the covered prefix of every leaf stream (delta linearity).
    Result<CountSketch> ref = CountSketch::Make(params_);
    STREAMFREQ_RETURN_NOT_OK(ref.status());
    for (const auto& [leaf, count] : n.covered) {
      const std::vector<ItemId>& items = nodes_[leaf].ingested_items;
      if (count > items.size()) {
        return Status::Internal("node " + std::to_string(u) +
                                " covers more of leaf " +
                                std::to_string(leaf) + " than it ingested");
      }
      ref->BatchAdd(
          std::span<const ItemId>(items.data(), static_cast<size_t>(count)));
    }
    std::string want, got;
    ref->SerializeTo(&want);
    n.acc.SerializeTo(&got);
    if (want != got) {
      return Status::Internal("node " + std::to_string(u) +
                              ": sketch differs from covered-prefix "
                              "reference (delta linearity broken)");
    }
  }
  return Status::OK();
}

}  // namespace streamfreq
