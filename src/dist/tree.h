// Merge-tree topologies: which node ships deltas to which.
//
// Node 0 is always the root. Leaves ingest; interior nodes only merge and
// forward. Topologies may be ragged (uneven fanout / leaf depth) — the
// tree-shape property test (tests/dist_tree_property_test.cc) proves the
// root sketch is invariant across all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/random.h"
#include "util/result.h"

namespace streamfreq {

/// An immutable merge-tree shape over nodes [0, size). parent[0] == 0.
struct TreeTopology {
  std::vector<uint64_t> parent;                 ///< parent[i] for node i
  std::vector<std::vector<uint64_t>> children;  ///< children[i] of node i
  std::vector<uint64_t> leaves;                 ///< nodes with no children
  std::vector<uint64_t> depth;                  ///< root depth 0

  size_t size() const { return parent.size(); }
  bool is_leaf(uint64_t node) const { return children[node].empty(); }
  uint64_t max_depth() const;

  /// Nodes ordered leaves-first (deepest depth first), so one pass moves
  /// every delta exactly one hop toward the root.
  std::vector<uint64_t> BottomUpOrder() const;
};

/// Balanced tree with `workers` leaves and interior fanout `fanout`.
/// fanout == 0 (or >= workers) collapses to the flat star: every worker
/// ships straight to the root.
Result<TreeTopology> BuildBalancedTree(uint64_t workers, uint64_t fanout);

/// Random ragged tree: `workers` leaves attached at uneven depths under
/// interior nodes with fanout in [1, max_fanout], depth capped at
/// max_depth. Deterministic in `rng`.
Result<TreeTopology> BuildRandomTree(uint64_t workers, uint64_t max_fanout,
                                     uint64_t max_depth, Xoshiro256* rng);

/// Builds the derived fields (children/leaves/depth) from `parent` and
/// validates the shape: node 0 is root, every other node's parent has a
/// lower id (no cycles), at least one leaf.
Result<TreeTopology> TopologyFromParents(std::vector<uint64_t> parent);

}  // namespace streamfreq
