// Deterministic in-process merge-tree engine.
//
// MergeTreeSim runs the whole fleet — N ingesting leaves shipping sketch
// deltas up a TreeTopology to a root — inside one thread, with every fault
// injected through the five dist.* failpoints (docs/ROBUSTNESS.md):
//
//   dist.ingest   admission at a leaf: error rejects the whole batch,
//                 torn sheds a recorded suffix (both land in the ledger)
//   dist.ship     the uplink frame never arrives / arrives torn or
//                 bit-flipped (CRC must catch it) — link severed, resend
//   dist.deliver  parent drops a valid delta before applying, still acks
//                 its OLD cumulative seqno — sender resends
//   dist.ack      the ack is lost — sender resends, receiver dedups
//   dist.node     crash kills the node permanently (no restart)
//
// The engine exists so chaos --tree and the dist tests can drive thousands
// of seeded fleet runs per second and assert the two exact laws:
//
//   1. the root sketch is bit-identical to the sketch of the COVERED
//      prefix of every leaf stream (delta linearity — holds even mid-run,
//      even with loss), and
//   2. the conservation ledger composes: every node's ledger is the sum of
//      its children's applied increments plus its own, and the law
//      `offered − rejected == ingested + dropped` holds at each of them.
//
// The process-backed deployment of the same protocol is src/dist/
// aggregate.{h,cc}; the wire bytes are identical (delta.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "core/space_saving.h"
#include "dist/delta.h"
#include "dist/tree.h"
#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

/// Aggregate transport/fault counters for one sim run.
struct MergeTreeStats {
  uint64_t deltas_shipped = 0;   ///< frames sent (incl. resends)
  uint64_t deltas_applied = 0;   ///< fresh deltas merged at a parent
  uint64_t delta_dedups = 0;     ///< re-deliveries skipped by seqno
  uint64_t severed_links = 0;    ///< frames lost/torn/bit-flipped in flight
  uint64_t dropped_deliveries = 0;  ///< dist.deliver drops before apply
  uint64_t lost_acks = 0;        ///< acks the sender never saw
  uint64_t nodes_lost = 0;       ///< dist.node permanent deaths
  uint64_t batches_rejected = 0;  ///< dist.ingest whole-batch rejections
  uint64_t batches_torn = 0;      ///< dist.ingest recorded-suffix sheds
};

class MergeTreeSim {
 public:
  /// `tracked` is the per-leaf SpaceSaving capacity feeding the candidate
  /// union the root scores for ApproxTop / MaxChange.
  static Result<MergeTreeSim> Make(TreeTopology topology,
                                   const CountSketchParams& params,
                                   size_t tracked);

  /// Offers a batch to leaf `node` (must be a leaf id from the topology).
  /// Admission runs the dist.ingest failpoint; a dead leaf refuses with
  /// Unavailable and the batch never enters any ledger.
  Status Offer(uint64_t node, std::span<const ItemId> batch);

  /// Marks every live leaf final: its next delta carries the final flag.
  void Seal();

  /// One bottom-up shipping pass: every live non-root node attempts to
  /// ship its pending/next delta one hop. Returns true if any delta was
  /// applied (progress toward the root).
  Result<bool> ShipRound();

  /// Runs ShipRound until quiescent (no pending deltas anywhere and no
  /// unshipped progress) or `max_rounds` is exhausted. With failpoints
  /// disarmed, at most depth+1 rounds are needed.
  Status Drain(uint64_t max_rounds);

  /// True when no live node has anything left to ship.
  bool Quiescent() const;

  // --- root queries -------------------------------------------------------

  const CountSketch& root_sketch() const { return nodes_[0].acc; }

  /// Composed ledger at the root: its children's applied increments (the
  /// root ingests nothing itself).
  DistLedger root_ledger() const { return TotalLedger(0); }

  /// Per-leaf covered watermarks the root currently accounts for.
  std::vector<CoverageEntry> RootCovered() const;

  /// Global top-k: the candidate union shipped up the tree, scored on the
  /// root sketch, ties broken toward smaller ids.
  std::vector<ItemCount> ApproxTop(size_t k) const;

  int64_t EstimatePoint(ItemId item) const {
    return nodes_[0].acc.Estimate(item);
  }

  /// Two-pass max-change over the subtractive structure: MarkEpoch copies
  /// the root sketch; MaxChange scores the candidate union on
  /// (current − epoch) and returns the k largest |delta|.
  void MarkEpoch() { epoch_ = nodes_[0].acc; }
  Result<std::vector<ItemCount>> MaxChange(size_t k) const;

  // --- inspection ---------------------------------------------------------

  const MergeTreeStats& stats() const { return stats_; }
  const TreeTopology& topology() const { return topo_; }
  bool alive(uint64_t node) const { return nodes_[node].alive; }

  /// Items leaf `node` actually ingested (admitted, post-shed), in order.
  /// The covered watermark indexes into this stream — the reference sketch
  /// for bit-identity checks is built from its covered prefix.
  const std::vector<ItemId>& LeafIngested(uint64_t node) const {
    return nodes_[node].ingested_items;
  }

  /// Composed ledger at `node` (own + children's applied increments).
  DistLedger TotalLedger(uint64_t node) const;

  /// Checks the exact laws everywhere: per-node conservation (own, each
  /// applied child sum, and the composed total), at-most-once accounting
  /// (a parent's applied sum for a child never exceeds what that child has
  /// produced), ingested == Σ covered at every node, and sketch
  /// bit-identity at EVERY node against its covered-prefix reference. Any
  /// violation is Internal with a diagnostic.
  Status CheckInvariants() const;

 private:
  struct Node {
    explicit Node(CountSketch zero) : acc(std::move(zero)) {}

    bool alive = true;
    bool final_local = false;  ///< Seal() reached this node
    CountSketch acc;           ///< leaf: ingested; interior: applied merges
    DistLedger own;            ///< leaf admission ledger (interior: zero)
    /// Per-child sum of applied ledger increments. TotalLedger = own +
    /// Σ values — the composition law asserted by CheckInvariants.
    std::map<uint64_t, DistLedger> child_ledgers;
    std::map<uint64_t, uint64_t> covered;   ///< leaf_id -> watermark
    std::map<uint64_t, std::vector<ItemId>> child_candidates;
    std::map<uint64_t, bool> child_final;
    std::optional<SpaceSaving> tracker;     ///< leaves only
    std::vector<ItemId> ingested_items;     ///< leaves only
    std::optional<DeltaChannel> up;         ///< non-root only
    std::map<uint64_t, DeltaReceiver> receivers;  ///< per child
  };

  MergeTreeSim(TreeTopology topo, CountSketch zero, size_t tracked);

  /// The candidate union `node` would ship upward (own tracker top-k plus
  /// every child's last snapshot), sorted and deduped.
  std::vector<ItemId> CandidateUnion(uint64_t node) const;
  std::vector<CoverageEntry> CoveredSnapshot(uint64_t node) const;
  bool FinalReady(uint64_t node) const;

  /// Delivers `frame` from `child` to `parent`; returns the cumulative ack
  /// seqno, or nullopt when the link severed (torn/bitflip caught by CRC).
  Result<std::optional<uint64_t>> Deliver(uint64_t parent, uint64_t child,
                                          const std::string& frame,
                                          bool* applied);

  TreeTopology topo_;
  CountSketchParams params_;
  size_t tracked_;
  std::vector<Node> nodes_;
  CountSketch epoch_;
  std::vector<uint64_t> bottom_up_;
  MergeTreeStats stats_;
};

}  // namespace streamfreq
