// Process-backed merge-tree aggregation: the deployment behind
// `sfq aggregate --workers N --fanout F`.
//
// The CLI process hosts the ROOT. Every other node — ingest workers at the
// leaves, merge relays in the interior — is a forked child talking framed
// deltas (dist/delta.h) over unix-domain sockets (server/net.h), exactly
// the wire bytes MergeTreeSim pushes through its in-process links. All
// listeners are created before the first fork, so no child can connect
// before its parent is ready.
//
// Each worker streams a seeded Zipf substream into its local Count-Sketch
// + SpaceSaving tracker and ships a delta every `delta_every` items,
// waiting for the cumulative ack before building the next one. Interior
// relays apply child deltas (WAL-seqno dedup), re-ack, and opportunistically
// forward their own accumulated delta upward. The final-flag handshake
// tears the tree down leaf-to-root; the root then answers global ApproxTop
// and point estimates and reports the composed conservation ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "dist/delta.h"
#include "dist/tree.h"
#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

struct AggregateOptions {
  uint64_t workers = 4;
  uint64_t fanout = 0;     ///< 0 = flat star (every worker under the root)
  uint64_t items = 200000;  ///< per worker
  uint64_t universe = 1u << 20;
  double zipf_z = 1.1;
  uint64_t seed = 42;
  uint64_t delta_every = 16384;  ///< items per shipped delta
  size_t tracked = 64;           ///< per-leaf SpaceSaving capacity
  size_t topk = 10;
  CountSketchParams params;
  std::string socket_dir;  ///< where node sockets live (must exist)
};

struct AggregateReport {
  uint64_t nodes = 0;
  uint64_t depth = 0;
  uint64_t leaves = 0;
  DistLedger ledger;                  ///< composed at the root
  std::vector<CoverageEntry> covered;  ///< per-leaf watermarks at the root
  uint64_t deltas_applied = 0;        ///< at the root
  uint64_t delta_dedups = 0;          ///< at the root
  std::vector<ItemCount> topk;        ///< global ApproxTop(k)
};

/// The exact substream worker `leaf_index` (0-based over topology.leaves)
/// ingests: deterministic in (seed, leaf_index), so the CLI can regenerate
/// every stream and score the root's answers against an exact oracle.
Result<std::vector<ItemId>> WorkerStreamItems(const AggregateOptions& options,
                                              uint64_t leaf_index);

/// Runs the whole fleet: builds the balanced topology, forks workers and
/// relays, hosts the root, waits for the final-flag teardown, reaps every
/// child. Any non-zero child exit or protocol violation is an error.
Result<AggregateReport> RunAggregate(const AggregateOptions& options);

}  // namespace streamfreq
