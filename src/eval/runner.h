// Experiment runner: feeds a stream to an algorithm and collects quality
// and cost measurements in one place so every bench reports consistently.
#pragma once

#include <cstddef>
#include <string>

#include "core/frequent.h"
#include "eval/metrics.h"
#include "eval/workload.h"

namespace streamfreq {

/// Everything measured from one (algorithm, workload) run.
struct RunResult {
  std::string algorithm;
  double update_ns_per_item = 0.0;
  double items_per_second = 0.0;
  size_t space_bytes = 0;
  PrecisionRecall topk_quality;   ///< candidates vs true top-k
  double are_topk = 0.0;          ///< avg relative error on true top-k
  double max_abs_error = 0.0;     ///< max abs error on true top-k
};

/// Streams `workload` through `algo`, then scores its top-k answer.
RunResult RunAndScore(StreamSummary& algo, const Workload& workload, size_t k);

}  // namespace streamfreq
