#include "eval/suite.h"

#include <algorithm>
#include <cmath>

#include "core/count_min_topk.h"
#include "core/count_sketch.h"
#include "core/lossy_counting.h"
#include "core/misra_gries.h"
#include "core/sampling.h"
#include "core/space_saving.h"
#include "core/stream_summary.h"
#include "core/top_k_tracker.h"

namespace streamfreq {

namespace {

// Rough per-entry byte costs used to translate the budget into capacities;
// they mirror the SpaceBytes() accounting of the respective classes.
constexpr size_t kMapEntryBytes = 24;
constexpr size_t kTrackedEntryBytes = 72;
constexpr size_t kSketchRowCount = 4;  // depth used by the sketch entrants

size_t SketchWidthForBudget(size_t budget, size_t tracked) {
  const size_t tracked_bytes = tracked * kTrackedEntryBytes;
  const size_t counter_bytes =
      budget > tracked_bytes ? budget - tracked_bytes : sizeof(int64_t);
  return std::max<size_t>(8, counter_bytes / (kSketchRowCount * sizeof(int64_t)));
}

size_t EntriesForBudget(size_t budget, size_t per_entry) {
  return std::max<size_t>(1, budget / per_entry);
}

template <typename T>
std::unique_ptr<StreamSummary> Box(T&& v) {
  return std::make_unique<T>(std::forward<T>(v));
}

}  // namespace

Result<std::unique_ptr<StreamSummary>> MakeAlgorithm(AlgorithmKind kind,
                                                     const SuiteSpec& spec) {
  if (spec.k == 0 || spec.space_budget_bytes == 0) {
    return Status::InvalidArgument("SuiteSpec: k and budget must be positive");
  }
  const size_t tracked = 2 * spec.k;
  const double n = static_cast<double>(spec.expected_stream_length);

  switch (kind) {
    case AlgorithmKind::kCountSketchTopK: {
      CountSketchParams p;
      p.depth = kSketchRowCount;
      p.width = SketchWidthForBudget(spec.space_budget_bytes, tracked);
      p.seed = spec.seed;
      STREAMFREQ_ASSIGN_OR_RETURN(CountSketchTopK algo,
                                  CountSketchTopK::Make(p, tracked));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kCountMinTopK:
    case AlgorithmKind::kCountMinConservativeTopK: {
      CountMinParams p;
      p.depth = kSketchRowCount;
      p.width = SketchWidthForBudget(spec.space_budget_bytes, tracked);
      p.seed = spec.seed;
      p.conservative = kind == AlgorithmKind::kCountMinConservativeTopK;
      STREAMFREQ_ASSIGN_OR_RETURN(CountMinTopK algo,
                                  CountMinTopK::Make(p, tracked));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kMisraGries: {
      STREAMFREQ_ASSIGN_OR_RETURN(
          MisraGries algo,
          MisraGries::Make(EntriesForBudget(spec.space_budget_bytes,
                                            kMapEntryBytes)));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kLossyCounting: {
      // Expected live entries ~ (1/eps) log(eps n); budget the 1/eps part
      // with a 2x log-slack so the realized footprint lands near budget.
      const size_t entries =
          EntriesForBudget(spec.space_budget_bytes, 2 * kMapEntryBytes);
      const double eps =
          std::min(0.5, std::max(1e-9, 1.0 / static_cast<double>(entries)));
      STREAMFREQ_ASSIGN_OR_RETURN(LossyCounting algo, LossyCounting::Make(eps));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kSpaceSaving: {
      STREAMFREQ_ASSIGN_OR_RETURN(
          SpaceSaving algo,
          SpaceSaving::Make(EntriesForBudget(spec.space_budget_bytes,
                                             2 * kMapEntryBytes)));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kStreamSummarySpaceSaving: {
      STREAMFREQ_ASSIGN_OR_RETURN(
          StreamSummarySpaceSaving algo,
          StreamSummarySpaceSaving::Make(
              EntriesForBudget(spec.space_budget_bytes, 2 * kMapEntryBytes)));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kStickySampling: {
      // Expected entries ~ (2/eps) * ln(1/(s*delta)) with eps = s/2; solve
      // s from the budget with one fixed-point iteration on the log factor.
      const double entries = static_cast<double>(
          EntriesForBudget(spec.space_budget_bytes, kMapEntryBytes));
      constexpr double kDelta = 0.1;
      double support = std::min(0.5, std::max(1e-8, 4.0 / entries));
      const double log_factor = std::log(1.0 / (support * kDelta));
      support = std::min(0.5, std::max(1e-8, 4.0 * log_factor / entries));
      STREAMFREQ_ASSIGN_OR_RETURN(
          StickySampling algo,
          StickySampling::Make(support, support / 2.0, kDelta, spec.seed));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kSampling: {
      // Inclusion probability sized so the expected sample fits the budget.
      const double sample_size = static_cast<double>(
          EntriesForBudget(spec.space_budget_bytes, kMapEntryBytes));
      const double p = std::min(1.0, std::max(1e-12, sample_size / n));
      STREAMFREQ_ASSIGN_OR_RETURN(SamplingSummary algo,
                                  SamplingSummary::Make(p, spec.seed));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kConciseSampling: {
      STREAMFREQ_ASSIGN_OR_RETURN(
          ConciseSampling algo,
          ConciseSampling::Make(EntriesForBudget(spec.space_budget_bytes,
                                                 kMapEntryBytes),
                                spec.seed));
      return Box(std::move(algo));
    }
    case AlgorithmKind::kCountingSampling: {
      STREAMFREQ_ASSIGN_OR_RETURN(
          CountingSampling algo,
          CountingSampling::Make(EntriesForBudget(spec.space_budget_bytes,
                                                  kMapEntryBytes),
                                 spec.seed));
      return Box(std::move(algo));
    }
  }
  return Status::InvalidArgument("MakeAlgorithm: unknown kind");
}

Result<std::vector<std::unique_ptr<StreamSummary>>> MakeDefaultSuite(
    const SuiteSpec& spec) {
  static constexpr AlgorithmKind kAll[] = {
      AlgorithmKind::kCountSketchTopK,
      AlgorithmKind::kCountMinTopK,
      AlgorithmKind::kCountMinConservativeTopK,
      AlgorithmKind::kMisraGries,
      AlgorithmKind::kLossyCounting,
      AlgorithmKind::kSpaceSaving,
      AlgorithmKind::kStreamSummarySpaceSaving,
      AlgorithmKind::kStickySampling,
      AlgorithmKind::kSampling,
      AlgorithmKind::kConciseSampling,
      AlgorithmKind::kCountingSampling,
  };
  std::vector<std::unique_ptr<StreamSummary>> suite;
  suite.reserve(std::size(kAll));
  for (AlgorithmKind kind : kAll) {
    STREAMFREQ_ASSIGN_OR_RETURN(auto algo, MakeAlgorithm(kind, spec));
    suite.push_back(std::move(algo));
  }
  return suite;
}

}  // namespace streamfreq
