// The standard algorithm suite at a common space budget.
//
// The VLDB'08-style comparison benches (E7-E9) run every algorithm with
// approximately the same number of bytes of summary state; this factory
// translates a byte budget into per-algorithm capacities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/frequent.h"
#include "util/result.h"

namespace streamfreq {

/// Which algorithms a suite contains.
enum class AlgorithmKind {
  kCountSketchTopK,
  kCountMinTopK,
  kCountMinConservativeTopK,
  kMisraGries,
  kLossyCounting,
  kSpaceSaving,
  kStreamSummarySpaceSaving,
  kStickySampling,
  kSampling,
  kConciseSampling,
  kCountingSampling,
};

/// Inputs the budgeting rule needs beyond bytes.
struct SuiteSpec {
  size_t space_budget_bytes = 64 * 1024;
  size_t k = 100;           ///< top-k target (sets tracked-set sizes)
  uint64_t seed = 1;
  /// For Sampling/LossyCounting/StickySampling, which need n or frequency
  /// parameters rather than entry counts.
  uint64_t expected_stream_length = 1 << 20;
};

/// Creates one algorithm of `kind` sized to the budget in `spec`.
Result<std::unique_ptr<StreamSummary>> MakeAlgorithm(AlgorithmKind kind,
                                                     const SuiteSpec& spec);

/// Creates the full default suite (one of each kind).
Result<std::vector<std::unique_ptr<StreamSummary>>> MakeDefaultSuite(
    const SuiteSpec& spec);

}  // namespace streamfreq
