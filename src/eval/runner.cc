#include "eval/runner.h"

#include "util/timer.h"

namespace streamfreq {

RunResult RunAndScore(StreamSummary& algo, const Workload& workload, size_t k) {
  RunResult r;
  r.algorithm = algo.Name();

  Timer timer;
  algo.AddAll(workload.stream);
  const double secs = timer.ElapsedSeconds();
  const double n = static_cast<double>(workload.stream.size());
  r.update_ns_per_item = n == 0 ? 0.0 : secs * 1e9 / n;
  r.items_per_second = secs == 0.0 ? 0.0 : n / secs;

  r.space_bytes = algo.SpaceBytes();

  const std::vector<ItemCount> truth = workload.oracle.TopK(k);
  const std::vector<ItemCount> candidates = algo.Candidates(k);
  r.topk_quality = ComputePrecisionRecall(candidates, truth);
  r.are_topk = AverageRelativeError(
      truth, [&](ItemId q) { return algo.Estimate(q); });
  r.max_abs_error = MaxAbsoluteError(
      truth, [&](ItemId q) { return algo.Estimate(q); });
  return r;
}

}  // namespace streamfreq
