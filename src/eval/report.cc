#include "eval/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace streamfreq {

void EmitTable(const TablePrinter& table, const std::string& experiment_id,
               std::ostream& os) {
  table.Print(os);
  const char* dir = std::getenv("SFQ_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + experiment_id + ".csv";
  const Status status = table.WriteCsv(path);
  if (!status.ok()) {
    std::cerr << "warning: CSV export failed: " << status.ToString() << "\n";
  } else {
    os << "(csv: " << path << ")\n";
  }
}

namespace {

std::string EscapeJsonString(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string RenderJson(const std::string& experiment_id,
                       const std::vector<JsonField>& fields) {
  std::ostringstream os;
  os << "{" << EscapeJsonString("experiment_id") << ": "
     << EscapeJsonString(experiment_id);
  for (const JsonField& field : fields) {
    os << ", " << EscapeJsonString(field.key) << ": " << field.literal;
  }
  os << "}\n";
  return os.str();
}

}  // namespace

JsonField JsonField::Number(std::string key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf
  }
  return JsonField{std::move(key), buf};
}

JsonField JsonField::Integer(std::string key, int64_t value) {
  return JsonField{std::move(key), std::to_string(value)};
}

JsonField JsonField::Text(std::string key, const std::string& value) {
  return JsonField{std::move(key), EscapeJsonString(value)};
}

Status WriteJsonReport(const std::string& path,
                       const std::string& experiment_id,
                       const std::vector<JsonField>& fields) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("WriteJsonReport: cannot open " + path);
  }
  out << RenderJson(experiment_id, fields);
  out.flush();
  if (!out) {
    return Status::IoError("WriteJsonReport: write failed for " + path);
  }
  return Status::OK();
}

void EmitJsonReport(const std::string& experiment_id,
                    const std::vector<JsonField>& fields, std::ostream& os) {
  const char* dir = std::getenv("SFQ_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + experiment_id + ".json";
  const Status status = WriteJsonReport(path, experiment_id, fields);
  if (!status.ok()) {
    std::cerr << "warning: JSON export failed: " << status.ToString() << "\n";
  } else {
    os << "(json: " << path << ")\n";
  }
}

}  // namespace streamfreq
