#include "eval/report.h"

#include <cstdlib>
#include <iostream>

namespace streamfreq {

void EmitTable(const TablePrinter& table, const std::string& experiment_id,
               std::ostream& os) {
  table.Print(os);
  const char* dir = std::getenv("SFQ_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + experiment_id + ".csv";
  const Status status = table.WriteCsv(path);
  if (!status.ok()) {
    std::cerr << "warning: CSV export failed: " << status.ToString() << "\n";
  } else {
    os << "(csv: " << path << ")\n";
  }
}

}  // namespace streamfreq
