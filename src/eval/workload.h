// Shared workload construction for benchmarks and integration tests: a
// materialized stream together with its exact-count ground truth.
#pragma once

#include <cstdint>
#include <string>

#include "stream/exact_counter.h"
#include "stream/types.h"
#include "util/result.h"

namespace streamfreq {

/// A stream plus its ground truth.
struct Workload {
  Stream stream;
  ExactCounter oracle;
  std::string description;

  uint64_t n() const { return stream.size(); }
};

/// Builds a Zipf(z) workload of `n` items over universe `m`.
Result<Workload> MakeZipfWorkload(uint64_t universe, double z, uint64_t n,
                                  uint64_t seed);

/// Builds a heavy-tailed flow workload of `n` packets.
Result<Workload> MakeFlowWorkload(double pareto_alpha, uint64_t n, uint64_t seed);

}  // namespace streamfreq
