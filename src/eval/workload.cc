#include "eval/workload.h"

#include "stream/flow_traffic.h"
#include "stream/zipf.h"

namespace streamfreq {

Result<Workload> MakeZipfWorkload(uint64_t universe, double z, uint64_t n,
                                  uint64_t seed) {
  STREAMFREQ_ASSIGN_OR_RETURN(ZipfGenerator gen,
                              ZipfGenerator::Make(universe, z, seed));
  Workload w;
  w.stream = gen.Take(n);
  w.oracle.AddAll(w.stream);
  w.description = gen.Describe() + ", n=" + std::to_string(n);
  return w;
}

Result<Workload> MakeFlowWorkload(double pareto_alpha, uint64_t n, uint64_t seed) {
  FlowTrafficSpec spec;
  spec.pareto_alpha = pareto_alpha;
  spec.seed = seed;
  STREAMFREQ_ASSIGN_OR_RETURN(FlowTrafficGenerator gen,
                              FlowTrafficGenerator::Make(spec));
  Workload w;
  w.stream = gen.Take(n);
  w.oracle.AddAll(w.stream);
  w.description = gen.Describe() + ", n=" + std::to_string(n);
  return w;
}

}  // namespace streamfreq
