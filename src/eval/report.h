// Experiment result emission: console table plus optional CSV artifact,
// and flat JSON reports for metric-trajectory tracking.
//
// Every bench calls EmitTable; when the environment variable SFQ_CSV_DIR
// names a directory, the table is additionally written to
// <SFQ_CSV_DIR>/<experiment_id>.csv so sweeps can be plotted without
// scraping stdout. JSON reports work the same way via SFQ_JSON_DIR: a flat
// {"experiment_id": ..., key: value, ...} object per run, the format the
// BENCH_* trajectory tooling diffs across commits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/table_printer.h"

namespace streamfreq {

/// Prints `table` to `os` and mirrors it to CSV when SFQ_CSV_DIR is set.
/// CSV failures are reported on stderr but never abort a bench run.
void EmitTable(const TablePrinter& table, const std::string& experiment_id,
               std::ostream& os);

/// One key of a flat JSON report, with the value already rendered as a JSON
/// literal (construct via the typed factories, which handle escaping and
/// non-finite numbers).
struct JsonField {
  std::string key;
  std::string literal;

  static JsonField Number(std::string key, double value);
  static JsonField Integer(std::string key, int64_t value);
  static JsonField Text(std::string key, const std::string& value);
};

/// Writes `{"experiment_id": <id>, <fields...>}` to `path`.
Status WriteJsonReport(const std::string& path,
                       const std::string& experiment_id,
                       const std::vector<JsonField>& fields);

/// Mirrors the report to <SFQ_JSON_DIR>/<experiment_id>.json when that
/// environment variable is set; failures warn on stderr but never abort
/// (same contract as the CSV mirror).
void EmitJsonReport(const std::string& experiment_id,
                    const std::vector<JsonField>& fields, std::ostream& os);

}  // namespace streamfreq
