// Experiment result emission: console table plus optional CSV artifact.
//
// Every bench calls EmitTable; when the environment variable SFQ_CSV_DIR
// names a directory, the table is additionally written to
// <SFQ_CSV_DIR>/<experiment_id>.csv so sweeps can be plotted without
// scraping stdout.
#pragma once

#include <iosfwd>
#include <string>

#include "util/table_printer.h"

namespace streamfreq {

/// Prints `table` to `os` and mirrors it to CSV when SFQ_CSV_DIR is set.
/// CSV failures are reported on stderr but never abort a bench run.
void EmitTable(const TablePrinter& table, const std::string& experiment_id,
               std::ostream& os);

}  // namespace streamfreq
