#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace streamfreq {

PrecisionRecall ComputePrecisionRecall(const std::vector<ItemCount>& candidates,
                                       const std::vector<ItemCount>& truth) {
  PrecisionRecall pr;
  if (candidates.empty() || truth.empty()) return pr;
  std::unordered_set<ItemId> truth_set;
  truth_set.reserve(truth.size());
  for (const ItemCount& ic : truth) truth_set.insert(ic.item);
  size_t hits = 0;
  for (const ItemCount& ic : candidates) hits += truth_set.count(ic.item);
  pr.precision = static_cast<double>(hits) / static_cast<double>(candidates.size());
  pr.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  return pr;
}

ApproxTopVerdict CheckApproxTop(const std::vector<ItemCount>& candidates,
                                const ExactCounter& oracle, size_t k,
                                double epsilon) {
  ApproxTopVerdict v;
  const double nk = static_cast<double>(oracle.NthCount(k));
  const double floor = (1.0 - epsilon) * nk;
  const double ceiling = (1.0 + epsilon) * nk;

  std::unordered_set<ItemId> candidate_set;
  candidate_set.reserve(candidates.size());
  for (const ItemCount& ic : candidates) {
    candidate_set.insert(ic.item);
    if (static_cast<double>(oracle.CountOf(ic.item)) < floor) {
      ++v.violations_low;
    }
  }
  for (const auto& [item, count] : oracle.counts()) {
    if (static_cast<double>(count) >= ceiling && !candidate_set.count(item)) {
      ++v.violations_missing;
    }
  }
  v.all_candidates_heavy = v.violations_low == 0;
  v.all_heavy_found = v.violations_missing == 0;
  return v;
}

}  // namespace streamfreq
