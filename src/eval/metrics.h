// Evaluation metrics for frequent-items outputs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "stream/exact_counter.h"
#include "stream/types.h"

namespace streamfreq {

/// Set-overlap quality of a candidate list against ground truth.
struct PrecisionRecall {
  double precision = 0.0;  ///< |candidates ∩ truth| / |candidates|
  double recall = 0.0;     ///< |candidates ∩ truth| / |truth|

  double F1() const {
    const double d = precision + recall;
    return d == 0.0 ? 0.0 : 2.0 * precision * recall / d;
  }
};

/// Computes precision/recall of `candidates` against the `truth` item set.
PrecisionRecall ComputePrecisionRecall(const std::vector<ItemCount>& candidates,
                                       const std::vector<ItemCount>& truth);

/// Average relative error of estimated counts over the true top-k:
/// mean over truth of |est(q) - n_q| / n_q. `estimate` is any callable
/// ItemId -> Count.
template <typename EstimateFn>
double AverageRelativeError(const std::vector<ItemCount>& truth,
                            EstimateFn&& estimate) {
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (const ItemCount& ic : truth) {
    const double err =
        static_cast<double>(estimate(ic.item)) - static_cast<double>(ic.count);
    total += (err < 0 ? -err : err) / static_cast<double>(ic.count);
  }
  return total / static_cast<double>(truth.size());
}

/// Maximum absolute estimation error over the true top-k.
template <typename EstimateFn>
double MaxAbsoluteError(const std::vector<ItemCount>& truth,
                        EstimateFn&& estimate) {
  double worst = 0.0;
  for (const ItemCount& ic : truth) {
    const double err =
        static_cast<double>(estimate(ic.item)) - static_cast<double>(ic.count);
    worst = std::max(worst, err < 0 ? -err : err);
  }
  return worst;
}

/// ApproxTop(S, k, eps) verdict (paper's output contract): every candidate
/// must have n_i >= (1 - eps) * n_k, and (strong guarantee) every item with
/// n_i >= (1 + eps) * n_k must be among the candidates.
struct ApproxTopVerdict {
  bool all_candidates_heavy = true;  ///< no candidate below (1-eps) n_k
  bool all_heavy_found = true;       ///< no (1+eps) n_k item missing
  size_t violations_low = 0;         ///< candidates below the floor
  size_t violations_missing = 0;     ///< mandatory items missing

  bool Pass() const { return all_candidates_heavy && all_heavy_found; }
};

/// Evaluates the ApproxTop contract for `candidates` of size <= k against
/// the exact counts in `oracle`.
ApproxTopVerdict CheckApproxTop(const std::vector<ItemCount>& candidates,
                                const ExactCounter& oracle, size_t k,
                                double epsilon);

}  // namespace streamfreq
