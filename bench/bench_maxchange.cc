// E5 -- Section 4.2: max-change detection quality vs sketch width.
//
// Two-period synthetic query log with planted risers/fallers; the detector
// runs the paper's two-pass algorithm on the difference sketch. For each
// width we report recall of the true top-k absolute changers and the
// fraction of reported items whose (count_s1, count_s2) are exactly right
// (they must all be, by the pass-2 admission argument).
//
// Expected shape: recall climbs to ~1 as b grows; exactness is always 1.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "core/max_change.h"
#include "stream/exact_counter.h"
#include "stream/query_log.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  QueryLogSpec spec;
  spec.universe = 50000;
  spec.z = 1.0;
  spec.period_length = 400000;
  spec.trending = 15;
  spec.fading = 15;
  spec.boost = 12.0;
  spec.fade = 1.0 / 12.0;
  spec.seed = 1001;
  auto log = MakeQueryLog(spec);
  SFQ_CHECK_OK(log.status());

  // Ground truth: exact per-item deltas, top-k by magnitude.
  constexpr size_t kK = 20;
  ExactCounter c1, c2;
  c1.AddAll(log->period1);
  c2.AddAll(log->period2);
  ExactCounter delta;
  for (const auto& [item, cnt] : c1.counts()) delta.Add(item, -cnt);
  for (const auto& [item, cnt] : c2.counts()) delta.Add(item, cnt);
  std::vector<std::pair<Count, ItemId>> truth;
  for (const auto& [item, d] : delta.counts()) {
    truth.push_back({d < 0 ? -d : d, item});
  }
  std::sort(truth.rbegin(), truth.rend());
  truth.resize(kK);

  std::cout << "E5: two-pass max-change detection (n=" << spec.period_length
            << " per period, tracked l=100, true top-" << kK
            << " |delta| as ground truth)\n\n";
  TablePrinter table({"width b", "recall@20", "exact-count rate",
                      "sketch KiB"});

  for (size_t width : {16u, 32u, 64u, 128u, 256u, 1024u, 4096u}) {
    CountSketchParams params;
    params.depth = 5;
    params.width = width;
    params.seed = 909;
    auto changes = MaxChangeDetector::Run(params, 100, log->period1,
                                          log->period2, kK);
    SFQ_CHECK_OK(changes.status());

    std::unordered_set<ItemId> reported;
    size_t exact = 0;
    for (const ChangeResult& c : *changes) {
      reported.insert(c.item);
      exact += (c.count_s1 == c1.CountOf(c.item) &&
                c.count_s2 == c2.CountOf(c.item));
    }
    size_t hits = 0;
    for (const auto& [mag, item] : truth) hits += reported.count(item);

    table.AddRowValues(width,
                       static_cast<double>(hits) / static_cast<double>(kK),
                       changes->empty()
                           ? 1.0
                           : static_cast<double>(exact) /
                                 static_cast<double>(changes->size()),
                       static_cast<double>(params.depth * width *
                                           sizeof(int64_t)) /
                           1024.0);
  }

  EmitTable(table, "E05_maxchange", std::cout);
  std::cout << "\nReading: recall should rise toward 1 with b; exact-count "
               "rate must be 1.0 at every width (pass-2 counts are exact by "
               "construction).\n";
  return 0;
}
