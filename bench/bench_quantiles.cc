// E15 -- dyadic quantile accuracy vs space (extension).
//
// Rank queries through the two dyadic backings: for each width, measure
// the worst rank error of p10..p99 estimates against exact order
// statistics, on a skewed value distribution. Count-Min ranks are biased
// up (over-count), Count-Sketch ranks are unbiased but noisier at equal
// width.
//
// Expected shape: rank error falls as width grows; CM is competitive and
// never pathological; the exact levels keep both structures accurate even
// at modest widths.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/hierarchical.h"
#include "core/hierarchical_cm.h"
#include "eval/report.h"
#include "hash/random.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace streamfreq;

namespace {

constexpr size_t kBits = 18;
constexpr int kN = 400000;

std::vector<uint64_t> MakeValues() {
  Xoshiro256 rng(31415);
  std::vector<uint64_t> values;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // Skewed: squared uniform concentrates mass at small values.
    const double u = rng.UniformDouble();
    values.push_back(static_cast<uint64_t>(u * u * ((1u << kBits) - 1)));
  }
  return values;
}

// Exact rank of `key` in the sorted multiset.
Count ExactRank(const std::vector<uint64_t>& sorted, uint64_t key) {
  return static_cast<Count>(
      std::lower_bound(sorted.begin(), sorted.end(), key) - sorted.begin());
}

}  // namespace

int main() {
  const std::vector<uint64_t> values = MakeValues();
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  std::cout << "E15: dyadic quantile accuracy vs width (" << kN
            << " skewed values over 2^" << kBits
            << "; worst |rank error| / n over p10..p99)\n\n";

  TablePrinter table({"width", "CS worst rank err", "CM worst rank err",
                      "CS space KiB", "CM space KiB"});

  for (size_t width : {256u, 1024u, 4096u, 16384u}) {
    HierarchicalParams params;
    params.bits = kBits;
    params.depth = 5;
    params.width = width;
    params.seed = 8;
    auto cs = HierarchicalCountSketch::Make(params);
    auto cm = HierarchicalCountMin::Make(params);
    SFQ_CHECK_OK(cs.status());
    SFQ_CHECK_OK(cm.status());
    for (uint64_t v : values) {
      cs->Add(v);
      cm->Add(v);
    }

    double cs_worst = 0.0, cm_worst = 0.0;
    for (int pct = 10; pct <= 99; pct += 1) {
      const auto target = static_cast<Count>(
          static_cast<double>(kN) * pct / 100.0);
      const uint64_t cs_key = cs->KeyAtRank(target);
      const uint64_t cm_key = cm->KeyAtRank(target);
      cs_worst = std::max(
          cs_worst, std::abs(static_cast<double>(ExactRank(sorted, cs_key) -
                                                 target)));
      cm_worst = std::max(
          cm_worst, std::abs(static_cast<double>(ExactRank(sorted, cm_key) -
                                                 target)));
    }
    table.AddRowValues(width, cs_worst / kN, cm_worst / kN,
                       static_cast<double>(cs->SpaceBytes()) / 1024.0,
                       static_cast<double>(cm->SpaceBytes()) / 1024.0);
  }

  EmitTable(table, "E15_quantiles", std::cout);
  std::cout << "\nReading: worst rank error (as a fraction of n) should "
               "shrink as width grows for both backings, with neither "
               "pathological at any width.\n";
  return 0;
}
