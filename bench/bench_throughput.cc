// E7 -- update/query throughput per algorithm (google-benchmark).
//
// Streams a pregenerated Zipf(1) trace through each algorithm at a common
// ~64 KiB budget and reports items/second; also measures Count-Sketch
// point-query latency vs depth.
//
// Expected shape: counter algorithms (Misra-Gries amortized O(1),
// Space-Saving O(log c)) and plain sampling lead; sketches pay t hashed
// counter touches per update; Count-Sketch queries pay an extra median.
#include <benchmark/benchmark.h>

#include "core/count_sketch.h"
#include "eval/suite.h"
#include "eval/workload.h"
#include "util/logging.h"

namespace streamfreq {
namespace {

const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto w = MakeZipfWorkload(100000, 1.0, 1 << 18, 424242);
    SFQ_CHECK_OK(w.status());
    return new Workload(std::move(*w));
  }();
  return *workload;
}

SuiteSpec BenchSpec() {
  SuiteSpec spec;
  spec.space_budget_bytes = 64 * 1024;
  spec.k = 100;
  spec.seed = 1;
  spec.expected_stream_length = SharedWorkload().n();
  return spec;
}

void BM_Update(benchmark::State& state) {
  const AlgorithmKind kind = static_cast<AlgorithmKind>(state.range(0));
  const Workload& w = SharedWorkload();
  for (auto _ : state) {
    state.PauseTiming();
    auto algo = MakeAlgorithm(kind, BenchSpec());
    SFQ_CHECK_OK(algo.status());
    state.ResumeTiming();
    (*algo)->AddAll(w.stream);
    benchmark::DoNotOptimize(*algo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.stream.size()));
  state.SetLabel([&] {
    auto algo = MakeAlgorithm(kind, BenchSpec());
    return algo.ok() ? (*algo)->Name() : "?";
  }());
}

BENCHMARK(BM_Update)
    ->Arg(static_cast<int>(AlgorithmKind::kCountSketchTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kCountMinTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kCountMinConservativeTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kMisraGries))
    ->Arg(static_cast<int>(AlgorithmKind::kLossyCounting))
    ->Arg(static_cast<int>(AlgorithmKind::kSpaceSaving))
    ->Arg(static_cast<int>(AlgorithmKind::kStreamSummarySpaceSaving))
    ->Arg(static_cast<int>(AlgorithmKind::kStickySampling))
    ->Arg(static_cast<int>(AlgorithmKind::kSampling))
    ->Arg(static_cast<int>(AlgorithmKind::kConciseSampling))
    ->Arg(static_cast<int>(AlgorithmKind::kCountingSampling))
    ->Unit(benchmark::kMillisecond);

// Raw Count-Sketch Add cost vs depth (no heap).
void BM_CountSketchAdd(benchmark::State& state) {
  CountSketchParams p;
  p.depth = static_cast<size_t>(state.range(0));
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    sketch->Add(w.stream[i]);
    if (++i == w.stream.size()) i = 0;
  }
  benchmark::DoNotOptimize(*sketch);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountSketchAdd)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

// Point-query cost vs depth: dominated by the median selection.
void BM_CountSketchEstimate(benchmark::State& state) {
  CountSketchParams p;
  p.depth = static_cast<size_t>(state.range(0));
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  for (ItemId q : w.stream) sketch->Add(q);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch->Estimate(w.stream[i]));
    if (++i == w.stream.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountSketchEstimate)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

// Merge cost: linear in t*b, the distributed-aggregation primitive.
void BM_CountSketchMerge(benchmark::State& state) {
  CountSketchParams p;
  p.depth = 5;
  p.width = static_cast<size_t>(state.range(0));
  p.seed = 3;
  auto a = CountSketch::Make(p);
  auto b = CountSketch::Make(p);
  SFQ_CHECK_OK(a.status());
  SFQ_CHECK_OK(b.status());
  for (ItemId q : SharedWorkload().stream) b->Add(q);
  for (auto _ : state) {
    SFQ_CHECK_OK(a->Merge(*b));
    benchmark::DoNotOptimize(*a);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(p.depth * p.width *
                                               sizeof(int64_t)));
}
BENCHMARK(BM_CountSketchMerge)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace
}  // namespace streamfreq

BENCHMARK_MAIN();
