// E7 -- update/query throughput per algorithm (google-benchmark).
//
// Streams a pregenerated Zipf(1) trace through each algorithm at a common
// ~64 KiB budget and reports items/second; also measures Count-Sketch
// point-query latency vs depth, the BatchAdd fast path, and parallel
// sharded ingestion (src/concurrent/) across thread counts.
//
// Expected shape: counter algorithms (Misra-Gries amortized O(1),
// Space-Saving O(log c)) and plain sampling lead; sketches pay t hashed
// counter touches per update; Count-Sketch queries pay an extra median;
// parallel ingestion scales with cores (per-thread sketches, merge at end).
//
// Extra flags (parsed before google-benchmark's own):
//   --threads=1,2,4,8   thread counts for the BM_ParallelIngest family
//   --batch=8192        items per batch for BatchAdd/parallel benchmarks
//   --json <path>       additionally write the recorded trajectory JSON
//                       (schema streamfreq-bench-v1: every finished row's
//                       name + items_per_second + the compiled-in SIMD
//                       backend) to <path>. Under --benchmark_repetitions
//                       the fastest repetition per benchmark is kept and
//                       aggregate rows are ignored. This is the format
//                       committed as BENCH_throughput.json at the repo
//                       root and gated by tools/bench_gate.py via
//                       scripts/check.sh --bench; docs/PERFORMANCE.md
//                       documents how to read it.
// Items/sec per thread count also lands in google-benchmark's own report
// via --benchmark_format=json (each BM_ParallelIngest/threads:N row
// carries items_per_second).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "concurrent/parallel_ingestor.h"
#include "core/count_min.h"
#include "core/count_sketch.h"
#include "eval/suite.h"
#include "eval/workload.h"
#include "hash/batch_hash.h"
#include "util/logging.h"

namespace streamfreq {
namespace {

const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto w = MakeZipfWorkload(100000, 1.0, 1 << 18, 424242);
    SFQ_CHECK_OK(w.status());
    return new Workload(std::move(*w));
  }();
  return *workload;
}

SuiteSpec BenchSpec() {
  SuiteSpec spec;
  spec.space_budget_bytes = 64 * 1024;
  spec.k = 100;
  spec.seed = 1;
  spec.expected_stream_length = SharedWorkload().n();
  return spec;
}

void BM_Update(benchmark::State& state) {
  const AlgorithmKind kind = static_cast<AlgorithmKind>(state.range(0));
  const Workload& w = SharedWorkload();
  for (auto _ : state) {
    state.PauseTiming();
    auto algo = MakeAlgorithm(kind, BenchSpec());
    SFQ_CHECK_OK(algo.status());
    state.ResumeTiming();
    (*algo)->AddAll(w.stream);
    benchmark::DoNotOptimize(*algo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.stream.size()));
  state.SetLabel([&] {
    auto algo = MakeAlgorithm(kind, BenchSpec());
    return algo.ok() ? (*algo)->Name() : "?";
  }());
}

BENCHMARK(BM_Update)
    ->Arg(static_cast<int>(AlgorithmKind::kCountSketchTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kCountMinTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kCountMinConservativeTopK))
    ->Arg(static_cast<int>(AlgorithmKind::kMisraGries))
    ->Arg(static_cast<int>(AlgorithmKind::kLossyCounting))
    ->Arg(static_cast<int>(AlgorithmKind::kSpaceSaving))
    ->Arg(static_cast<int>(AlgorithmKind::kStreamSummarySpaceSaving))
    ->Arg(static_cast<int>(AlgorithmKind::kStickySampling))
    ->Arg(static_cast<int>(AlgorithmKind::kSampling))
    ->Arg(static_cast<int>(AlgorithmKind::kConciseSampling))
    ->Arg(static_cast<int>(AlgorithmKind::kCountingSampling))
    ->Unit(benchmark::kMillisecond);

// Raw Count-Sketch Add cost vs depth (no heap).
void BM_CountSketchAdd(benchmark::State& state) {
  CountSketchParams p;
  p.depth = static_cast<size_t>(state.range(0));
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    sketch->Add(w.stream[i]);
    if (++i == w.stream.size()) i = 0;
  }
  benchmark::DoNotOptimize(*sketch);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountSketchAdd)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

// Point-query cost vs depth: dominated by the median selection.
void BM_CountSketchEstimate(benchmark::State& state) {
  CountSketchParams p;
  p.depth = static_cast<size_t>(state.range(0));
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  for (ItemId q : w.stream) sketch->Add(q);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch->Estimate(w.stream[i]));
    if (++i == w.stream.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountSketchEstimate)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

// Merge cost: linear in t*b, the distributed-aggregation primitive.
void BM_CountSketchMerge(benchmark::State& state) {
  CountSketchParams p;
  p.depth = 5;
  p.width = static_cast<size_t>(state.range(0));
  p.seed = 3;
  auto a = CountSketch::Make(p);
  auto b = CountSketch::Make(p);
  SFQ_CHECK_OK(a.status());
  SFQ_CHECK_OK(b.status());
  for (ItemId q : SharedWorkload().stream) b->Add(q);
  for (auto _ : state) {
    SFQ_CHECK_OK(a->Merge(*b));
    benchmark::DoNotOptimize(*a);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(p.depth * p.width *
                                               sizeof(int64_t)));
}
BENCHMARK(BM_CountSketchMerge)->Arg(1024)->Arg(16384)->Arg(262144);

// The BatchAdd fast path vs item-at-a-time Add at several batch sizes.
void BM_CountSketchBatchAdd(benchmark::State& state) {
  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  const size_t batch = static_cast<size_t>(state.range(0));
  size_t offset = 0;
  for (auto _ : state) {
    const size_t take = std::min(batch, w.stream.size() - offset);
    sketch->BatchAdd(std::span<const ItemId>(w.stream.data() + offset, take));
    offset = offset + take == w.stream.size() ? 0 : offset + take;
  }
  benchmark::DoNotOptimize(*sketch);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_CountSketchBatchAdd)->Arg(256)->Arg(4096)->Arg(65536);

// Scalar-vs-SIMD BatchAdd, per hash family — the rows recorded in
// BENCH_throughput.json and regression-gated by tools/bench_gate.py. One
// fixed 8192-item batch isolates the kernel cost from span bookkeeping.
void BM_CountSketchBatchAddBackend(benchmark::State& state, HashFamily family,
                                   bool scalar) {
  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 3;
  p.family = family;
  auto sketch = CountSketch::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  constexpr size_t kBatch = 8192;
  size_t offset = 0;
  for (auto _ : state) {
    const size_t take = std::min(kBatch, w.stream.size() - offset);
    const std::span<const ItemId> span(w.stream.data() + offset, take);
    if (scalar) {
      sketch->BatchAddScalar(span);
    } else {
      sketch->BatchAdd(span);
    }
    offset = offset + take == w.stream.size() ? 0 : offset + take;
  }
  benchmark::DoNotOptimize(*sketch);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.SetLabel(scalar ? "scalar" : batch_hash::BackendName());
}
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, cw_scalar,
                  HashFamily::kCarterWegman, true);
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, cw_simd,
                  HashFamily::kCarterWegman, false);
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, ms_scalar,
                  HashFamily::kMultiplyShift, true);
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, ms_simd,
                  HashFamily::kMultiplyShift, false);
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, tab_scalar,
                  HashFamily::kTabulation, true);
BENCHMARK_CAPTURE(BM_CountSketchBatchAddBackend, tab_simd,
                  HashFamily::kTabulation, false);

// Same split for Count-Min (bucket hashes only, no signs).
void BM_CountMinBatchAddBackend(benchmark::State& state, bool scalar) {
  CountMinParams p;
  p.depth = 4;
  p.width = 4096;
  p.seed = 3;
  auto sketch = CountMin::Make(p);
  SFQ_CHECK_OK(sketch.status());
  const Workload& w = SharedWorkload();
  constexpr size_t kBatch = 8192;
  size_t offset = 0;
  for (auto _ : state) {
    const size_t take = std::min(kBatch, w.stream.size() - offset);
    const std::span<const ItemId> span(w.stream.data() + offset, take);
    if (scalar) {
      sketch->BatchAddScalar(span);
    } else {
      sketch->BatchAdd(span);
    }
    offset = offset + take == w.stream.size() ? 0 : offset + take;
  }
  benchmark::DoNotOptimize(*sketch);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.SetLabel(scalar ? "scalar" : batch_hash::BackendName());
}
BENCHMARK_CAPTURE(BM_CountMinBatchAddBackend, scalar, true);
BENCHMARK_CAPTURE(BM_CountMinBatchAddBackend, simd, false);

// Parallel sharded ingestion end-to-end: shard the trace across N workers
// (thread-local sketches, final merge) and measure whole-stream wall time.
void BM_ParallelIngest(benchmark::State& state, size_t threads, size_t batch) {
  const Workload& w = SharedWorkload();
  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 3;
  for (auto _ : state) {
    auto ingestor = ParallelIngestor<CountSketch>::Make(
        MakeSharedParamsFactory<CountSketch>(p),
        IngestOptions{.threads = threads, .batch_items = batch});
    SFQ_CHECK_OK(ingestor.status());
    SFQ_CHECK_OK((*ingestor)->Ingest(std::span<const ItemId>(w.stream)));
    auto merged = (*ingestor)->Finish();
    SFQ_CHECK_OK(merged.status());
    benchmark::DoNotOptimize(*merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.stream.size()));
  state.counters["threads"] = static_cast<double>(threads);
}

// Parses "--threads=1,2,8" / "--batch=8192" out of argv (removing them so
// benchmark::Initialize only sees its own flags).
struct IngestFlags {
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  size_t batch = 8192;
  std::string json_path;  // empty = no trajectory JSON
};

IngestFlags ParseIngestFlags(int* argc, char** argv) {
  IngestFlags flags;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      flags.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      flags.thread_counts.clear();
      std::string list = arg.substr(10);
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const long v = std::strtol(tok.c_str(), nullptr, 10);
        if (v > 0) flags.thread_counts.push_back(static_cast<size_t>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (flags.thread_counts.empty()) flags.thread_counts = {1};
    } else if (arg.rfind("--batch=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 8, nullptr, 10);
      if (v > 0) flags.batch = static_cast<size_t>(v);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return flags;
}

/// Console reporter that additionally records every finished run's name and
/// items/second, then writes the streamfreq-bench-v1 trajectory JSON that
/// tools/bench_gate.py consumes (see docs/PERFORMANCE.md for the format).
class TrajectoryReporter final : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    std::string label;
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Skip aggregate rows (_mean/_median/...) so --benchmark_repetitions
      // never produces duplicate or synthetic entry names. Repetitions of
      // the same benchmark keep the BEST rate: on a loaded single-core box
      // interference only ever slows a run down, so max-of-N is the least
      // noisy estimate and keeps the regression gate from tripping on
      // transient load.
      if (run.error_occurred || !run.aggregate_name.empty()) continue;
      const auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      const std::string name = run.benchmark_name();
      bool merged = false;
      for (Entry& e : entries_) {
        if (e.name == name) {
          e.items_per_second = std::max(e.items_per_second, it->second.value);
          merged = true;
          break;
        }
      }
      if (!merged) entries_.push_back({name, run.report_label, it->second.value});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Writes the collected entries as JSON; returns false on I/O failure.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"streamfreq-bench-v1\",\n"
                 "  \"bench\": \"bench_throughput\",\n"
                 "  \"simd_backend\": \"%s\",\n"
                 "  \"entries\": [",
                 batch_hash::BackendName());
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"label\": \"%s\", "
                   "\"items_per_second\": %.6e}",
                   i == 0 ? "" : ",", entries_[i].name.c_str(),
                   entries_[i].label.c_str(), entries_[i].items_per_second);
    }
    std::fprintf(f, "\n  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace streamfreq

int main(int argc, char** argv) {
  const streamfreq::IngestFlags flags =
      streamfreq::ParseIngestFlags(&argc, argv);
  for (const size_t t : flags.thread_counts) {
    benchmark::RegisterBenchmark(
        ("BM_ParallelIngest/threads:" + std::to_string(t) +
         "/batch:" + std::to_string(flags.batch))
            .c_str(),
        [t, &flags](benchmark::State& state) {
          streamfreq::BM_ParallelIngest(state, t, flags.batch);
        })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  streamfreq::TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!flags.json_path.empty() && !reporter.WriteJson(flags.json_path)) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                 flags.json_path.c_str());
    return 1;
  }
  return 0;
}
