// E12 -- heavy-hitter *recovery* strategies under insert-only vs turnstile
// streams: the paper's heap tracking (Section 3.2) vs dyadic descent vs
// combinatorial group testing.
//
// The heap tracker needs to observe a heavy item again after its sketch
// estimate rises, so it only works on insert-only streams. The dyadic and
// CGT structures decode heavy keys straight out of the (possibly
// subtracted) sketch state. This bench measures all three on:
//   (a) an insert-only Zipf stream (everyone should succeed), and
//   (b) a difference stream S2 - S1 with planted risers, fed as
//       interleaved +S2/-S1 updates (only decode-capable structures can
//       recover anything: the heap tracker's candidates are garbage here).
// Also reports update cost and space.
//
// Expected shape: (a) recall ~1 for all; (b) recall ~1 for dyadic/CGT,
// ~0 for the heap tracker; CGT updates cost ~key_bits counters, the dyadic
// structure ~bits sketches, the tracker one sketch + heap op.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "core/group_testing.h"
#include "core/hierarchical.h"
#include "core/hierarchical_cm.h"
#include "core/top_k_tracker.h"
#include "hash/random.h"
#include "stream/exact_counter.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace streamfreq;

namespace {

constexpr size_t kKeyBits = 20;
constexpr uint64_t kDomain = 1ULL << kKeyBits;
constexpr size_t kK = 15;

struct Planted {
  std::vector<std::pair<uint64_t, Count>> updates;  // signed stream
  std::vector<uint64_t> heavy;                      // ground truth keys
  Count threshold;
};

// (a) Insert-only: Zipf-ish background + planted heavies.
Planted MakeInsertOnly(uint64_t seed) {
  Planted p;
  Xoshiro256 rng(seed);
  for (int i = 0; i < 200000; ++i) {
    p.updates.push_back({rng.UniformBelow(kDomain), 1});
  }
  for (size_t i = 0; i < kK; ++i) {
    const uint64_t key = 1 + rng.UniformBelow(kDomain - 1);
    p.heavy.push_back(key);
    p.updates.push_back({key, 3000});
  }
  p.threshold = 1500;
  return p;
}

// (b) Turnstile: heaviness *emerges from deletions*. A cohort of
// distractors arrives first and heavier (the tracker admits them and
// nothing else), then the true heavies arrive below the tracked minimum,
// then the distractors are fully deleted. At the end only the planted keys
// are heavy -- but they never rearrive after the deletions, so an
// arrival-driven tracker can never admit them.
Planted MakeDifference(uint64_t seed) {
  Planted p;
  Xoshiro256 rng(seed);
  std::vector<uint64_t> distractors;
  for (int i = 0; i < 100; ++i) {
    distractors.push_back(1 + rng.UniformBelow(kDomain - 1));
  }
  for (uint64_t k : distractors) p.updates.push_back({k, 5000});
  for (size_t i = 0; i < kK; ++i) {
    const uint64_t key = 1 + rng.UniformBelow(kDomain - 1);
    p.heavy.push_back(key);
    p.updates.push_back({key, 3000});
  }
  // Light background noise in both directions.
  std::vector<uint64_t> background;
  for (int i = 0; i < 50000; ++i) {
    background.push_back(rng.UniformBelow(kDomain));
  }
  for (uint64_t k : background) p.updates.push_back({k, 1});
  for (uint64_t k : distractors) p.updates.push_back({k, -5000});
  for (uint64_t k : background) p.updates.push_back({k, -1});
  p.threshold = 1500;
  return p;
}

double Recall(const std::vector<uint64_t>& reported,
              const std::vector<uint64_t>& truth) {
  std::unordered_set<uint64_t> set(reported.begin(), reported.end());
  size_t hits = 0;
  for (uint64_t k : truth) hits += set.count(k);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

void RunScenario(const std::string& label, const Planted& planted,
                 TablePrinter* table) {
  // Heap tracker (Section 3.2). Negative weights go to the sketch but the
  // tracked set only reacts to arrivals, as in the paper.
  {
    CountSketchParams params;
    params.depth = 5;
    params.width = 4096;
    params.seed = 11;
    auto tracker = CountSketchTopK::Make(params, 4 * kK);
    SFQ_CHECK_OK(tracker.status());
    Timer t;
    for (const auto& [key, w] : planted.updates) tracker->AddTracked(key, w);
    const double secs = t.ElapsedSeconds();
    std::vector<uint64_t> reported;
    for (const ItemCount& ic : tracker->Candidates(2 * kK)) {
      reported.push_back(ic.item);
    }
    table->AddRowValues(label, "heap tracker (Sec 3.2)",
                        Recall(reported, planted.heavy),
                        static_cast<double>(tracker->SpaceBytes()) / 1024.0,
                        static_cast<double>(planted.updates.size()) / secs / 1e6);
  }
  // Dyadic descent.
  {
    HierarchicalParams params;
    params.bits = kKeyBits;
    params.depth = 5;
    params.width = 2048;
    params.seed = 13;
    auto dyadic = HierarchicalCountSketch::Make(params);
    SFQ_CHECK_OK(dyadic.status());
    Timer t;
    for (const auto& [key, w] : planted.updates) dyadic->Add(key, w);
    const double secs = t.ElapsedSeconds();
    std::vector<uint64_t> reported;
    for (const HeavyHitter& hh : dyadic->HeavyHitters(planted.threshold)) {
      reported.push_back(hh.key);
    }
    table->AddRowValues(label, "dyadic descent",
                        Recall(reported, planted.heavy),
                        static_cast<double>(dyadic->SpaceBytes()) / 1024.0,
                        static_cast<double>(planted.updates.size()) / secs / 1e6);
  }
  // Dyadic Count-Min (CMH) — cash-register only: its min-estimates are
  // meaningless under deletions, so the turnstile scenario skips it.
  if (label == "insert-only") {
    HierarchicalParams params;
    params.bits = kKeyBits;
    params.depth = 4;
    params.width = 2048;
    params.seed = 19;
    auto cmh = HierarchicalCountMin::Make(params);
    SFQ_CHECK_OK(cmh.status());
    Timer t;
    for (const auto& [key, w] : planted.updates) cmh->Add(key, w);
    const double secs = t.ElapsedSeconds();
    std::vector<uint64_t> reported;
    for (const HeavyHitter& hh : cmh->HeavyHitters(planted.threshold)) {
      reported.push_back(hh.key);
    }
    table->AddRowValues(label, "dyadic Count-Min (CMH)",
                        Recall(reported, planted.heavy),
                        static_cast<double>(cmh->SpaceBytes()) / 1024.0,
                        static_cast<double>(planted.updates.size()) / secs / 1e6);
  }
  // Combinatorial group testing.
  {
    GroupTestingParams params;
    params.depth = 3;
    params.groups = 1024;
    params.key_bits = kKeyBits;
    params.seed = 17;
    auto cgt = GroupTestingSketch::Make(params);
    SFQ_CHECK_OK(cgt.status());
    Timer t;
    for (const auto& [key, w] : planted.updates) cgt->Add(key, w);
    const double secs = t.ElapsedSeconds();
    std::vector<uint64_t> reported;
    for (const DecodedHeavyHitter& hh : cgt->Decode(planted.threshold)) {
      reported.push_back(hh.key);
    }
    table->AddRowValues(label, "group testing",
                        Recall(reported, planted.heavy),
                        static_cast<double>(cgt->SpaceBytes()) / 1024.0,
                        static_cast<double>(planted.updates.size()) / secs / 1e6);
  }
}

}  // namespace

int main() {
  std::cout << "E12: heavy-hitter recovery strategies, insert-only vs "
               "turnstile (domain 2^" << kKeyBits << ", " << kK
            << " planted heavies)\n\n";
  TablePrinter table(
      {"scenario", "strategy", "recall", "space KiB", "Mupdates/s"});
  RunScenario("insert-only", MakeInsertOnly(42), &table);
  RunScenario("difference (turnstile)", MakeDifference(43), &table);
  EmitTable(table, "E12_recovery", std::cout);
  std::cout << "\nReading: all strategies recover insert-only heavies; only "
               "dyadic and group-testing decode survive the turnstile "
               "difference stream -- the heap tracker's tracked set is "
               "meaningless once deletions erase what it admitted.\n";
  return 0;
}
