// bench_merge_tree: delta-shipping throughput across merge-tree shapes.
//
// Drives MergeTreeSim (src/dist/merge_tree.h) fault-free: every leaf
// ingests a seeded zipf substream in delta-sized batches, with one
// bottom-up shipping pass interleaved per batch wave and a Seal+Drain at
// the end, then CheckInvariants() proves the run was exact before any
// number is reported. What lands in the trajectory JSON
// (streamfreq-bench-v1, gated by tools/bench_gate.py against the
// committed BENCH_merge.json):
//
//   TreeShip/fanout:F  items_per_second = leaf items through the tree /
//                      wall (the gate metric), plus deltas_per_second and
//                      drain_rounds (root-query staleness in shipping
//                      rounds after seal) as informational extras.
//
// Fanout 0 is the flat star (every worker under the root); wider interior
// fanout trades per-node receiver fan-in against tree depth, and
// drain_rounds makes the depth cost visible next to the throughput.
//
// Flags:
//   --workers=N        leaves (default 16)
//   --fanouts=0,2,4    interior fanout scenarios (default "0,2,4")
//   --items=N          items per leaf (default 65536)
//   --delta-every=N    items per shipped delta (default 4096)
//   --reps=N           repetitions per scenario, best-of kept (default 3)
//   --json FILE        write the trajectory JSON for bench_gate.py

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "dist/merge_tree.h"
#include "dist/tree.h"
#include "stream/types.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/result.h"

namespace streamfreq {
namespace {

struct TreeBenchFlags {
  uint64_t workers = 16;
  std::vector<uint64_t> fanouts = {0, 2, 4};
  uint64_t items_per_leaf = 65536;
  uint64_t delta_every = 4096;
  uint64_t reps = 3;
  std::string json_path;  // empty = no trajectory JSON
};

TreeBenchFlags ParseTreeBenchFlags(int argc, char** argv) {
  TreeBenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      flags.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--fanouts=", 0) == 0) {
      flags.fanouts.clear();
      std::string list = arg.substr(10);
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const long v = std::strtol(tok.c_str(), nullptr, 10);
        if (v >= 0) flags.fanouts.push_back(static_cast<uint64_t>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (flags.fanouts.empty()) flags.fanouts = {0};
    } else if (arg.rfind("--workers=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 10, nullptr, 10);
      if (v > 0) flags.workers = static_cast<uint64_t>(v);
    } else if (arg.rfind("--items=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 8, nullptr, 10);
      if (v > 0) flags.items_per_leaf = static_cast<uint64_t>(v);
    } else if (arg.rfind("--delta-every=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 14, nullptr, 10);
      if (v > 0) flags.delta_every = static_cast<uint64_t>(v);
    } else if (arg.rfind("--reps=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (v > 0) flags.reps = static_cast<uint64_t>(v);
    } else {
      std::fprintf(stderr, "bench_merge_tree: unknown flag '%s'\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

struct ScenarioResult {
  uint64_t fanout = 0;
  uint64_t nodes = 0;
  uint64_t depth = 0;
  double items_per_second = 0;
  double deltas_per_second = 0;
  uint64_t drain_rounds = 0;
};

ScenarioResult RunScenario(const TreeBenchFlags& flags, uint64_t fanout,
                           const std::vector<Stream>& leaf_streams) {
  auto topo = BuildBalancedTree(flags.workers, fanout);
  SFQ_CHECK_OK(topo.status());
  CountSketchParams params;
  params.depth = 5;
  params.width = 2048;
  params.seed = 11;
  auto sim = MergeTreeSim::Make(*topo, params, /*tracked=*/64);
  SFQ_CHECK_OK(sim.status());

  const auto wall_start = std::chrono::steady_clock::now();
  // Batch waves: every leaf offers one delta-sized batch, then one
  // bottom-up shipping pass moves the resulting deltas a hop — the
  // steady-state cadence of the process deployment (sfq aggregate).
  for (uint64_t off = 0; off < flags.items_per_leaf;
       off += flags.delta_every) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(flags.delta_every, flags.items_per_leaf - off));
    for (size_t leaf = 0; leaf < topo->leaves.size(); ++leaf) {
      const Stream& stream = leaf_streams[leaf];
      SFQ_CHECK_OK(sim->Offer(
          topo->leaves[leaf],
          std::span<const ItemId>(stream.data() + off, n)));
    }
    SFQ_CHECK_OK(sim->ShipRound().status());
  }
  // Seal, then count the rounds to quiescence: how stale a root query is
  // (in shipping rounds) after the last item entered a leaf.
  sim->Seal();
  uint64_t drain_rounds = 0;
  while (!sim->Quiescent()) {
    SFQ_CHECK_OK(sim->ShipRound().status());
    ++drain_rounds;
    SFQ_CHECK(drain_rounds <= 4 * (topo->max_depth() + 2))
        << "merge tree failed to drain";
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // The run must have been exact before its rate means anything.
  SFQ_CHECK_OK(sim->CheckInvariants());
  const DistLedger root = sim->root_ledger();
  SFQ_CHECK(root.ingested == flags.items_per_leaf * flags.workers)
      << "fault-free run did not cover every item";

  ScenarioResult result;
  result.fanout = fanout;
  result.nodes = topo->size();
  result.depth = topo->max_depth();
  result.items_per_second = static_cast<double>(root.ingested) / wall_s;
  result.deltas_per_second =
      static_cast<double>(sim->stats().deltas_shipped) / wall_s;
  result.drain_rounds = drain_rounds;
  return result;
}

bool WriteJson(const std::string& path, const TreeBenchFlags& flags,
               const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"streamfreq-bench-v1\",\n"
               "  \"bench\": \"bench_merge_tree\",\n"
               "  \"entries\": [");
  bool first = true;
  for (const ScenarioResult& r : results) {
    std::fprintf(
        f,
        "%s\n    {\"name\": \"TreeShip/fanout:%llu\", "
        "\"label\": \"workers=%llu delta_every=%llu\", "
        "\"items_per_second\": %.6e, "
        "\"deltas_per_second\": %.6e, \"drain_rounds\": %llu}",
        first ? "" : ",", static_cast<unsigned long long>(r.fanout),
        static_cast<unsigned long long>(flags.workers),
        static_cast<unsigned long long>(flags.delta_every),
        r.items_per_second, r.deltas_per_second,
        static_cast<unsigned long long>(r.drain_rounds));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  return std::fclose(f) == 0;
}

int Run(int argc, char** argv) {
  const TreeBenchFlags flags = ParseTreeBenchFlags(argc, argv);
  // Per-leaf zipf substreams, the same shape `sfq aggregate` workers
  // stream, regenerated once and shared across scenarios/reps so every
  // fanout ships exactly the same mass.
  std::vector<Stream> leaf_streams;
  leaf_streams.reserve(flags.workers);
  for (uint64_t leaf = 0; leaf < flags.workers; ++leaf) {
    auto gen = ZipfGenerator::Make(100000, 1.1, 42 + leaf);
    SFQ_CHECK_OK(gen.status());
    leaf_streams.push_back(
        gen->Take(static_cast<size_t>(flags.items_per_leaf)));
  }

  std::vector<ScenarioResult> results;
  results.reserve(flags.fanouts.size());
  std::printf("%-20s %8s %6s %14s %14s %12s\n", "scenario", "nodes", "depth",
              "items/s", "deltas/s", "drain rnds");
  for (const uint64_t fanout : flags.fanouts) {
    // Best-of-N, the same policy as the other gated benches: on a loaded
    // box interference only slows a run down, so max rate is the least
    // noisy estimate.
    ScenarioResult r = RunScenario(flags, fanout, leaf_streams);
    for (uint64_t rep = 1; rep < flags.reps; ++rep) {
      const ScenarioResult again = RunScenario(flags, fanout, leaf_streams);
      if (again.items_per_second > r.items_per_second) r = again;
    }
    results.push_back(r);
    std::printf("%-20s %8llu %6llu %14.3e %14.3e %12llu\n",
                ("tree/fanout:" + std::to_string(fanout)).c_str(),
                static_cast<unsigned long long>(r.nodes),
                static_cast<unsigned long long>(r.depth), r.items_per_second,
                r.deltas_per_second,
                static_cast<unsigned long long>(r.drain_rounds));
  }

  if (!flags.json_path.empty()) {
    if (!WriteJson(flags.json_path, flags, results)) {
      std::fprintf(stderr, "bench_merge_tree: cannot write %s\n",
                   flags.json_path.c_str());
      return 1;
    }
    std::printf("bench_merge_tree: trajectory written to %s\n",
                flags.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace streamfreq

int main(int argc, char** argv) { return streamfreq::Run(argc, argv); }
