// E1 -- Table 1 of the paper: space to solve CandidateTop(S, k, O(k)) for
// SAMPLING vs KPS (Misra-Gries) vs COUNT SKETCH across Zipf parameters.
//
// The paper's Table 1 is analytic; this harness measures the same
// comparison empirically: for each z it searches (by doubling) the minimal
// summary size at which each algorithm's top-l candidate list contains all
// true top-k items, and prints both the measured entries/counters and the
// paper's asymptotic formulas for the same (z, k, m, n).
//
// Expected shape (paper Section 4.1): SAMPLING's space grows with the
// universe for z < 1 while Count-Sketch needs only ~k counters per row for
// z > 1/2; KPS sits between. Crossovers fall near z = 1.
#include <iostream>
#include <memory>

#include "core/misra_gries.h"
#include "core/sampling.h"
#include "core/sketch_params.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

namespace {

constexpr uint64_t kUniverse = 30000;
constexpr uint64_t kStreamLen = 300000;
constexpr size_t kK = 10;
constexpr size_t kL = 4 * kK;  // the paper's l = O(k)

// True iff all true top-k items appear in `candidates`.
bool ContainsTopK(const std::vector<ItemCount>& candidates,
                  const std::vector<ItemCount>& truth) {
  return ComputePrecisionRecall(candidates, truth).recall >= 1.0;
}

// Doubling search: smallest power-of-two-ish size for which `attempt`
// succeeds on two independent seeds (reduces lucky-run noise).
template <typename AttemptFn>
size_t MinimalSize(size_t start, size_t limit, AttemptFn&& attempt) {
  for (size_t size = start; size <= limit; size *= 2) {
    if (attempt(size, 1) && attempt(size, 2)) return size;
  }
  return limit;
}

}  // namespace

int main() {
  std::cout << "E1 / Table 1: empirical space (summary entries) to solve "
               "CandidateTop(S, k=" << kK << ", l=" << kL << ")\n"
            << "universe m=" << kUniverse << ", stream n=" << kStreamLen
            << "\n\n";

  TablePrinter table({"z", "SAMPLING entries", "KPS counters",
                      "CS counters (t*b)", "T1 sampling", "T1 kps",
                      "T1 countsketch"});

  for (double z : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    auto workload = MakeZipfWorkload(kUniverse, z, kStreamLen, 1234);
    SFQ_CHECK_OK(workload.status());
    const auto truth = workload->oracle.TopK(kK);

    // SAMPLING: doubling search over expected sample size; space charged =
    // distinct sampled items (the measure the paper's Table 1 uses).
    size_t sampling_entries = 0;
    {
      const size_t found = MinimalSize(64, kStreamLen, [&](size_t target,
                                                           uint64_t seed) {
        const double p = std::min(
            1.0, static_cast<double>(target) / static_cast<double>(kStreamLen));
        auto s = SamplingSummary::Make(p, seed * 7919);
        SFQ_CHECK_OK(s.status());
        s->AddAll(workload->stream);
        const bool ok = ContainsTopK(s->Candidates(kL), truth);
        if (ok) sampling_entries = s->DistinctSampled();
        return ok;
      });
      (void)found;
    }

    // KPS / Misra-Gries: doubling search over counter capacity.
    const size_t kps_counters =
        MinimalSize(kK, kUniverse * 2, [&](size_t cap, uint64_t) {
          auto mg = MisraGries::Make(cap);
          SFQ_CHECK_OK(mg.status());
          mg->AddAll(workload->stream);
          return ContainsTopK(mg->Candidates(kL), truth);
        });

    // Count-Sketch: doubling search over width b at t = 5, l = 4k tracked.
    constexpr size_t kDepth = 5;
    const size_t cs_width =
        MinimalSize(8, 1u << 22, [&](size_t width, uint64_t seed) {
          CountSketchParams p;
          p.depth = kDepth;
          p.width = width;
          p.seed = seed * 104729;
          auto algo = CountSketchTopK::Make(p, kL);
          SFQ_CHECK_OK(algo.status());
          algo->AddAll(workload->stream);
          return ContainsTopK(algo->Candidates(kL), truth);
        });

    table.AddRowValues(z, sampling_entries, kps_counters, kDepth * cs_width,
                       Table1SamplingSpace(z, kK, kUniverse),
                       Table1KpsSpace(z, kK, kUniverse),
                       Table1CountSketchSpace(z, kK, kUniverse, kStreamLen));
  }

  EmitTable(table, "E01_table1_space", std::cout);
  std::cout << "\nReading: measured columns are summary entries (items or "
               "counters); T1 columns are the paper's asymptotic formulas "
               "(constants dropped), comparable in shape, not absolute "
               "value. Count-Sketch should flatten to ~t*8k counters once "
               "z > 1/2 while SAMPLING keeps growing as z falls.\n";
  return 0;
}
