// E11 -- ablations of the design choices DESIGN.md calls out:
//   (a) hash family: Carter-Wegman (pairwise independent, the paper's
//       requirement) vs multiply-shift vs tabulation;
//   (b) estimator: median (the paper's) vs mean;
//   (c) Count-Min conservative update on vs off.
//
// Expected shape: all three hash families deliver similar accuracy at
// similar speed on random ids (pairwise independence is the analysis
// requirement, not a practical differentiator here); the mean estimator's
// error explodes relative to the median under heavy-hitter collisions;
// conservative update tightens Count-Min materially.
#include <cmath>
#include <iostream>

#include "core/count_min.h"
#include "core/count_sketch.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace streamfreq;

namespace {

struct Score {
  double are;
  double max_err;
  double mitems_per_sec;
};

Score ScoreSketch(const CountSketchParams& params, const Workload& w,
                  size_t k) {
  auto sketch = CountSketch::Make(params);
  SFQ_CHECK_OK(sketch.status());
  Timer timer;
  for (ItemId q : w.stream) sketch->Add(q);
  const double secs = timer.ElapsedSeconds();

  double total = 0, worst = 0;
  const auto truth = w.oracle.TopK(k);
  for (const ItemCount& ic : truth) {
    const double err = std::abs(
        static_cast<double>(sketch->Estimate(ic.item) - ic.count));
    total += err / static_cast<double>(ic.count);
    worst = std::max(worst, err);
  }
  return {total / static_cast<double>(truth.size()), worst,
          static_cast<double>(w.stream.size()) / secs / 1e6};
}

}  // namespace

int main() {
  constexpr size_t kK = 20;
  auto workload = MakeZipfWorkload(100000, 1.0, 500000, 8675309);
  SFQ_CHECK_OK(workload.status());

  std::cout << "E11a: hash family ablation (t=5, b=1024, Zipf z=1)\n\n";
  {
    TablePrinter table({"family", "ARE@20", "max |err|", "Mitems/s"});
    for (auto [family, name] :
         {std::pair{HashFamily::kCarterWegman, "CarterWegman (paper)"},
          std::pair{HashFamily::kMultiplyShift, "MultiplyShift"},
          std::pair{HashFamily::kTabulation, "Tabulation"}}) {
      CountSketchParams p;
      p.depth = 5;
      p.width = 1024;
      p.seed = 13;
      p.family = family;
      const Score s = ScoreSketch(p, *workload, kK);
      table.AddRowValues(name, s.are, s.max_err, s.mitems_per_sec);
    }
    EmitTable(table, "E11a_hash_family", std::cout);
  }

  std::cout << "\nE11b: median vs mean estimator (narrow b=128 amplifies "
               "heavy-hitter collisions; Section 3.2's argument)\n\n";
  {
    TablePrinter table({"estimator", "ARE@20", "max |err|"});
    for (auto [estimator, name] : {std::pair{Estimator::kMedian, "median (paper)"},
                                   std::pair{Estimator::kMean, "mean"}}) {
      CountSketchParams p;
      p.depth = 5;
      p.width = 128;
      p.seed = 13;
      p.estimator = estimator;
      const Score s = ScoreSketch(p, *workload, kK);
      table.AddRowValues(name, s.are, s.max_err);
    }
    EmitTable(table, "E11b_estimator", std::cout);
  }

  std::cout << "\nE11c: Count-Min conservative update (d=4, w=1024)\n\n";
  {
    TablePrinter table({"variant", "ARE@20", "avg overestimate"});
    for (bool conservative : {false, true}) {
      CountMinParams p;
      p.depth = 4;
      p.width = 1024;
      p.seed = 13;
      p.conservative = conservative;
      auto cms = CountMin::Make(p);
      SFQ_CHECK_OK(cms.status());
      for (ItemId q : workload->stream) cms->Add(q);
      const auto truth = workload->oracle.TopK(kK);
      double are = 0, over = 0;
      for (const ItemCount& ic : truth) {
        const double err =
            static_cast<double>(cms->Estimate(ic.item) - ic.count);
        are += err / static_cast<double>(ic.count);
        over += err;
      }
      table.AddRowValues(conservative ? "conservative update" : "plain",
                         are / static_cast<double>(truth.size()),
                         over / static_cast<double>(truth.size()));
    }
    EmitTable(table, "E11c_conservative", std::cout);
  }

  std::cout << "\nReading: (a) families tie on random ids; (b) the mean's "
               "max error should far exceed the median's; (c) CU should "
               "shrink the overestimate substantially.\n";
  return 0;
}
