// E14 -- self-tuning vs oracle sizing (closing the paper's Section 3.1
// caveat that the distribution must be known in advance).
//
// For several skews: profile a 10% prefix with the StreamProfiler (AMS F2
// + Space-Saving n_k), size the sketch per Lemma 5 from the profile, and
// compare against the oracle sizing computed from exact statistics. Both
// sketches then run the full ApproxTop pipeline.
//
// Expected shape: tuned widths land within roughly an order of magnitude
// of the oracle widths (the profiler estimates the residual moment as
// AMS-F2 minus the guaranteed head mass, which over-corrects at low skew
// and under-corrects at very high skew, where the paper's 8k floor and the
// Lemma 5 slack absorb the difference) and both PASS the ApproxTop
// contract; the profiler itself costs a few tens of KiB.
#include <iostream>

#include "core/self_tuning.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

namespace {

constexpr size_t kK = 10;
constexpr double kEps = 0.2;

std::string RunWithWidth(const Workload& workload, size_t depth, size_t width) {
  CountSketchParams params;
  params.depth = depth;
  params.width = width;
  params.seed = 31337;
  auto algo = CountSketchTopK::Make(params, kK);
  SFQ_CHECK_OK(algo.status());
  algo->AddAll(workload.stream);
  const auto verdict =
      CheckApproxTop(algo->Candidates(kK), workload.oracle, kK, kEps);
  return verdict.Pass() ? "PASS" : "FAIL";
}

}  // namespace

int main() {
  constexpr uint64_t kStreamLen = 300000;
  std::cout << "E14: self-tuned (10% prefix profile) vs oracle Lemma-5 "
               "sizing, k=" << kK << ", eps=" << kEps << ", n=" << kStreamLen
            << "\n\n";
  TablePrinter table({"z", "oracle b", "tuned b", "tuned/oracle",
                      "oracle verdict", "tuned verdict", "profiler KiB"});

  for (double z : {0.8, 1.0, 1.2, 1.5}) {
    auto workload = MakeZipfWorkload(50000, z, kStreamLen,
                                     static_cast<uint64_t>(z * 100) + 7);
    SFQ_CHECK_OK(workload.status());

    // Oracle sizing from exact statistics.
    ApproxTopSpec oracle_spec;
    oracle_spec.stream_length = workload->n();
    oracle_spec.k = kK;
    oracle_spec.epsilon = kEps;
    oracle_spec.delta = 0.05;
    oracle_spec.residual_f2 = workload->oracle.ResidualF2(kK);
    oracle_spec.nk = static_cast<double>(workload->oracle.NthCount(kK));
    auto oracle = SizeForApproxTop(oracle_spec);
    SFQ_CHECK_OK(oracle.status());

    // Tuned sizing from a 10% prefix.
    ProfilerParams pp;
    pp.k = kK;
    pp.epsilon = kEps;
    pp.delta = 0.05;
    pp.seed = 3;
    auto profiler = StreamProfiler::Make(pp);
    SFQ_CHECK_OK(profiler.status());
    for (size_t i = 0; i < workload->stream.size() / 10; ++i) {
      profiler->Add(workload->stream[i]);
    }
    auto tuned = profiler->Size(workload->n());
    SFQ_CHECK_OK(tuned.status());

    table.AddRowValues(
        z, oracle->width, tuned->width,
        static_cast<double>(tuned->width) / static_cast<double>(oracle->width),
        RunWithWidth(*workload, oracle->depth, oracle->width),
        RunWithWidth(*workload, tuned->depth, tuned->width),
        static_cast<double>(profiler->SpaceBytes()) / 1024.0);
  }

  EmitTable(table, "E14_self_tuning", std::cout);
  std::cout << "\nReading: both verdict columns must be PASS; tuned/oracle "
               "stays within roughly an order of magnitude across skews "
               "(see header comment for why it straddles 1).\n";
  return 0;
}
