// E9 -- estimation accuracy versus space budget, all algorithms.
//
// Fixed Zipf(1.1) workload; sweep the per-algorithm space budget; report
// the average relative error of count estimates over the true top-k.
//
// Expected shape: every algorithm's ARE falls as the budget grows;
// Count-Sketch and conservative-update Count-Min sit below plain Count-Min;
// the sampling family trails throughout.
#include <iostream>

#include "eval/runner.h"
#include "eval/suite.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 100000;
  constexpr uint64_t kStreamLen = 500000;
  constexpr size_t kK = 20;

  auto workload = MakeZipfWorkload(kUniverse, 1.1, kStreamLen, 112358);
  SFQ_CHECK_OK(workload.status());

  std::cout << "E9: average relative error on the true top-" << kK
            << " vs space budget (Zipf z=1.1, n=" << kStreamLen << ")\n\n";

  const std::vector<size_t> budgets = {8 * 1024,  16 * 1024, 32 * 1024,
                                       64 * 1024, 128 * 1024, 256 * 1024};
  std::vector<std::string> headers = {"algorithm"};
  for (size_t b : budgets) {
    headers.push_back(std::to_string(b / 1024) + "KiB");
  }
  TablePrinter table(headers);

  // Row labels from a prototype suite (names include capacities, so label
  // rows by kind instead).
  const std::vector<std::pair<AlgorithmKind, std::string>> kinds = {
      {AlgorithmKind::kCountSketchTopK, "CountSketch"},
      {AlgorithmKind::kCountMinTopK, "CountMin"},
      {AlgorithmKind::kCountMinConservativeTopK, "CountMin-CU"},
      {AlgorithmKind::kMisraGries, "MisraGries"},
      {AlgorithmKind::kLossyCounting, "LossyCounting"},
      {AlgorithmKind::kSpaceSaving, "SpaceSaving(heap)"},
      {AlgorithmKind::kStreamSummarySpaceSaving, "SpaceSaving(SSL)"},
      {AlgorithmKind::kStickySampling, "StickySampling"},
      {AlgorithmKind::kSampling, "Sampling"},
      {AlgorithmKind::kConciseSampling, "ConciseSamples"},
      {AlgorithmKind::kCountingSampling, "CountingSamples"},
  };

  for (const auto& [kind, label] : kinds) {
    std::vector<std::string> row = {label};
    for (size_t budget : budgets) {
      SuiteSpec spec;
      spec.space_budget_bytes = budget;
      spec.k = kK;
      spec.seed = 5;
      spec.expected_stream_length = kStreamLen;
      auto algo = MakeAlgorithm(kind, spec);
      SFQ_CHECK_OK(algo.status());
      const RunResult r = RunAndScore(**algo, *workload, kK);
      row.push_back(TablePrinter::Format(r.are_topk));
    }
    table.AddRow(std::move(row));
  }

  EmitTable(table, "E09_are_vs_space", std::cout);
  std::cout << "\nReading: rows should be monotonically decreasing (more "
               "space, less error); sketch rows should dominate sampling "
               "rows at every budget.\n";
  return 0;
}
