// bench_serve: YCSB-style load driver for `sfq serve`.
//
// Boots an in-process SfqServer on a throwaway unix socket, creates one
// tenant, then runs a closed-loop campaign: N client threads, one
// SfqClient (= one connection) each, issuing a fixed 8:1 ingest:query mix
// over a pre-generated zipf stream. Closed loop means each client keeps
// exactly one request outstanding, so per-request wall time IS the
// request latency — no coordinated-omission correction needed.
//
// Two entries per client count land in the trajectory JSON
// (streamfreq-bench-v1, gated by tools/bench_gate.py against the
// committed BENCH_serve.json):
//   ServeIngest/clients:C  items_per_second = stream items ingested / wall
//   ServeQuery/clients:C   items_per_second = top-k queries answered / wall
// Each entry also carries p50_us/p99_us request latency — informational
// extras (the gate only compares items_per_second), tracked in
// docs/SERVER.md.
//
// Flags:
//   --clients=1,4      client-count scenarios (default "1,4")
//   --items=N          stream items per client (default 262144)
//   --chunk=N          items per ingest request (default 512)
//   --reps=N           repetitions per scenario, best-of kept (default 3)
//   --json FILE        write the trajectory JSON for bench_gate.py

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "stream/types.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/result.h"

namespace streamfreq {
namespace {

struct ServeFlags {
  std::vector<uint64_t> client_counts = {1, 4};
  uint64_t items_per_client = 262144;
  uint64_t chunk = 512;
  uint64_t reps = 3;
  std::string json_path;  // empty = no trajectory JSON
};

ServeFlags ParseServeFlags(int argc, char** argv) {
  ServeFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      flags.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--clients=", 0) == 0) {
      flags.client_counts.clear();
      std::string list = arg.substr(10);
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const long v = std::strtol(tok.c_str(), nullptr, 10);
        if (v > 0) flags.client_counts.push_back(static_cast<uint64_t>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (flags.client_counts.empty()) flags.client_counts = {1};
    } else if (arg.rfind("--items=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 8, nullptr, 10);
      if (v > 0) flags.items_per_client = static_cast<uint64_t>(v);
    } else if (arg.rfind("--chunk=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 8, nullptr, 10);
      if (v > 0) flags.chunk = static_cast<uint64_t>(v);
    } else if (arg.rfind("--reps=", 0) == 0) {
      const long v = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (v > 0) flags.reps = static_cast<uint64_t>(v);
    } else {
      std::fprintf(stderr, "bench_serve: unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

/// One closed-loop client's tallies; merged after join.
struct ClientTally {
  std::vector<uint64_t> ingest_us;
  std::vector<uint64_t> query_us;
  uint64_t items = 0;
};

/// p-th percentile (nearest-rank) of an unsorted latency sample, in µs.
uint64_t Percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

/// One scenario's results, ready for the console table and the JSON.
struct ScenarioResult {
  uint64_t clients = 0;
  double items_per_second = 0;
  double queries_per_second = 0;
  uint64_t ingest_p50_us = 0, ingest_p99_us = 0;
  uint64_t query_p50_us = 0, query_p99_us = 0;
};

/// Runs one closed-loop scenario against a fresh server instance. A fresh
/// server per scenario keeps the tenant's queue state and snapshot cadence
/// identical across client counts, so the entries are comparable.
ScenarioResult RunScenario(const ServeFlags& flags, uint64_t clients,
                           const Stream& stream) {
  const std::string socket_path = "/tmp/sfq_bench_serve_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(clients) + ".sock";
  std::remove(socket_path.c_str());
  ServerOptions options;
  options.socket_path = socket_path;
  auto server = SfqServer::Start(options);
  SFQ_CHECK_OK(server.status());

  // One tenant shared by every client: the contended path is the point.
  // Generous queue depth + kBlock keeps the bench loss-free — admission
  // shedding would make items_per_second measure the policy, not the
  // server.
  TenantSpec spec;
  spec.depth = 5;
  spec.width = 4096;
  spec.seed = 3;
  spec.threads = 2;
  spec.batch_items = 2048;
  spec.queue_batches = 64;
  spec.policy = OverflowPolicy::kBlock;
  spec.tracked = 256;
  {
    auto admin = SfqClient::Connect(socket_path);
    SFQ_CHECK_OK(admin.status());
    SFQ_CHECK_OK(admin->CreateTenant("bench", spec));
  }

  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto wall_start = std::chrono::steady_clock::now();
  for (uint64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = SfqClient::Connect(socket_path);
      SFQ_CHECK_OK(client.status());
      ClientTally& tally = tallies[c];
      // Disjoint stride-sliced view: every client ingests items/client
      // items, all clients together cover the stream exactly once.
      std::vector<ItemId> slice;
      slice.reserve(flags.items_per_client);
      for (uint64_t i = c; slice.size() < flags.items_per_client;
           i += clients) {
        slice.push_back(stream[i % stream.size()]);
      }
      uint64_t requests = 0;
      for (size_t off = 0; off < slice.size(); off += flags.chunk) {
        const size_t n = std::min<size_t>(flags.chunk, slice.size() - off);
        const auto t0 = std::chrono::steady_clock::now();
        SFQ_CHECK_OK(client->Ingest(
            "bench", std::span<const ItemId>(slice.data() + off, n)));
        const auto t1 = std::chrono::steady_clock::now();
        tally.ingest_us.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
        tally.items += n;
        // The YCSB-style mix: every 8th request is a read.
        if (++requests % 8 == 0) {
          const auto q0 = std::chrono::steady_clock::now();
          auto top = client->TopK("bench", 10);
          SFQ_CHECK_OK(top.status());
          const auto q1 = std::chrono::steady_clock::now();
          tally.query_us.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                  .count()));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  (*server)->RequestStop();
  server->reset();
  std::remove(socket_path.c_str());

  ScenarioResult result;
  result.clients = clients;
  std::vector<uint64_t> ingest_us, query_us;
  uint64_t items = 0;
  for (ClientTally& tally : tallies) {
    ingest_us.insert(ingest_us.end(), tally.ingest_us.begin(),
                     tally.ingest_us.end());
    query_us.insert(query_us.end(), tally.query_us.begin(),
                    tally.query_us.end());
    items += tally.items;
  }
  result.items_per_second = static_cast<double>(items) / wall_s;
  result.queries_per_second = static_cast<double>(query_us.size()) / wall_s;
  result.ingest_p50_us = Percentile(ingest_us, 0.50);
  result.ingest_p99_us = Percentile(ingest_us, 0.99);
  result.query_p50_us = Percentile(query_us, 0.50);
  result.query_p99_us = Percentile(query_us, 0.99);
  return result;
}

bool WriteJson(const std::string& path, const ServeFlags& flags,
               const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"streamfreq-bench-v1\",\n"
               "  \"bench\": \"bench_serve\",\n"
               "  \"entries\": [");
  bool first = true;
  for (const ScenarioResult& r : results) {
    std::fprintf(f,
                 "%s\n    {\"name\": \"ServeIngest/clients:%llu\", "
                 "\"label\": \"chunk=%llu mix=8:1\", "
                 "\"items_per_second\": %.6e, "
                 "\"p50_us\": %llu, \"p99_us\": %llu}",
                 first ? "" : ",",
                 static_cast<unsigned long long>(r.clients),
                 static_cast<unsigned long long>(flags.chunk),
                 r.items_per_second,
                 static_cast<unsigned long long>(r.ingest_p50_us),
                 static_cast<unsigned long long>(r.ingest_p99_us));
    std::fprintf(f,
                 ",\n    {\"name\": \"ServeQuery/clients:%llu\", "
                 "\"label\": \"topk10\", "
                 "\"items_per_second\": %.6e, "
                 "\"p50_us\": %llu, \"p99_us\": %llu}",
                 static_cast<unsigned long long>(r.clients),
                 r.queries_per_second,
                 static_cast<unsigned long long>(r.query_p50_us),
                 static_cast<unsigned long long>(r.query_p99_us));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  return std::fclose(f) == 0;
}

int Run(int argc, char** argv) {
  const ServeFlags flags = ParseServeFlags(argc, argv);
  // Shared zipf workload, same shape as bench_throughput's (zipf 1.1 over
  // 100k items) so server-side numbers sit next to the in-process ones.
  auto gen = ZipfGenerator::Make(100000, 1.1, 42);
  SFQ_CHECK_OK(gen.status());
  const uint64_t max_clients = *std::max_element(flags.client_counts.begin(),
                                                flags.client_counts.end());
  const Stream stream =
      gen->Take(static_cast<size_t>(flags.items_per_client * max_clients));

  std::vector<ScenarioResult> results;
  results.reserve(flags.client_counts.size());
  std::printf("%-24s %14s %12s %10s %10s %10s %10s\n", "scenario", "items/s",
              "queries/s", "ing p50", "ing p99", "qry p50", "qry p99");
  for (const uint64_t clients : flags.client_counts) {
    // Best-of-N, the same policy as bench_throughput's reporter: on a
    // loaded single-core box interference only ever slows a run down, so
    // the max rate is the least noisy estimate and keeps the regression
    // gate from tripping on transient load. Latency percentiles come from
    // the same (fastest) repetition so rate and latency stay consistent.
    ScenarioResult r = RunScenario(flags, clients, stream);
    for (uint64_t rep = 1; rep < flags.reps; ++rep) {
      const ScenarioResult again = RunScenario(flags, clients, stream);
      if (again.items_per_second > r.items_per_second) r = again;
    }
    results.push_back(r);
    std::printf("%-24s %14.3e %12.1f %8lluus %8lluus %8lluus %8lluus\n",
                ("serve/clients:" + std::to_string(clients)).c_str(),
                r.items_per_second, r.queries_per_second,
                static_cast<unsigned long long>(r.ingest_p50_us),
                static_cast<unsigned long long>(r.ingest_p99_us),
                static_cast<unsigned long long>(r.query_p50_us),
                static_cast<unsigned long long>(r.query_p99_us));
  }

  if (!flags.json_path.empty()) {
    if (!WriteJson(flags.json_path, flags, results)) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   flags.json_path.c_str());
      return 1;
    }
    std::printf("bench_serve: trajectory written to %s\n",
                flags.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace streamfreq

int main(int argc, char** argv) { return streamfreq::Run(argc, argv); }
